//! Reproduces the paper's layout figures as ASCII art.
//!
//! * Figure 1 — `cyclic(8)` over 4 processors with the section
//!   `l = 0, s = 9` boxed;
//! * Figures 2/3 — the lattice basis vectors for that configuration;
//! * Figure 6 — the points processor 1 visits for `l = 4, s = 9`.
//!
//! Run: `cargo run --example layout_viz`

use bcag::core::method::{build, Method};
use bcag::core::viz;
use bcag::Problem;

fn main() {
    // Figure 1: layout of 4 courses of a cyclic(8) x 4-processor array,
    // with the section elements of l=0, s=9 boxed.
    let fig1 = Problem::new(4, 8, 0, 9).expect("valid");
    println!("== Figure 1: cyclic(8) over 4 processors, section 0::9 ==\n");
    print!("{}", viz::render_section(&fig1, 10));

    // Figures 2/3: the basis. The segment view of Figure 2 shows the
    // generic Euclid basis; Figure 3's R and L are what the algorithm uses.
    println!("\n== Figures 2/3: lattice basis for p=4, k=8, s=9 ==\n");
    println!("{}", viz::describe_basis(&fig1));

    // Figure 6: the walk of processor 1 for l=4, s=9 — every visited point
    // highlighted with <angle brackets>.
    let fig6 = Problem::new(4, 8, 4, 9).expect("valid");
    let pat = build(&fig6, 1, Method::Lattice).expect("builds");
    println!("\n== Figure 6: points visited by processor 1 (l=4, s=9) ==\n");
    print!("{}", viz::render_visits(&pat, 10));
    println!("\nlegend: (l)=lower bound  <i>=visited by proc 1  [i]=other section element");
    println!(
        "AM table: {:?}  (paper: [3, 12, 15, 12, 3, 12, 3, 12])",
        pat.gaps()
    );

    // Figure 2 proper: the lattice strip with O, R and the cycle maximum
    // M marked.
    println!("\n== Figure 2: the lattice strip (O=origin, R, M=max of cycle) ==\n");
    print!("{}", viz::render_lattice(&fig1, 10));

    // A degenerate configuration for contrast: pk | s.
    let degenerate = Problem::new(4, 8, 0, 32).expect("valid");
    println!("\n== Degenerate case: s = pk = 32 ==\n");
    println!("{}", viz::describe_basis(&degenerate));
}
