//! Quickstart: the paper's worked example, end to end.
//!
//! `p = 4` processors, `cyclic(8)` distribution, regular section
//! `A(4 : 301 : 9)`, processor 1 — the configuration of the paper's
//! Figure 6. Builds the memory-gap table with the linear-time lattice
//! algorithm, cross-checks it against the sorting baseline, and enumerates
//! the local addresses both from the table and table-free from the basis
//! vectors.
//!
//! Run: `cargo run --example quickstart`

use bcag::core::method::{build, Method};
use bcag::core::walker::Walker;
use bcag::{Problem, RegularSection};

fn main() {
    // The paper's worked example: p=4, k=8, l=4, s=9.
    let problem = Problem::new(4, 8, 4, 9).expect("valid parameters");
    let section = RegularSection::new(4, 301, 9).expect("valid section");
    let m = 1; // processor number

    println!("== Problem ==");
    println!(
        "cyclic({}) over {} processors; section {}:{}:{} ({} elements); d = gcd(s, pk) = {}",
        problem.k(),
        problem.p(),
        section.l,
        section.u,
        section.s,
        section.count(),
        problem.d()
    );

    // The paper's contribution: O(k + min(log s, log p)) table construction.
    let pattern = build(&problem, m, Method::Lattice).expect("construction succeeds");
    println!("\n== Lattice method (Figure 5) on processor {m} ==");
    println!("start: global index {}", pattern.start_global().unwrap());
    println!("start: local address {}", pattern.start_local().unwrap());
    println!(
        "AM gap table ({} entries): {:?}",
        pattern.len(),
        pattern.gaps()
    );

    // The O(k log k) baseline produces the identical table.
    let baseline = build(&problem, m, Method::SortingAuto).expect("baseline succeeds");
    assert_eq!(pattern, baseline);
    println!("sorting baseline agrees: ✓");

    // Enumerate the bounded section from the table.
    println!("\n== Accesses on processor {m} (global -> local) ==");
    for acc in pattern.iter_to(section.u) {
        print!("{}@{} ", acc.global, acc.local);
    }
    println!();

    // Table-free generation from R and L only (Section 6.2 extension).
    let walker = Walker::new(&problem, m).expect("walker");
    let from_walker: Vec<i64> = walker.up_to(section.u).map(|a| a.local).collect();
    let from_table: Vec<i64> = pattern.locals_to(section.u);
    assert_eq!(from_walker, from_table);
    println!(
        "\ntable-free walker (R/L only) agrees: ✓ ({} accesses)",
        from_walker.len()
    );
}
