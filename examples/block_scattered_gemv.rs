//! Block-scattered dense linear algebra: distributed matrix–vector product.
//!
//! The paper motivates `cyclic(k)` with Dongarra, van de Geijn and Walker's
//! *block-scattered* decomposition for scalable dense linear algebra
//! (Section 1). This example builds a 2-D block-cyclically distributed
//! matrix with the HPF substrate, then computes `y = A·x` SPMD-style: each
//! processor enumerates its owned matrix elements *per matrix row section*
//! with the access-sequence machinery and accumulates partial sums, which
//! are then reduced.
//!
//! Run: `cargo run --example block_scattered_gemv`

use bcag::core::method::Method;
use bcag::core::RegularSection;
use bcag::hpf::{ArrayMap, DimMap, Dist};

const N: i64 = 48; // matrix order
const P_ROWS: i64 = 2; // processor grid
const P_COLS: i64 = 2;
const KB: i64 = 4; // block size in both dimensions (block-scattered)

fn main() {
    // A(N, N) distributed (cyclic(KB), cyclic(KB)) over a P_ROWS x P_COLS
    // grid — the ScaLAPACK-style block-scattered decomposition.
    let map = ArrayMap::new(vec![
        DimMap::simple(N, P_ROWS, Dist::CyclicK(KB)).expect("dim 0"),
        DimMap::simple(N, P_COLS, Dist::CyclicK(KB)).expect("dim 1"),
    ])
    .expect("map");

    // Global data (the "truth" the distributed run must reproduce):
    // A[i][j] = i + 2j, x[j] = j + 1.
    let a = |i: i64, j: i64| (i + 2 * j) as f64;
    let x: Vec<f64> = (0..N).map(|j| (j + 1) as f64).collect();

    // Scatter A into per-processor local memories (column-major locally).
    let mut locals: Vec<Vec<f64>> = map
        .grid()
        .iter_coords()
        .map(|coords| vec![0.0; map.local_size(&coords).expect("size") as usize])
        .collect();
    for idx in map.iter_indices() {
        let rank = map.owner_rank(&idx).expect("rank") as usize;
        let addr = map.local_linear(&idx).expect("addr") as usize;
        locals[rank][addr] = a(idx[0], idx[1]);
    }

    // SPMD compute: each processor walks, for each matrix row i, the row
    // section A(i, 0:N-1:1) restricted to its ownership, accumulating
    // partial y[i]. The per-row enumeration is one application of the
    // access-sequence algorithm in the column dimension.
    let mut partial = vec![vec![0.0f64; N as usize]; map.grid().size() as usize];
    for coords in map.grid().iter_coords() {
        let rank = map.grid().linearize(&coords).expect("rank") as usize;
        let local = &locals[rank];
        for i in 0..N {
            // Row i: does this processor own row i in dimension 0?
            if map.dims()[0].owner(i) != coords[0] {
                continue;
            }
            let row_section = vec![
                RegularSection::new(i, i, 1).expect("row"),
                RegularSection::new(0, N - 1, 1).expect("cols"),
            ];
            let accesses = map
                .section_accesses(&coords, &row_section, Method::Lattice)
                .expect("accesses");
            let mut sum = 0.0;
            for (idx, addr) in accesses {
                sum += local[addr as usize] * x[idx[1] as usize];
            }
            partial[rank][i as usize] += sum;
        }
    }

    // Reduce the partials (the column-dimension all-reduce of a real GEMV).
    let mut y = vec![0.0f64; N as usize];
    for part in &partial {
        for (yi, pi) in y.iter_mut().zip(part) {
            *yi += pi;
        }
    }

    // Sequential reference.
    let y_ref: Vec<f64> = (0..N)
        .map(|i| (0..N).map(|j| a(i, j) * x[j as usize]).sum())
        .collect();
    assert_eq!(y, y_ref, "distributed GEMV must match sequential");

    println!("block-scattered GEMV: N={N}, grid {P_ROWS}x{P_COLS}, blocks {KB}x{KB}");
    println!("y[0..8] = {:?}", &y[..8]);
    println!("matches sequential reference: ✓");

    // Show the data decomposition statistics.
    for coords in map.grid().iter_coords() {
        let rank = map.grid().linearize(&coords).expect("rank");
        let size = map.local_size(&coords).expect("size");
        println!(
            "proc {rank} (grid {:?}): {size} local elements ({}x{})",
            coords,
            map.local_extents(&coords).expect("e")[0],
            map.local_extents(&coords).expect("e")[1],
        );
    }
}
