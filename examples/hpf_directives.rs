//! Driving the library from HPF-style source text.
//!
//! Parses the paper's configuration written as HPF directives, resolves the
//! array mapping, and enumerates a section — the workflow an HPF compiler
//! front-end would follow before emitting node code.
//!
//! Run: `cargo run --example hpf_directives`

use bcag::core::method::Method;
use bcag::hpf::Program;

const SOURCE: &str = "
    ! --- The paper's running configuration, as HPF directives ---
    PROCESSORS P(4)
    TEMPLATE T(320)
    REAL A(320)
    !HPF$ ALIGN A(i) WITH T(i)
    !HPF$ DISTRIBUTE T(CYCLIC(8)) ONTO P

    ! --- A 2-D block-scattered matrix on a 2x2 grid ---
    PROCESSORS GRID(2, 2)
    TEMPLATE TM(48, 48)
    REAL M(48, 48)
    !HPF$ ALIGN M(i, j) WITH TM(i, j)
    !HPF$ DISTRIBUTE TM(CYCLIC(4), CYCLIC(4)) ONTO GRID

    ! --- An array aligned with stride 2 and offset 1 ---
    TEMPLATE TB(100)
    REAL B(48)
    !HPF$ ALIGN B(j) WITH TB(2*j + 1)
    !HPF$ DISTRIBUTE TB(CYCLIC(8)) ONTO P
";

fn main() {
    let prog = Program::parse(SOURCE).expect("directives parse");

    // 1-D, identity alignment: the paper's worked example.
    let map_a = prog.array_map("A").expect("A resolves");
    let (_, sec) = Program::parse_section("A(4:301:9)").expect("section parses");
    println!("== A(4:301:9) with DISTRIBUTE T(CYCLIC(8)) ONTO P(4) ==");
    for rank in 0..map_a.grid().size() {
        let coords = map_a.grid().delinearize(rank).expect("rank");
        let acc = map_a
            .section_accesses(&coords, &sec, Method::Lattice)
            .expect("enumerates");
        let locals: Vec<i64> = acc.iter().map(|(_, a)| *a).collect();
        println!("proc {rank}: locals {locals:?}");
    }

    // 2-D block-scattered matrix: count elements of a subblock per proc.
    let map_m = prog.array_map("M").expect("M resolves");
    let (_, sec2) = Program::parse_section("M(0:47:3, 1:47:5)").expect("2-D section");
    println!("\n== M(0:47:3, 1:47:5) on the 2x2 grid ==");
    let mut total = 0usize;
    for coords in map_m.grid().iter_coords() {
        let acc = map_m
            .section_accesses(&coords, &sec2, Method::Lattice)
            .expect("enumerates");
        println!("proc {coords:?}: {} owned section elements", acc.len());
        total += acc.len();
    }
    println!("total {total} (= 16 x 10 section elements)");
    assert_eq!(total, 16 * 10);

    // Aligned array: packed local addressing.
    let map_b = prog.array_map("B").expect("B resolves");
    let (_, sec3) = Program::parse_section("B(0:47:5)").expect("section");
    println!("\n== B(0:47:5) with ALIGN B(j) WITH TB(2*j+1) ==");
    for rank in 0..4 {
        let acc = map_b
            .section_accesses(&[rank], &sec3, Method::Lattice)
            .expect("enumerates");
        let pairs: Vec<(i64, i64)> = acc.iter().map(|(idx, a)| (idx[0], *a)).collect();
        println!("proc {rank}: (index, packed local) {pairs:?}");
    }
}
