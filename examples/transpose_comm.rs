//! Redistribution with communication sets: `A(0:n-1:1) = B(0:n-1:1)` where
//! `A` is `cyclic(8)` and `B` is `cyclic(3)`.
//!
//! Changing the block size of a block-cyclic array (e.g. to match the
//! blocking of a ScaLAPACK routine) forces an all-to-all style exchange.
//! The communication sets are computed from the access-sequence machinery
//! (each source processor enumerates its owned RHS elements with the
//! lattice algorithm), and the exchange is executed with message channels.
//!
//! Run: `cargo run --example transpose_comm`

use bcag::core::method::Method;
use bcag::core::RegularSection;
use bcag::spmd::{CommSchedule, DistArray};

fn main() {
    let p = 4i64;
    let n = 240i64;
    let (k_a, k_b) = (8i64, 3i64);

    // B holds the data; A receives it under a different blocking.
    let data: Vec<i64> = (0..n).map(|i| 1_000 + i).collect();
    let b = DistArray::from_global(p, k_b, &data).expect("B");
    let mut a = DistArray::new(p, k_a, n, 0i64).expect("A");

    let sec = RegularSection::new(0, n - 1, 1).expect("section");
    let schedule = CommSchedule::build(p, k_a, &sec, k_b, &sec, Method::Lattice).expect("schedule");

    println!("redistribution cyclic({k_b}) -> cyclic({k_a}), n = {n}, p = {p}");
    println!(
        "{} elements total, {} cross-processor",
        schedule.total_elements(),
        schedule.nonlocal_elements()
    );
    println!("\nmessage matrix (elements from src row to dst column):");
    print!("{:>8}", "src\\dst");
    for dst in 0..p {
        print!("{dst:>8}");
    }
    println!();
    for src in 0..p {
        print!("{src:>8}");
        for dst in 0..p {
            print!("{:>8}", schedule.transfers(src, dst).len());
        }
        println!();
    }

    schedule.execute(&mut a, &b).expect("exchange");
    assert_eq!(a.to_global(), data, "redistribution must preserve contents");
    println!("\ncontents preserved after exchange: ✓");

    // A strided cross-layout assignment too: A(2:230:4) = B(1:229:4).
    let sec_a = RegularSection::new(2, 230, 4).expect("sa");
    let sec_b = RegularSection::new(1, 229, 4).expect("sb");
    let sched2 =
        CommSchedule::build(p, k_a, &sec_a, k_b, &sec_b, Method::Lattice).expect("schedule2");
    sched2.execute(&mut a, &b).expect("exchange2");
    let ga = a.to_global();
    let ok = sec_a
        .iter()
        .zip(sec_b.iter())
        .all(|(ia, ib)| ga[ia as usize] == data[ib as usize]);
    assert!(ok);
    println!(
        "strided cross-layout assignment A(2:230:4) = B(1:229:4): ✓ \
         ({} elements, {} nonlocal)",
        sched2.total_elements(),
        sched2.nonlocal_elements()
    );
}
