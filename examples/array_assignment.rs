//! HPF array assignment `A(l : u : s) = 100.0` executed SPMD, comparing the
//! four node-code shapes of the paper's Figure 8.
//!
//! Each shape traverses local memory with the gap table produced by the
//! lattice algorithm; all four must produce identical array contents (and
//! identical to sequential semantics). A small wall-clock report echoes the
//! structure of the paper's Table 2.
//!
//! Run: `cargo run --release --example array_assignment`

use std::time::Instant;

use bcag::core::method::Method;
use bcag::core::RegularSection;
use bcag::spmd::{assign_scalar, CodeShape, DistArray};

fn main() {
    let p = 8i64;
    let k = 32i64;
    let s = 15i64;
    let elems_per_proc = 10_000i64;
    let u = s * (elems_per_proc * p - 1);
    let n = u + 1;
    let section = RegularSection::new(0, u, s).expect("section");

    println!(
        "A(0:{u}:{s}) = 100.0 on cyclic({k}) x {p} procs \
         ({} section elements, array size {n})",
        section.count()
    );

    // Sequential reference.
    let mut reference = vec![0.0f32; n as usize];
    for i in section.iter() {
        reference[i as usize] = 100.0;
    }

    let mut results = Vec::new();
    for shape in CodeShape::ALL {
        let mut arr = DistArray::new(p, k, n, 0.0f32).expect("array");
        let t0 = Instant::now();
        assign_scalar(&mut arr, &section, 100.0, Method::Lattice, shape).expect("assign");
        let elapsed = t0.elapsed();
        assert_eq!(arr.to_global(), reference, "shape {} wrong", shape.label());
        results.push((shape, elapsed));
        println!(
            "shape {:>5}: {:>10.1} µs total (incl. table construction)  ✓ correct",
            shape.label(),
            elapsed.as_secs_f64() * 1e6
        );
    }

    // The paper's qualitative finding: the mod-loop 8(a) is by far the
    // slowest; 8(d) tends to win. (Total time here includes planning, so
    // ratios are milder than the traversal-only Table 2 — run
    // `cargo run -p bcag-bench --release --bin table2` for the faithful
    // reproduction.)
    let slowest = results.iter().max_by_key(|(_, d)| *d).expect("nonempty");
    println!("slowest shape: {}", slowest.0.label());
}
