//! Right-looking LU factorization (no pivoting) on a block-cyclically
//! distributed matrix — the dense linear algebra workload that motivates
//! `cyclic(k)` in the paper's introduction (Dongarra et al.'s
//! block-scattered decomposition).
//!
//! Every step touches exactly the region shapes this library enumerates:
//! a *column section* below the diagonal (scaling), and a *trailing
//! submatrix* (rank-1 update) — both rectangular sections whose per-
//! processor address sequences come from the lattice algorithm. The
//! diagonal itself is read with the coupled-subscript machinery.
//!
//! Run: `cargo run --release --example block_lu`

use bcag::core::RegularSection;
use bcag::hpf::{ArrayMap, DimMap, Dist};
use bcag::spmd::DistMatrix;

const N: i64 = 24;

#[allow(clippy::needless_range_loop)] // index symmetry mirrors the math
fn sequential_lu(a: &mut [Vec<f64>]) {
    let n = a.len();
    for k in 0..n - 1 {
        let pivot = a[k][k];
        for i in k + 1..n {
            a[i][k] /= pivot;
        }
        for i in k + 1..n {
            let lik = a[i][k];
            for j in k + 1..n {
                a[i][j] -= lik * a[k][j];
            }
        }
    }
}

fn main() {
    let map = ArrayMap::new(vec![
        DimMap::simple(N, 2, Dist::CyclicK(3)).expect("dim 0"),
        DimMap::simple(N, 2, Dist::CyclicK(3)).expect("dim 1"),
    ])
    .expect("map");

    // A diagonally dominant test matrix (LU without pivoting is stable).
    let gen = |i: i64, j: i64| {
        if i == j {
            2.0 * N as f64
        } else {
            1.0 / ((i - j).abs() as f64 + 1.0)
        }
    };
    let mut a = DistMatrix::from_fn(map, gen).expect("matrix");

    // Sequential reference.
    let mut reference: Vec<Vec<f64>> = (0..N)
        .map(|i| (0..N).map(|j| gen(i, j)).collect())
        .collect();
    sequential_lu(&mut reference);

    // Distributed right-looking LU.
    for k in 0..N - 1 {
        let pivot = *a.get(k, k).expect("diagonal element");

        // Column scale: A(k+1 : N-1, k) /= pivot — a strided section in
        // dimension 0 with a degenerate dimension-1 triplet.
        let col = [
            RegularSection::new(k + 1, N - 1, 1).expect("rows"),
            RegularSection::new(k, k, 1).expect("col"),
        ];
        a.apply_section(&col, |_, _, x| *x /= pivot).expect("scale");

        // Broadcast row k and column k (the multipliers just computed).
        let row_k: Vec<f64> = (k + 1..N).map(|j| *a.get(k, j).expect("row")).collect();
        let col_k: Vec<f64> = (k + 1..N).map(|i| *a.get(i, k).expect("col")).collect();

        // Trailing update: A(k+1:, k+1:) -= col_k ⊗ row_k.
        let trailing = [
            RegularSection::new(k + 1, N - 1, 1).expect("rows"),
            RegularSection::new(k + 1, N - 1, 1).expect("cols"),
        ];
        a.apply_section(&trailing, |i, j, x| {
            *x -= col_k[(i - k - 1) as usize] * row_k[(j - k - 1) as usize];
        })
        .expect("update");
    }

    // Compare.
    let dense = a.to_dense().expect("gather");
    let mut max_err = 0.0f64;
    for i in 0..N as usize {
        for j in 0..N as usize {
            max_err = max_err.max((dense[i][j] - reference[i][j]).abs());
        }
    }
    println!("block-cyclic LU: N={N}, 2x2 grid, 3x3 blocks");
    println!("max |distributed - sequential| = {max_err:.3e}");
    assert!(max_err < 1e-12);

    // Read the U diagonal with the coupled-subscript (diagonal) machinery
    // and report the determinant it implies.
    let mut det = 1.0;
    let mut diag = vec![0.0f64; N as usize];
    {
        let d = &mut diag;
        let probe = std::sync::Mutex::new(d);
        a.apply_diagonal((0, 0), (1, 1), N, |t, _, _, x| {
            probe.lock().unwrap()[t as usize] = *x;
        })
        .expect("diagonal");
    }
    for v in &diag {
        det *= v;
    }
    println!("det(A) from U diagonal = {det:.6e}");
    println!("matches sequential: ✓");
}
