//! Whole array statements with mixed layouts: the HPF statement
//!
//! ```text
//! A(0:3*n-3:3) = alpha * B(2:2*n:2) + C(10:n+9:1)
//! ```
//!
//! where `A`, `B`, `C` carry *different* block sizes — so the runtime must
//! compute communication sets (gathering both operands to the LHS owners)
//! before the owner-computes loop runs. Also demonstrates `REDISTRIBUTE`
//! (block-size change) built from the same machinery.
//!
//! Run: `cargo run --release --example array_expression`

use bcag::core::RegularSection;
use bcag::spmd::{assign_expr, redistribute, sum_section, CodeShape, DistArray};
use bcag::Method;

fn main() {
    let n = 2_000i64;
    let alpha = 2.5f64;
    let size = 3 * n; // big enough for every section below

    let bg: Vec<f64> = (0..size).map(|i| (i % 1_000) as f64).collect();
    let cg: Vec<f64> = (0..size).map(|i| ((i * i) % 777) as f64).collect();

    // Three different layouts on the same 8-node machine.
    let b = DistArray::from_global(8, 5, &bg).expect("B");
    let c = DistArray::from_global(8, 16, &cg).expect("C");
    let mut a = DistArray::new(8, 8, size, 0.0f64).expect("A");

    let sec_a = RegularSection::new(0, 3 * n - 3, 3).expect("A section");
    let sec_b = RegularSection::new(2, 2 * n, 2).expect("B section");
    let sec_c = RegularSection::new(10, n + 9, 1).expect("C section");
    assert_eq!(sec_a.count(), n);
    assert_eq!(sec_b.count(), n);
    assert_eq!(sec_c.count(), n);

    assign_expr(&mut a, &sec_a, &[(&b, sec_b), (&c, sec_c)], |args| {
        alpha * args[0] + args[1]
    })
    .expect("statement executes");

    // Verify against sequential semantics.
    let got = a.to_global();
    for t in 0..n {
        let expect = alpha * bg[(2 + 2 * t) as usize] + cg[(10 + t) as usize];
        assert_eq!(got[(3 * t) as usize], expect, "t={t}");
    }
    println!(
        "triad A(0:{}:3) = {alpha}*B(2:{}:2) + C(10:{}:1): ✓",
        3 * n - 3,
        2 * n,
        n + 9
    );

    // A distributed reduction over the result.
    let total = sum_section(&a, &sec_a, Method::Lattice, CodeShape::BranchLoop).expect("reduction");
    let expect_total: f64 = (0..n)
        .map(|t| alpha * bg[(2 + 2 * t) as usize] + cg[(10 + t) as usize])
        .sum();
    assert!((total - expect_total).abs() < 1e-6);
    println!("SUM over the section = {total:.3} (matches sequential)");

    // REDISTRIBUTE A from cyclic(8) to cyclic(25) and back; contents must
    // survive both hops.
    let a25 = redistribute(&a, 25).expect("redistribute to cyclic(25)");
    let back = redistribute(&a25, 8).expect("redistribute back");
    assert_eq!(back.to_global(), a.to_global());
    println!("redistribute cyclic(8) -> cyclic(25) -> cyclic(8): contents preserved ✓");
}
