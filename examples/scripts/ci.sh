#!/usr/bin/env bash
# Offline CI gate for the hermetic workspace.
#
# Everything runs with --offline: the workspace has no registry
# dependencies (see DESIGN.md, "Zero-dependency policy"), so a network
# or crates.io index must never be required. A step that tries to reach
# the network is itself a regression.
#
# Usage: examples/scripts/ci.sh   (from anywhere; cd's to the repo root)

set -euo pipefail

cd "$(dirname "$0")/../.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --offline"
cargo test -q --workspace --offline

echo "==> bench smoke (--quick) for every target"
for bench in construction sorting_ablation gcd_effect codeshapes \
             tableless comm_schedule comm_throughput exec_latency \
             special_cases trace_overhead pack_throughput \
             transport_throughput traffic cache_contention fuse \
             locality_tuning; do
    echo "--> $bench"
    cargo bench -q --offline -p bcag-bench --bench "$bench" -- --quick \
        > /dev/null
    report="target/bcag-bench/$bench.json"
    [ -s "$report" ] || { echo "missing bench report: $report" >&2; exit 1; }
done
# The traffic report must carry the percentile + cache-hit-rate payload
# plus the serving SLO block, and its committed snapshot must exist at
# the repo root.
grep -q '"p99_ns"' target/bcag-bench/traffic.json \
    || { echo "traffic report lacks percentiles" >&2; exit 1; }
grep -q '"hit_rate"' target/bcag-bench/traffic.json \
    || { echo "traffic report lacks cache hit rate" >&2; exit 1; }
for slo_key in p99_ceiling_ns hit_rate_floor p99_within_slo hit_rate_within_slo; do
    grep -q "\"$slo_key\"" target/bcag-bench/traffic.json \
        || { echo "traffic report lacks SLO key $slo_key" >&2; exit 1; }
done
[ -s BENCH_traffic.json ] \
    || { echo "missing committed BENCH_traffic.json snapshot" >&2; exit 1; }

# Serving SLO gates bind on the committed full-profile snapshots (the
# quick smoke's sample counts are too small for a stable p99): traffic
# p99 under its committed ceiling + hit rate over its floor, and the
# sharded cache's contention win at or above the committed floor.
awk '
    /"p99_ns":/         { gsub(/[^0-9]/, "", $2); p99 = $2 }
    /"p99_ceiling_ns":/ { gsub(/[^0-9]/, "", $2); ceil = $2 }
    /"hit_rate":/       { gsub(/[^0-9.]/, "", $2); rate = $2 }
    /"hit_rate_floor":/ { gsub(/[^0-9.]/, "", $2); floor = $2 }
    END {
        if (p99 == "" || ceil == "" || rate == "" || floor == "")
            { print "BENCH_traffic.json missing SLO fields" > "/dev/stderr"; exit 1 }
        if (p99 + 0 > ceil + 0)
            { printf "traffic p99 %d ns exceeds SLO ceiling %d ns\n", p99, ceil > "/dev/stderr"; exit 1 }
        if (rate + 0 < floor + 0)
            { printf "traffic hit rate %s below SLO floor %s\n", rate, floor > "/dev/stderr"; exit 1 }
    }' BENCH_traffic.json
[ -s BENCH_cache.json ] \
    || { echo "missing committed BENCH_cache.json snapshot" >&2; exit 1; }
# The contention win is a multi-core property: with a single hardware
# thread the sharded cache's readers serialize anyway and the committed
# floor (measured on a multi-core box) cannot bind, so gate it only when
# this host can actually contend.
if [ "$(nproc)" -gt 1 ]; then
    awk '
        $1 == "\"speedup_at_32\":"     { gsub(/[^0-9.]/, "", $2); speedup = $2 }
        $1 == "\"min_speedup_at_32\":" { gsub(/[^0-9.]/, "", $2); floor = $2 }
        END {
            if (speedup == "" || floor == "")
                { print "BENCH_cache.json missing speedup fields" > "/dev/stderr"; exit 1 }
            if (speedup + 0 < floor + 0)
                { printf "cache speedup %sx below SLO floor %sx\n", speedup, floor > "/dev/stderr"; exit 1 }
        }' BENCH_cache.json
else
    echo "--> single hardware thread: skipping multi-core cache contention floor"
fi

# Fused-epoch SLO gates, also on the committed full-profile snapshot:
# the fused statement compiler must beat the interpreted path by its
# committed factor and stay within its committed ceiling of hand-coded
# BLAS-1.
[ -s BENCH_fuse.json ] \
    || { echo "missing committed BENCH_fuse.json snapshot" >&2; exit 1; }
awk '
    $1 == "\"fused_over_interpreted\":"     { gsub(/[^0-9.]/, "", $2); speedup = $2 }
    $1 == "\"min_fused_over_interpreted\":" { gsub(/[^0-9.]/, "", $2); floor = $2 }
    $1 == "\"fused_vs_blas1\":"             { gsub(/[^0-9.]/, "", $2); vsblas = $2 }
    $1 == "\"max_fused_vs_blas1\":"         { gsub(/[^0-9.]/, "", $2); ceil = $2 }
    END {
        if (speedup == "" || floor == "" || vsblas == "" || ceil == "")
            { print "BENCH_fuse.json missing SLO fields" > "/dev/stderr"; exit 1 }
        if (speedup + 0 < floor + 0)
            { printf "fused speedup %sx below SLO floor %sx\n", speedup, floor > "/dev/stderr"; exit 1 }
        if (vsblas + 0 > ceil + 0)
            { printf "fused statement %sx of blas1 exceeds SLO ceiling %sx\n", vsblas, ceil > "/dev/stderr"; exit 1 }
    }' BENCH_fuse.json

# Self-tuning dispatch SLO gates on the committed full-profile snapshot:
# tuned dispatch must beat forced-Runs on the sparse low-utilization
# shape by its committed factor, and must stay within parity of the best
# forced mode on every cell (the decision lookup is the only allowed
# overhead). Both are single-threaded pack-loop properties and bind on
# any host.
[ -s BENCH_tune.json ] \
    || { echo "missing committed BENCH_tune.json snapshot" >&2; exit 1; }
awk '
    $1 == "\"tuned_over_runs_sparse\":"     { gsub(/[^0-9.]/, "", $2); sparse = $2 }
    $1 == "\"min_tuned_over_runs_sparse\":" { gsub(/[^0-9.]/, "", $2); sfloor = $2 }
    $1 == "\"parity_worst\":"               { gsub(/[^0-9.]/, "", $2); parity = $2 }
    $1 == "\"min_parity\":"                 { gsub(/[^0-9.]/, "", $2); pfloor = $2 }
    END {
        if (sparse == "" || sfloor == "" || parity == "" || pfloor == "")
            { print "BENCH_tune.json missing SLO fields" > "/dev/stderr"; exit 1 }
        if (sparse + 0 < sfloor + 0)
            { printf "tuned sparse speedup %sx below SLO floor %sx\n", sparse, sfloor > "/dev/stderr"; exit 1 }
        if (parity + 0 < pfloor + 0)
            { printf "tuned parity %sx below SLO floor %sx\n", parity, pfloor > "/dev/stderr"; exit 1 }
    }' BENCH_tune.json
# The blocked-epoch margin is host-class-dependent (PR 9-style nproc
# guard, inverted host class): the committed snapshot's A/B ran with the
# pool's two node threads time-sharing one hardware thread, where the
# win is a pure per-core L2-residency effect. With genuinely concurrent
# node threads the memory system is shared differently and the 1-core
# margin is not evidence either way, so bind the floor only on the host
# class the snapshot was measured on.
if [ "$(nproc)" -eq 1 ]; then
    awk '
        $1 == "\"blocked_over_unblocked\":"     { gsub(/[^0-9.]/, "", $2); blocked = $2 }
        $1 == "\"min_blocked_over_unblocked\":" { gsub(/[^0-9.]/, "", $2); bfloor = $2 }
        END {
            if (blocked == "" || bfloor == "")
                { print "BENCH_tune.json missing blocked SLO fields" > "/dev/stderr"; exit 1 }
            if (blocked + 0 < bfloor + 0)
                { printf "blocked epochs %sx below SLO floor %sx\n", blocked, bfloor > "/dev/stderr"; exit 1 }
        }' BENCH_tune.json
else
    echo "--> multi-thread host: skipping single-thread blocked-epoch floor"
fi

echo "==> trace smoke: bcag trace on examples/scripts/triad.hpf"
trace_out="target/ci-trace.json"
trace_chrome="target/ci-trace.chrome.json"
rm -f "$trace_out" "$trace_chrome"
target/release/bcag trace --file examples/scripts/triad.hpf \
    --trace "$trace_out" > /dev/null
[ -s "$trace_out" ] || { echo "missing trace summary: $trace_out" >&2; exit 1; }
[ -s "$trace_chrome" ] || { echo "missing chrome trace: $trace_chrome" >&2; exit 1; }
grep -q '"format": "bcag-trace/v2"' "$trace_out" \
    || { echo "summary is not bcag-trace/v2: $trace_out" >&2; exit 1; }
grep -q '"histograms"' "$trace_out" \
    || { echo "summary has no histograms section: $trace_out" >&2; exit 1; }
grep -q '"traceEvents"' "$trace_chrome" \
    || { echo "chrome file has no traceEvents: $trace_chrome" >&2; exit 1; }

echo "==> cache + pool smoke: bcag trace on examples/scripts/cache_loop.hpf"
cache_out="target/ci-cache.json"
cache_chrome="target/ci-cache.chrome.json"
rm -f "$cache_out" "$cache_chrome"
target/release/bcag trace --file examples/scripts/cache_loop.hpf \
    --trace "$cache_out" > /dev/null
grep -q '"schedule_cache_hits"' "$cache_out" \
    || { echo "no schedule_cache_hits in summary: $cache_out" >&2; exit 1; }
# The statement loop must run on the resident pool: dispatch spans in the
# chrome export, arena recycling in the counter totals.
grep -q '"pool.dispatch"' "$cache_chrome" \
    || { echo "no pool.dispatch spans in chrome trace: $cache_chrome" >&2; exit 1; }
grep -q '"pool_buffer_reuses"' "$cache_out" \
    || { echo "no pool_buffer_reuses in summary: $cache_out" >&2; exit 1; }
# Run coalescing must be active on the statement loop's data movement.
grep -q '"runs_coalesced"' "$cache_out" \
    || { echo "no runs_coalesced in summary: $cache_out" >&2; exit 1; }
# In-process statements default to the fused compiler (BCAG_FUSE=on):
# the loop must run as fused epochs without going dark in the trace.
grep -q '"fused_epochs"' "$cache_out" \
    || { echo "no fused_epochs in summary: $cache_out" >&2; exit 1; }
grep -q '"recv_wait_ns"' "$cache_out" \
    || { echo "fused trace lost recv_wait_ns: $cache_out" >&2; exit 1; }

echo "==> multi-process smoke: bcag spmd --procs 4 on cache_loop.hpf"
spmd_out="target/ci-spmd.json"
rm -f "$spmd_out" "target/ci-spmd.chrome.json"
got="$(target/release/bcag spmd --file examples/scripts/cache_loop.hpf \
    --procs 4 --trace "$spmd_out")"
want="$(target/release/bcag run --file examples/scripts/cache_loop.hpf)"
[ "$got" = "$want" ] \
    || { echo "spmd output diverges from in-process run" >&2; exit 1; }
grep -q '"node-3"' "$spmd_out" \
    || { echo "merged spmd trace lost per-node lanes: $spmd_out" >&2; exit 1; }
grep -q '"transport": "proc"' "$spmd_out" \
    || { echo "spmd trace missing transport tag: $spmd_out" >&2; exit 1; }
# Percentile telemetry must survive the per-node trace merge: the merged
# summary carries a histograms section with the node lanes' wait-time
# distributions.
grep -q '"histograms"' "$spmd_out" \
    || { echo "merged spmd trace lost histograms: $spmd_out" >&2; exit 1; }
grep -q '"recv_wait_ns"' "$spmd_out" \
    || { echo "merged spmd trace lost recv_wait_ns: $spmd_out" >&2; exit 1; }

echo "ci: OK"
