//! Red–black Gauss–Seidel relaxation on a block-cyclically distributed
//! vector — the classic HPF-era stride-2 workload.
//!
//! Red–black ordering splits the unknowns into even ("red") and odd
//! ("black") indices; each half-sweep updates one color from the other.
//! The stride-2 sections are exactly the regular sections the paper's
//! algorithm addresses, and a cyclic(k) distribution makes their local
//! enumeration nontrivial. This example runs the relaxation SPMD-style,
//! using gather/exchange for the neighbor reads and the gap-table traversal
//! for the owned updates, and checks convergence against a sequential
//! solver.
//!
//! Run: `cargo run --release --example redblack_relaxation`

use bcag::core::method::Method;
use bcag::core::RegularSection;
use bcag::spmd::{reduce_section, CodeShape, DistArray};

const N: i64 = 512; // unknowns
const P: i64 = 8;
const K: i64 = 16;
const SWEEPS: usize = 400;

/// One sequential red-black sweep of the 1-D Poisson relaxation
/// `x[i] = (x[i-1] + x[i+1] + h²·f) / 2` with Dirichlet boundaries.
fn seq_sweep(x: &mut [f64], f: f64, h2: f64, color: i64) {
    let n = x.len();
    let mut i = if color == 0 { 2 } else { 1 };
    while i < n - 1 {
        x[i] = 0.5 * (x[i - 1] + x[i + 1] + h2 * f);
        i += 2;
    }
}

/// One distributed red-black half-sweep: every processor updates the
/// elements *it owns* of the color's stride-2 section, reading neighbors
/// through a gathered global view (standing in for the shift communication
/// an HPF compiler would emit).
fn dist_sweep(arr: &mut DistArray<f64>, f: f64, h2: f64, color: i64) {
    // Shift communication: neighbor values of the opposite color.
    let snapshot = arr.to_global();
    let lay = arr.layout();
    let lo = if color == 0 { 2 } else { 1 };
    let sec = RegularSection::new(lo, N - 2, 2).expect("color section");
    // Owner-computes update of the color section, node by node, using the
    // access machinery to find each node's share.
    for m in 0..arr.p() {
        let problem = bcag::Problem::new(arr.p(), arr.k(), sec.l, sec.s).expect("problem");
        let pat = bcag::build(&problem, m, Method::Lattice).expect("pattern");
        let local = arr.local_mut(m);
        for acc in pat.iter_to(sec.u) {
            let i = acc.global as usize;
            debug_assert_eq!(lay.owner(acc.global), m);
            local[acc.local as usize] = 0.5 * (snapshot[i - 1] + snapshot[i + 1] + h2 * f);
        }
    }
}

fn main() {
    let f = 1.0;
    let h = 1.0 / (N as f64 + 1.0);
    let h2 = h * h;

    // Sequential reference.
    let mut x_seq = vec![0.0f64; N as usize];
    for _ in 0..SWEEPS {
        seq_sweep(&mut x_seq, f, h2, 0);
        seq_sweep(&mut x_seq, f, h2, 1);
    }

    // Distributed run.
    let mut x = DistArray::new(P, K, N, 0.0f64).expect("array");
    for _ in 0..SWEEPS {
        dist_sweep(&mut x, f, h2, 0);
        dist_sweep(&mut x, f, h2, 1);
    }

    let got = x.to_global();
    let max_err = got
        .iter()
        .zip(&x_seq)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("red-black relaxation: N={N}, cyclic({K}) over {P} procs, {SWEEPS} sweeps");
    println!("max |distributed - sequential| = {max_err:.3e}");
    assert!(
        max_err < 1e-12,
        "distributed run must track sequential bitwise-ish"
    );

    // A section reduction as the convergence check an iterative solver
    // would run: SUM over the interior.
    let interior = RegularSection::new(1, N - 2, 1).expect("interior");
    let total = reduce_section(
        &x,
        &interior,
        Method::Lattice,
        CodeShape::BranchLoop,
        0.0f64,
        |a, &v| a + v,
        |a, b| a + b,
    )
    .expect("reduce");
    let total_seq: f64 = x_seq[1..(N as usize - 1)].iter().sum();
    println!("interior sum (distributed reduce) = {total:.6}");
    assert!((total - total_seq).abs() < 1e-9);
    println!("matches sequential: ✓");
}
