//! Smoke tests of the umbrella crate surface: the prelude and re-exports
//! expose a coherent, usable API (what a downstream user first touches).

use bcag::prelude::*;

#[test]
fn prelude_supports_the_basic_workflow() {
    let problem = Problem::new(4, 8, 4, 9).unwrap();
    let pattern = build(&problem, 1, Method::Lattice).unwrap();
    assert_eq!(pattern.gaps(), &[3, 12, 15, 12, 3, 12, 3, 12]);

    let lay = Layout::from_raw(4, 8);
    assert_eq!(lay.owner(108), 1);

    let sec = RegularSection::new(4, 301, 9).unwrap();
    assert_eq!(sec.count(), 34);

    let mut arr = DistArray::new(4, 8, 320, 0.0f64).unwrap();
    bcag::spmd::assign_scalar(&mut arr, &sec, 1.0, Method::Lattice, CodeShape::SplitLoop).unwrap();
    assert_eq!(arr.to_global().iter().filter(|&&x| x == 1.0).count(), 34);

    let map = ArrayMap::new(vec![DimMap::simple(16, 2, Dist::CyclicK(2)).unwrap()]).unwrap();
    assert_eq!(map.size(), 16);

    let grid = ProcessorGrid::new(vec![2, 2]).unwrap();
    assert_eq!(grid.size(), 4);

    let machine = Machine::new(3);
    assert_eq!(machine.run_collect(|m| m * 2), vec![0, 2, 4]);

    let sched = CommSchedule::build_lattice(
        2,
        4,
        &RegularSection::new(0, 9, 1).unwrap(),
        2,
        &RegularSection::new(0, 9, 1).unwrap(),
    );
    assert!(sched.is_ok());

    let m2 = ArrayMap::new(vec![
        DimMap::simple(8, 2, Dist::CyclicK(2)).unwrap(),
        DimMap::simple(8, 2, Dist::CyclicK(2)).unwrap(),
    ])
    .unwrap();
    let mat: DistMatrix<f64> = DistMatrix::new(m2, 0.0).unwrap();
    assert_eq!(mat.extents(), (8, 8));
}

#[test]
fn error_type_is_usable_with_question_mark() {
    fn inner() -> Result<i64> {
        let pr = Problem::new(4, 8, 0, 9)?;
        let pat = build(&pr, 0, Method::Lattice)?;
        Ok(pat.len() as i64)
    }
    assert_eq!(inner().unwrap(), 8);

    fn failing() -> Result<()> {
        Problem::new(0, 8, 0, 9)?;
        Ok(())
    }
    assert!(matches!(
        failing(),
        Err(BcagError::InvalidProcessorCount { p: 0 })
    ));
}

#[test]
fn crate_aliases_resolve() {
    // The namespaced paths work too.
    let _ = bcag::core::numth::extended_euclid(9, 32);
    let _ = bcag::hpf::Program::parse("PROCESSORS P(2)").unwrap();
    let out = bcag::rt::Interp::run(
        "PROCESSORS P(2)
         TEMPLATE T(10)
         REAL A(10)
         ALIGN A(i) WITH T(i)
         DISTRIBUTE T(BLOCK) ONTO P
         INIT A CONST 3
         PRINT SUM A(0:9:1)",
    )
    .unwrap();
    assert_eq!(out[0], "SUM A(0:9:1) = 30");
}
