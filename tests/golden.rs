//! Golden-file regression test: the AM tables for a fixed parameter grid,
//! pinned as text. Guards against silent behavioral drift in any of the
//! constructors (the equivalence tests would not notice if *all* methods
//! drifted together; this file would).
//!
//! Regenerate after an intentional change with:
//! `BLESS_GOLDEN=1 cargo test --test golden -- --nocapture`

use bcag::core::method::{build, Method};
use bcag::Problem;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden_am_tables.txt";

fn render_grid() -> String {
    let mut out = String::new();
    for (p, k) in [(2i64, 3i64), (4, 8), (3, 5), (8, 4)] {
        for s in [1i64, 2, 7, 9, 15, 16, 31, 33] {
            for l in [0i64, 4] {
                let pr = Problem::new(p, k, l, s).unwrap();
                for m in 0..p {
                    let pat = build(&pr, m, Method::Lattice).unwrap();
                    writeln!(
                        out,
                        "p={p} k={k} l={l} s={s} m={m} start={:?} AM={:?}",
                        pat.start_global(),
                        pat.gaps()
                    )
                    .unwrap();
                }
            }
        }
    }
    out
}

#[test]
fn am_tables_match_golden_file() {
    let rendered = render_grid();
    if std::env::var("BLESS_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
        println!("blessed {GOLDEN_PATH} ({} lines)", rendered.lines().count());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file present (regenerate with BLESS_GOLDEN=1)");
    // Line-by-line comparison for a readable failure.
    for (no, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
        assert_eq!(got, want, "golden mismatch at line {}", no + 1);
    }
    assert_eq!(
        rendered.lines().count(),
        golden.lines().count(),
        "golden file line count changed"
    );
}
