//! Failure-path coverage: every error variant is reachable, rendered, and
//! the invariant checker actually rejects corrupted patterns.

use bcag::core::aligned::{aligned_pattern, Alignment};
use bcag::core::method::{build, Method};
use bcag::core::pattern::{AccessPattern, CyclicPattern, Pattern};
use bcag::{BcagError, Problem, RegularSection};

#[test]
fn every_constructor_error_is_reachable_and_displayed() {
    let cases: Vec<(BcagError, &str)> = vec![
        (Problem::new(0, 8, 0, 9).unwrap_err(), "processor count"),
        (Problem::new(4, 0, 0, 9).unwrap_err(), "block size"),
        (Problem::new(4, 8, 0, 0).unwrap_err(), "stride"),
        (Problem::new(4, 8, -3, 9).unwrap_err(), "lower bound"),
        (Problem::new(i64::MAX / 4, 4, 0, 9).unwrap_err(), "overflow"),
        (
            Problem::new(4, 8, 0, 9).unwrap().check_proc(7).unwrap_err(),
            "out of range",
        ),
        (RegularSection::new(0, 5, 0).unwrap_err(), "stride"),
        (Alignment::new(0, 0).unwrap_err(), "alignment"),
        (
            build(&Problem::new(4, 8, 0, 9).unwrap(), 0, Method::Hiranandani).unwrap_err(),
            "precondition",
        ),
    ];
    for (err, needle) in cases {
        let msg = err.to_string().to_lowercase();
        assert!(
            msg.contains(needle),
            "error display `{msg}` should mention `{needle}`"
        );
        // std::error::Error is implemented.
        let _: &dyn std::error::Error = &err;
    }
}

#[test]
fn negative_stride_rejected_by_core_problem() {
    let err = Problem::new(4, 8, 0, -9).unwrap_err();
    assert!(matches!(err, BcagError::Precondition(_)));
}

#[test]
fn build_rejects_bad_processor_for_all_methods() {
    let pr = Problem::new(4, 8, 0, 9).unwrap();
    for method in Method::GENERAL {
        assert!(matches!(
            build(&pr, 4, method),
            Err(BcagError::ProcessorOutOfRange { m: 4, p: 4 })
        ));
        assert!(build(&pr, -1, method).is_err());
    }
}

#[test]
fn aligned_pattern_propagates_parameter_errors() {
    let align = Alignment::new(2, 1).unwrap();
    // Invalid p.
    assert!(aligned_pattern(0, 8, align, 0, 9, 0, Method::Lattice).is_err());
    // Invalid m.
    assert!(aligned_pattern(4, 8, align, 0, 9, 9, Method::Lattice).is_err());
}

fn corrupted(base: &AccessPattern, f: impl FnOnce(&mut CyclicPattern)) -> AccessPattern {
    let Pattern::Cyclic(c) = base.pattern() else {
        panic!("need cyclic")
    };
    let mut c = c.clone();
    f(&mut c);
    AccessPattern::from_parts(*base.problem(), base.proc(), Pattern::Cyclic(c))
}

#[test]
fn invariant_checker_rejects_corruptions() {
    let pr = Problem::new(4, 8, 4, 9).unwrap();
    let good = build(&pr, 1, Method::Lattice).unwrap();
    good.check_invariants();

    type Corruption = Box<dyn FnOnce(&mut CyclicPattern)>;
    let corruptions: Vec<Corruption> = vec![
        Box::new(|c| c.gaps[0] += 1),         // breaks period sum
        Box::new(|c| c.gaps[2] = -c.gaps[2]), // negative gap
        Box::new(|c| c.global_steps[1] += 9), // breaks global period
        Box::new(|c| c.start_global += 9),    // start on wrong processor? no — wrong local
        Box::new(|c| c.start_local += 1),     // local address drift
        Box::new(|c| {
            c.gaps.swap(0, 1); // wrong order of gaps
        }),
    ];
    for (i, f) in corruptions.into_iter().enumerate() {
        let bad = corrupted(&good, f);
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.check_invariants()));
        assert!(
            outcome.is_err(),
            "corruption #{i} slipped through the checker"
        );
    }
}

#[test]
fn overflow_guard_in_constructors() {
    // s * p * k just over the MAX_INDEX bound must be rejected, just under
    // must be accepted.
    use bcag::core::params::MAX_INDEX;
    let p = 1i64;
    let k = 1i64;
    assert!(Problem::new(p, k, 0, MAX_INDEX).is_ok());
    assert!(Problem::new(p, k, 0, MAX_INDEX + 1).is_err());
    // Large but valid parameters still enumerate correctly.
    let pr = Problem::new(1024, 4096, 0, 1_000_003).unwrap();
    let pat = build(&pr, 1023, Method::Lattice).unwrap();
    pat.check_invariants();
}

#[test]
fn section_accesses_error_paths() {
    use bcag::hpf::{ArrayMap, DimMap, Dist};
    let map = ArrayMap::new(vec![DimMap::simple(10, 2, Dist::Cyclic).unwrap()]).unwrap();
    // Coordinate out of the grid.
    assert!(map
        .section_accesses(
            &[2],
            &[RegularSection::new(0, 9, 1).unwrap()],
            Method::Lattice
        )
        .is_err());
    // Bad index.
    assert!(map.owner_coords(&[10]).is_err());
    assert!(map.owner_coords(&[-1]).is_err());
}

#[test]
fn comm_error_paths() {
    use bcag::spmd::CommSchedule;
    let sec_a = RegularSection::new(0, 9, 1).unwrap();
    let sec_bad = RegularSection::new(0, 9, 2).unwrap();
    assert!(CommSchedule::build(2, 4, &sec_a, 4, &sec_bad, Method::Lattice).is_err());
    assert!(CommSchedule::build_lattice(2, 4, &sec_a, 4, &sec_bad).is_err());
    let desc = RegularSection::new(9, 0, -1).unwrap();
    assert!(CommSchedule::build(2, 4, &desc, 4, &desc, Method::Lattice).is_err());
}
