//! Property-based tests (proptest) of the core invariants.
//!
//! Strategy: draw `(p, k, l, s, m)` from ranges that keep the brute-force
//! oracle affordable, then assert structural invariants and cross-method
//! agreement. Each property encodes a theorem or definition from the paper.

use bcag::core::basis::Basis;
use bcag::core::fsm;
use bcag::core::lattice::SectionLattice;
use bcag::core::method::{build, Method};
use bcag::core::section::RegularSection;
use bcag::core::start::{count_owned, last_location};
use bcag::core::two_table::TwoTable;
use bcag::core::walker::Walker;
use bcag::{Layout, Problem};
use proptest::prelude::*;

/// Parameter strategy: p in 1..=12, k in 1..=48, s in 1..=3pk, l in 0..=2s.
fn params() -> impl Strategy<Value = (i64, i64, i64, i64)> {
    (1i64..=12, 1i64..=48).prop_flat_map(|(p, k)| {
        (Just(p), Just(k), 1i64..=3 * p * k).prop_flat_map(|(p, k, s)| {
            (Just(p), Just(k), 0i64..=2 * s, Just(s))
        })
    })
}

proptest! {
    /// The lattice method's output always satisfies the full invariant set
    /// (positive gaps, period sums, ownership, no skipped elements).
    #[test]
    fn lattice_pattern_invariants((p, k, l, s) in params(), m_seed in 0i64..64) {
        let pr = Problem::new(p, k, l, s).unwrap();
        let m = m_seed % p;
        let pat = build(&pr, m, Method::Lattice).unwrap();
        pat.check_invariants();
    }

    /// Lattice == sorting == oracle for all drawn parameters (Theorem 3's
    /// correctness, end to end).
    #[test]
    fn methods_agree((p, k, l, s) in params(), m_seed in 0i64..64) {
        let pr = Problem::new(p, k, l, s).unwrap();
        let m = m_seed % p;
        let a = build(&pr, m, Method::Lattice).unwrap();
        let b = build(&pr, m, Method::SortingComparison).unwrap();
        let c = build(&pr, m, Method::Oracle).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// Theorem 2: whenever the basis exists, R and L are lattice members
    /// and |a_r·i_l − a_l·i_r| = 1.
    #[test]
    fn basis_is_a_lattice_basis((p, k, _l, s) in params()) {
        let pr = Problem::new(p, k, 0, s).unwrap();
        if let Ok(b) = Basis::compute(&pr) {
            let lat = SectionLattice::new(&pr);
            prop_assert_eq!(lat.membership(b.r.b, b.r.a).map(|q| q.i), Some(b.r.i));
            prop_assert_eq!(lat.membership(b.l.b, b.l.a).map(|q| q.i), Some(b.l.i));
            prop_assert!(lat.is_basis(&b.r, &b.l));
            // Offsets strictly inside (0, k); R forward, L backward.
            prop_assert!(b.r.b > 0 && b.r.b < k && b.r.i > 0);
            prop_assert!(b.l.b > 0 && b.l.b < k && b.l.i < 0);
        } else {
            prop_assert!(pr.d() >= k);
        }
    }

    /// The table-free walker reproduces the table-driven enumeration.
    #[test]
    fn walker_equals_table((p, k, l, s) in params(), m_seed in 0i64..64) {
        let pr = Problem::new(p, k, l, s).unwrap();
        let m = m_seed % p;
        let pat = build(&pr, m, Method::Lattice).unwrap();
        let via_table: Vec<_> = pat.iter().take(3 * pat.len().max(1)).collect();
        let via_walker: Vec<_> = Walker::new(&pr, m).unwrap()
            .take(3 * pat.len().max(1)).collect();
        prop_assert_eq!(via_table, via_walker);
    }

    /// `last_location` and `count_owned` agree with bounded enumeration.
    #[test]
    fn closed_forms_match_enumeration(
        (p, k, l, s) in params(),
        m_seed in 0i64..64,
        span in 0i64..400,
    ) {
        let pr = Problem::new(p, k, l, s).unwrap();
        let m = m_seed % p;
        let u = l + span;
        let pat = build(&pr, m, Method::Lattice).unwrap();
        let listed: Vec<_> = pat.iter_to(u).collect();
        prop_assert_eq!(count_owned(&pr, m, u).unwrap(), listed.len() as i64);
        let lay = Layout::new(&pr);
        prop_assert_eq!(
            last_location(&pr, m, u).unwrap().map(|g| lay.local_addr(g)),
            listed.last().map(|a| a.local)
        );
    }

    /// The two-table reindexing traverses the identical address sequence.
    #[test]
    fn two_table_equals_pattern((p, k, l, s) in params(), m_seed in 0i64..64) {
        let pr = Problem::new(p, k, l, s).unwrap();
        let m = m_seed % p;
        let pat = build(&pr, m, Method::Lattice).unwrap();
        let u = l + 20 * s;
        let expect = pat.locals_to(u);
        if let (Some(tt), Some(start), Some(&last)) =
            (TwoTable::from_pattern(&pat), pat.start_local(), expect.last())
        {
            prop_assert_eq!(tt.locals_from(start, last), expect);
        } else {
            prop_assert!(expect.is_empty());
        }
    }

    /// Section 6.1: for gcd(s, pk) = 1, per-processor AM tables are cyclic
    /// shifts of one another.
    #[test]
    fn coprime_tables_are_rotations((p, k, _l, s) in params()) {
        let pr = Problem::new(p, k, 0, s).unwrap();
        prop_assume!(pr.d() == 1);
        let base = build(&pr, 0, Method::Lattice).unwrap();
        for m in 1..p {
            let pat = build(&pr, m, Method::Lattice).unwrap();
            prop_assert!(fsm::is_cyclic_shift(base.gaps(), pat.gaps()));
        }
    }

    /// Negative-stride sections normalize to the same element set.
    #[test]
    fn negative_stride_mirror(l in 0i64..500, count in 1i64..60, s in 1i64..40) {
        let hi = l + (count - 1) * s;
        let fwd = RegularSection::new(l, hi, s).unwrap();
        let bwd = RegularSection::new(hi, l, -s).unwrap();
        prop_assert_eq!(fwd.count(), bwd.count());
        let mut rev: Vec<i64> = bwd.iter().collect();
        rev.reverse();
        let fwd_elems: Vec<i64> = fwd.iter().collect();
        prop_assert_eq!(fwd_elems, rev);
        let n = bwd.normalized();
        prop_assert!(n.reversed);
        prop_assert_eq!((n.lo, n.hi, n.step), (l, hi, s));
    }

    /// The radix sort sorts.
    #[test]
    fn radix_sorts(mut v in proptest::collection::vec(0i64..1_000_000_000, 0..500)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        bcag::core::radix::sort_i64(&mut v);
        prop_assert_eq!(v, expect);
    }

    /// The special-case fast paths always equal the general algorithm.
    #[test]
    fn special_fast_path_agrees((p, k, l, s) in params(), m_seed in 0i64..64) {
        let pr = Problem::new(p, k, l, s).unwrap();
        let m = m_seed % p;
        let fast = bcag::core::special::build_fast(&pr, m).unwrap();
        let slow = build(&pr, m, Method::Lattice).unwrap();
        prop_assert_eq!(fast, slow);
    }

    /// O(1) random access agrees with sequential iteration.
    #[test]
    fn nth_matches_iteration((p, k, l, s) in params(), m_seed in 0i64..64) {
        use bcag::core::nth::RandomAccess;
        let pr = Problem::new(p, k, l, s).unwrap();
        let m = m_seed % p;
        let pat = build(&pr, m, Method::Lattice).unwrap();
        if let Some(ra) = RandomAccess::new(&pat) {
            for (t, acc) in pat.iter().take(30).enumerate() {
                prop_assert_eq!(ra.nth(t as i64), acc);
                prop_assert_eq!(ra.rank_of_global(acc.global), Some(t as i64));
            }
        } else {
            prop_assert!(pat.is_empty());
        }
    }

    /// Descending traversal is the exact reverse of ascending.
    #[test]
    fn descending_reverses_ascending(
        (p, k, l, s) in params(),
        m_seed in 0i64..64,
        span in 0i64..300,
    ) {
        use bcag::core::descending::DescendingWalker;
        let pr = Problem::new(p, k, l, s).unwrap();
        let m = m_seed % p;
        let u = l + span;
        let pat = build(&pr, m, Method::Lattice).unwrap();
        let mut fwd: Vec<_> = pat.iter_to(u).collect();
        fwd.reverse();
        let bwd: Vec<_> = DescendingWalker::new(&pr, m, u).unwrap().collect();
        prop_assert_eq!(bwd, fwd);
    }

    /// AP intersection is exactly the set intersection.
    #[test]
    fn ap_intersection_correct(
        f1 in 0i64..60, s1 in 1i64..30,
        f2 in 0i64..60, s2 in 1i64..30,
    ) {
        use bcag::core::intersect::{intersect, Ap};
        use std::collections::HashSet;
        let a = Ap::new(f1, s1);
        let b = Ap::new(f2, s2);
        let hi = 2_000i64;
        let bs: HashSet<i64> = b.iter_to(hi).collect();
        let expect: Vec<i64> = a.iter_to(hi).filter(|v| bs.contains(v)).collect();
        match intersect(&a, &b) {
            None => prop_assert!(expect.is_empty()),
            Some(c) => {
                let got: Vec<i64> = c.iter_to(hi).collect();
                prop_assert_eq!(got, expect);
            }
        }
    }

    /// The virtual-processor views cover the identical access set.
    #[test]
    fn virtual_views_same_set((p, k, l, s) in params(), m_seed in 0i64..64) {
        use bcag::core::virtual_views::{lattice_order, virtual_block, virtual_cyclic};
        use std::collections::HashSet;
        let pr = Problem::new(p, k, l, s).unwrap();
        let m = m_seed % p;
        let u = l + 25 * s;
        let a: HashSet<_> = lattice_order(&pr, m, u).unwrap().into_iter().collect();
        let b: HashSet<_> = virtual_cyclic(&pr, m, u).unwrap().into_iter().collect();
        let c: HashSet<_> = virtual_block(&pr, m, u).unwrap().into_iter().collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
    }

    /// The direct two-table construction agrees with reindexing.
    #[test]
    fn direct_two_table_agrees((p, k, l, s) in params(), m_seed in 0i64..64) {
        use bcag::core::two_table::TwoTable;
        let pr = Problem::new(p, k, l, s).unwrap();
        let m = m_seed % p;
        let via = TwoTable::from_pattern(&build(&pr, m, Method::Lattice).unwrap());
        let direct = TwoTable::build_direct(&pr, m).unwrap();
        match (via, direct) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.start_offset, b.start_offset);
                prop_assert_eq!(a.length, b.length);
                let mut off = a.start_offset;
                for _ in 0..a.length {
                    prop_assert_eq!(a.delta_m[off as usize], b.delta_m[off as usize]);
                    prop_assert_eq!(a.next_offset[off as usize], b.next_offset[off as usize]);
                    off = a.next_offset[off as usize];
                }
            }
            _ => prop_assert!(false, "presence mismatch"),
        }
    }

    /// Pack/unpack round-trips every processor's share.
    #[test]
    fn pack_roundtrips(
        (p, k, l, s) in params(),
        count in 1i64..80,
    ) {
        use bcag::spmd::pack::{pack, unpack};
        use bcag::spmd::DistArray;
        let u = l + (count - 1) * s;
        let n = u + 1;
        prop_assume!(n <= 20_000);
        let sec = RegularSection::new(l, u, s).unwrap();
        let data: Vec<i64> = (0..n).map(|i| i * 3 + 1).collect();
        let arr = DistArray::from_global(p, k, &data).unwrap();
        let mut rebuilt = DistArray::new(p, k, n, 0i64).unwrap();
        for m in 0..p {
            let buf = pack(&arr, &sec, m, Method::Lattice).unwrap();
            unpack(&mut rebuilt, &sec, m, Method::Lattice, &buf).unwrap();
        }
        let g = rebuilt.to_global();
        for i in 0..n {
            let expect = if sec.contains(i) { data[i as usize] } else { 0 };
            prop_assert_eq!(g[i as usize], expect);
        }
    }

    /// Load statistics sum to the section size and bound the maximum.
    #[test]
    fn load_stats_consistent((p, k, l, s) in params(), count in 0i64..200) {
        use bcag::spmd::load_stats;
        let u = l + count * s;
        let sec = RegularSection::new(l, u, s).unwrap();
        let stats = load_stats(p, k, &sec).unwrap();
        prop_assert_eq!(stats.total, sec.count());
        prop_assert_eq!(stats.per_proc.iter().sum::<i64>(), stats.total);
        prop_assert!(stats.max >= stats.min);
        prop_assert!(stats.per_proc.iter().all(|&c| c <= stats.max && c >= stats.min));
    }
}
