//! Property-based tests (via `bcag_harness::prop`) of the core invariants.
//!
//! Strategy: draw `(p, k, l, s)` from ranges that keep the brute-force
//! oracle affordable, then assert structural invariants and cross-method
//! agreement. Each property encodes a theorem or definition from the paper.
//!
//! On failure the harness reports the failing case's seed; re-run with
//! `BCAG_PROPTEST_SEED=<seed>` to regenerate the identical input as case 0.
//! `BCAG_PROPTEST_CASES` scales the per-property case count.

use bcag::core::basis::Basis;
use bcag::core::fsm;
use bcag::core::lattice::SectionLattice;
use bcag::core::method::{build, Method};
use bcag::core::section::RegularSection;
use bcag::core::start::{count_owned, last_location};
use bcag::core::two_table::TwoTable;
use bcag::core::walker::Walker;
use bcag::{Layout, Problem};
use bcag_harness::prop::{assume, check, ints, shrink_toward, Gen, VecOfInts};
use bcag_harness::Rng;

/// Parameter generator: p in 1..=12, k in 1..=48, s in 1..=3pk, l in 0..=2s
/// (the dependent ranges of the paper's parameter space). Shrinks each
/// component by halving toward its minimum; every candidate stays a valid
/// `Problem` input, so shrunk counterexamples remain well-formed.
#[derive(Clone, Copy)]
struct Params;

impl Gen for Params {
    type Value = (i64, i64, i64, i64); // (p, k, l, s)

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let p = rng.random_range(1..=12);
        let k = rng.random_range(1..=48);
        let s = rng.random_range(1..=3 * p * k);
        let l = rng.random_range(0..=2 * s);
        (p, k, l, s)
    }

    fn shrink(&self, &(p, k, l, s): &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        out.extend(shrink_toward(p, 1).into_iter().map(|v| (v, k, l, s)));
        out.extend(shrink_toward(k, 1).into_iter().map(|v| (p, v, l, s)));
        out.extend(shrink_toward(l, 0).into_iter().map(|v| (p, k, v, s)));
        out.extend(shrink_toward(s, 1).into_iter().map(|v| (p, k, l, v)));
        out
    }
}

/// The lattice method's output always satisfies the full invariant set
/// (positive gaps, period sums, ownership, no skipped elements).
#[test]
fn lattice_pattern_invariants() {
    check(
        "lattice_pattern_invariants",
        &(Params, ints(0, 63)),
        |&((p, k, l, s), m_seed)| {
            let pr = Problem::new(p, k, l, s).unwrap();
            let m = m_seed % p;
            let pat = build(&pr, m, Method::Lattice).unwrap();
            pat.check_invariants();
        },
    );
}

/// Lattice == sorting == oracle for all drawn parameters (Theorem 3's
/// correctness, end to end).
#[test]
fn methods_agree() {
    check(
        "methods_agree",
        &(Params, ints(0, 63)),
        |&((p, k, l, s), m_seed)| {
            let pr = Problem::new(p, k, l, s).unwrap();
            let m = m_seed % p;
            let a = build(&pr, m, Method::Lattice).unwrap();
            let b = build(&pr, m, Method::SortingComparison).unwrap();
            let c = build(&pr, m, Method::Oracle).unwrap();
            assert_eq!(&a, &b);
            assert_eq!(&a, &c);
        },
    );
}

/// Theorem 2: whenever the basis exists, R and L are lattice members
/// and |a_r·i_l − a_l·i_r| = 1.
#[test]
fn basis_is_a_lattice_basis() {
    check("basis_is_a_lattice_basis", &Params, |&(p, k, _l, s)| {
        let pr = Problem::new(p, k, 0, s).unwrap();
        if let Ok(b) = Basis::compute(&pr) {
            let lat = SectionLattice::new(&pr);
            assert_eq!(lat.membership(b.r.b, b.r.a).map(|q| q.i), Some(b.r.i));
            assert_eq!(lat.membership(b.l.b, b.l.a).map(|q| q.i), Some(b.l.i));
            assert!(lat.is_basis(&b.r, &b.l));
            // Offsets strictly inside (0, k); R forward, L backward.
            assert!(b.r.b > 0 && b.r.b < k && b.r.i > 0);
            assert!(b.l.b > 0 && b.l.b < k && b.l.i < 0);
        } else {
            assert!(pr.d() >= k);
        }
    });
}

/// The table-free walker reproduces the table-driven enumeration.
#[test]
fn walker_equals_table() {
    check(
        "walker_equals_table",
        &(Params, ints(0, 63)),
        |&((p, k, l, s), m_seed)| {
            let pr = Problem::new(p, k, l, s).unwrap();
            let m = m_seed % p;
            let pat = build(&pr, m, Method::Lattice).unwrap();
            let via_table: Vec<_> = pat.iter().take(3 * pat.len().max(1)).collect();
            let via_walker: Vec<_> = Walker::new(&pr, m)
                .unwrap()
                .take(3 * pat.len().max(1))
                .collect();
            assert_eq!(via_table, via_walker);
        },
    );
}

/// `last_location` and `count_owned` agree with bounded enumeration.
#[test]
fn closed_forms_match_enumeration() {
    check(
        "closed_forms_match_enumeration",
        &(Params, ints(0, 63), ints(0, 399)),
        |&((p, k, l, s), m_seed, span)| {
            let pr = Problem::new(p, k, l, s).unwrap();
            let m = m_seed % p;
            let u = l + span;
            let pat = build(&pr, m, Method::Lattice).unwrap();
            let listed: Vec<_> = pat.iter_to(u).collect();
            assert_eq!(count_owned(&pr, m, u).unwrap(), listed.len() as i64);
            let lay = Layout::new(&pr);
            assert_eq!(
                last_location(&pr, m, u).unwrap().map(|g| lay.local_addr(g)),
                listed.last().map(|a| a.local)
            );
        },
    );
}

/// The two-table reindexing traverses the identical address sequence.
#[test]
fn two_table_equals_pattern() {
    check(
        "two_table_equals_pattern",
        &(Params, ints(0, 63)),
        |&((p, k, l, s), m_seed)| {
            let pr = Problem::new(p, k, l, s).unwrap();
            let m = m_seed % p;
            let pat = build(&pr, m, Method::Lattice).unwrap();
            let u = l + 20 * s;
            let expect = pat.locals_to(u);
            if let (Some(tt), Some(start), Some(&last)) = (
                TwoTable::from_pattern(&pat),
                pat.start_local(),
                expect.last(),
            ) {
                assert_eq!(tt.locals_from(start, last), expect);
            } else {
                assert!(expect.is_empty());
            }
        },
    );
}

/// Section 6.1: for gcd(s, pk) = 1, per-processor AM tables are cyclic
/// shifts of one another.
#[test]
fn coprime_tables_are_rotations() {
    check("coprime_tables_are_rotations", &Params, |&(p, k, _l, s)| {
        let pr = Problem::new(p, k, 0, s).unwrap();
        assume(pr.d() == 1);
        let base = build(&pr, 0, Method::Lattice).unwrap();
        for m in 1..p {
            let pat = build(&pr, m, Method::Lattice).unwrap();
            assert!(fsm::is_cyclic_shift(base.gaps(), pat.gaps()));
        }
    });
}

/// Negative-stride sections normalize to the same element set.
#[test]
fn negative_stride_mirror() {
    check(
        "negative_stride_mirror",
        &(ints(0, 499), ints(1, 59), ints(1, 39)),
        |&(l, count, s)| {
            let hi = l + (count - 1) * s;
            let fwd = RegularSection::new(l, hi, s).unwrap();
            let bwd = RegularSection::new(hi, l, -s).unwrap();
            assert_eq!(fwd.count(), bwd.count());
            let mut rev: Vec<i64> = bwd.iter().collect();
            rev.reverse();
            let fwd_elems: Vec<i64> = fwd.iter().collect();
            assert_eq!(fwd_elems, rev);
            let n = bwd.normalized();
            assert!(n.reversed);
            assert_eq!((n.lo, n.hi, n.step), (l, hi, s));
        },
    );
}

/// The radix sort sorts.
#[test]
fn radix_sorts() {
    check(
        "radix_sorts",
        &VecOfInts::new(0, 499, 0, 999_999_999),
        |v| {
            let mut v = v.clone();
            let mut expect = v.clone();
            expect.sort_unstable();
            bcag::core::radix::sort_i64(&mut v);
            assert_eq!(v, expect);
        },
    );
}

/// The special-case fast paths always equal the general algorithm.
#[test]
fn special_fast_path_agrees() {
    check(
        "special_fast_path_agrees",
        &(Params, ints(0, 63)),
        |&((p, k, l, s), m_seed)| {
            let pr = Problem::new(p, k, l, s).unwrap();
            let m = m_seed % p;
            let fast = bcag::core::special::build_fast(&pr, m).unwrap();
            let slow = build(&pr, m, Method::Lattice).unwrap();
            assert_eq!(fast, slow);
        },
    );
}

/// O(1) random access agrees with sequential iteration.
#[test]
fn nth_matches_iteration() {
    check(
        "nth_matches_iteration",
        &(Params, ints(0, 63)),
        |&((p, k, l, s), m_seed)| {
            use bcag::core::nth::RandomAccess;
            let pr = Problem::new(p, k, l, s).unwrap();
            let m = m_seed % p;
            let pat = build(&pr, m, Method::Lattice).unwrap();
            if let Some(ra) = RandomAccess::new(&pat) {
                for (t, acc) in pat.iter().take(30).enumerate() {
                    assert_eq!(ra.nth(t as i64), acc);
                    assert_eq!(ra.rank_of_global(acc.global), Some(t as i64));
                }
            } else {
                assert!(pat.is_empty());
            }
        },
    );
}

/// Descending traversal is the exact reverse of ascending.
#[test]
fn descending_reverses_ascending() {
    check(
        "descending_reverses_ascending",
        &(Params, ints(0, 63), ints(0, 299)),
        |&((p, k, l, s), m_seed, span)| {
            use bcag::core::descending::DescendingWalker;
            let pr = Problem::new(p, k, l, s).unwrap();
            let m = m_seed % p;
            let u = l + span;
            let pat = build(&pr, m, Method::Lattice).unwrap();
            let mut fwd: Vec<_> = pat.iter_to(u).collect();
            fwd.reverse();
            let bwd: Vec<_> = DescendingWalker::new(&pr, m, u).unwrap().collect();
            assert_eq!(bwd, fwd);
        },
    );
}

/// AP intersection is exactly the set intersection.
#[test]
fn ap_intersection_correct() {
    check(
        "ap_intersection_correct",
        &(ints(0, 59), ints(1, 29), ints(0, 59), ints(1, 29)),
        |&(f1, s1, f2, s2)| {
            use bcag::core::intersect::{intersect, Ap};
            use std::collections::HashSet;
            let a = Ap::new(f1, s1);
            let b = Ap::new(f2, s2);
            let hi = 2_000i64;
            let bs: HashSet<i64> = b.iter_to(hi).collect();
            let expect: Vec<i64> = a.iter_to(hi).filter(|v| bs.contains(v)).collect();
            match intersect(&a, &b) {
                None => assert!(expect.is_empty()),
                Some(c) => {
                    let got: Vec<i64> = c.iter_to(hi).collect();
                    assert_eq!(got, expect);
                }
            }
        },
    );
}

/// The virtual-processor views cover the identical access set.
#[test]
fn virtual_views_same_set() {
    check(
        "virtual_views_same_set",
        &(Params, ints(0, 63)),
        |&((p, k, l, s), m_seed)| {
            use bcag::core::virtual_views::{lattice_order, virtual_block, virtual_cyclic};
            use std::collections::HashSet;
            let pr = Problem::new(p, k, l, s).unwrap();
            let m = m_seed % p;
            let u = l + 25 * s;
            let a: HashSet<_> = lattice_order(&pr, m, u).unwrap().into_iter().collect();
            let b: HashSet<_> = virtual_cyclic(&pr, m, u).unwrap().into_iter().collect();
            let c: HashSet<_> = virtual_block(&pr, m, u).unwrap().into_iter().collect();
            assert_eq!(&a, &b);
            assert_eq!(&a, &c);
        },
    );
}

/// The direct two-table construction agrees with reindexing.
#[test]
fn direct_two_table_agrees() {
    check(
        "direct_two_table_agrees",
        &(Params, ints(0, 63)),
        |&((p, k, l, s), m_seed)| {
            use bcag::core::two_table::TwoTable;
            let pr = Problem::new(p, k, l, s).unwrap();
            let m = m_seed % p;
            let via = TwoTable::from_pattern(&build(&pr, m, Method::Lattice).unwrap());
            let direct = TwoTable::build_direct(&pr, m).unwrap();
            match (via, direct) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.start_offset, b.start_offset);
                    assert_eq!(a.length, b.length);
                    let mut off = a.start_offset;
                    for _ in 0..a.length {
                        assert_eq!(a.delta_m[off as usize], b.delta_m[off as usize]);
                        assert_eq!(a.next_offset[off as usize], b.next_offset[off as usize]);
                        off = a.next_offset[off as usize];
                    }
                }
                _ => panic!("presence mismatch"),
            }
        },
    );
}

/// Pack/unpack round-trips every processor's share.
#[test]
fn pack_roundtrips() {
    check(
        "pack_roundtrips",
        &(Params, ints(1, 79)),
        |&((p, k, l, s), count)| {
            use bcag::spmd::pack::{pack, unpack};
            use bcag::spmd::DistArray;
            let u = l + (count - 1) * s;
            let n = u + 1;
            assume(n <= 20_000);
            let sec = RegularSection::new(l, u, s).unwrap();
            let data: Vec<i64> = (0..n).map(|i| i * 3 + 1).collect();
            let arr = DistArray::from_global(p, k, &data).unwrap();
            let mut rebuilt = DistArray::new(p, k, n, 0i64).unwrap();
            for m in 0..p {
                let buf = pack(&arr, &sec, m, Method::Lattice).unwrap();
                unpack(&mut rebuilt, &sec, m, Method::Lattice, &buf).unwrap();
            }
            let g = rebuilt.to_global();
            for i in 0..n {
                let expect = if sec.contains(i) { data[i as usize] } else { 0 };
                assert_eq!(g[i as usize], expect);
            }
        },
    );
}

/// Load statistics sum to the section size and bound the maximum.
#[test]
fn load_stats_consistent() {
    check(
        "load_stats_consistent",
        &(Params, ints(0, 199)),
        |&((p, k, l, s), count)| {
            use bcag::spmd::load_stats;
            let u = l + count * s;
            let sec = RegularSection::new(l, u, s).unwrap();
            let stats = load_stats(p, k, &sec).unwrap();
            assert_eq!(stats.total, sec.count());
            assert_eq!(stats.per_proc.iter().sum::<i64>(), stats.total);
            assert!(stats.max >= stats.min);
            assert!(stats
                .per_proc
                .iter()
                .all(|&c| c <= stats.max && c >= stats.min));
        },
    );
}
