//! The ultimate codegen check: compile the generated C node code with the
//! system C compiler, run it, and compare the addresses it touches against
//! the Rust enumeration. Skips silently when no `cc` is installed.

use std::process::Command;

use bcag::core::codegen::{emit_c, Shape};
use bcag::core::method::{build, Method};
use bcag::core::start::last_location;
use bcag::{Layout, Problem};

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Compiles `node_m<m>` plus a driver that prints every touched address,
/// runs it, and returns the addresses.
fn run_generated(c_code: &str, m: i64, mem_size: i64) -> Vec<i64> {
    let dir = std::env::temp_dir().join(format!("bcag_codegen_{}_{}", std::process::id(), m));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let src_path = dir.join("node.c");
    let bin_path = dir.join("node");
    let driver = format!(
        r#"
#include <stdio.h>
#include <stdlib.h>
{c_code}
int main(void) {{
    double *A = calloc({mem_size}, sizeof(double));
    node_m{m}(A);
    for (long i = 0; i < {mem_size}; i++)
        if (A[i] != 0.0) printf("%ld\n", i);
    free(A);
    return 0;
}}
"#
    );
    std::fs::write(&src_path, driver).expect("write C source");
    let out = Command::new("cc")
        .arg("-O2")
        .arg("-o")
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .expect("cc runs");
    assert!(
        out.status.success(),
        "cc failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run = Command::new(&bin_path).output().expect("binary runs");
    assert!(run.status.success());
    String::from_utf8_lossy(&run.stdout)
        .lines()
        .map(|l| l.trim().parse().expect("address"))
        .collect()
}

#[test]
fn generated_c_touches_exactly_the_enumerated_addresses() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    for (p, k, l, s, u) in [
        (4i64, 8i64, 4i64, 9i64, 301i64),
        (3, 4, 0, 7, 200),
        (2, 16, 5, 3, 300),
        (4, 8, 0, 33, 1500),
    ] {
        let pr = Problem::new(p, k, l, s).unwrap();
        let lay = Layout::new(&pr);
        for m in 0..p {
            let pat = build(&pr, m, Method::Lattice).unwrap();
            if pat.is_empty() {
                continue;
            }
            let Some(last_g) = last_location(&pr, m, u).unwrap() else {
                continue;
            };
            let mem_size = lay.local_addr(last_g) + 1;
            let expect = pat.locals_to(u);
            for shape in [
                Shape::ModLoop,
                Shape::BranchLoop,
                Shape::SplitLoop,
                Shape::TwoTableLoop,
            ] {
                let code = emit_c(&pr, m, u, &pat, shape, "1.0").unwrap();
                let touched = run_generated(&code, m, mem_size);
                assert_eq!(
                    touched, expect,
                    "shape {shape:?} p={p} k={k} l={l} s={s} u={u} m={m}"
                );
            }
        }
    }
}
