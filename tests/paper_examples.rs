//! Every concrete number printed in the paper, pinned as a test.
//!
//! These are the ground-truth anchors of the reproduction: if any of them
//! drifts, the implementation no longer matches the published algorithm.

use bcag::core::basis::Basis;
use bcag::core::lattice::SectionLattice;
use bcag::core::method::{build, Method};
use bcag::core::numth::extended_euclid;
use bcag::core::start::start_info;
use bcag::{Layout, Problem};

/// Section 2 / Figure 1: "array element A(108) has offset 4 in block 3 of
/// processor 1" for cyclic(8) over 4 processors.
#[test]
fn figure1_element_placement() {
    let lay = Layout::from_raw(4, 8);
    let place = lay.place(108);
    assert_eq!(place.proc, 1);
    assert_eq!(place.course, 3);
    assert_eq!(place.offset, 4);
}

/// Section 3: "the coordinates of the array element with index 108 are
/// (12, 3)" — in-row offset 12, row 3.
#[test]
fn section3_lattice_coordinates() {
    let lay = Layout::from_raw(4, 8);
    assert_eq!(lay.in_row_offset(108), 12);
    assert_eq!(lay.course(108), 3);
}

/// Section 3 / Figure 2: vectors (3,3) (index 11, since 3·32+3 = 99 = 11·9)
/// and (−1,2) (index 7, since 2·32−1 = 63 = 7·9) form a basis because
/// 3·7 − 2·11 = −1.
#[test]
fn figure2_basis_pair() {
    let pr = Problem::new(4, 8, 0, 9).unwrap();
    let lat = SectionLattice::new(&pr);
    let v1 = lat.membership(3, 3).expect("(3,3) in lattice");
    let v2 = lat.membership(-1, 2).expect("(-1,2) in lattice");
    assert_eq!((v1.i, v2.i), (11, 7));
    assert!(lat.is_basis(&v1, &v2));
}

/// Section 4 / Figure 3: "vector R ... is equal to (4, 1) and corresponds
/// to the regular section index 1·32 + 4 = 36. Vector L ... is equal to
/// (5, −1), and its corresponding index is 1·32 + 5 = 27" — i.e. L's
/// equation is −1·32 + 5 = −27 = −3·9.
#[test]
fn figures3_4_r_and_l() {
    let pr = Problem::new(4, 8, 0, 9).unwrap();
    let b = Basis::compute(&pr).unwrap();
    assert_eq!((b.r.b, b.r.a), (4, 1));
    assert_eq!(b.r.i * 9, 36);
    assert_eq!((b.l.b, b.l.a), (5, -1));
    assert_eq!(b.l.i * 9, -27);
}

/// Section 4: "the smallest positive index on processor 0 is 36 ... the
/// largest index in the first cycle is 261, and since the point that starts
/// the next cycle is 288, we have L = (5,8) − (0,9) = (5, −1)".
#[test]
fn section4_min_max_of_initial_cycle() {
    let pr = Problem::new(4, 8, 0, 9).unwrap();
    assert_eq!(pr.period_global(), 288);
    // min/max are internal to Basis::compute; verify through R/L instead,
    // plus by scanning.
    let pk = 32;
    let firsts: Vec<i64> = (1..32).map(|i| i * 9).filter(|g| g % pk < 8).collect();
    assert_eq!(firsts.iter().min(), Some(&36));
    assert_eq!(firsts.iter().max(), Some(&261));
}

/// Section 5's worked example, step by step: p=4, k=8, l=4, s=9, m=1.
#[test]
fn section5_worked_example() {
    // "Values returned by EXTENDED-EUCLID in line 3 are d = 1, x = −7,
    // and y = 2."
    let g = extended_euclid(9, 32);
    assert_eq!((g.d, g.x, g.y), (1, -7, 2));

    // "Lines 4-11 compute start = 13 and set length = 8."
    let pr = Problem::new(4, 8, 4, 9).unwrap();
    let info = start_info(&pr, 1).unwrap();
    assert_eq!(info.start, Some(13));
    assert_eq!(info.length, 8);

    // "at the end, AM = [3, 12, 15, 12, 3, 12, 3, 12]".
    let pat = build(&pr, 1, Method::Lattice).unwrap();
    assert_eq!(pat.gaps(), &[3, 12, 15, 12, 3, 12, 3, 12]);

    // The walk visits 13, 40, 76, 139, ... "until we reach the first point
    // of the next cycle, index 301".
    let walk: Vec<i64> = pat.iter().take(9).map(|a| a.global).collect();
    assert_eq!(walk, vec![13, 40, 76, 139, 175, 202, 238, 265, 301]);
}

/// Section 5: worst case examines at most 2k + 1 points — equivalently the
/// gap loop emits exactly `length <= k` table entries for every parameter
/// choice we can throw at it.
#[test]
fn table_length_bounded_by_k() {
    for p in [1i64, 2, 3, 4, 7, 32] {
        for k in [1i64, 2, 5, 8, 64] {
            for s in [1i64, 7, 9, 63, 64, 65, 99] {
                let pr = Problem::new(p, k, 0, s).unwrap();
                for m in 0..p.min(4) {
                    let pat = build(&pr, m, Method::Lattice).unwrap();
                    assert!(pat.len() as i64 <= k);
                }
            }
        }
    }
}

/// Section 6.2 / Figure 8(d) discussion: "the local offset of the starting
/// location (startoffset) is equal to start mod k".
#[test]
fn start_offset_is_start_mod_k() {
    let pr = Problem::new(4, 8, 4, 9).unwrap();
    let pat = build(&pr, 1, Method::Lattice).unwrap();
    let tt = bcag::core::two_table::TwoTable::from_pattern(&pat).unwrap();
    assert_eq!(tt.start_offset, 13 % 8);
}

/// Section 6.1: the equivalences the experiments rely on — s = pk−1 and
/// s = pk+1 give reverse-sorted / properly-sorted first cycles.
#[test]
fn sorted_order_of_extreme_strides() {
    let p = 4i64;
    let k = 8i64;
    let pk = p * k;
    for (s, expect_reversed) in [(pk - 1, true), (pk + 1, false)] {
        let pr = Problem::new(p, k, 0, s).unwrap();
        let locs = bcag::core::start::first_cycle_locs(&pr, 1).unwrap();
        // The unsorted enumeration order is by offset class; check its
        // monotonicity against the claim.
        let mut sorted = locs.clone();
        sorted.sort_unstable();
        if expect_reversed {
            let mut rev = sorted.clone();
            rev.reverse();
            assert_eq!(locs, rev, "s=pk-1 enumerates reverse-sorted");
        } else {
            assert_eq!(locs, sorted, "s=pk+1 enumerates properly sorted");
        }
    }
}
