//! Integration tests of the HPF mapping substrate: affine alignment and
//! multidimensional sections, validated against brute-force enumeration of
//! the mapping chain.

use bcag::core::aligned::{aligned_pattern, Alignment};
use bcag::core::method::Method;
use bcag::core::RegularSection;
use bcag::hpf::{ArrayMap, DimMap, Dist};
use bcag::Layout;
use bcag_harness::Rng;

#[test]
fn randomized_alignments_match_brute_force() {
    let mut rng = Rng::seed_from_u64(77);
    for _ in 0..80 {
        let p = rng.random_range(1..=5);
        let k = rng.random_range(1..=10);
        let a = rng.random_range(1..=5);
        let b = rng.random_range(0..=7);
        let l = rng.random_range(0..=10);
        let s = rng.random_range(1..=12);
        let m = rng.random_range(0..p);
        let align = Alignment::new(a, b).unwrap();
        let alp = aligned_pattern(p, k, align, l, s, m, Method::Lattice).unwrap();

        // Brute force over the template.
        let lay = Layout::from_raw(p, k);
        let horizon = align.cell(l + 40 * s * p * k);
        let storage: Vec<i64> = (0..)
            .map(|i| align.cell(i))
            .take_while(|&c| c <= horizon)
            .filter(|&c| lay.owner(c) == m)
            .collect();
        let accesses: Vec<i64> = (0..)
            .map(|t| align.cell(l + t * s))
            .take_while(|&c| c <= horizon)
            .filter(|&c| lay.owner(c) == m)
            .take(15)
            .map(|c| storage.binary_search(&c).unwrap() as i64)
            .collect();

        match alp.start_packed {
            None => assert!(
                accesses.is_empty(),
                "p={p} k={k} a={a} b={b} l={l} s={s} m={m}"
            ),
            Some(start) => {
                let mut got = vec![start];
                let mut r = start;
                for t in 0..accesses.len().saturating_sub(1) {
                    r += alp.packed_gaps[t % alp.packed_gaps.len()];
                    got.push(r);
                }
                assert_eq!(got, accesses, "p={p} k={k} a={a} b={b} l={l} s={s} m={m}");
            }
        }
    }
}

#[test]
fn randomized_2d_sections_match_brute_force() {
    let mut rng = Rng::seed_from_u64(123);
    for _ in 0..40 {
        let n0 = rng.random_range(4..=30);
        let n1 = rng.random_range(4..=30);
        let p0 = rng.random_range(1..=3);
        let p1 = rng.random_range(1..=3);
        let k0 = rng.random_range(1..=5);
        let k1 = rng.random_range(1..=5);
        let map = ArrayMap::new(vec![
            DimMap::simple(n0, p0, Dist::CyclicK(k0)).unwrap(),
            DimMap::simple(n1, p1, Dist::CyclicK(k1)).unwrap(),
        ])
        .unwrap();

        let l0 = rng.random_range(0..n0);
        let l1 = rng.random_range(0..n1);
        let s0 = rng.random_range(1..=6);
        let s1 = rng.random_range(1..=6);
        let sec = vec![
            RegularSection::new(l0, n0 - 1, s0).unwrap(),
            RegularSection::new(l1, n1 - 1, s1).unwrap(),
        ];

        for coords in map.grid().iter_coords() {
            let got = map
                .section_accesses(&coords, &sec, Method::Lattice)
                .unwrap();
            let mut expect = Vec::new();
            let mut j = l1;
            while j < n1 {
                let mut i = l0;
                while i < n0 {
                    let idx = vec![i, j];
                    if map.owner_coords(&idx).unwrap() == coords {
                        expect.push((idx.clone(), map.local_linear(&idx).unwrap()));
                    }
                    i += s0;
                }
                j += s1;
            }
            assert_eq!(got, expect, "n=({n0},{n1}) p=({p0},{p1}) k=({k0},{k1})");
        }
    }
}

#[test]
fn mixed_distribution_3d() {
    // (block, serial, cyclic) over a 2x1x2 grid — the typical dense linear
    // algebra panel layout.
    let map = ArrayMap::new(vec![
        DimMap::simple(16, 2, Dist::Block).unwrap(),
        DimMap::simple(5, 1, Dist::Serial).unwrap(),
        DimMap::simple(12, 2, Dist::Cyclic).unwrap(),
    ])
    .unwrap();
    // Every element is stored exactly once across the machine.
    let mut count = 0i64;
    for coords in map.grid().iter_coords() {
        count += map.local_size(&coords).unwrap();
    }
    assert_eq!(count, 16 * 5 * 12);

    // Full-array section covers all elements exactly once.
    let sec = vec![
        RegularSection::new(0, 15, 1).unwrap(),
        RegularSection::new(0, 4, 1).unwrap(),
        RegularSection::new(0, 11, 1).unwrap(),
    ];
    let mut seen = 0usize;
    for coords in map.grid().iter_coords() {
        seen += map
            .section_accesses(&coords, &sec, Method::Lattice)
            .unwrap()
            .len();
    }
    assert_eq!(seen, 16 * 5 * 12);
}

#[test]
fn aligned_dimmap_consistency() {
    // DimMap with non-identity alignment: local indices must be the packed
    // rank of the aligned template section.
    let align = Alignment::new(4, 3).unwrap();
    let dm = DimMap::new(40, 3, Dist::CyclicK(5), align).unwrap();
    let mut per_proc: Vec<Vec<i64>> = vec![vec![]; 3];
    for i in 0..40 {
        per_proc[dm.owner(i) as usize].push(dm.local_index(i).unwrap());
    }
    for (m, locals) in per_proc.iter().enumerate() {
        // Packed: 0, 1, 2, ... with no holes.
        let expect: Vec<i64> = (0..locals.len() as i64).collect();
        assert_eq!(locals, &expect, "m={m}");
        assert_eq!(dm.local_extent(m as i64).unwrap(), locals.len() as i64);
    }
}

#[test]
fn empty_intersections() {
    // A section that misses a processor entirely in one dimension.
    let map = ArrayMap::new(vec![
        DimMap::simple(8, 4, Dist::CyclicK(2)).unwrap(),
        DimMap::simple(8, 1, Dist::Serial).unwrap(),
    ])
    .unwrap();
    // Section touches only index 0 in dim 0 => only grid row 0 has work.
    let sec = vec![
        RegularSection::new(0, 0, 1).unwrap(),
        RegularSection::new(0, 7, 1).unwrap(),
    ];
    for coords in map.grid().iter_coords() {
        let got = map
            .section_accesses(&coords, &sec, Method::Lattice)
            .unwrap();
        if coords[0] == 0 {
            assert_eq!(got.len(), 8);
        } else {
            assert!(got.is_empty());
        }
    }
}
