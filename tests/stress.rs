//! Heavyweight randomized stress tests, `#[ignore]`d by default.
//! Run with: `cargo test --release --test stress -- --ignored`

use bcag::core::hiranandani;
use bcag::core::method::{build, Method};
use bcag::core::walker::Walker;
use bcag::Problem;
use bcag_harness::Rng;

#[test]
#[ignore = "slow differential fuzzing; run explicitly"]
fn heavy_differential_fuzz() {
    let mut rng = Rng::seed_from_u64(0xFE57);
    for trial in 0..5_000 {
        let p = rng.random_range(1..=64);
        let k = rng.random_range(1..=512);
        let s = rng.random_range(1..=8 * p * k);
        let l = rng.random_range(0..=4 * s);
        let pr = Problem::new(p, k, l, s).unwrap();
        if pr.period_elements() > 500_000 {
            continue;
        }
        let m = rng.random_range(0..p);
        let reference = build(&pr, m, Method::Oracle).unwrap();
        reference.check_invariants();
        for method in [
            Method::Lattice,
            Method::SortingComparison,
            Method::SortingRadix,
        ] {
            let pat = build(&pr, m, method).unwrap();
            assert_eq!(
                pat,
                reference,
                "trial {trial}: {} p={p} k={k} l={l} s={s} m={m}",
                method.name()
            );
        }
        if hiranandani::applicable(&pr) {
            assert_eq!(build(&pr, m, Method::Hiranandani).unwrap(), reference);
        }
        // Walker spot check.
        let via_walker: Vec<_> = Walker::new(&pr, m).unwrap().take(20).collect();
        let via_table: Vec<_> = reference.iter().take(20).collect();
        assert_eq!(via_walker, via_table);
    }
}

#[test]
#[ignore = "large-parameter torture; run explicitly"]
fn extreme_parameters() {
    // Near the representability limit: huge strides and many processors.
    for (p, k, s) in [
        (4096i64, 1024i64, 999_999_937i64),
        (1i64, 65536i64, 3i64),
        (65536i64, 1i64, 65537i64),
        (512i64, 512i64, 262_143i64),
    ] {
        let pr = Problem::new(p, k, 0, s).unwrap();
        for m in [0, p / 2, p - 1] {
            let pat = build(&pr, m, Method::Lattice).unwrap();
            // Structural sums only (the full invariant check scans skipped
            // elements, which is too slow at this scale).
            if !pat.is_empty() {
                assert_eq!(pat.gaps().iter().sum::<i64>(), pr.period_local());
                assert!(pat.gaps().iter().all(|&g| g > 0));
                assert!(pat.len() as i64 <= k);
            }
            let srt = build(&pr, m, Method::SortingRadix).unwrap();
            assert_eq!(pat, srt, "p={p} k={k} s={s} m={m}");
        }
    }
}
