//! Integration tests of the full stack through the script runtime: every
//! statement form exercised against independently-computed expectations.

use bcag::rt::Interp;

fn preamble(k_a: i64, k_b: i64, n: i64) -> String {
    format!(
        "PROCESSORS P(4)
         TEMPLATE TA({n})
         REAL A({n})
         ALIGN A(i) WITH TA(i)
         DISTRIBUTE TA(CYCLIC({k_a})) ONTO P
         TEMPLATE TB({n})
         REAL B({n})
         ALIGN B(i) WITH TB(i)
         DISTRIBUTE TB(CYCLIC({k_b})) ONTO P\n"
    )
}

#[test]
fn daxpy_pipeline_matches_sequential() {
    let script = preamble(8, 5, 600)
        + "INIT A LINEAR 2 1
           INIT B LINEAR 3 0
           ASSIGN A(0:598:2) = A(0:598:2) + 0.5 * B(1:599:2)
           PRINT SUM A(0:598:2)";
    let out = Interp::run(&script).unwrap();
    // Sequential model.
    let mut a: Vec<f64> = (0..600).map(|i| 2.0 * i as f64 + 1.0).collect();
    let b: Vec<f64> = (0..600).map(|i| 3.0 * i as f64).collect();
    for t in 0..300 {
        a[2 * t] += 0.5 * b[2 * t + 1];
    }
    let expect: f64 = (0..300).map(|t| a[2 * t]).sum();
    assert_eq!(out[0], format!("SUM A(0:598:2) = {expect}"));
}

#[test]
fn forall_chain_with_redistribution() {
    let script = preamble(3, 16, 400)
        + "INIT B LINEAR 1 0
           FORALL I = 0:99:1 : A(4 * I) = B(3 * I) + 10
           REDISTRIBUTE A CYCLIC(7)
           FORALL I = 0:99:1 : A(4 * I) = A(4 * I) * 2
           PRINT A(0:16:4)";
    let out = Interp::run(&script).unwrap();
    // A(4I) = (3I + 10) * 2.
    assert_eq!(out[0], "A(0:16:4) = [20.0, 26.0, 32.0, 38.0, 44.0]");
}

#[test]
fn cshift_then_reduce() {
    let script = preamble(8, 8, 200)
        + "INIT B LINEAR 1 0
           CSHIFT A B 50
           PRINT SUM A(0:9:1)
           PRINT SUM A(150:159:1)";
    let out = Interp::run(&script).unwrap();
    // A(i) = B((i+50) mod 200).
    let s1: i64 = (50..60).sum();
    assert_eq!(out[0], format!("SUM A(0:9:1) = {s1}"));
    let s2: i64 = (0..10).sum();
    assert_eq!(out[1], format!("SUM A(150:159:1) = {s2}"));
}

#[test]
fn stats_and_table_reporting() {
    let script = preamble(8, 8, 320)
        + "PRINT STATS A(4:301:9)
           PRINT TABLE A(4:301:9) 1";
    let out = Interp::run(&script).unwrap();
    // 34 section elements spread over 4 procs.
    assert!(out[0].contains("per_proc="), "{}", out[0]);
    let counts: Vec<i64> = out[0]
        .split("per_proc=[")
        .nth(1)
        .unwrap()
        .split(']')
        .next()
        .unwrap()
        .split(',')
        .map(|x| x.trim().parse().unwrap())
        .collect();
    assert_eq!(counts.iter().sum::<i64>(), 34);
    assert!(
        out[1].contains("AM=[3, 12, 15, 12, 3, 12, 3, 12]"),
        "{}",
        out[1]
    );
}

#[test]
fn descending_section_print() {
    let script = preamble(4, 4, 100)
        + "INIT A LINEAR 1 0
           PRINT A(12:0:-4)";
    let out = Interp::run(&script).unwrap();
    assert_eq!(out[0], "A(12:0:-4) = [12.0, 8.0, 4.0, 0.0]");
}
