//! End-to-end SPMD semantics: the simulated distributed execution of array
//! statements must match sequential Fortran-90 semantics, for every method,
//! code shape, and layout combination.

use bcag::core::method::Method;
use bcag::core::RegularSection;
use bcag::spmd::{apply_section, assign_array, assign_scalar, CodeShape, CommSchedule, DistArray};
use bcag_harness::Rng;

fn seq_scalar(n: i64, sec: &RegularSection, value: f64) -> Vec<f64> {
    let mut v = vec![0.0; n as usize];
    for i in sec.iter() {
        v[i as usize] = value;
    }
    v
}

#[test]
fn randomized_scalar_assignments() {
    let mut rng = Rng::seed_from_u64(42);
    for trial in 0..120 {
        let p = rng.random_range(1..=8);
        let k = rng.random_range(1..=16);
        let n = rng.random_range(1..=2_000);
        let l = rng.random_range(0..n);
        let u = rng.random_range(0..n);
        let s: i64 = rng.random_range(1..=40);
        let s = if rng.random_bool(0.3) { -s } else { s };
        let Ok(sec) = RegularSection::new(l, u, s) else {
            continue;
        };
        let shape = CodeShape::ALL[trial % 4];
        let method = Method::GENERAL[trial % Method::GENERAL.len()];

        let mut arr = DistArray::new(p, k, n, 0.0f64).unwrap();
        assign_scalar(&mut arr, &sec, 7.5, method, shape).unwrap();
        assert_eq!(
            arr.to_global(),
            seq_scalar(n, &sec, 7.5),
            "p={p} k={k} n={n} sec={l}:{u}:{s} shape={} method={}",
            shape.label(),
            method.name()
        );
    }
}

#[test]
fn apply_preserves_untouched_elements() {
    let n = 1_000i64;
    let sec = RegularSection::new(17, 983, 21).unwrap();
    let mut arr = DistArray::from_global(4, 8, &(0..n).collect::<Vec<i64>>()).unwrap();
    apply_section(&mut arr, &sec, Method::Lattice, CodeShape::SplitLoop, |x| {
        *x = -*x
    })
    .unwrap();
    let g = arr.to_global();
    for i in 0..n {
        let expect = if sec.contains(i) { -i } else { i };
        assert_eq!(g[i as usize], expect);
    }
}

#[test]
fn randomized_cross_layout_assignments() {
    let mut rng = Rng::seed_from_u64(0xD15C);
    for _ in 0..60 {
        let p = rng.random_range(1..=6);
        let k_a = rng.random_range(1..=12);
        let k_b = rng.random_range(1..=12);
        let n = rng.random_range(50..=800);
        // Conforming sections: same count.
        let count = rng.random_range(1..=40);
        let s_a = rng.random_range(1..=8);
        let s_b = rng.random_range(1..=8);
        let max_l_a = n - 1 - (count - 1) * s_a;
        let max_l_b = n - 1 - (count - 1) * s_b;
        if max_l_a < 0 || max_l_b < 0 {
            continue;
        }
        let l_a = rng.random_range(0..=max_l_a);
        let l_b = rng.random_range(0..=max_l_b);
        let sec_a = RegularSection::new(l_a, l_a + (count - 1) * s_a, s_a).unwrap();
        let sec_b = RegularSection::new(l_b, l_b + (count - 1) * s_b, s_b).unwrap();

        let data: Vec<i64> = (0..n).map(|i| rng.random_range(0..1_000_000) + i).collect();
        let b = DistArray::from_global(p, k_b, &data).unwrap();
        let mut a = DistArray::new(p, k_a, n, -1i64).unwrap();
        assign_array(&mut a, &sec_a, &b, &sec_b, Method::Lattice).unwrap();

        let mut expect = vec![-1i64; n as usize];
        for (ia, ib) in sec_a.iter().zip(sec_b.iter()) {
            expect[ia as usize] = data[ib as usize];
        }
        assert_eq!(
            a.to_global(),
            expect,
            "p={p} kA={k_a} kB={k_b} secA={l_a}+{count}x{s_a} secB={l_b}+{count}x{s_b}"
        );
    }
}

#[test]
fn schedule_element_conservation() {
    // Every section element appears in exactly one (src, dst) set.
    let p = 4i64;
    let sec_a = RegularSection::new(3, 403, 5).unwrap();
    let sec_b = RegularSection::new(0, 400, 5).unwrap();
    let sched = CommSchedule::build(p, 8, &sec_a, 3, &sec_b, Method::Lattice).unwrap();
    assert_eq!(sched.total_elements() as i64, sec_a.count());
    // Destination locals are unique (no element written twice).
    let mut dst_locals: Vec<(i64, i64)> = Vec::new();
    for src in 0..p {
        for dst in 0..p {
            for tr in sched.transfers(src, dst) {
                dst_locals.push((dst, tr.dst_local));
            }
        }
    }
    dst_locals.sort_unstable();
    let before = dst_locals.len();
    dst_locals.dedup();
    assert_eq!(dst_locals.len(), before, "duplicate destination writes");
}

#[test]
fn methods_equivalent_through_full_stack() {
    // Same assignment executed with every general method must leave the
    // array in the same state.
    let n = 3_000i64;
    let sec = RegularSection::new(11, 2_987, 37).unwrap();
    let mut states = Vec::new();
    for method in Method::GENERAL {
        let mut arr = DistArray::new(8, 16, n, 0i64).unwrap();
        apply_section(&mut arr, &sec, method, CodeShape::TwoTableLoop, |x| *x += 1).unwrap();
        states.push(arr.to_global());
    }
    for w in states.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}

#[test]
fn degenerate_layouts() {
    // Single processor: everything local, all shapes still correct.
    let sec = RegularSection::new(0, 99, 7).unwrap();
    for shape in CodeShape::ALL {
        let mut arr = DistArray::new(1, 4, 100, 0.0f64).unwrap();
        assign_scalar(&mut arr, &sec, 1.0, Method::Lattice, shape).unwrap();
        assert_eq!(arr.to_global(), seq_scalar(100, &sec, 1.0));
    }
    // k = 1 (pure cyclic) and huge k (block).
    for k in [1i64, 1000] {
        let mut arr = DistArray::new(4, k, 100, 0.0f64).unwrap();
        assign_scalar(&mut arr, &sec, 1.0, Method::Lattice, CodeShape::BranchLoop).unwrap();
        assert_eq!(arr.to_global(), seq_scalar(100, &sec, 1.0));
    }
}
