//! Cross-method equivalence over randomized parameter sweeps.
//!
//! The lattice algorithm, both sorting baselines, the Hiranandani
//! special-case method (where applicable) and the brute-force oracle must
//! produce byte-identical access patterns for every parameter combination.

use bcag::core::hiranandani;
use bcag::core::method::{build, Method};
use bcag::Problem;
use bcag_harness::Rng;

fn assert_all_methods_agree(p: i64, k: i64, l: i64, s: i64) {
    let pr = Problem::new(p, k, l, s).unwrap();
    for m in 0..p {
        let reference = build(&pr, m, Method::Oracle).unwrap();
        reference.check_invariants();
        for method in [
            Method::Lattice,
            Method::SortingComparison,
            Method::SortingRadix,
        ] {
            let pat = build(&pr, m, method).unwrap();
            assert_eq!(
                pat,
                reference,
                "{} disagrees with oracle at p={p} k={k} l={l} s={s} m={m}",
                method.name()
            );
        }
        if hiranandani::applicable(&pr) {
            let pat = build(&pr, m, Method::Hiranandani).unwrap();
            assert_eq!(
                pat, reference,
                "hiranandani disagrees at p={p} k={k} l={l} s={s} m={m}"
            );
        }
    }
}

#[test]
fn exhaustive_small_parameters() {
    for p in 1..=3i64 {
        for k in 1..=4i64 {
            for s in 1..=2 * p * k + 1 {
                for l in [0i64, 1, 5] {
                    assert_all_methods_agree(p, k, l, s);
                }
            }
        }
    }
}

#[test]
fn randomized_medium_parameters() {
    let mut rng = Rng::seed_from_u64(0xB10C_C7C1);
    for _ in 0..300 {
        let p = rng.random_range(1..=16);
        let k = rng.random_range(1..=64);
        let s = rng.random_range(1..=4 * p * k);
        let l = rng.random_range(0..=3 * s);
        assert_all_methods_agree(p, k, l, s);
    }
}

#[test]
fn randomized_large_strides() {
    let mut rng = Rng::seed_from_u64(0x5EED_CAFE);
    for _ in 0..60 {
        let p = rng.random_range(1..=32);
        let k = rng.random_range(1..=128);
        // Strides far beyond one period, plus exact multiples of pk.
        let s = match rng.random_range(0..3) {
            0 => rng.random_range(1..=1_000_000),
            1 => p * k * rng.random_range(1..=50),
            _ => p * k * rng.random_range(1..=50) + rng.random_range(-1..=1),
        }
        .max(1);
        let l = rng.random_range(0..=10_000);
        // Oracle is O(pk/d); keep it affordable.
        let pr = Problem::new(p, k, l, s).unwrap();
        if pr.period_elements() > 200_000 {
            continue;
        }
        assert_all_methods_agree(p, k, l, s);
    }
}

#[test]
fn paper_grid_strides() {
    // The exact stride families of Table 1, on a downsized machine so the
    // oracle stays fast: p = 8, all paper block sizes.
    let p = 8i64;
    for k in [4i64, 8, 16, 32, 64, 128, 256, 512] {
        for s in [7i64, 99, k + 1, p * k - 1, p * k + 1] {
            assert_all_methods_agree(p, k, 0, s);
        }
    }
}

#[test]
fn hiranandani_applicability_boundary() {
    // Just inside and outside the s mod pk < k precondition.
    for p in [2i64, 4] {
        for k in [4i64, 8] {
            let pk = p * k;
            for s in [k - 1, k, k + 1, pk - 1, pk, pk + 1, pk + k - 1, pk + k] {
                if s < 1 {
                    continue;
                }
                let pr = Problem::new(p, k, 0, s).unwrap();
                let applicable = hiranandani::applicable(&pr);
                assert_eq!(applicable, s % pk < k);
                let r = build(&pr, 0, Method::Hiranandani);
                assert_eq!(r.is_ok(), applicable, "p={p} k={k} s={s}");
            }
        }
    }
}
