//! # bcag — Block-Cyclic Address Generation
//!
//! Umbrella crate re-exporting the whole workspace:
//!
//! * [`core`] (`bcag-core`) — the PPOPP'95 linear-time access-sequence
//!   algorithm of Kennedy, Nedeljković and Sethi, with the sorting baseline
//!   of Chatterjee et al. and the special-case method of Hiranandani et al.;
//! * [`hpf`] (`bcag-hpf`) — an HPF-style mapping substrate: templates,
//!   affine alignment, processor grids, block/cyclic/cyclic(k)
//!   distributions, multidimensional sections;
//! * [`spmd`] (`bcag-spmd`) — a simulated distributed-memory SPMD machine:
//!   distributed arrays, the four node-code shapes of the paper's Figure 8,
//!   and a communication substrate for two-sided array assignments;
//! * [`rt`] (`bcag-rt`) — a mini HPF-like runtime interpreting directive +
//!   statement scripts over the whole stack;
//! * [`trace`] (`bcag-trace`) — zero-dependency tracing and metrics: spans,
//!   named counters, per-node lanes, `bcag-trace/v1` summaries and
//!   chrome://tracing export (the whole stack is instrumented with it).
//!
//! See the repository README for a tour and `DESIGN.md` for the
//! paper-to-module map.

pub use bcag_core as core;
pub use bcag_hpf as hpf;
pub use bcag_rt as rt;
pub use bcag_spmd as spmd;
pub use bcag_trace as trace;

pub use bcag_core::{
    build, Access, AccessPattern, BcagError, Layout, Method, Problem, RegularSection,
};

/// Convenience prelude: `use bcag::prelude::*;` pulls in the types most
/// programs need.
pub mod prelude {
    pub use bcag_core::method::{build, Method};
    pub use bcag_core::params::Problem;
    pub use bcag_core::pattern::{Access, AccessPattern};
    pub use bcag_core::section::RegularSection;
    pub use bcag_core::{BcagError, Layout, Result};
    pub use bcag_hpf::{ArrayMap, DimMap, Dist, ProcessorGrid};
    pub use bcag_spmd::{CodeShape, CommSchedule, DistArray, DistMatrix, Machine};
}
