//! Multi-process SPMD launcher: the parent side of `bcag spmd --procs p`.
//!
//! [`launch`] forks `p` OS processes, each re-invoking the current
//! executable as a hidden `spmd-node` child that interprets the same
//! script as one node (see [`run_node`]). The parent is a star router:
//! one thread per child drains that child's stdout frame-by-frame
//! ([`proc::read_frame`]) and forwards `DATA` frames to the destination
//! child's stdin, so node-to-node messages cross real process
//! boundaries as serialized wire bytes. `PRINT` frames carry the
//! script's output lines (the interpreter funnels them through node 0),
//! `TRACE` frames carry each node's serialized `bcag-trace-full/v1`
//! document for lane merging in the parent, and `DONE` marks orderly
//! completion. When any child's pipe closes before its `DONE`, the
//! router broadcasts a `POISON` frame to every surviving child,
//! releasing nodes blocked in a receive so the whole launch fails fast
//! instead of hanging.
//!
//! Per-(src, dst) frame order is preserved: each source's frames are
//! forwarded by a single router thread in read order, and each
//! destination stdin is written under a mutex, which is exactly the
//! FIFO discipline [`proc::Session::recv_from`]'s per-source demux
//! assumes.
//!
//! The node side is intentionally thin: arrays are fully replicated in
//! every child (each materializes all `p` locals), so the interpreter
//! runs unchanged — `FORALL` reads are local everywhere and `PRINT`
//! computes identical values on every node. Only communication
//! statements touch the pipes, through the proc-session path in
//! `bcag_spmd::comm`.

use std::io::Write as _;
use std::path::Path;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use bcag_spmd::transport::proc::{
    self, Frame, KIND_DATA, KIND_DONE, KIND_POISON, KIND_PRINT, KIND_TRACE,
};

use crate::Interp;

/// What a completed multi-process launch produced.
pub struct LaunchOutcome {
    /// The script's output lines, in order (shipped by node 0).
    pub output: Vec<String>,
    /// Each node's serialized `bcag-trace-full/v1` document, sorted by
    /// node index. Empty when the launch was not traced.
    pub node_traces: Vec<(usize, String)>,
}

/// The machine size a script declares via `PROCESSORS NAME(n)` (the
/// product of the grid extents for multidimensional grids). The launcher
/// refuses to run a script whose declared size disagrees with `--procs`:
/// every child interprets the directives itself, so a mismatch would
/// silently run `p` processes of an `n`-node machine.
pub fn script_processors(src: &str) -> Result<usize, String> {
    for line in src.lines() {
        let t = line.trim();
        if !t.to_ascii_uppercase().starts_with("PROCESSORS") {
            continue;
        }
        let (Some(open), Some(close)) = (t.find('('), t.rfind(')')) else {
            return Err(format!("malformed PROCESSORS directive: {t}"));
        };
        let mut product: usize = 1;
        for part in t[open + 1..close].split(',') {
            let n: usize = part
                .trim()
                .parse()
                .map_err(|_| format!("malformed PROCESSORS directive: {t}"))?;
            product *= n;
        }
        return Ok(product);
    }
    Err("script has no PROCESSORS directive".into())
}

/// Shared state of the star router.
struct Router {
    /// Each child's stdin, behind a mutex so DATA forwarding and POISON
    /// broadcast interleave whole frames.
    stdins: Vec<Mutex<ChildStdin>>,
    /// Set by the first router thread that sees a child die; gates the
    /// POISON broadcast to once per launch.
    poisoned: AtomicBool,
    output: Mutex<Vec<String>>,
    traces: Mutex<Vec<(usize, String)>>,
}

impl Router {
    /// Broadcasts POISON (as node `src`) to every other child. Write
    /// errors are ignored: a closed stdin means that child is already
    /// dead and its own router thread handles it.
    fn poison_all(&self, src: usize) {
        if self.poisoned.swap(true, Ordering::SeqCst) {
            return;
        }
        for (dst, stdin) in self.stdins.iter().enumerate() {
            if dst == src {
                continue;
            }
            let frame = Frame {
                kind: KIND_POISON,
                src: src as u32,
                dst: dst as u32,
                body: Vec::new(),
            };
            let _ = proc::write_frame(&mut *lock_either(stdin), &frame);
        }
    }
}

/// Locks a mutex whether or not another router thread panicked while
/// holding it (a poisoned stdin lock still guards a usable pipe).
fn lock_either<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Forks `p` node processes running `exe spmd-node` over `script_path`
/// and routes frames between them until every child completes. `traced`
/// asks each child to record and ship its trace. Fails if any child
/// exits without an orderly `DONE`.
pub fn launch(
    exe: &Path,
    script_path: &str,
    p: usize,
    traced: bool,
) -> Result<LaunchOutcome, String> {
    if p == 0 {
        return Err("--procs must be at least 1".into());
    }
    let mut children: Vec<Child> = Vec::with_capacity(p);
    let mut stdins = Vec::with_capacity(p);
    let mut stdouts = Vec::with_capacity(p);
    for me in 0..p {
        let mut cmd = Command::new(exe);
        cmd.arg("spmd-node")
            .arg("--me")
            .arg(me.to_string())
            .arg("--procs")
            .arg(p.to_string())
            .arg("--file")
            .arg(script_path)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if traced {
            cmd.arg("--traced").arg("1");
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawning node {me}: {e}"))?;
        stdins.push(Mutex::new(child.stdin.take().expect("piped stdin")));
        stdouts.push(child.stdout.take().expect("piped stdout"));
        children.push(child);
    }
    let router = Arc::new(Router {
        stdins,
        poisoned: AtomicBool::new(false),
        output: Mutex::new(Vec::new()),
        traces: Mutex::new(Vec::new()),
    });

    // One router thread per child: drain its stdout, forward DATA,
    // collect PRINT/TRACE, report whether an orderly DONE arrived.
    let mut threads = Vec::with_capacity(p);
    for (me, mut out) in stdouts.into_iter().enumerate() {
        let router = Arc::clone(&router);
        threads.push(std::thread::spawn(move || -> bool {
            loop {
                let frame = match proc::read_frame(&mut out) {
                    Ok(Some(frame)) => frame,
                    Ok(None) | Err(_) => {
                        // Pipe closed without DONE: the child died.
                        router.poison_all(me);
                        return false;
                    }
                };
                match frame.kind {
                    KIND_DATA => {
                        let dst = frame.dst as usize;
                        if dst >= router.stdins.len() {
                            router.poison_all(me);
                            return false;
                        }
                        let mut stdin = lock_either(&router.stdins[dst]);
                        // A write failure means dst is already dead; its
                        // own router thread broadcasts the poison.
                        let _ = proc::write_frame(&mut *stdin, &frame);
                    }
                    KIND_PRINT => lock_either(&router.output)
                        .push(String::from_utf8_lossy(&frame.body).into_owned()),
                    KIND_TRACE => lock_either(&router.traces)
                        .push((me, String::from_utf8_lossy(&frame.body).into_owned())),
                    KIND_DONE => return true,
                    _ => {
                        router.poison_all(me);
                        return false;
                    }
                }
            }
        }));
    }

    let mut failed: Vec<usize> = Vec::new();
    for (me, thread) in threads.into_iter().enumerate() {
        let done = thread.join().unwrap_or(false);
        if !done {
            failed.push(me);
        }
    }
    for (me, child) in children.iter_mut().enumerate() {
        let status = child
            .wait()
            .map_err(|e| format!("waiting for node {me}: {e}"))?;
        if !status.success() && !failed.contains(&me) {
            failed.push(me);
        }
    }
    if !failed.is_empty() {
        return Err(format!(
            "node process(es) {failed:?} failed (see their stderr above)"
        ));
    }

    let router = Arc::try_unwrap(router).unwrap_or_else(|_| unreachable!("threads joined"));
    let output = router
        .output
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    let mut node_traces = router
        .traces
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    node_traces.sort_by_key(|(me, _)| *me);
    Ok(LaunchOutcome {
        output,
        node_traces,
    })
}

/// The body of a `bcag spmd-node` child: installs the process-global
/// proc session over stdin/stdout, interprets the script as node `me`
/// of `p`, ships output lines (node 0 only) and — when `traced` — this
/// node's serialized trace, then signals orderly completion.
///
/// `BCAG_SPMD_PANIC_NODE=<m>` makes node `m` fail right after session
/// setup; the launcher's poison broadcast then releases its peers. This
/// is the failure-propagation test hook.
pub fn run_node(me: usize, p: usize, src: &str, traced: bool) -> Result<(), String> {
    if me >= p {
        return Err(format!("node index {me} out of range for --procs {p}"));
    }
    let session = proc::install(
        me,
        p,
        Box::new(std::io::stdin()),
        Box::new(std::io::stdout()),
    );
    if traced {
        bcag_trace::start();
        bcag_trace::set_lane_label(&format!("node-{me}"));
    }
    if let Ok(v) = std::env::var("BCAG_SPMD_PANIC_NODE") {
        if v.parse() == Ok(me) {
            return Err(format!(
                "node {me}: injected failure (BCAG_SPMD_PANIC_NODE)"
            ));
        }
    }
    let output = Interp::run(src).map_err(|e| e.to_string())?;
    if me == 0 {
        for line in &output {
            session.send_print(line);
        }
    }
    if traced {
        let trace = bcag_trace::stop();
        session.send_trace(&bcag_trace::export::to_json(&trace).to_string());
    }
    session.send_done();
    // Flush is per-frame in write_frame; stdout needs no teardown.
    std::io::stdout()
        .flush()
        .map_err(|e| format!("node {me}: flushing stdout: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_processors_reads_the_directive() {
        assert_eq!(script_processors("PROCESSORS P(4)\nREAL A(8)\n"), Ok(4));
        assert_eq!(script_processors("  processors Grid(2, 3)\n"), Ok(6));
        assert!(script_processors("REAL A(8)\n").is_err());
        assert!(script_processors("PROCESSORS P\n").is_err());
        assert!(script_processors("PROCESSORS P(x)\n").is_err());
    }
}
