//! Statement flight recorder: a bounded ring of the last executed
//! interpreter statements, always on (independent of the `bcag-trace`
//! switch) and cheap enough to leave running — one `Instant` read, one
//! lock-free schedule-cache counter rollup and one small mutex push per
//! statement.
//!
//! Each record carries what an operator needs after the fact: the
//! statement's kind and text, its latency, the data it moved (when
//! tracing was on), whether the schedule cache answered, and the
//! execution configuration ([`bcag_spmd::comm::ExecMode`],
//! [`bcag_spmd::pack::PackMode`], transport, launch mode) it ran under.
//! The ring is dumped to stderr when a statement panics (pool poison
//! propagates as a panic) and on demand via the `bcag stats`
//! subcommand.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use bcag_spmd::cache;

/// Number of statements the ring retains.
pub const CAPACITY: usize = 64;

/// One executed statement, as remembered by the flight recorder.
#[derive(Debug, Clone)]
pub struct StatementRecord {
    /// Monotone sequence number (process lifetime).
    pub seq: u64,
    /// Statement kind (the span name, e.g. `rt.ASSIGN`).
    pub kind: &'static str,
    /// The statement text (truncated to a display-friendly length).
    pub line: String,
    /// Wall-clock latency of the statement.
    pub latency_ns: u64,
    /// Elements moved by the statement (0 when tracing was off).
    pub elements_moved: u64,
    /// Transport bytes sent by the statement (0 when tracing was off).
    pub bytes_tx: u64,
    /// Schedule-cache hits this statement scored.
    pub cache_hits: u64,
    /// Schedule-cache misses (builds) this statement caused.
    pub cache_misses: u64,
    /// Executor mode name (`batched` / `per-element`).
    pub exec_mode: &'static str,
    /// Statement-compiler mode name (`fused` / `interp`).
    pub fuse: &'static str,
    /// Pack mode the statement actually resolved to (`runs` /
    /// `per-element`, or `-` before any pack ran) — under the self-tuning
    /// default this is the measured dispatch decision, not a static
    /// configuration.
    pub pack_mode: &'static str,
    /// Whether the statement's fused epoch ran L2-blocked.
    pub blocked: bool,
    /// Transport fabric name (`mpsc` / `shm` / `proc`).
    pub transport: &'static str,
    /// Launch mode name (`pooled` / `scoped`).
    pub launch: &'static str,
    /// Whether the statement completed without error.
    pub ok: bool,
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static RING: Mutex<VecDeque<StatementRecord>> = Mutex::new(VecDeque::new());

fn lock_ring() -> std::sync::MutexGuard<'static, VecDeque<StatementRecord>> {
    RING.lock().unwrap_or_else(|e| e.into_inner())
}

/// Counter/cache baseline captured before a statement runs, so the record
/// stores per-statement deltas rather than process totals.
pub struct Baseline {
    t0: Instant,
    /// `(hits, misses)` via [`cache::counters`] — the lock-free shard
    /// rollup, not the full [`cache::stats`] snapshot: the recorder runs
    /// on every statement and must never take the sharded store's table
    /// locks just for bookkeeping.
    cache: (u64, u64),
    elements_moved: u64,
    bytes_tx: u64,
}

impl Baseline {
    /// Snapshots the clock, the schedule-cache totals and (when tracing
    /// is on) the movement counters.
    pub fn capture() -> Baseline {
        let traced = bcag_trace::enabled();
        Baseline {
            t0: Instant::now(),
            cache: cache::counters(),
            elements_moved: if traced {
                bcag_trace::counter_now("elements_moved")
            } else {
                0
            },
            bytes_tx: if traced {
                bcag_trace::counter_now("transport_bytes_tx")
            } else {
                0
            },
        }
    }
}

/// Closes a statement's record against its [`Baseline`] and pushes it
/// onto the ring, displacing the oldest entry at capacity.
pub fn record(kind: &'static str, line: &str, before: Baseline, ok: bool) {
    let latency_ns = before.t0.elapsed().as_nanos() as u64;
    let cache_now = cache::counters();
    let traced = bcag_trace::enabled();
    let rec = StatementRecord {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        kind,
        line: truncate(line, 56),
        latency_ns,
        elements_moved: if traced {
            bcag_trace::counter_now("elements_moved").saturating_sub(before.elements_moved)
        } else {
            0
        },
        bytes_tx: if traced {
            bcag_trace::counter_now("transport_bytes_tx").saturating_sub(before.bytes_tx)
        } else {
            0
        },
        cache_hits: cache_now.0.saturating_sub(before.cache.0),
        cache_misses: cache_now.1.saturating_sub(before.cache.1),
        exec_mode: bcag_spmd::comm::ExecMode::Batched.name(),
        fuse: bcag_spmd::fuse::default_fused().name(),
        pack_mode: bcag_spmd::pack::last_pack_mode().map_or("-", |m| m.name()),
        blocked: bcag_spmd::fuse::last_blocked().unwrap_or(false),
        transport: bcag_spmd::transport::active_transport().name(),
        launch: bcag_spmd::pool::default_launch().name(),
        ok,
    };
    let mut ring = lock_ring();
    if ring.len() >= CAPACITY {
        ring.pop_front();
    }
    ring.push_back(rec);
}

/// The ring's current contents, oldest first.
pub fn snapshot() -> Vec<StatementRecord> {
    lock_ring().iter().cloned().collect()
}

/// Empties the ring (tests and fresh `bcag stats` sessions).
pub fn clear() {
    lock_ring().clear();
}

/// Renders records as a fixed-width table, oldest first.
pub fn render(records: &[StatementRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>5} {:<16} {:>10} {:>9} {:>10} {:>5} {:>5} {:<8} {:<6} {:<15} {:<6} {:<6} {:<3} statement\n",
        "seq",
        "kind",
        "lat_us",
        "elems",
        "tx_bytes",
        "hit",
        "miss",
        "exec",
        "fuse",
        "pack",
        "xport",
        "launch",
        "ok",
    ));
    for r in records {
        let pack = if r.blocked {
            format!("{}+blk", r.pack_mode)
        } else {
            r.pack_mode.to_string()
        };
        out.push_str(&format!(
            "{:>5} {:<16} {:>10.1} {:>9} {:>10} {:>5} {:>5} {:<8} {:<6} {:<15} {:<6} {:<6} {:<3} {}\n",
            r.seq,
            r.kind,
            r.latency_ns as f64 / 1_000.0,
            r.elements_moved,
            r.bytes_tx,
            r.cache_hits,
            r.cache_misses,
            r.exec_mode,
            r.fuse,
            pack,
            r.transport,
            r.launch,
            if r.ok { "yes" } else { "NO" },
            r.line,
        ));
    }
    out
}

/// RAII guard: while held, a panic unwinding through the holder (a pool
/// poison surfaces as one) dumps the flight ring to stderr before the
/// process dies, preserving the last statements' context.
pub struct DumpOnPanic;

impl Drop for DumpOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let records = snapshot();
            if records.is_empty() {
                return;
            }
            eprintln!(
                "--- bcag flight recorder: last {} statements ---",
                records.len()
            );
            eprint!("{}", render(&records));
        }
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        let cut = s
            .char_indices()
            .take_while(|(i, _)| *i + 1 < max)
            .last()
            .map(|(i, c)| i + c.len_utf8())
            .unwrap_or(0);
        format!("{}…", &s[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        clear();
        for i in 0..(CAPACITY + 10) {
            let b = Baseline::capture();
            record("rt.TEST", &format!("TEST {i}"), b, true);
        }
        let records = snapshot();
        assert_eq!(records.len(), CAPACITY);
        // Oldest entries displaced; survivors in sequence order.
        for w in records.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        assert_eq!(
            records.last().unwrap().line,
            format!("TEST {}", CAPACITY + 9)
        );
        clear();
    }

    #[test]
    fn render_is_one_row_per_record() {
        let b = Baseline::capture();
        let rec = StatementRecord {
            seq: 1,
            kind: "rt.ASSIGN",
            line: "ASSIGN A(0:9:1) = B(0:9:1)".into(),
            latency_ns: 12_345,
            elements_moved: 10,
            bytes_tx: 80,
            cache_hits: 2,
            cache_misses: 1,
            exec_mode: "batched",
            fuse: "fused",
            pack_mode: "runs",
            blocked: true,
            transport: "shm",
            launch: "pooled",
            ok: true,
        };
        drop(b);
        let text = render(&[rec]);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("rt.ASSIGN"), "{text}");
        assert!(text.contains("ASSIGN A(0:9:1)"), "{text}");
        assert!(text.contains("fused"), "{text}");
        assert!(text.contains("runs+blk"), "{text}");
    }

    #[test]
    fn records_capture_the_resolved_pack_mode() {
        // Run one real statement, then record: the pack column must show
        // the mode the statement actually resolved to, not a constant.
        let mut a = bcag_spmd::darray::DistArray::new(2, 4, 64, 0i64).unwrap();
        let b = bcag_spmd::darray::DistArray::new(2, 4, 64, 5i64).unwrap();
        let sec = bcag_core::section::RegularSection::new(0, 63, 1).unwrap();
        let base = Baseline::capture();
        bcag_spmd::statement::assign_expr(&mut a, &sec, &[(&b, sec)], |v| v[0]).unwrap();
        record("rt.ASSIGN", "ASSIGN A(0:63:1) = B(0:63:1)", base, true);
        let rec = snapshot().into_iter().last().unwrap();
        assert_ne!(rec.pack_mode, "-", "a pack ran, so a mode was noted");
    }

    #[test]
    fn truncate_respects_char_boundaries() {
        assert_eq!(truncate("short", 10), "short");
        let t = truncate("éééééééééééééééééééé", 10);
        assert!(t.ends_with('…'));
        assert!(t.chars().count() < 12);
    }
}
