//! # bcag-rt — a mini HPF-like runtime
//!
//! The paper positions its algorithm "for inclusion in compilers and
//! run-time systems for HPF-like languages". This crate is a toy such
//! runtime: it interprets scripts mixing HPF mapping directives
//! (`PROCESSORS` / `TEMPLATE` / `ALIGN` / `DISTRIBUTE`) with executable
//! array statements (`INIT`, `ASSIGN`, `PRINT`, `REDISTRIBUTE`), compiling
//! every `ASSIGN` down to exactly the machinery the paper describes: gap
//! tables from the lattice algorithm, communication sets for mixed
//! layouts, owner-computes traversal on the simulated SPMD machine.
//!
//! ```
//! use bcag_rt::Interp;
//! let out = Interp::run("
//!     PROCESSORS P(4)
//!     TEMPLATE T(320)
//!     REAL A(320)
//!     ALIGN A(i) WITH T(i)
//!     DISTRIBUTE T(CYCLIC(8)) ONTO P
//!     INIT A LINEAR 1 0
//!     ASSIGN A(4:301:9) = A(4:301:9) * 2
//!     PRINT A(4:31:9)
//! ").unwrap();
//! assert_eq!(out[0], "A(4:31:9) = [8.0, 26.0, 44.0, 62.0]");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod expr;
pub mod flight;
pub mod interp;
pub mod spmd;

pub use expr::{parse_expr, parse_lhs, Expr, Op, ParsedExpr, SectionRef};
pub use interp::Interp;
