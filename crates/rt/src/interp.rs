//! The script interpreter.
//!
//! A script mixes HPF mapping directives (handled by
//! [`bcag_hpf::parse::Program`]) with executable statements:
//!
//! ```text
//! PROCESSORS P(4)
//! TEMPLATE T(400)
//! REAL A(400)
//! ALIGN A(i) WITH T(i)
//! DISTRIBUTE T(CYCLIC(8)) ONTO P
//! REAL B(400) ...                       ! (each array needs its own chain)
//!
//! INIT A LINEAR 2 1                     ! A(i) = 2·i + 1
//! INIT B CONST 5
//! ASSIGN A(0:99:3) = 2.5 * B(2:68:2) + 1
//! FORALL I = 0:49:1 : A(2*I) = B(I) + 1
//! CSHIFT A B 5
//! PRINT SUM A(0:99:3)
//! PRINT STATS A(0:99:3)
//! PRINT TABLE A(4:301:9) 1
//! REDISTRIBUTE A CYCLIC(4)
//! ! rank-2 arrays: INIT2 / ASSIGN2 / PRINT2 SUM over (s0, s1) sections
//! ```
//!
//! Every `ASSIGN` runs through the full pipeline: gap tables from the
//! lattice algorithm, communication sets for mixed layouts, owner-computes
//! execution on the simulated SPMD machine.

use std::collections::HashMap;

use bcag_core::section::RegularSection;
use bcag_hpf::parse::{ParseError, Program};
use bcag_spmd::assign::plan_section;
use bcag_spmd::statement::{assign_expr, redistribute};
use bcag_spmd::{DistArray, DistMatrix};

use crate::expr::{parse_expr, parse_lhs, ParsedExpr};

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

fn parse_int(s: &str) -> Result<i64, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("expected an integer, got `{s}`")))
}

/// Interpreter state: named distributed arrays plus captured output.
#[derive(Debug, Default)]
pub struct Interp {
    arrays: HashMap<String, DistArray<f64>>,
    matrices: HashMap<String, DistMatrix<f64>>,
    /// Lines produced by `PRINT` statements (also returned by [`Interp::run`]).
    pub output: Vec<String>,
}

impl Interp {
    /// Runs a whole script; returns the `PRINT` output lines.
    pub fn run(script: &str) -> Result<Vec<String>, ParseError> {
        let _sp = bcag_trace::span("rt.run");
        // Phase 1: mapping directives.
        let directive_keywords = [
            "PROCESSORS",
            "TEMPLATE",
            "REAL",
            "INTEGER",
            "DIMENSION",
            "ALIGN",
            "DISTRIBUTE",
        ];
        let mut directives = String::new();
        let mut statements: Vec<(usize, String)> = Vec::new();
        for (no, raw) in script.lines().enumerate() {
            let mut line = raw.trim().to_string();
            if let Some(rest) = line
                .strip_prefix("!HPF$")
                .or_else(|| line.strip_prefix("!hpf$"))
            {
                line = rest.trim().to_string();
            } else if line.starts_with('!') || line.is_empty() {
                continue;
            }
            let first = line
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_ascii_uppercase();
            if directive_keywords.contains(&first.as_str()) {
                directives.push_str(&line);
                directives.push('\n');
            } else {
                statements.push((no + 1, line));
            }
        }
        let program = Program::parse(&directives)?;

        // Phase 2: materialize every declared (rank-1) array.
        let mut interp = Interp::default();
        for name in program.arrays.keys() {
            let map = program.array_map(name)?;
            for dm in map.dims() {
                if dm.alignment().a != 1 || dm.alignment().b != 0 {
                    return err(format!(
                        "array `{name}`: the interpreter requires identity alignment"
                    ));
                }
            }
            match map.rank() {
                1 => {
                    let dm = &map.dims()[0];
                    let arr =
                        DistArray::new(dm.procs(), dm.block_size(), dm.extent(), 0.0f64)
                            .map_err(|e| ParseError(e.to_string()))?;
                    interp.arrays.insert(name.clone(), arr);
                }
                2 => {
                    let mat = DistMatrix::new(map, 0.0f64)
                        .map_err(|e| ParseError(e.to_string()))?;
                    interp.matrices.insert(name.clone(), mat);
                }
                r => {
                    return err(format!(
                        "array `{name}`: the interpreter executes rank-1 and rank-2                          statements only (declared rank {r})"
                    ))
                }
            }
        }

        // Boot the resident worker pool for every machine size the
        // script's rank-1 arrays use, so the statement loop below runs
        // on warm node threads from its first statement (scripts
        // typically stream many statements through one machine).
        let mut sizes: Vec<i64> = interp.arrays.values().map(|a| a.p()).collect();
        sizes.sort_unstable();
        sizes.dedup();
        for p in sizes {
            bcag_spmd::pool::warm(p);
        }

        // Phase 3: execute statements in order. A panic unwinding out of
        // a statement (a pool poison surfaces as one) dumps the flight
        // ring so the crash carries its recent-statement context.
        let _flight_dump = crate::flight::DumpOnPanic;
        for (no, line) in statements {
            interp
                .exec(&line)
                .map_err(|e| ParseError(format!("line {no}: {}", e.0)))?;
        }
        Ok(interp.output)
    }

    /// Read access to a named array (for tests and embedding).
    pub fn array(&self, name: &str) -> Option<&DistArray<f64>> {
        self.arrays.get(&name.to_ascii_uppercase())
    }

    fn exec(&mut self, line: &str) -> Result<(), ParseError> {
        let upper = line.to_ascii_uppercase();
        let kind = statement_span_name(&upper);
        // One span per executed statement, named by statement kind, so a
        // trace shows which script statements the run time went to; the
        // timed_span feeds the same latencies into the rt_statement_ns
        // percentile histogram.
        let _sp = bcag_trace::span(kind);
        let _t = bcag_trace::timed_span("rt_statement_ns");
        let before = crate::flight::Baseline::capture();
        let result = self.dispatch(&upper, line);
        crate::flight::record(kind, line, before, result.is_ok());
        result
    }

    fn dispatch(&mut self, upper: &str, line: &str) -> Result<(), ParseError> {
        if let Some(rest) = upper.strip_prefix("INIT ") {
            self.exec_init(rest.trim())
        } else if let Some(rest) = upper.strip_prefix("ASSIGN ") {
            self.exec_assign(rest.trim())
        } else if let Some(rest) = upper.strip_prefix("PRINT ") {
            self.exec_print(rest.trim())
        } else if let Some(rest) = upper.strip_prefix("REDISTRIBUTE ") {
            self.exec_redistribute(rest.trim())
        } else if let Some(rest) = upper.strip_prefix("FORALL ") {
            self.exec_forall(rest.trim())
        } else if let Some(rest) = upper.strip_prefix("CSHIFT ") {
            self.exec_cshift(rest.trim())
        } else if let Some(rest) = upper.strip_prefix("ASSIGN2 ") {
            self.exec_assign2(rest.trim())
        } else if let Some(rest) = upper.strip_prefix("INIT2 ") {
            self.exec_init2(rest.trim())
        } else if let Some(rest) = upper.strip_prefix("PRINT2 ") {
            self.exec_print2(rest.trim())
        } else {
            err(format!("unknown statement `{line}`"))
        }
    }

    fn get_matrix(&self, name: &str) -> Result<&DistMatrix<f64>, ParseError> {
        self.matrices
            .get(name)
            .ok_or_else(|| ParseError(format!("unknown rank-2 array `{name}`")))
    }

    fn parse_2d(src: &str) -> Result<(String, [RegularSection; 2]), ParseError> {
        let (name, secs) = Program::parse_section(src.trim())?;
        match <[RegularSection; 2]>::try_from(secs) {
            Ok(pair) => Ok((name, pair)),
            Err(_) => err(format!("`{src}` must have exactly two triplets")),
        }
    }

    /// `INIT2 M CONST v` or `INIT2 M LINEAR2 a b c` (`M(i,j) = a·i + b·j + c`).
    fn exec_init2(&mut self, rest: &str) -> Result<(), ParseError> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let (name, f): (String, Box<dyn Fn(i64, i64) -> f64>) = match parts.as_slice() {
            [name, "CONST", v] => {
                let v: f64 = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{v}`")))?;
                (name.to_string(), Box::new(move |_, _| v))
            }
            [name, "LINEAR2", a, b, c] => {
                let a: f64 = a
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{a}`")))?;
                let b: f64 = b
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{b}`")))?;
                let c: f64 = c
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{c}`")))?;
                (
                    name.to_string(),
                    Box::new(move |i, j| a * i as f64 + b * j as f64 + c),
                )
            }
            _ => return err("INIT2 syntax: `INIT2 M CONST v` or `INIT2 M LINEAR2 a b c`"),
        };
        let mat = self
            .matrices
            .get_mut(&name)
            .ok_or_else(|| ParseError(format!("unknown rank-2 array `{name}`")))?;
        let (rows, cols) = mat.extents();
        for i in 0..rows {
            for j in 0..cols {
                mat.set(i, j, f(i, j))
                    .map_err(|e| ParseError(e.to_string()))?;
            }
        }
        Ok(())
    }

    /// `ASSIGN2 M(s0, s1) = v` (scalar fill) or
    /// `ASSIGN2 M(s0, s1) = N(s0', s1')` (remapped copy).
    fn exec_assign2(&mut self, rest: &str) -> Result<(), ParseError> {
        let Some((lhs_src, rhs_src)) = rest.split_once('=') else {
            return err("ASSIGN2 needs `M(s0, s1) = ...`");
        };
        let (dst_name, dst_secs) = Self::parse_2d(lhs_src)?;
        let rhs = rhs_src.trim();
        if let Ok(v) = rhs.parse::<f64>() {
            let mat = self
                .matrices
                .get_mut(&dst_name)
                .ok_or_else(|| ParseError(format!("unknown rank-2 array `{dst_name}`")))?;
            return mat
                .apply_section(&dst_secs, |_, _, x| *x = v)
                .map_err(|e| ParseError(e.to_string()));
        }
        let (src_name, src_secs) = Self::parse_2d(rhs)?;
        let src = self.get_matrix(&src_name)?.clone();
        let dst = self
            .matrices
            .get_mut(&dst_name)
            .ok_or_else(|| ParseError(format!("unknown rank-2 array `{dst_name}`")))?;
        bcag_spmd::comm2d::assign_matrix(dst, &dst_secs, &src, &src_secs)
            .map_err(|e| ParseError(e.to_string()))
    }

    /// `PRINT2 SUM M(s0, s1)`.
    fn exec_print2(&mut self, rest: &str) -> Result<(), ParseError> {
        let Some(secref) = rest.strip_prefix("SUM ") else {
            return err("PRINT2 supports `PRINT2 SUM M(s0, s1)`");
        };
        let (name, secs) = Self::parse_2d(secref)?;
        let mat = self.get_matrix(&name)?;
        let mut sum = 0.0f64;
        for i in secs[0].iter() {
            for j in secs[1].iter() {
                sum += *mat.get(i, j).map_err(|e| ParseError(e.to_string()))?;
            }
        }
        self.output.push(format!("SUM2 {} = {sum}", secref.trim()));
        Ok(())
    }

    /// `FORALL I = l:u:s : A(a*I+b) = expr-affine-in-I`.
    fn exec_forall(&mut self, rest: &str) -> Result<(), ParseError> {
        use crate::expr::{parse_affine_expr, parse_affine_lhs, Expr};
        let Some((head, body)) = rest.split_once(" : ") else {
            return err("FORALL syntax: `FORALL I = l:u:s : A(a*I+b) = expr`");
        };
        let Some((var, triplet)) = head.split_once('=') else {
            return err("FORALL needs `I = l:u:s`");
        };
        let var = var.trim();
        let fields: Vec<&str> = triplet.trim().split(':').map(str::trim).collect();
        let (lo, hi, st) = match fields.as_slice() {
            [l, u] => (parse_int(l)?, parse_int(u)?, 1),
            [l, u, s] => (parse_int(l)?, parse_int(u)?, parse_int(s)?),
            _ => return err("FORALL bounds must be `l:u[:s]`"),
        };
        if st <= 0 || hi < lo {
            return err("FORALL requires an ascending nonempty range");
        }
        let count = (hi - lo) / st + 1;
        let Some((lhs_src, rhs_src)) = body.split_once('=') else {
            return err("FORALL body needs `A(a*I+b) = expr`");
        };
        let lhs = parse_affine_lhs(lhs_src.trim(), var)?;
        if lhs.a <= 0 {
            return err("FORALL left-hand side subscript must be increasing in the variable");
        }
        let parsed = parse_affine_expr(rhs_src.trim(), var)?;

        // Convert each variable-dependent reference into a section over the
        // FORALL range; fold constant-subscript references into literals.
        let mut sections: Vec<(usize, crate::expr::SectionRef)> = Vec::new();
        let mut const_values: Vec<(usize, f64)> = Vec::new();
        for (idx, r) in parsed.refs.iter().enumerate() {
            if r.a == 0 {
                let arr = self.get(&r.array)?;
                let v = *arr.get(r.b).map_err(|e| ParseError(e.to_string()))?;
                const_values.push((idx, v));
            } else if r.a < 0 {
                return err("descending FORALL subscripts are not supported");
            } else {
                let section = RegularSection::new(r.a * lo + r.b, r.a * hi + r.b, r.a * st)
                    .map_err(|e| ParseError(e.to_string()))?;
                debug_assert_eq!(section.count(), count);
                sections.push((
                    idx,
                    crate::expr::SectionRef {
                        array: r.array.clone(),
                        section,
                    },
                ));
            }
        }
        // Substitute constants into the AST; remap Ref indices to the
        // compacted operand list.
        let remap: std::collections::HashMap<usize, usize> = sections
            .iter()
            .enumerate()
            .map(|(new, (old, _))| (*old, new))
            .collect();
        let consts: std::collections::HashMap<usize, f64> = const_values.into_iter().collect();
        fn rewrite(
            e: &Expr,
            remap: &std::collections::HashMap<usize, usize>,
            consts: &std::collections::HashMap<usize, f64>,
        ) -> Expr {
            match e {
                Expr::Num(v) => Expr::Num(*v),
                Expr::Ref(i) => match consts.get(i) {
                    Some(v) => Expr::Num(*v),
                    None => Expr::Ref(remap[i]),
                },
                Expr::Neg(x) => Expr::Neg(Box::new(rewrite(x, remap, consts))),
                Expr::Bin(op, a, b) => Expr::Bin(
                    *op,
                    Box::new(rewrite(a, remap, consts)),
                    Box::new(rewrite(b, remap, consts)),
                ),
            }
        }
        let ast = rewrite(&parsed.ast, &remap, &consts);

        let lhs_section = RegularSection::new(lhs.a * lo + lhs.b, lhs.a * hi + lhs.b, lhs.a * st)
            .map_err(|e| ParseError(e.to_string()))?;
        let operand_arrays: Vec<DistArray<f64>> = sections
            .iter()
            .map(|(_, r)| self.get(&r.array).cloned())
            .collect::<Result<_, _>>()?;
        let operands: Vec<(&DistArray<f64>, RegularSection)> = operand_arrays
            .iter()
            .zip(&sections)
            .map(|(a, (_, r))| (a, r.section))
            .collect();
        let target = self
            .arrays
            .get_mut(&lhs.array)
            .ok_or_else(|| ParseError(format!("unknown array `{}`", lhs.array)))?;
        assign_expr(target, &lhs_section, &operands, |args| {
            crate::expr::eval_ast(&ast, args)
        })
        .map_err(|e| ParseError(e.to_string()))
    }

    /// `CSHIFT A B n` — `A = CSHIFT(B, n)`.
    fn exec_cshift(&mut self, rest: &str) -> Result<(), ParseError> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [dst, src, amount] = parts.as_slice() else {
            return err("CSHIFT syntax: `CSHIFT A B n`");
        };
        let amount: i64 = amount
            .parse()
            .map_err(|_| ParseError(format!("bad shift `{amount}`")))?;
        let shifted = bcag_spmd::shift::cshift(self.get(src)?, amount)
            .map_err(|e| ParseError(e.to_string()))?;
        let target = self
            .arrays
            .get_mut(*dst)
            .ok_or_else(|| ParseError(format!("unknown array `{dst}`")))?;
        if target.len() != shifted.len() {
            return err("CSHIFT arrays must have equal extents");
        }
        *target = if target.k() == shifted.k() {
            shifted
        } else {
            redistribute(&shifted, target.k()).map_err(|e| ParseError(e.to_string()))?
        };
        Ok(())
    }

    fn get(&self, name: &str) -> Result<&DistArray<f64>, ParseError> {
        self.arrays
            .get(name)
            .ok_or_else(|| ParseError(format!("unknown array `{name}`")))
    }

    /// `INIT A CONST v` or `INIT A LINEAR a b` (`A(i) = a·i + b`).
    fn exec_init(&mut self, rest: &str) -> Result<(), ParseError> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let (name, spec) = match parts.as_slice() {
            [name, "CONST", v] => {
                let v: f64 = v
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{v}`")))?;
                (name.to_string(), (0.0, v))
            }
            [name, "LINEAR", a, b] => {
                let a: f64 = a
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{a}`")))?;
                let b: f64 = b
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{b}`")))?;
                (name.to_string(), (a, b))
            }
            _ => return err("INIT syntax: `INIT A CONST v` or `INIT A LINEAR a b`"),
        };
        let arr = self
            .arrays
            .get_mut(&name)
            .ok_or_else(|| ParseError(format!("unknown array `{name}`")))?;
        for i in 0..arr.len() {
            arr.set(i, spec.0 * i as f64 + spec.1)
                .map_err(|e| ParseError(e.to_string()))?;
        }
        Ok(())
    }

    /// `ASSIGN A(l:u:s) = expr`.
    fn exec_assign(&mut self, rest: &str) -> Result<(), ParseError> {
        let Some((lhs_src, rhs_src)) = rest.split_once('=') else {
            return err("ASSIGN needs `A(l:u:s) = expr`");
        };
        let lhs = parse_lhs(lhs_src.trim())?;
        let parsed: ParsedExpr = parse_expr(rhs_src.trim())?;
        // Normalize the LHS (descending LHS handled by reversal of both
        // sides would change operand pairing; keep it simple and require
        // ascending LHS).
        if lhs.section.s <= 0 {
            return err("ASSIGN requires an ascending LHS section");
        }
        for r in &parsed.refs {
            if r.section.count() != lhs.section.count() {
                return err(format!(
                    "operand {}({}:{}:{}) does not conform to the LHS",
                    r.array, r.section.l, r.section.u, r.section.s
                ));
            }
            if r.section.s <= 0 {
                return err("descending operand sections are not yet supported in ASSIGN");
            }
        }
        // Clone operands out (assign_expr snapshots anyway; this satisfies
        // borrowck for self-references like A = A + 1).
        let operand_arrays: Vec<DistArray<f64>> = parsed
            .refs
            .iter()
            .map(|r| self.get(&r.array).cloned())
            .collect::<Result<_, _>>()?;
        let operands: Vec<(&DistArray<f64>, RegularSection)> = operand_arrays
            .iter()
            .zip(&parsed.refs)
            .map(|(a, r)| (a, r.section))
            .collect();
        let target = self
            .arrays
            .get_mut(&lhs.array)
            .ok_or_else(|| ParseError(format!("unknown array `{}`", lhs.array)))?;
        assign_expr(target, &lhs.section, &operands, |args| parsed.eval(args))
            .map_err(|e| ParseError(e.to_string()))
    }

    /// `PRINT SUM A(l:u:s)`, `PRINT TABLE A(l:u:s) m`, `PRINT STATS
    /// A(l:u:s)` or `PRINT A(l:u:s)`.
    fn exec_print(&mut self, rest: &str) -> Result<(), ParseError> {
        if let Some(secref) = rest.strip_prefix("STATS ") {
            let r = parse_lhs(secref.trim())?;
            let arr = self.get(&r.array)?;
            let stats = bcag_spmd::stats::load_stats(arr.p(), arr.k(), &r.section)
                .map_err(|e| ParseError(e.to_string()))?;
            self.output.push(format!(
                "STATS {} per_proc={:?} imbalance={:.3}",
                secref.trim(),
                stats.per_proc,
                stats.imbalance
            ));
            return Ok(());
        }
        if let Some(secref) = rest.strip_prefix("SUM ") {
            let r = parse_lhs(secref.trim())?;
            let arr = self.get(&r.array)?;
            let values: Vec<f64> = r
                .section
                .iter()
                .map(|i| arr.get(i).copied())
                .collect::<Result<_, _>>()
                .map_err(|e| ParseError(e.to_string()))?;
            let sum: f64 = values.iter().sum();
            self.output.push(format!("SUM {} = {}", secref.trim(), sum));
            return Ok(());
        }
        if let Some(tail) = rest.strip_prefix("TABLE ") {
            // `PRINT TABLE A(l:u:s) m` — the per-processor AM table.
            let mut parts = tail.trim().rsplitn(2, ' ');
            let m: i64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| ParseError("PRINT TABLE needs a processor number".into()))?;
            let secref = parts
                .next()
                .ok_or_else(|| ParseError("PRINT TABLE syntax".into()))?;
            let r = parse_lhs(secref.trim())?;
            let arr = self.get(&r.array)?;
            let norm = r.section.normalized();
            let plans = plan_section(
                arr.p(),
                arr.k(),
                &RegularSection::new(norm.lo, norm.hi, norm.step)
                    .map_err(|e| ParseError(e.to_string()))?,
                bcag_core::method::Method::Lattice,
            )
            .map_err(|e| ParseError(e.to_string()))?;
            let plan = &plans[m as usize];
            self.output.push(format!(
                "TABLE {} proc {m}: start={:?} AM={:?}",
                secref.trim(),
                plan.start,
                plan.delta_m
            ));
            return Ok(());
        }
        let r = parse_lhs(rest.trim())?;
        let arr = self.get(&r.array)?;
        let values: Vec<f64> = r
            .section
            .iter()
            .map(|i| arr.get(i).copied())
            .collect::<Result<_, _>>()
            .map_err(|e| ParseError(e.to_string()))?;
        self.output.push(format!("{} = {:?}", rest.trim(), values));
        Ok(())
    }

    /// `REDISTRIBUTE A CYCLIC(4)`.
    fn exec_redistribute(&mut self, rest: &str) -> Result<(), ParseError> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [name, format] = parts.as_slice() else {
            return err("REDISTRIBUTE syntax: `REDISTRIBUTE A CYCLIC(4)`");
        };
        let new_k = if let Some(inner) = format
            .strip_prefix("CYCLIC(")
            .and_then(|x| x.strip_suffix(')'))
        {
            inner
                .parse::<i64>()
                .map_err(|_| ParseError(format!("bad block size `{inner}`")))?
        } else if *format == "CYCLIC" {
            1
        } else if *format == "BLOCK" {
            let arr = self.get(name)?;
            (arr.len() + arr.p() - 1) / arr.p()
        } else {
            return err(format!("unknown distribution `{format}`"));
        };
        let arr = self.get(name)?;
        let new = redistribute(arr, new_k).map_err(|e| ParseError(e.to_string()))?;
        self.arrays.insert(name.to_string(), new);
        Ok(())
    }
}

/// Maps an (uppercased) statement line to a static span name. Longer
/// keywords are matched first (`INIT2` before `INIT`).
fn statement_span_name(upper: &str) -> &'static str {
    const KINDS: &[(&str, &str)] = &[
        ("INIT2 ", "rt.INIT2"),
        ("INIT ", "rt.INIT"),
        ("ASSIGN2 ", "rt.ASSIGN2"),
        ("ASSIGN ", "rt.ASSIGN"),
        ("PRINT2 ", "rt.PRINT2"),
        ("PRINT ", "rt.PRINT"),
        ("REDISTRIBUTE ", "rt.REDISTRIBUTE"),
        ("FORALL ", "rt.FORALL"),
        ("CSHIFT ", "rt.CSHIFT"),
    ];
    for (prefix, name) in KINDS {
        if upper.starts_with(prefix) {
            return name;
        }
    }
    "rt.statement"
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "
        PROCESSORS P(4)
        TEMPLATE T(400)
        REAL A(400)
        ALIGN A(i) WITH T(i)
        DISTRIBUTE T(CYCLIC(8)) ONTO P

        TEMPLATE TB(400)
        REAL B(400)
        ALIGN B(i) WITH TB(i)
        DISTRIBUTE TB(CYCLIC(5)) ONTO P

        INIT B LINEAR 1 0
        ASSIGN A(0:99:3) = 2 * B(0:330:10) + 1
        PRINT SUM A(0:99:3)
        PRINT A(0:9:3)
    ";

    #[test]
    fn script_executes_end_to_end() {
        let out = Interp::run(SCRIPT).unwrap();
        // A(3t) = 2·(10t) + 1 for t = 0..34; sum = 2·10·(33·34/2) + 34.
        let expect_sum = 20.0 * (33.0 * 34.0 / 2.0) + 34.0;
        assert_eq!(out[0], format!("SUM A(0:99:3) = {expect_sum}"));
        assert_eq!(out[1], "A(0:9:3) = [1.0, 21.0, 41.0, 61.0]");
    }

    #[test]
    fn self_reference_snapshots() {
        let out = Interp::run(
            "PROCESSORS P(2)
             TEMPLATE T(20)
             REAL A(20)
             ALIGN A(i) WITH T(i)
             DISTRIBUTE T(CYCLIC(3)) ONTO P
             INIT A LINEAR 1 0
             ASSIGN A(0:9:1) = A(10:19:1)
             PRINT A(0:9:1)",
        )
        .unwrap();
        assert_eq!(
            out[0],
            "A(0:9:1) = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0, 19.0]"
        );
    }

    #[test]
    fn redistribute_statement() {
        let out = Interp::run(
            "PROCESSORS P(4)
             TEMPLATE T(100)
             REAL A(100)
             ALIGN A(i) WITH T(i)
             DISTRIBUTE T(CYCLIC(8)) ONTO P
             INIT A LINEAR 3 1
             REDISTRIBUTE A CYCLIC(5)
             PRINT A(0:4:1)
             REDISTRIBUTE A BLOCK
             PRINT A(96:99:1)",
        )
        .unwrap();
        assert_eq!(out[0], "A(0:4:1) = [1.0, 4.0, 7.0, 10.0, 13.0]");
        assert_eq!(out[1], "A(96:99:1) = [289.0, 292.0, 295.0, 298.0]");
    }

    #[test]
    fn print_table_matches_paper() {
        let out = Interp::run(
            "PROCESSORS P(4)
             TEMPLATE T(320)
             REAL A(320)
             ALIGN A(i) WITH T(i)
             DISTRIBUTE T(CYCLIC(8)) ONTO P
             PRINT TABLE A(4:301:9) 1",
        )
        .unwrap();
        assert_eq!(
            out[0],
            "TABLE A(4:301:9) proc 1: start=Some(5) AM=[3, 12, 15, 12, 3, 12, 3, 12]"
        );
    }

    #[test]
    fn forall_statement() {
        let out = Interp::run(
            "PROCESSORS P(4)
             TEMPLATE T(300)
             REAL A(300)
             ALIGN A(i) WITH T(i)
             DISTRIBUTE T(CYCLIC(8)) ONTO P
             TEMPLATE TB(300)
             REAL B(300)
             ALIGN B(i) WITH TB(i)
             DISTRIBUTE TB(CYCLIC(5)) ONTO P
             INIT B LINEAR 1 0
             INIT A CONST 0
             FORALL I = 0:49:1 : A(3 * I) = B(2 * I) + B(0) + 1
             PRINT A(0:12:3)",
        )
        .unwrap();
        // A(3I) = 2I + 0 + 1.
        assert_eq!(out[0], "A(0:12:3) = [1.0, 3.0, 5.0, 7.0, 9.0]");
    }

    #[test]
    fn forall_with_offset_subscripts() {
        let out = Interp::run(
            "PROCESSORS P(2)
             TEMPLATE T(100)
             REAL A(100)
             ALIGN A(i) WITH T(i)
             DISTRIBUTE T(CYCLIC(4)) ONTO P
             INIT A LINEAR 1 0
             FORALL I = 0:40:2 : A(I + 10) = A(I) * 2
             PRINT A(10:16:2)",
        )
        .unwrap();
        // A(I+10) = 2·I for even I: A(10)=0, A(12)=4, A(14)=8, A(16)=12.
        assert_eq!(out[0], "A(10:16:2) = [0.0, 4.0, 8.0, 12.0]");
    }

    #[test]
    fn cshift_statement() {
        let out = Interp::run(
            "PROCESSORS P(4)
             TEMPLATE T(60)
             REAL A(60)
             ALIGN A(i) WITH T(i)
             DISTRIBUTE T(CYCLIC(3)) ONTO P
             TEMPLATE TB(60)
             REAL B(60)
             ALIGN B(i) WITH TB(i)
             DISTRIBUTE TB(CYCLIC(7)) ONTO P
             INIT B LINEAR 1 0
             CSHIFT A B 5
             PRINT A(0:3:1)
             PRINT A(55:59:1)",
        )
        .unwrap();
        assert_eq!(out[0], "A(0:3:1) = [5.0, 6.0, 7.0, 8.0]");
        assert_eq!(out[1], "A(55:59:1) = [0.0, 1.0, 2.0, 3.0, 4.0]");
    }

    #[test]
    fn print_stats_statement() {
        let out = Interp::run(
            "PROCESSORS P(4)
             TEMPLATE T(320)
             REAL A(320)
             ALIGN A(i) WITH T(i)
             DISTRIBUTE T(CYCLIC(8)) ONTO P
             PRINT STATS A(4:301:9)",
        )
        .unwrap();
        assert!(
            out[0].starts_with("STATS A(4:301:9) per_proc=["),
            "{}",
            out[0]
        );
        assert!(out[0].contains("imbalance="), "{}", out[0]);
    }

    #[test]
    fn rank2_statements() {
        let out = Interp::run(
            "PROCESSORS G(2, 2)
             TEMPLATE T2(24, 24)
             REAL M(24, 24)
             ALIGN M(i, j) WITH T2(i, j)
             DISTRIBUTE T2(CYCLIC(3), CYCLIC(4)) ONTO G

             PROCESSORS G2(2, 2)
             TEMPLATE T3(24, 24)
             REAL N(24, 24)
             ALIGN N(i, j) WITH T3(i, j)
             DISTRIBUTE T3(CYCLIC(5), CYCLIC(2)) ONTO G2

             INIT2 N LINEAR2 100 1 0
             ASSIGN2 M(0:23:1, 0:23:1) = N(0:23:1, 0:23:1)
             PRINT2 SUM M(0:1:1, 0:1:1)",
        )
        .unwrap();
        // N(i,j) = 100i + j; sum over the 2x2 corner = 0 + 1 + 100 + 101.
        assert_eq!(out[0], "SUM2 M(0:1:1, 0:1:1) = 202");
    }

    #[test]
    fn rank2_strided_copy_and_fill() {
        let out = Interp::run(
            "PROCESSORS G(2, 2)
             TEMPLATE T2(12, 12)
             REAL M(12, 12)
             ALIGN M(i, j) WITH T2(i, j)
             DISTRIBUTE T2(CYCLIC(2), CYCLIC(3)) ONTO G
             INIT2 M CONST 1
             ASSIGN2 M(1:11:2, 0:11:3) = 5
             PRINT2 SUM M(0:11:1, 0:11:1)",
        )
        .unwrap();
        // 6 rows x 4 cols raised from 1 to 5: total = 144 + 24*4 = 240.
        assert_eq!(out[0], "SUM2 M(0:11:1, 0:11:1) = 240");
    }

    #[test]
    fn fused_and_interpreted_scripts_print_identically() {
        // The same script through the fused statement compiler and the
        // interpreted gather/compute path must print bit-identical
        // output (the fused path's contract).
        use bcag_spmd::{set_default_fused, FusedMode};
        const AB_SCRIPT: &str = "
            PROCESSORS P(4)
            TEMPLATE T(400)
            REAL A(400)
            ALIGN A(i) WITH T(i)
            DISTRIBUTE T(CYCLIC(8)) ONTO P
            TEMPLATE TB(400)
            REAL B(400)
            ALIGN B(i) WITH TB(i)
            DISTRIBUTE TB(CYCLIC(5)) ONTO P
            INIT B LINEAR 1 0
            ASSIGN A(0:99:3) = 2 * B(0:330:10) + 1
            ASSIGN A(100:199:1) = A(0:99:1) * 0.5 - B(0:99:1)
            FORALL I = 0:49:1 : A(3 * I) = B(2 * I) + B(0) + 1
            PRINT SUM A(0:399:1)
            PRINT A(100:109:1)
        ";
        set_default_fused(FusedMode::On);
        let fused = Interp::run(AB_SCRIPT).unwrap();
        set_default_fused(FusedMode::Off);
        let interp = Interp::run(AB_SCRIPT).unwrap();
        set_default_fused(FusedMode::On);
        assert_eq!(fused, interp);
    }

    #[test]
    fn error_reporting_with_line_numbers() {
        let e = Interp::run(
            "PROCESSORS P(2)
             TEMPLATE T(10)
             REAL A(10)
             ALIGN A(i) WITH T(i)
             DISTRIBUTE T(BLOCK) ONTO P
             FROBNICATE A",
        )
        .unwrap_err();
        assert!(e.0.contains("line 6"), "{e}");
        assert!(e.0.contains("FROBNICATE"), "{e}");
    }

    #[test]
    fn nonconforming_assign_rejected() {
        let e = Interp::run(
            "PROCESSORS P(2)
             TEMPLATE T(50)
             REAL A(50)
             ALIGN A(i) WITH T(i)
             DISTRIBUTE T(CYCLIC(4)) ONTO P
             ASSIGN A(0:9:1) = A(0:20:2) + A(0:9:1)",
        )
        .unwrap_err();
        assert!(e.0.contains("conform"), "{e}");
    }
}
