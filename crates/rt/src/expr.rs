//! Expression parser and evaluator for array statements.
//!
//! Grammar (elementwise over conforming sections; scalars broadcast):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := NUMBER | NAME '(' triplet (',' triplet)* ')' | '(' expr ')'
//!           | '-' factor
//! ```
//!
//! Section references are collected left to right; evaluation receives the
//! per-rank operand values in that order, which is exactly the argument
//! convention of `bcag_spmd::assign_expr`.

use bcag_core::section::RegularSection;
use bcag_hpf::parse::{ParseError, Program};

/// A section reference appearing in an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionRef {
    /// Array name (uppercased).
    pub array: String,
    /// The 1-D section (the interpreter handles rank-1 arrays).
    pub section: RegularSection,
}

/// Expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A scalar literal, broadcast over the section extent.
    Num(f64),
    /// The `idx`-th collected section reference.
    Ref(usize),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Bin(Op, Box<Expr>, Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// A parsed expression plus its collected section references.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedExpr {
    /// The AST; `Expr::Ref(i)` indexes into `refs`.
    pub ast: Expr,
    /// Section references in left-to-right source order.
    pub refs: Vec<SectionRef>,
}

impl ParsedExpr {
    /// Evaluates at one section rank given the operand values (in `refs`
    /// order).
    pub fn eval(&self, args: &[f64]) -> f64 {
        eval_ast(&self.ast, args)
    }
}

/// Evaluates an AST over per-rank operand values.
pub fn eval_ast(e: &Expr, args: &[f64]) -> f64 {
    match e {
        Expr::Num(v) => *v,
        Expr::Ref(i) => args[*i],
        Expr::Neg(x) => -eval_ast(x, args),
        Expr::Bin(op, a, b) => {
            let (a, b) = (eval_ast(a, args), eval_ast(b, args));
            match op {
                Op::Add => a + b,
                Op::Sub => a - b,
                Op::Mul => a * b,
                Op::Div => a / b,
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Name(String),
    LParen,
    RParen,
    Plus,
    Minus,
    Star,
    Slash,
    Colon,
    Comma,
}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

fn tokenize(src: &str) -> Result<Vec<Tok>, ParseError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let v: f64 = text
                    .parse()
                    .map_err(|_| ParseError(format!("bad number `{text}`")))?;
                toks.push(Tok::Num(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Name(
                    chars[start..i]
                        .iter()
                        .collect::<String>()
                        .to_ascii_uppercase(),
                ));
            }
            other => return err(format!("unexpected character `{other}`")),
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    refs: Vec<SectionRef>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        match self.bump() {
            Some(got) if &got == t => Ok(()),
            got => err(format!("expected {t:?}, got {got:?}")),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => Op::Add,
                Some(Tok::Minus) => Op::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => Op::Mul,
                Some(Tok::Slash) => Op::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Minus) => Ok(Expr::Neg(Box::new(self.factor()?))),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Name(name)) => {
                self.expect(&Tok::LParen)?;
                // One triplet: l [: u [: s]] — numbers only.
                let l = self.number()? as i64;
                let (u, s) = if matches!(self.peek(), Some(Tok::Colon)) {
                    self.bump();
                    let u = self.number()? as i64;
                    let s = if matches!(self.peek(), Some(Tok::Colon)) {
                        self.bump();
                        // Allow a signed stride.
                        let neg = if matches!(self.peek(), Some(Tok::Minus)) {
                            self.bump();
                            true
                        } else {
                            false
                        };
                        let v = self.number()? as i64;
                        if neg {
                            -v
                        } else {
                            v
                        }
                    } else {
                        1
                    };
                    (u, s)
                } else {
                    (l, 1)
                };
                self.expect(&Tok::RParen)?;
                let section =
                    RegularSection::new(l, u, s).map_err(|e| ParseError(e.to_string()))?;
                let idx = self.refs.len();
                self.refs.push(SectionRef {
                    array: name,
                    section,
                });
                Ok(Expr::Ref(idx))
            }
            got => err(format!("unexpected token {got:?} in expression")),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.bump() {
            Some(Tok::Num(v)) => Ok(v),
            got => err(format!("expected a number, got {got:?}")),
        }
    }
}

/// Parses an expression source string.
pub fn parse_expr(src: &str) -> Result<ParsedExpr, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        refs: Vec::new(),
    };
    let ast = p.expr()?;
    if p.pos != p.toks.len() {
        return err(format!("trailing tokens after expression in `{src}`"));
    }
    Ok(ParsedExpr { ast, refs: p.refs })
}

/// Parses a left-hand side `A(l:u:s)` using the hpf section grammar.
pub fn parse_lhs(src: &str) -> Result<SectionRef, ParseError> {
    let (name, secs) = Program::parse_section(src)?;
    if secs.len() != 1 {
        return err("the interpreter handles rank-1 arrays");
    }
    Ok(SectionRef {
        array: name,
        section: secs[0],
    })
}

/// An array reference with an affine subscript `a·var + b` (FORALL bodies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineRef {
    /// Array name (uppercased).
    pub array: String,
    /// Coefficient of the FORALL variable (0 for a constant subscript).
    pub a: i64,
    /// Constant offset.
    pub b: i64,
}

/// A parsed FORALL-body expression: the AST plus affine references.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedAffineExpr {
    /// AST; `Expr::Ref(i)` indexes into `refs`.
    pub ast: Expr,
    /// Affine array references in source order.
    pub refs: Vec<AffineRef>,
}

impl ParsedAffineExpr {
    /// Evaluates at one iteration given the operand values in `refs` order.
    pub fn eval(&self, args: &[f64]) -> f64 {
        eval_ast(&self.ast, args)
    }
}

/// Parses an expression whose array subscripts are affine in `var`, e.g.
/// `2.5 * B(2*I) + C(I+10) - D(5)` with `var = "I"`.
pub fn parse_affine_expr(src: &str, var: &str) -> Result<ParsedAffineExpr, ParseError> {
    let toks = tokenize(src)?;
    let mut p = AffineParser {
        inner: Parser {
            toks,
            pos: 0,
            refs: Vec::new(),
        },
        var: var.to_ascii_uppercase(),
        refs: Vec::new(),
    };
    let ast = p.expr()?;
    if p.inner.pos != p.inner.toks.len() {
        return err(format!("trailing tokens after expression in `{src}`"));
    }
    Ok(ParsedAffineExpr { ast, refs: p.refs })
}

/// Parses an affine left-hand side `A(a*I+b)`.
pub fn parse_affine_lhs(src: &str, var: &str) -> Result<AffineRef, ParseError> {
    let e = parse_affine_expr(src, var)?;
    match (&e.ast, e.refs.len()) {
        (Expr::Ref(0), 1) => Ok(e.refs[0].clone()),
        _ => err(format!(
            "FORALL left-hand side must be a single reference, got `{src}`"
        )),
    }
}

struct AffineParser {
    inner: Parser,
    var: String,
    refs: Vec<AffineRef>,
}

impl AffineParser {
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.inner.peek() {
                Some(Tok::Plus) => Op::Add,
                Some(Tok::Minus) => Op::Sub,
                _ => break,
            };
            self.inner.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.inner.peek() {
                Some(Tok::Star) => Op::Mul,
                Some(Tok::Slash) => Op::Div,
                _ => break,
            };
            self.inner.bump();
            let rhs = self.factor()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.inner.bump() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Minus) => Ok(Expr::Neg(Box::new(self.factor()?))),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.inner.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Name(name)) if name == self.var => {
                // A bare use of the variable as a value is not supported;
                // the variable only appears inside subscripts.
                err(format!(
                    "FORALL variable `{name}` may only appear inside subscripts"
                ))
            }
            Some(Tok::Name(name)) => {
                self.inner.expect(&Tok::LParen)?;
                let (a, b) = self.affine()?;
                self.inner.expect(&Tok::RParen)?;
                let idx = self.refs.len();
                self.refs.push(AffineRef { array: name, a, b });
                Ok(Expr::Ref(idx))
            }
            got => err(format!("unexpected token {got:?} in FORALL expression")),
        }
    }

    /// Parses `NUM`, `VAR`, `NUM*VAR`, `VAR*NUM`, each optionally `±NUM`.
    fn affine(&mut self) -> Result<(i64, i64), ParseError> {
        let (mut a, mut b) = (0i64, 0i64);
        // Leading term.
        match self.inner.bump() {
            Some(Tok::Num(v)) => {
                if matches!(self.inner.peek(), Some(Tok::Star)) {
                    self.inner.bump();
                    match self.inner.bump() {
                        Some(Tok::Name(n)) if n == self.var => a = v as i64,
                        got => return err(format!("expected the FORALL variable, got {got:?}")),
                    }
                } else {
                    b = v as i64;
                }
            }
            Some(Tok::Name(n)) if n == self.var => {
                a = 1;
                if matches!(self.inner.peek(), Some(Tok::Star)) {
                    self.inner.bump();
                    match self.inner.bump() {
                        Some(Tok::Num(v)) => a = v as i64,
                        got => return err(format!("expected a coefficient, got {got:?}")),
                    }
                }
            }
            got => return err(format!("bad affine subscript start: {got:?}")),
        }
        // Optional offset.
        match self.inner.peek() {
            Some(Tok::Plus) => {
                self.inner.bump();
                match self.inner.bump() {
                    Some(Tok::Num(v)) => b += v as i64,
                    got => return err(format!("expected an offset, got {got:?}")),
                }
            }
            Some(Tok::Minus) => {
                self.inner.bump();
                match self.inner.bump() {
                    Some(Tok::Num(v)) => b -= v as i64,
                    got => return err(format!("expected an offset, got {got:?}")),
                }
            }
            _ => {}
        }
        Ok((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_triad() {
        let e = parse_expr("2.5 * B(2:200:2) + C(10:109)").unwrap();
        assert_eq!(e.refs.len(), 2);
        assert_eq!(e.refs[0].array, "B");
        assert_eq!(
            (
                e.refs[0].section.l,
                e.refs[0].section.u,
                e.refs[0].section.s
            ),
            (2, 200, 2)
        );
        assert_eq!(e.refs[1].section.s, 1);
        assert_eq!(e.eval(&[4.0, 7.0]), 2.5 * 4.0 + 7.0);
    }

    #[test]
    fn precedence_and_parens() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.eval(&[]), 7.0);
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.eval(&[]), 9.0);
        let e = parse_expr("-2 * 3 + 10 / 4").unwrap();
        assert_eq!(e.eval(&[]), -6.0 + 2.5);
    }

    #[test]
    fn negative_stride_sections() {
        let e = parse_expr("A(99:0:-3)").unwrap();
        assert_eq!(e.refs[0].section.s, -3);
    }

    #[test]
    fn errors() {
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("B(1:2:0)").is_err()); // zero stride
        assert!(parse_expr("$").is_err());
        assert!(parse_expr("1 2").is_err());
        assert!(parse_expr("B(1").is_err());
    }

    #[test]
    fn lhs_parsing() {
        let r = parse_lhs("A(0:99:3)").unwrap();
        assert_eq!(r.array, "A");
        assert_eq!((r.section.l, r.section.u, r.section.s), (0, 99, 3));
        assert!(parse_lhs("A(0:9, 0:9)").is_err());
    }
}
