//! `bcag` — command-line explorer for block-cyclic address generation.
//!
//! Subcommands:
//!
//! * `table`  — print a processor's start location and AM gap table
//! * `layout` — render the cyclic(k) layout with a section highlighted
//!   (the paper's Figure 1)
//! * `visits` — render the points one processor's walk visits (Figure 6)
//! * `basis`  — show the lattice basis vectors R and L (Figures 3/4)
//! * `plan`   — show the full per-processor node plans for a bounded
//!   section (starts, lasts, table lengths)
//!
//! Run `bcag help` for flags.

mod args;
mod cmds;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        Some("table") => cmds::table(&argv[1..]),
        Some("layout") => cmds::layout(&argv[1..]),
        Some("visits") => cmds::visits(&argv[1..]),
        Some("basis") => cmds::basis(&argv[1..]),
        Some("plan") => cmds::plan(&argv[1..]),
        Some("hpf") => cmds::hpf(&argv[1..]),
        Some("codegen") => cmds::codegen(&argv[1..]),
        Some("verify") => cmds::verify(&argv[1..]),
        Some("run") => cmds::run_script(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            0
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`\n");
            print_help();
            2
        }
    };
    std::process::exit(code);
}

fn print_help() {
    println!(
        "bcag — block-cyclic address generation (Kennedy, Nedeljkovic, Sethi; PPOPP'95)

USAGE:
    bcag <subcommand> [flags]

SUBCOMMANDS:
    table   --p P --k K --l L --s S [--m M] [--method NAME]
            Print start location and AM gap table (all processors, or just M).
            Methods: lattice (default), sorting, sorting-cmp, sorting-radix,
            hiranandani, oracle.
    layout  --p P --k K --l L --s S [--rows R]
            Render the layout with the section boxed (paper Figure 1).
    visits  --p P --k K --l L --s S --m M [--rows R]
            Render the points processor M's walk visits (paper Figure 6).
    basis   --p P --k K --s S
            Show the lattice basis vectors R and L (paper Figures 3/4).
    plan    --p P --k K --l L --u U --s S
            Show per-processor node plans for the bounded section.
    hpf     --file FILE --section 'A(l:u:s, ...)' [--proc M]
            Parse HPF-style directives from FILE and enumerate a section.
    codegen --p P --k K --l L --u U --s S --m M [--shape a|b|c|d] [--value V]
            Emit the C node code of Figure 8 with tables folded in.
    verify  [--max-p N] [--max-k N] [--max-s N] [--trials N] [--seed N]
            Differential check: all methods vs the brute-force oracle.
    run     --file FILE
            Interpret an HPF-like script (directives + INIT/ASSIGN/PRINT/
            REDISTRIBUTE statements) on the simulated machine.

EXAMPLE (the paper's worked example):
    bcag table --p 4 --k 8 --l 4 --s 9 --m 1"
    );
}
