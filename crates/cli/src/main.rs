//! `bcag` — command-line explorer for block-cyclic address generation.
//!
//! Subcommands:
//!
//! * `table`  — print a processor's start location and AM gap table
//! * `layout` — render the cyclic(k) layout with a section highlighted
//!   (the paper's Figure 1)
//! * `visits` — render the points one processor's walk visits (Figure 6)
//! * `basis`  — show the lattice basis vectors R and L (Figures 3/4)
//! * `plan`   — show the full per-processor node plans for a bounded
//!   section (starts, lasts, table lengths)
//! * `trace`  — run a workload with tracing on and write `bcag-trace/v2`
//!   summary + chrome://tracing artifacts (and, with `--prom`, a
//!   Prometheus text exposition)
//! * `stats`  — run a script and print the statement flight recorder,
//!   schedule-cache effectiveness and headline latency percentiles
//!
//! Every subcommand additionally accepts the global `--trace OUT.json`
//! flag, which records a trace of the whole command and writes the same
//! two artifacts. Run `bcag help` for flags.

mod args;
mod cmds;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = match args::extract_global(&mut argv, "trace") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let sub = argv.first().map(String::as_str);
    // `bcag trace` and `bcag stats` manage the trace session themselves,
    // and `bcag spmd` merges its children's traces; for every other
    // subcommand the global `--trace OUT` flag wraps the whole dispatch.
    let wrap = trace_out.is_some()
        && !matches!(
            sub,
            Some("trace") | Some("stats") | Some("spmd") | Some("spmd-node")
        );
    if wrap {
        bcag_trace::start();
    }
    let code = match sub {
        Some("table") => cmds::table(&argv[1..]),
        Some("layout") => cmds::layout(&argv[1..]),
        Some("visits") => cmds::visits(&argv[1..]),
        Some("basis") => cmds::basis(&argv[1..]),
        Some("plan") => cmds::plan(&argv[1..]),
        Some("hpf") => cmds::hpf(&argv[1..]),
        Some("codegen") => cmds::codegen(&argv[1..]),
        Some("verify") => cmds::verify(&argv[1..]),
        Some("run") => cmds::run_script(&argv[1..]),
        Some("spmd") => cmds::spmd(&argv[1..], trace_out.as_deref()),
        Some("spmd-node") => cmds::spmd_node(&argv[1..]),
        Some("trace") => cmds::trace(&argv[1..], trace_out.as_deref()),
        Some("stats") => cmds::stats(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            0
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`\n");
            print_help();
            2
        }
    };
    if wrap {
        let trace = bcag_trace::stop();
        let out = trace_out.as_deref().unwrap_or("TRACE.json");
        if let Err(e) = cmds::write_trace_artifacts(&trace, out) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    std::process::exit(code);
}

fn print_help() {
    println!(
        "bcag — block-cyclic address generation (Kennedy, Nedeljkovic, Sethi; PPOPP'95)

USAGE:
    bcag <subcommand> [flags] [--trace OUT.json]

SUBCOMMANDS:
    table   --p P --k K --l L --s S [--m M] [--method NAME]
            Print start location and AM gap table (all processors, or just M).
            Methods: lattice (default), sorting, sorting-cmp, sorting-radix,
            hiranandani, oracle.
    layout  --p P --k K --l L --s S [--rows R]
            Render the layout with the section boxed (paper Figure 1).
    visits  --p P --k K --l L --s S --m M [--rows R]
            Render the points processor M's walk visits (paper Figure 6).
    basis   --p P --k K --s S
            Show the lattice basis vectors R and L (paper Figures 3/4).
    plan    --p P --k K --l L --u U --s S
            Show per-processor node plans for the bounded section.
    hpf     --file FILE --section 'A(l:u:s, ...)' [--proc M]
            Parse HPF-style directives from FILE and enumerate a section.
    codegen --p P --k K --l L --u U --s S --m M [--shape a|b|c|d] [--value V]
            Emit the C node code of Figure 8 with tables folded in.
    verify  [--max-p N] [--max-k N] [--max-s N] [--trials N] [--seed N]
            Differential check: all methods vs the brute-force oracle.
    run     --file FILE
            Interpret an HPF-like script (directives + INIT/ASSIGN/PRINT/
            REDISTRIBUTE statements) on the simulated machine.
    spmd    --file FILE --procs P [--trace OUT.json]
            Interpret the script across P real OS processes, one per node,
            exchanging the serialized wire format over pipes. P must match
            the script's PROCESSORS size. With --trace, each node records
            its own lane and the merged timeline is written to OUT.json.
    trace   [SCRIPT | --file SCRIPT] [--p P] [--k K] [--prom OUT.prom]
            [--trace OUT.json]
            Run SCRIPT (or a built-in synthetic workload) with tracing on
            and write a bcag-trace/v2 summary to OUT.json (default
            TRACE.json) plus a chrome://tracing event file next to it
            (OUT.chrome.json); also prints a top-spans table and the
            latency-histogram percentiles. --p/--k override PROCESSORS/
            CYCLIC sizes in the script's directives; --prom additionally
            writes a Prometheus text exposition.
    stats   [SCRIPT | --file SCRIPT] [--p P] [--k K] [--last N]
            Interpret SCRIPT (or a small built-in one) with tracing on and
            print the flight recorder's last N statements (default 16),
            schedule-cache hit rate/occupancy/evictions and the headline
            latency percentiles. No JSON artifacts.

GLOBAL FLAGS:
    --trace OUT.json
            Trace any subcommand: record spans and counters across the
            run and write the same two artifacts.

EXAMPLE (the paper's worked example):
    bcag table --p 4 --k 8 --l 4 --s 9 --m 1
    bcag trace --p 32 --k 8 examples/scripts/triad.hpf --trace out.json"
    );
}
