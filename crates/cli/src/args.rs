//! Minimal flag parsing for the `bcag` CLI (no external dependencies).

use std::collections::HashMap;

/// Parsed `--flag value` pairs.
pub struct Flags {
    map: HashMap<String, String>,
}

impl Flags {
    /// Parses `--name value` pairs; returns an error message on malformed
    /// input or unknown flags.
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("expected a --flag, got `{arg}`"));
            };
            if !allowed.contains(&name) {
                return Err(format!(
                    "unknown flag `--{name}` (allowed: {})",
                    allowed.join(", ")
                ));
            }
            let Some(value) = it.next() else {
                return Err(format!("flag `--{name}` needs a value"));
            };
            map.insert(name.to_string(), value.clone());
        }
        Ok(Flags { map })
    }

    /// Required integer flag.
    pub fn req_i64(&self, name: &str) -> Result<i64, String> {
        self.map
            .get(name)
            .ok_or_else(|| format!("missing required flag `--{name}`"))?
            .parse()
            .map_err(|_| format!("flag `--{name}` must be an integer"))
    }

    /// Optional integer flag with a default.
    pub fn opt_i64(&self, name: &str, default: i64) -> Result<i64, String> {
        match self.map.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag `--{name}` must be an integer")),
        }
    }

    /// Optional string flag.
    pub fn opt_str(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }
}

/// Removes a global `--name value` pair from `argv` wherever it appears,
/// returning its value. Global flags (like `--trace`) are extracted before
/// subcommand flag parsing so every subcommand accepts them uniformly.
pub fn extract_global(argv: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let long = format!("--{name}");
    let Some(pos) = argv.iter().position(|a| *a == long) else {
        return Ok(None);
    };
    if pos + 1 >= argv.len() {
        return Err(format!("flag `--{name}` needs a value"));
    }
    let value = argv.remove(pos + 1);
    argv.remove(pos);
    if argv.iter().any(|a| *a == long) {
        return Err(format!("flag `--{name}` given more than once"));
    }
    Ok(Some(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let f = Flags::parse(&argv(&["--p", "4", "--k", "8"]), &["p", "k"]).unwrap();
        assert_eq!(f.req_i64("p").unwrap(), 4);
        assert_eq!(f.req_i64("k").unwrap(), 8);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Flags::parse(&argv(&["--x", "1"]), &["p"]).is_err());
        assert!(Flags::parse(&argv(&["p", "1"]), &["p"]).is_err());
        assert!(Flags::parse(&argv(&["--p"]), &["p"]).is_err());
    }

    #[test]
    fn required_and_optional_semantics() {
        let f = Flags::parse(&argv(&["--p", "4"]), &["p", "k", "method"]).unwrap();
        assert!(f.req_i64("k").is_err());
        assert_eq!(f.opt_i64("k", 9).unwrap(), 9);
        assert_eq!(f.opt_str("method"), None);
        let f = Flags::parse(&argv(&["--p", "x"]), &["p"]).unwrap();
        assert!(f.req_i64("p").is_err());
        assert!(f.opt_i64("p", 0).is_err());
    }

    #[test]
    fn negative_numbers_parse() {
        let f = Flags::parse(&argv(&["--s", "-9"]), &["s"]).unwrap();
        assert_eq!(f.req_i64("s").unwrap(), -9);
    }

    #[test]
    fn extract_global_removes_pair_anywhere() {
        let mut v = argv(&["table", "--p", "4", "--trace", "out.json", "--k", "8"]);
        let got = extract_global(&mut v, "trace").unwrap();
        assert_eq!(got.as_deref(), Some("out.json"));
        assert_eq!(v, argv(&["table", "--p", "4", "--k", "8"]));

        let mut v = argv(&["--trace", "t.json", "run", "--file", "x"]);
        assert_eq!(
            extract_global(&mut v, "trace").unwrap().as_deref(),
            Some("t.json")
        );
        assert_eq!(v, argv(&["run", "--file", "x"]));
    }

    #[test]
    fn extract_global_absent_and_malformed() {
        let mut v = argv(&["table", "--p", "4"]);
        assert_eq!(extract_global(&mut v, "trace").unwrap(), None);
        assert_eq!(v, argv(&["table", "--p", "4"]));

        let mut v = argv(&["run", "--trace"]);
        assert!(extract_global(&mut v, "trace").is_err());

        let mut v = argv(&["--trace", "a", "--trace", "b"]);
        assert!(extract_global(&mut v, "trace").is_err());
    }
}
