//! Minimal flag parsing for the `bcag` CLI (no external dependencies).

use std::collections::HashMap;

/// Parsed `--flag value` pairs.
pub struct Flags {
    map: HashMap<String, String>,
}

impl Flags {
    /// Parses `--name value` pairs; returns an error message on malformed
    /// input or unknown flags.
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("expected a --flag, got `{arg}`"));
            };
            if !allowed.contains(&name) {
                return Err(format!(
                    "unknown flag `--{name}` (allowed: {})",
                    allowed.join(", ")
                ));
            }
            let Some(value) = it.next() else {
                return Err(format!("flag `--{name}` needs a value"));
            };
            map.insert(name.to_string(), value.clone());
        }
        Ok(Flags { map })
    }

    /// Required integer flag.
    pub fn req_i64(&self, name: &str) -> Result<i64, String> {
        self.map
            .get(name)
            .ok_or_else(|| format!("missing required flag `--{name}`"))?
            .parse()
            .map_err(|_| format!("flag `--{name}` must be an integer"))
    }

    /// Optional integer flag with a default.
    pub fn opt_i64(&self, name: &str, default: i64) -> Result<i64, String> {
        match self.map.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag `--{name}` must be an integer")),
        }
    }

    /// Optional string flag.
    pub fn opt_str(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let f = Flags::parse(&argv(&["--p", "4", "--k", "8"]), &["p", "k"]).unwrap();
        assert_eq!(f.req_i64("p").unwrap(), 4);
        assert_eq!(f.req_i64("k").unwrap(), 8);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Flags::parse(&argv(&["--x", "1"]), &["p"]).is_err());
        assert!(Flags::parse(&argv(&["p", "1"]), &["p"]).is_err());
        assert!(Flags::parse(&argv(&["--p"]), &["p"]).is_err());
    }

    #[test]
    fn required_and_optional_semantics() {
        let f = Flags::parse(&argv(&["--p", "4"]), &["p", "k", "method"]).unwrap();
        assert!(f.req_i64("k").is_err());
        assert_eq!(f.opt_i64("k", 9).unwrap(), 9);
        assert_eq!(f.opt_str("method"), None);
        let f = Flags::parse(&argv(&["--p", "x"]), &["p"]).unwrap();
        assert!(f.req_i64("p").is_err());
        assert!(f.opt_i64("p", 0).is_err());
    }

    #[test]
    fn negative_numbers_parse() {
        let f = Flags::parse(&argv(&["--s", "-9"]), &["s"]).unwrap();
        assert_eq!(f.req_i64("s").unwrap(), -9);
    }
}
