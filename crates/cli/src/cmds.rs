//! Implementations of the `bcag` subcommands.

use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;
use bcag_core::viz;
use bcag_spmd::assign::plan_section;

use crate::args::Flags;

fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    2
}

fn parse_method(name: Option<&str>) -> Result<Method, String> {
    match name.unwrap_or("lattice") {
        "lattice" => Ok(Method::Lattice),
        "sorting" => Ok(Method::SortingAuto),
        "sorting-cmp" => Ok(Method::SortingComparison),
        "sorting-radix" => Ok(Method::SortingRadix),
        "hiranandani" => Ok(Method::Hiranandani),
        "oracle" => Ok(Method::Oracle),
        other => Err(format!("unknown method `{other}`")),
    }
}

/// `bcag table`: start location + AM table per processor.
pub fn table(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "l", "s", "m", "method"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let l = flags.req_i64("l")?;
        let s = flags.req_i64("s")?;
        let method = parse_method(flags.opt_str("method"))?;
        let problem = Problem::new(p, k, l, s).map_err(|e| e.to_string())?;
        let procs: Vec<i64> = match flags.opt_i64("m", -1)? {
            -1 => (0..p).collect(),
            m => vec![m],
        };
        println!(
            "p={p} k={k} l={l} s={s} d={}, method={}",
            problem.d(),
            method.name()
        );
        for m in procs {
            let pat = build(&problem, m, method).map_err(|e| e.to_string())?;
            match pat.start_global() {
                None => println!("proc {m}: no section elements"),
                Some(g) => println!(
                    "proc {m}: start global={g} local={} length={} AM={:?}",
                    pat.start_local().unwrap(),
                    pat.len(),
                    pat.gaps()
                ),
            }
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag layout`: Figure-1 rendering.
pub fn layout(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "l", "s", "rows"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let l = flags.req_i64("l")?;
        let s = flags.req_i64("s")?;
        let rows = flags.opt_i64("rows", 10)?;
        let problem = Problem::new(p, k, l, s).map_err(|e| e.to_string())?;
        print!("{}", viz::render_section(&problem, rows));
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag visits`: Figure-6 rendering for one processor.
pub fn visits(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "l", "s", "m", "rows"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let l = flags.req_i64("l")?;
        let s = flags.req_i64("s")?;
        let m = flags.req_i64("m")?;
        let rows = flags.opt_i64("rows", 10)?;
        let problem = Problem::new(p, k, l, s).map_err(|e| e.to_string())?;
        let pat = build(&problem, m, Method::Lattice).map_err(|e| e.to_string())?;
        print!("{}", viz::render_visits(&pat, rows));
        println!("legend: (l)=lower bound  <i>=visited by proc {m}  [i]=other section element");
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag basis`: R and L.
pub fn basis(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "s"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let s = flags.req_i64("s")?;
        let problem = Problem::new(p, k, 0, s).map_err(|e| e.to_string())?;
        println!("{}", viz::describe_basis(&problem));
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag run`: interpret a directive + statement script.
pub fn run_script(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["file"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let file = flags
            .opt_str("file")
            .ok_or("missing required flag `--file`")?;
        let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let out = bcag_rt::Interp::run(&src).map_err(|e| e.to_string())?;
        for line in out {
            println!("{line}");
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag codegen`: emit C node code for a shape (paper Figure 8).
pub fn codegen(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "l", "u", "s", "m", "shape", "value"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let l = flags.req_i64("l")?;
        let u = flags.req_i64("u")?;
        let s = flags.req_i64("s")?;
        let m = flags.req_i64("m")?;
        let shape = match flags.opt_str("shape").unwrap_or("b") {
            "a" | "mod" => bcag_core::codegen::Shape::ModLoop,
            "b" | "branch" => bcag_core::codegen::Shape::BranchLoop,
            "c" | "split" => bcag_core::codegen::Shape::SplitLoop,
            "d" | "two-table" => bcag_core::codegen::Shape::TwoTableLoop,
            other => return Err(format!("unknown shape `{other}` (a|b|c|d)")),
        };
        let value = flags.opt_str("value").unwrap_or("100.0").to_string();
        let problem = Problem::new(p, k, l, s).map_err(|e| e.to_string())?;
        let pattern = build(&problem, m, Method::Lattice).map_err(|e| e.to_string())?;
        let c = bcag_core::codegen::emit_c(&problem, m, u, &pattern, shape, &value)
            .map_err(|e| e.to_string())?;
        print!("{c}");
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag verify`: differential check of all methods over a parameter sweep.
pub fn verify(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["max-p", "max-k", "max-s", "trials", "seed"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let max_p = flags.opt_i64("max-p", 8)?;
        let max_k = flags.opt_i64("max-k", 32)?;
        let max_s = flags.opt_i64("max-s", 0)?; // 0 => 4·p·k
        let trials = flags.opt_i64("trials", 500)?;
        let mut state = flags.opt_i64("seed", 0x5EED)? as u64 | 1;
        let mut next = move |bound: i64| -> i64 {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            ((state.wrapping_mul(0x2545F4914F6CDD1D) >> 32) as i64).rem_euclid(bound.max(1))
        };
        let mut checked = 0u64;
        for _ in 0..trials {
            let p = 1 + next(max_p);
            let k = 1 + next(max_k);
            let s_bound = if max_s > 0 { max_s } else { 4 * p * k };
            let s = 1 + next(s_bound);
            let l = next(3 * s);
            let problem = Problem::new(p, k, l, s).map_err(|e| e.to_string())?;
            if problem.period_elements() > 100_000 {
                continue; // keep the oracle affordable
            }
            for m in 0..p {
                let reference = build(&problem, m, Method::Oracle).map_err(|e| e.to_string())?;
                for method in [
                    Method::Lattice,
                    Method::SortingComparison,
                    Method::SortingRadix,
                ] {
                    let pat = build(&problem, m, method).map_err(|e| e.to_string())?;
                    if pat != reference {
                        return Err(format!(
                            "MISMATCH: {} vs oracle at p={p} k={k} l={l} s={s} m={m}",
                            method.name()
                        ));
                    }
                }
                checked += 1;
            }
        }
        println!("verified {checked} (parameters, processor) pairs: all methods agree ✓");
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag hpf`: parse an HPF directive file and enumerate a section.
pub fn hpf(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["file", "section", "proc"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let file = flags
            .opt_str("file")
            .ok_or("missing required flag `--file`")?;
        let section = flags
            .opt_str("section")
            .ok_or("missing required flag `--section` (e.g. \"A(4:301:9)\")")?;
        let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let prog = bcag_hpf::Program::parse(&src).map_err(|e| e.to_string())?;
        let (name, secs) = bcag_hpf::Program::parse_section(section).map_err(|e| e.to_string())?;
        let map = prog.array_map(&name).map_err(|e| e.to_string())?;
        let procs: Vec<i64> = match flags.opt_i64("proc", -1)? {
            -1 => (0..map.grid().size()).collect(),
            m => vec![m],
        };
        println!(
            "array {name}: rank {}, grid {:?}, block sizes {:?}",
            map.rank(),
            map.grid().extents(),
            map.dims()
                .iter()
                .map(|d| d.block_size())
                .collect::<Vec<_>>()
        );
        for rank in procs {
            let coords = map.grid().delinearize(rank).map_err(|e| e.to_string())?;
            let accesses = map
                .section_accesses(&coords, &secs, Method::Lattice)
                .map_err(|e| e.to_string())?;
            print!("proc {rank} {coords:?}: {} accesses;", accesses.len());
            for (idx, local) in accesses.iter().take(12) {
                print!(" {idx:?}@{local}");
            }
            if accesses.len() > 12 {
                print!(" ...");
            }
            println!();
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag plan`: bounded-section node plans.
pub fn plan(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "l", "u", "s"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let l = flags.req_i64("l")?;
        let u = flags.req_i64("u")?;
        let s = flags.req_i64("s")?;
        let section = RegularSection::new(l, u, s).map_err(|e| e.to_string())?;
        let plans = plan_section(p, k, &section, Method::Lattice).map_err(|e| e.to_string())?;
        println!(
            "section {l}:{u}:{s} over p={p} k={k} ({} elements)",
            section.count()
        );
        for (m, plan) in plans.iter().enumerate() {
            match plan.start {
                None => println!("proc {m}: idle"),
                Some(start) => println!(
                    "proc {m}: start_local={start} last_local={} table_len={}",
                    plan.last,
                    plan.delta_m.len()
                ),
            }
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}
