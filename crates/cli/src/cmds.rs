//! Implementations of the `bcag` subcommands.

use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;
use bcag_core::viz;
use bcag_spmd::assign::plan_section;

use crate::args::Flags;

fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    2
}

fn parse_method(name: Option<&str>) -> Result<Method, String> {
    match name.unwrap_or("lattice") {
        "lattice" => Ok(Method::Lattice),
        "sorting" => Ok(Method::SortingAuto),
        "sorting-cmp" => Ok(Method::SortingComparison),
        "sorting-radix" => Ok(Method::SortingRadix),
        "hiranandani" => Ok(Method::Hiranandani),
        "oracle" => Ok(Method::Oracle),
        other => Err(format!("unknown method `{other}`")),
    }
}

/// `bcag table`: start location + AM table per processor.
pub fn table(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "l", "s", "m", "method"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let l = flags.req_i64("l")?;
        let s = flags.req_i64("s")?;
        let method = parse_method(flags.opt_str("method"))?;
        let problem = Problem::new(p, k, l, s).map_err(|e| e.to_string())?;
        let procs: Vec<i64> = match flags.opt_i64("m", -1)? {
            -1 => (0..p).collect(),
            m => vec![m],
        };
        println!(
            "p={p} k={k} l={l} s={s} d={}, method={}",
            problem.d(),
            method.name()
        );
        for m in procs {
            let pat = build(&problem, m, method).map_err(|e| e.to_string())?;
            match pat.start_global() {
                None => println!("proc {m}: no section elements"),
                Some(g) => println!(
                    "proc {m}: start global={g} local={} length={} AM={:?}",
                    pat.start_local().unwrap(),
                    pat.len(),
                    pat.gaps()
                ),
            }
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag layout`: Figure-1 rendering.
pub fn layout(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "l", "s", "rows"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let l = flags.req_i64("l")?;
        let s = flags.req_i64("s")?;
        let rows = flags.opt_i64("rows", 10)?;
        let problem = Problem::new(p, k, l, s).map_err(|e| e.to_string())?;
        print!("{}", viz::render_section(&problem, rows));
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag visits`: Figure-6 rendering for one processor.
pub fn visits(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "l", "s", "m", "rows"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let l = flags.req_i64("l")?;
        let s = flags.req_i64("s")?;
        let m = flags.req_i64("m")?;
        let rows = flags.opt_i64("rows", 10)?;
        let problem = Problem::new(p, k, l, s).map_err(|e| e.to_string())?;
        let pat = build(&problem, m, Method::Lattice).map_err(|e| e.to_string())?;
        print!("{}", viz::render_visits(&pat, rows));
        println!("legend: (l)=lower bound  <i>=visited by proc {m}  [i]=other section element");
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag basis`: R and L.
pub fn basis(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "s"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let s = flags.req_i64("s")?;
        let problem = Problem::new(p, k, 0, s).map_err(|e| e.to_string())?;
        println!("{}", viz::describe_basis(&problem));
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag run`: interpret a directive + statement script.
pub fn run_script(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["file"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let file = flags
            .opt_str("file")
            .ok_or("missing required flag `--file`")?;
        let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let out = bcag_rt::Interp::run(&src).map_err(|e| e.to_string())?;
        for line in out {
            println!("{line}");
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag codegen`: emit C node code for a shape (paper Figure 8).
pub fn codegen(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "l", "u", "s", "m", "shape", "value"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let l = flags.req_i64("l")?;
        let u = flags.req_i64("u")?;
        let s = flags.req_i64("s")?;
        let m = flags.req_i64("m")?;
        let shape = match flags.opt_str("shape").unwrap_or("b") {
            "a" | "mod" => bcag_core::codegen::Shape::ModLoop,
            "b" | "branch" => bcag_core::codegen::Shape::BranchLoop,
            "c" | "split" => bcag_core::codegen::Shape::SplitLoop,
            "d" | "two-table" => bcag_core::codegen::Shape::TwoTableLoop,
            other => return Err(format!("unknown shape `{other}` (a|b|c|d)")),
        };
        let value = flags.opt_str("value").unwrap_or("100.0").to_string();
        let problem = Problem::new(p, k, l, s).map_err(|e| e.to_string())?;
        let pattern = build(&problem, m, Method::Lattice).map_err(|e| e.to_string())?;
        let c = bcag_core::codegen::emit_c(&problem, m, u, &pattern, shape, &value)
            .map_err(|e| e.to_string())?;
        print!("{c}");
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag verify`: differential check of all methods over a parameter sweep.
pub fn verify(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["max-p", "max-k", "max-s", "trials", "seed"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let max_p = flags.opt_i64("max-p", 8)?;
        let max_k = flags.opt_i64("max-k", 32)?;
        let max_s = flags.opt_i64("max-s", 0)?; // 0 => 4·p·k
        let trials = flags.opt_i64("trials", 500)?;
        let mut state = flags.opt_i64("seed", 0x5EED)? as u64 | 1;
        let mut next = move |bound: i64| -> i64 {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            ((state.wrapping_mul(0x2545F4914F6CDD1D) >> 32) as i64).rem_euclid(bound.max(1))
        };
        let mut checked = 0u64;
        for _ in 0..trials {
            let p = 1 + next(max_p);
            let k = 1 + next(max_k);
            let s_bound = if max_s > 0 { max_s } else { 4 * p * k };
            let s = 1 + next(s_bound);
            let l = next(3 * s);
            let problem = Problem::new(p, k, l, s).map_err(|e| e.to_string())?;
            if problem.period_elements() > 100_000 {
                continue; // keep the oracle affordable
            }
            for m in 0..p {
                let reference = build(&problem, m, Method::Oracle).map_err(|e| e.to_string())?;
                for method in [
                    Method::Lattice,
                    Method::SortingComparison,
                    Method::SortingRadix,
                ] {
                    let pat = build(&problem, m, method).map_err(|e| e.to_string())?;
                    if pat != reference {
                        return Err(format!(
                            "MISMATCH: {} vs oracle at p={p} k={k} l={l} s={s} m={m}",
                            method.name()
                        ));
                    }
                }
                checked += 1;
            }
        }
        println!("verified {checked} (parameters, processor) pairs: all methods agree ✓");
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag hpf`: parse an HPF directive file and enumerate a section.
pub fn hpf(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["file", "section", "proc"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let file = flags
            .opt_str("file")
            .ok_or("missing required flag `--file`")?;
        let section = flags
            .opt_str("section")
            .ok_or("missing required flag `--section` (e.g. \"A(4:301:9)\")")?;
        let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let prog = bcag_hpf::Program::parse(&src).map_err(|e| e.to_string())?;
        let (name, secs) = bcag_hpf::Program::parse_section(section).map_err(|e| e.to_string())?;
        let map = prog.array_map(&name).map_err(|e| e.to_string())?;
        let procs: Vec<i64> = match flags.opt_i64("proc", -1)? {
            -1 => (0..map.grid().size()).collect(),
            m => vec![m],
        };
        println!(
            "array {name}: rank {}, grid {:?}, block sizes {:?}",
            map.rank(),
            map.grid().extents(),
            map.dims()
                .iter()
                .map(|d| d.block_size())
                .collect::<Vec<_>>()
        );
        for rank in procs {
            let coords = map.grid().delinearize(rank).map_err(|e| e.to_string())?;
            let accesses = map
                .section_accesses(&coords, &secs, Method::Lattice)
                .map_err(|e| e.to_string())?;
            print!("proc {rank} {coords:?}: {} accesses;", accesses.len());
            for (idx, local) in accesses.iter().take(12) {
                print!(" {idx:?}@{local}");
            }
            if accesses.len() > 12 {
                print!(" ...");
            }
            println!();
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// Splits an argv into one optional positional word plus `--flag value`
/// pairs (the script path may come before, between or after the pairs).
fn split_positional(argv: &[String]) -> Result<(Option<String>, Vec<String>), String> {
    let mut positional: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            rest.push(a.clone());
            if let Some(v) = it.next() {
                rest.push(v.clone());
            }
        } else if positional.is_none() {
            positional = Some(a.clone());
        } else {
            return Err(format!("unexpected extra argument `{a}`"));
        }
    }
    Ok((positional, rest))
}

/// `bcag trace`: run a workload with tracing enabled and write the
/// `bcag-trace/v2` summary plus a chrome://tracing event file (and, with
/// `--prom`, a Prometheus text exposition).
pub fn trace(argv: &[String], global_out: Option<&str>) -> i32 {
    let (positional, rest) = match split_positional(argv) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let flags = match Flags::parse(&rest, &["file", "p", "k", "prom"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let out = global_out.unwrap_or("TRACE.json").to_string();
    let run = || -> Result<(), String> {
        let p = flags.opt_i64("p", 0)?;
        let k = flags.opt_i64("k", 0)?;
        let script = match (&positional, flags.opt_str("file")) {
            (Some(_), Some(_)) => {
                return Err("give the script either positionally or via --file, not both".into())
            }
            (Some(a), None) => Some(a.clone()),
            (None, Some(f)) => Some(f.to_string()),
            (None, None) => None,
        };
        bcag_trace::start();
        let result = match &script {
            Some(path) => std::fs::read_to_string(path)
                .map_err(|e| format!("{path}: {e}"))
                .and_then(|src| {
                    let src = override_directives(&src, p, k);
                    bcag_rt::Interp::run(&src).map_err(|e| e.to_string())
                })
                .map(|lines| format!("script `{path}` ({} output lines)", lines.len())),
            None => synthetic_workload(if p >= 1 { p } else { 4 }, if k >= 1 { k } else { 8 }),
        };
        let trace = bcag_trace::stop();
        let desc = result?;
        write_trace_artifacts(&trace, &out)?;
        if let Some(prom) = flags.opt_str("prom") {
            let text = bcag_trace::export::prometheus(&trace);
            std::fs::write(prom, text).map_err(|e| format!("{prom}: {e}"))?;
        }
        println!("traced {desc}");
        println!(
            "lanes={} spans={} messages_sent={} bytes_packed={} critical_path_ns={}",
            trace.lanes.len(),
            trace.lanes.iter().map(|l| l.events.len()).sum::<usize>(),
            trace.counter_total("messages_sent"),
            trace.counter_total("bytes_packed"),
            trace.critical_path_ns()
        );
        print_human_summary(&trace);
        println!("summary: {out}");
        println!("chrome:  {}", chrome_path_for(&out));
        if let Some(prom) = flags.opt_str("prom") {
            println!("prom:    {prom}");
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// Prints the human-facing digest of a trace: the top spans by total
/// time (with self time, i.e. minus nested children) and the headline
/// percentiles of every histogram. Per-destination `msg_bytes_to_<dst>`
/// histograms are folded into the `msg_bytes` row to keep the table
/// readable at p=32 (they remain in the JSON artifacts).
fn print_human_summary(trace: &bcag_trace::Trace) {
    let rollup = trace.span_rollup();
    if !rollup.is_empty() {
        println!("top spans by total time:");
        println!(
            "  {:<22} {:>8} {:>12} {:>12}",
            "span", "count", "total_ms", "self_ms"
        );
        for s in rollup.iter().take(10) {
            println!(
                "  {:<22} {:>8} {:>12.3} {:>12.3}",
                s.name,
                s.count,
                s.total_ns as f64 / 1e6,
                s.self_ns as f64 / 1e6
            );
        }
    }
    let names: Vec<&str> = trace
        .histogram_names()
        .into_iter()
        .filter(|n| !n.starts_with("msg_bytes_to_"))
        .collect();
    if !names.is_empty() {
        println!("histogram percentiles:");
        println!(
            "  {:<22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "p50", "p90", "p95", "p99", "max"
        );
        for name in names {
            let h = trace.histogram_total(name);
            println!(
                "  {:<22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count(),
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max()
            );
        }
    }
}

/// The built-in script `bcag stats` interprets when none is given: a few
/// mixed-layout statements so the flight recorder and every histogram
/// site have something to show.
const STATS_SCRIPT: &str = "\
PROCESSORS P(4)
TEMPLATE T(256)
REAL A(256)
REAL B(256)
ALIGN A(i) WITH T(i)
ALIGN B(i) WITH T(i)
DISTRIBUTE T(CYCLIC(8)) ONTO P
INIT A LINEAR 1 0
INIT B LINEAR 2 1
ASSIGN A(0:252:3) = B(0:252:3) * 2
ASSIGN A(1:253:4) = A(1:253:4) + B(1:253:4)
REDISTRIBUTE A CYCLIC(5)
";

/// `bcag stats`: interpret a script with tracing on and print the flight
/// recorder's last-statements table, schedule-cache effectiveness and the
/// headline latency percentiles — the operator's at-a-glance view, no
/// JSON artifacts.
pub fn stats(argv: &[String]) -> i32 {
    let (positional, rest) = match split_positional(argv) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let flags = match Flags::parse(&rest, &["file", "p", "k", "last"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.opt_i64("p", 0)?;
        let k = flags.opt_i64("k", 0)?;
        let last = flags.opt_i64("last", 16)?.max(1) as usize;
        let script = match (&positional, flags.opt_str("file")) {
            (Some(_), Some(_)) => {
                return Err("give the script either positionally or via --file, not both".into())
            }
            (Some(a), None) => Some(a.clone()),
            (None, Some(f)) => Some(f.to_string()),
            (None, None) => None,
        };
        let src = match &script {
            Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
            None => STATS_SCRIPT.to_string(),
        };
        let src = override_directives(&src, p, k);
        bcag_rt::flight::clear();
        bcag_trace::start();
        let result = bcag_rt::Interp::run(&src);
        let trace = bcag_trace::stop();
        result.map_err(|e| e.to_string())?;
        let records = bcag_rt::flight::snapshot();
        let tail = &records[records.len().saturating_sub(last)..];
        println!(
            "flight recorder: last {} of {} statements",
            tail.len(),
            records.len()
        );
        print!("{}", bcag_rt::flight::render(tail));
        println!(
            "statement compiler: mode={} (BCAG_FUSE=on|off), transport={}, launch={}",
            bcag_spmd::default_fused().name(),
            bcag_spmd::transport::active_transport().name(),
            bcag_spmd::pool::default_launch().name()
        );
        println!(
            "tune: mode={} (BCAG_TUNE=auto|fixed) l2={}KiB (BCAG_L2_KB) decisions: runs={} per-element={} blocked={}",
            bcag_core::tune::default_tune().name(),
            bcag_core::tune::l2_bytes() / 1024,
            trace.counter_total("tune_decision_runs"),
            trace.counter_total("tune_decision_per_element"),
            trace.counter_total("tune_decision_blocked"),
        );
        let cs = bcag_spmd::cache::stats();
        println!(
            "schedule cache: hits={} misses={} hit_rate={:.1}% entries={}/{} evictions={}",
            cs.hits,
            cs.misses,
            cs.hit_rate() * 100.0,
            cs.entries,
            cs.capacity,
            cs.evictions
        );
        let occ = bcag_spmd::cache::shard_entries();
        let max = occ.iter().copied().max().unwrap_or(0);
        let mean = cs.entries as f64 / occ.len().max(1) as f64;
        // Balance is the max/mean occupancy ratio: 1.0 is a perfectly
        // even key spread; high values flag a skewed hash distribution
        // that would re-serialize lookups on one shard.
        let balance = if cs.entries == 0 {
            1.0
        } else {
            max as f64 / mean
        };
        println!(
            "cache shards: {} occupancy={:?} balance(max/mean)={:.2}",
            cs.shards, occ, balance
        );
        print_human_summary(&trace);
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// Writes the `bcag-trace/v1` summary to `out` and the Chrome Trace Event
/// file next to it (`foo.json` → `foo.chrome.json`).
pub fn write_trace_artifacts(trace: &bcag_trace::Trace, out: &str) -> Result<(), String> {
    let summary = bcag_trace::export::summary(trace);
    std::fs::write(out, summary.to_pretty_string()).map_err(|e| format!("{out}: {e}"))?;
    let chrome_path = chrome_path_for(out);
    let chrome = bcag_trace::export::chrome(trace);
    std::fs::write(&chrome_path, chrome.to_string()).map_err(|e| format!("{chrome_path}: {e}"))?;
    Ok(())
}

/// Derives the Chrome Trace Event file path from the summary path.
fn chrome_path_for(out: &str) -> String {
    match out.strip_suffix(".json") {
        Some(stem) => format!("{stem}.chrome.json"),
        None => format!("{out}.chrome.json"),
    }
}

/// Rewrites `PROCESSORS NAME(n)` (1-D only) and `CYCLIC(n)` directive sizes
/// so one script can be traced at several machine scales. `p`/`k` of 0 mean
/// "leave the script as written".
fn override_directives(src: &str, p: i64, k: i64) -> String {
    let mut out = String::with_capacity(src.len());
    for line in src.lines() {
        let mut l = line.to_string();
        if p >= 1
            && l.trim_start()
                .to_ascii_uppercase()
                .starts_with("PROCESSORS")
        {
            l = replace_single_paren_number(&l, p);
        }
        if k >= 1 {
            l = replace_cyclic_numbers(&l, k);
        }
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Replaces `(n)` with `(p)` when the parenthesized content is one integer
/// (multidimensional grids are left untouched).
fn replace_single_paren_number(line: &str, p: i64) -> String {
    let (Some(open), Some(close)) = (line.find('('), line.rfind(')')) else {
        return line.to_string();
    };
    if open >= close || line[open + 1..close].trim().parse::<i64>().is_err() {
        return line.to_string();
    }
    format!("{}({}){}", &line[..open], p, &line[close + 1..])
}

/// Replaces the block size in every `CYCLIC(n)` occurrence with `k`.
fn replace_cyclic_numbers(line: &str, k: i64) -> String {
    let upper = line.to_ascii_uppercase();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while let Some(rel) = upper[i..].find("CYCLIC(") {
        let inner_start = i + rel + "CYCLIC(".len();
        out.push_str(&line[i..inner_start]);
        let Some(close_rel) = line[inner_start..].find(')') else {
            out.push_str(&line[inner_start..]);
            return out;
        };
        let inner = &line[inner_start..inner_start + close_rel];
        if inner.trim().parse::<i64>().is_ok() {
            out.push_str(&k.to_string());
        } else {
            out.push_str(inner);
        }
        i = inner_start + close_rel;
    }
    out.push_str(&line[i..]);
    out
}

/// Built-in workload for `bcag trace` with no script: per-node table builds
/// on the SPMD machine followed by a two-distribution remapping assignment
/// through [`CommSchedule`], so every instrumented layer shows up.
fn synthetic_workload(p: i64, k: i64) -> Result<String, String> {
    use bcag_spmd::{CommSchedule, DistArray};
    let problem = Problem::new(p, k, 4, 9).map_err(|e| e.to_string())?;
    let patterns =
        bcag_spmd::pool::build_all(&problem, Method::Lattice).map_err(|e| e.to_string())?;
    let table_total: usize = patterns.iter().map(|pat| pat.len()).sum();
    // A(0:3c-3:3) = B(1:2c-1:2) across two different blockings.
    let n = (p * k * 8).max(64);
    let c = n / 4;
    let k_b = k + 1;
    let sec_a = RegularSection::new(0, 3 * (c - 1), 3).map_err(|e| e.to_string())?;
    let sec_b = RegularSection::new(1, 1 + 2 * (c - 1), 2).map_err(|e| e.to_string())?;
    let sched =
        CommSchedule::build_lattice(p, k, &sec_a, k_b, &sec_b).map_err(|e| e.to_string())?;
    let mut a = DistArray::new(p, k, 3 * c, 0.0f64).map_err(|e| e.to_string())?;
    let src: Vec<f64> = (0..2 * c).map(|i| i as f64).collect();
    let b = DistArray::from_global(p, k_b, &src).map_err(|e| e.to_string())?;
    sched.execute(&mut a, &b).map_err(|e| e.to_string())?;
    Ok(format!(
        "synthetic workload (p={p} k={k}): {table_total} table entries, {} elements remapped",
        sched.total_elements()
    ))
}

/// `bcag spmd`: run a script across real OS processes, one per node.
/// The parent routes serialized frames between the children (star
/// topology); with the global `--trace OUT.json` flag each child records
/// its own lane and the parent merges them into one timeline.
pub fn spmd(argv: &[String], trace_out: Option<&str>) -> i32 {
    let flags = match Flags::parse(argv, &["file", "procs"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let file = flags
            .opt_str("file")
            .ok_or("missing required flag `--file`")?;
        let procs = flags.req_i64("procs")?;
        if procs < 1 {
            return Err("--procs must be at least 1".into());
        }
        let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let declared = bcag_rt::spmd::script_processors(&src)?;
        if declared != procs as usize {
            return Err(format!(
                "script declares PROCESSORS({declared}) but --procs is {procs}; \
                 every node process interprets the directives itself, so the \
                 sizes must agree"
            ));
        }
        let exe = std::env::current_exe().map_err(|e| format!("locating bcag binary: {e}"))?;
        let outcome = bcag_rt::spmd::launch(&exe, file, procs as usize, trace_out.is_some())?;
        for line in &outcome.output {
            println!("{line}");
        }
        if let Some(out) = trace_out {
            let mut traces = Vec::new();
            for (node, json) in &outcome.node_traces {
                let doc = bcag_harness::json::Json::parse(json)
                    .map_err(|e| format!("node {node} trace: {e}"))?;
                traces.push(
                    bcag_trace::export::from_json(&doc)
                        .map_err(|e| format!("node {node} trace: {e}"))?,
                );
            }
            let merged = bcag_trace::Trace::merged(traces);
            write_trace_artifacts(&merged, out)?;
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag spmd-node`: the hidden child subcommand `bcag spmd` forks. Not
/// for interactive use — stdin/stdout are the frame pipe to the parent
/// router, so anything else on them would corrupt the stream.
pub fn spmd_node(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["me", "procs", "file", "traced"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let me = flags.req_i64("me")?;
        let procs = flags.req_i64("procs")?;
        let file = flags
            .opt_str("file")
            .ok_or("missing required flag `--file`")?;
        let traced = flags.opt_i64("traced", 0)? != 0;
        if me < 0 || procs < 1 {
            return Err("--me must be >= 0 and --procs >= 1".into());
        }
        let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        bcag_rt::spmd::run_node(me as usize, procs as usize, &src, traced)
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

/// `bcag plan`: bounded-section node plans.
pub fn plan(argv: &[String]) -> i32 {
    let flags = match Flags::parse(argv, &["p", "k", "l", "u", "s"]) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let run = || -> Result<(), String> {
        let p = flags.req_i64("p")?;
        let k = flags.req_i64("k")?;
        let l = flags.req_i64("l")?;
        let u = flags.req_i64("u")?;
        let s = flags.req_i64("s")?;
        let section = RegularSection::new(l, u, s).map_err(|e| e.to_string())?;
        let plans = plan_section(p, k, &section, Method::Lattice).map_err(|e| e.to_string())?;
        println!(
            "section {l}:{u}:{s} over p={p} k={k} ({} elements)",
            section.count()
        );
        for (m, plan) in plans.iter().enumerate() {
            match plan.start {
                None => println!("proc {m}: idle"),
                Some(start) => println!(
                    "proc {m}: start_local={start} last_local={} table_len={}",
                    plan.last,
                    plan.delta_m.len()
                ),
            }
        }
        Ok(())
    };
    match run() {
        Ok(()) => 0,
        Err(e) => fail(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_path_derivation() {
        assert_eq!(chrome_path_for("out.json"), "out.chrome.json");
        assert_eq!(chrome_path_for("trace"), "trace.chrome.json");
        assert_eq!(chrome_path_for("a/b/t.json"), "a/b/t.chrome.json");
    }

    #[test]
    fn directive_overrides_rewrite_sizes() {
        let src =
            "PROCESSORS P(4)\n!HPF$ DISTRIBUTE TA(CYCLIC(8)) ONTO P\nREDISTRIBUTE A CYCLIC(4)\n";
        let got = override_directives(src, 32, 5);
        assert!(got.contains("PROCESSORS P(32)"));
        assert!(got.contains("CYCLIC(5)) ONTO P"));
        assert!(got.contains("REDISTRIBUTE A CYCLIC(5)"));
        // 0 means leave alone.
        assert_eq!(override_directives(src, 0, 0), src);
    }

    #[test]
    fn directive_overrides_leave_grids_and_pure_cyclic() {
        // 2-D processor grids are not rewritten by --p.
        let grid = "PROCESSORS G(2, 2)\n";
        assert_eq!(override_directives(grid, 32, 0), grid);
        // CYCLIC without a block size is untouched.
        let pure = "!HPF$ DISTRIBUTE T(CYCLIC) ONTO P\n";
        assert_eq!(override_directives(pure, 0, 7), pure);
        // Both sizes in a rank-2 distribution are rewritten.
        let two = "!HPF$ DISTRIBUTE TM(CYCLIC(3), CYCLIC(4)) ONTO G\n";
        let got = override_directives(two, 0, 6);
        assert_eq!(got, "!HPF$ DISTRIBUTE TM(CYCLIC(6), CYCLIC(6)) ONTO G\n");
    }

    #[test]
    fn synthetic_workload_runs_and_traces() {
        let ((), tr) = bcag_trace::capture(|| {
            synthetic_workload(3, 4).unwrap();
        });
        assert!(tr.counter_total("table_entries") > 0);
        assert!(tr.counter_total("elements_moved") > 0);
        assert!(tr.lane("node-0").is_some());
    }
}
