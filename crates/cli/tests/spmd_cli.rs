//! End-to-end tests of `bcag spmd`: real OS processes, real pipes.
//!
//! These spawn the actual binary as the launcher, which itself re-spawns
//! it `p` more times as node children, so the whole star — frame
//! routing, wire-encoded exchanges, output funneling, trace merging and
//! poison broadcast — is exercised exactly as a user runs it.

use std::process::Command;

fn bcag(args: &[&str], envs: &[(&str, &str)]) -> (String, String, i32) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_bcag"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn script_path(name: &str) -> String {
    format!(
        "{}/../../examples/scripts/{name}",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn spmd_matches_in_process_run() {
    let script = script_path("triad.hpf");
    let (in_process, _, code) = bcag(&["run", "--file", &script], &[]);
    assert_eq!(code, 0);
    let (multi_process, stderr, code) = bcag(&["spmd", "--file", &script, "--procs", "4"], &[]);
    assert_eq!(code, 0, "{stderr}");
    assert_eq!(multi_process, in_process, "output must be bit-identical");
    assert!(
        multi_process.contains("SUM A(0:99:3) = 3009"),
        "{multi_process}"
    );
}

#[test]
fn spmd_trace_merges_per_node_lanes() {
    let script = script_path("cache_loop.hpf");
    let dir = std::env::temp_dir().join(format!("bcag-spmd-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("spmd.json");
    let out_str = out.to_str().unwrap();
    let (stdout, stderr, code) = bcag(
        &[
            "spmd", "--file", &script, "--procs", "4", "--trace", out_str,
        ],
        &[],
    );
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("SUM A(0:99:3) = 3009"), "{stdout}");
    let summary = std::fs::read_to_string(&out).unwrap();
    assert!(
        summary.contains("\"format\": \"bcag-trace/v2\""),
        "{summary}"
    );
    // One lane per node process survives the merge.
    for m in 0..4 {
        assert!(summary.contains(&format!("\"node-{m}\"")), "{summary}");
    }
    // The per-backend tag and the transport byte counters made it across.
    assert!(summary.contains("\"transport\": \"proc\""), "{summary}");
    assert!(summary.contains("\"transport_bytes_tx\""), "{summary}");
    let chrome = dir.join("spmd.chrome.json");
    assert!(chrome.exists(), "chrome twin written next to the summary");
    std::fs::remove_dir_all(&dir).ok();
}

/// The traffic- and wait-shaped histograms must merge *exactly* across
/// node processes: the merged trace's total counts equal an in-process
/// traced run of the same script, message for message. (Per-process
/// histograms like `rt_statement_ns` legitimately multiply by p — every
/// node interprets the whole script — so only the distributions driven
/// by the shared communication schedule are compared.)
///
/// Multi-process sessions run the interpreted statement path, so the
/// baseline in-process run pins `BCAG_FUSE=off`; a third, fused run then
/// checks the fused epochs feed the same schedule-driven histograms with
/// identical counts (`barrier_wait_ns` excepted — the pool's epoch
/// barrier replaces the fabric barrier in a fused epoch). `msg_bytes` is
/// charged per logical (operand, peer) message even though fused epochs
/// coalesce physical sends by destination; `recv_wait_ns` records
/// physical receives, which equal logical ones on this single-operand
/// script.
#[test]
fn spmd_merged_histogram_counts_match_in_process_run() {
    let script = script_path("cache_loop.hpf");
    let dir = std::env::temp_dir().join(format!("bcag-spmd-hist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spmd_out = dir.join("spmd.json");
    let inproc_out = dir.join("inproc.json");
    let fused_out = dir.join("fused.json");
    let (_, stderr, code) = bcag(
        &[
            "spmd",
            "--file",
            &script,
            "--procs",
            "4",
            "--trace",
            spmd_out.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(code, 0, "{stderr}");
    let (_, stderr, code) = bcag(
        &[
            "trace",
            "--file",
            &script,
            "--trace",
            inproc_out.to_str().unwrap(),
        ],
        &[("BCAG_FUSE", "off")],
    );
    assert_eq!(code, 0, "{stderr}");
    let (_, stderr, code) = bcag(
        &[
            "trace",
            "--file",
            &script,
            "--trace",
            fused_out.to_str().unwrap(),
        ],
        &[("BCAG_FUSE", "on")],
    );
    assert_eq!(code, 0, "{stderr}");
    let spmd = bcag_harness::json::Json::parse(&std::fs::read_to_string(&spmd_out).unwrap())
        .expect("merged summary parses");
    let inproc = bcag_harness::json::Json::parse(&std::fs::read_to_string(&inproc_out).unwrap())
        .expect("in-process summary parses");
    let fused = bcag_harness::json::Json::parse(&std::fs::read_to_string(&fused_out).unwrap())
        .expect("fused summary parses");
    let count = |doc: &bcag_harness::json::Json, name: &str| {
        doc.get("histograms")
            .and_then(|h| h.get(name))
            .and_then(|h| h.get("count"))
            .and_then(|c| c.as_i64())
            .unwrap_or_else(|| panic!("histogram {name} missing"))
    };
    for name in ["recv_wait_ns", "barrier_wait_ns", "msg_bytes"] {
        let (s, i) = (count(&spmd, name), count(&inproc, name));
        assert_eq!(s, i, "{name}: merged spmd count {s} != in-process {i}");
        assert!(s > 0, "{name}: empty distribution");
    }
    // Fused trace parity: the compiled epochs drive the same message
    // exchange, so the schedule-driven distributions keep their counts.
    for name in ["recv_wait_ns", "msg_bytes"] {
        let (f, i) = (count(&fused, name), count(&inproc, name));
        assert_eq!(f, i, "{name}: fused count {f} != interpreted {i}");
        assert!(f > 0, "{name}: empty distribution");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spmd_rejects_mismatched_procs() {
    let script = script_path("triad.hpf");
    let (_, stderr, code) = bcag(&["spmd", "--file", &script, "--procs", "3"], &[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("PROCESSORS(4)"), "{stderr}");
}

#[test]
fn spmd_node_failure_poisons_the_launch() {
    let script = script_path("cache_loop.hpf");
    let (_, stderr, code) = bcag(
        &["spmd", "--file", &script, "--procs", "4"],
        &[("BCAG_SPMD_PANIC_NODE", "2")],
    );
    assert_ne!(code, 0, "a dead node must fail the launch");
    assert!(stderr.contains("injected failure"), "{stderr}");
    assert!(stderr.contains("failed"), "{stderr}");
}
