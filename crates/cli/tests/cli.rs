//! End-to-end tests of the `bcag` binary: spawn the real executable and
//! check its output and exit codes.

use std::process::Command;

fn bcag(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_bcag"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn table_reproduces_the_worked_example() {
    let (stdout, _, code) = bcag(&[
        "table", "--p", "4", "--k", "8", "--l", "4", "--s", "9", "--m", "1",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("start global=13 local=5"), "{stdout}");
    assert!(
        stdout.contains("AM=[3, 12, 15, 12, 3, 12, 3, 12]"),
        "{stdout}"
    );
}

#[test]
fn table_all_processors_and_methods() {
    for method in [
        "lattice",
        "sorting",
        "sorting-cmp",
        "sorting-radix",
        "oracle",
    ] {
        let (stdout, _, code) = bcag(&[
            "table", "--p", "4", "--k", "8", "--l", "4", "--s", "9", "--method", method,
        ]);
        assert_eq!(code, 0, "method {method}");
        assert_eq!(stdout.lines().filter(|l| l.starts_with("proc ")).count(), 4);
        assert!(
            stdout.contains("proc 1: start global=13"),
            "{method}: {stdout}"
        );
    }
}

#[test]
fn basis_prints_r_and_l() {
    let (stdout, _, code) = bcag(&["basis", "--p", "4", "--k", "8", "--s", "9"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("R = (4, 1)"), "{stdout}");
    assert!(stdout.contains("L = (5, -1)"), "{stdout}");
}

#[test]
fn layout_renders_section() {
    let (stdout, _, code) = bcag(&[
        "layout", "--p", "4", "--k", "8", "--l", "0", "--s", "9", "--rows", "3",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("(0)"));
    assert!(stdout.contains("[9]"));
}

#[test]
fn codegen_emits_c() {
    let (stdout, _, code) = bcag(&[
        "codegen", "--p", "4", "--k", "8", "--l", "4", "--u", "301", "--s", "9", "--m", "1",
        "--shape", "b",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("void node_m1(double *A)"), "{stdout}");
    assert!(
        stdout.contains("deltaM[8] = { 3, 12, 15, 12, 3, 12, 3, 12 }"),
        "{stdout}"
    );
}

#[test]
fn verify_runs_clean() {
    let (stdout, _, code) = bcag(&["verify", "--trials", "50", "--max-p", "4", "--max-k", "8"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("all methods agree"), "{stdout}");
}

#[test]
fn run_executes_a_script() {
    let dir = std::env::temp_dir();
    let path = dir.join("bcag_cli_test_script.hpf");
    std::fs::write(
        &path,
        "PROCESSORS P(4)
         TEMPLATE T(320)
         REAL A(320)
         ALIGN A(i) WITH T(i)
         DISTRIBUTE T(CYCLIC(8)) ONTO P
         INIT A LINEAR 1 0
         PRINT SUM A(0:9:1)
         PRINT TABLE A(4:301:9) 1",
    )
    .expect("write script");
    let (stdout, _, code) = bcag(&["run", "--file", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(stdout.contains("SUM A(0:9:1) = 45"), "{stdout}");
    assert!(
        stdout.contains("AM=[3, 12, 15, 12, 3, 12, 3, 12]"),
        "{stdout}"
    );
}

#[test]
fn bad_input_fails_with_diagnostics() {
    let (_, stderr, code) = bcag(&["table", "--p", "0", "--k", "8", "--l", "0", "--s", "9"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("processor count"), "{stderr}");

    let (_, stderr, code) = bcag(&["table", "--p", "4"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("missing required flag"), "{stderr}");

    let (_, stderr, code) = bcag(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");
}

#[test]
fn help_lists_subcommands() {
    let (stdout, _, code) = bcag(&["help"]);
    assert_eq!(code, 0);
    for sub in [
        "table", "layout", "visits", "basis", "plan", "hpf", "codegen", "verify", "run",
    ] {
        assert!(stdout.contains(sub), "help missing `{sub}`");
    }
}
