//! End-to-end tests of the `bcag` binary: spawn the real executable and
//! check its output and exit codes.

use std::process::Command;

fn bcag(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_bcag"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn table_reproduces_the_worked_example() {
    let (stdout, _, code) = bcag(&[
        "table", "--p", "4", "--k", "8", "--l", "4", "--s", "9", "--m", "1",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("start global=13 local=5"), "{stdout}");
    assert!(
        stdout.contains("AM=[3, 12, 15, 12, 3, 12, 3, 12]"),
        "{stdout}"
    );
}

#[test]
fn table_all_processors_and_methods() {
    for method in [
        "lattice",
        "sorting",
        "sorting-cmp",
        "sorting-radix",
        "oracle",
    ] {
        let (stdout, _, code) = bcag(&[
            "table", "--p", "4", "--k", "8", "--l", "4", "--s", "9", "--method", method,
        ]);
        assert_eq!(code, 0, "method {method}");
        assert_eq!(stdout.lines().filter(|l| l.starts_with("proc ")).count(), 4);
        assert!(
            stdout.contains("proc 1: start global=13"),
            "{method}: {stdout}"
        );
    }
}

#[test]
fn basis_prints_r_and_l() {
    let (stdout, _, code) = bcag(&["basis", "--p", "4", "--k", "8", "--s", "9"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("R = (4, 1)"), "{stdout}");
    assert!(stdout.contains("L = (5, -1)"), "{stdout}");
}

#[test]
fn layout_renders_section() {
    let (stdout, _, code) = bcag(&[
        "layout", "--p", "4", "--k", "8", "--l", "0", "--s", "9", "--rows", "3",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("(0)"));
    assert!(stdout.contains("[9]"));
}

#[test]
fn codegen_emits_c() {
    let (stdout, _, code) = bcag(&[
        "codegen", "--p", "4", "--k", "8", "--l", "4", "--u", "301", "--s", "9", "--m", "1",
        "--shape", "b",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("void node_m1(double *A)"), "{stdout}");
    assert!(
        stdout.contains("deltaM[8] = { 3, 12, 15, 12, 3, 12, 3, 12 }"),
        "{stdout}"
    );
}

#[test]
fn verify_runs_clean() {
    let (stdout, _, code) = bcag(&["verify", "--trials", "50", "--max-p", "4", "--max-k", "8"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("all methods agree"), "{stdout}");
}

#[test]
fn run_executes_a_script() {
    let dir = std::env::temp_dir();
    let path = dir.join("bcag_cli_test_script.hpf");
    std::fs::write(
        &path,
        "PROCESSORS P(4)
         TEMPLATE T(320)
         REAL A(320)
         ALIGN A(i) WITH T(i)
         DISTRIBUTE T(CYCLIC(8)) ONTO P
         INIT A LINEAR 1 0
         PRINT SUM A(0:9:1)
         PRINT TABLE A(4:301:9) 1",
    )
    .expect("write script");
    let (stdout, _, code) = bcag(&["run", "--file", path.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(stdout.contains("SUM A(0:9:1) = 45"), "{stdout}");
    assert!(
        stdout.contains("AM=[3, 12, 15, 12, 3, 12, 3, 12]"),
        "{stdout}"
    );
}

#[test]
fn unknown_flag_errors_name_the_flag() {
    // Every subcommand rejects unknown flags and names the offender.
    let (_, stderr, code) = bcag(&["table", "--bogus", "1"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("--bogus"), "{stderr}");
    assert!(stderr.contains("allowed:"), "{stderr}");

    let (_, stderr, code) = bcag(&["trace", "--frob", "x"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("--frob"), "{stderr}");

    // The global --trace flag must come with a value.
    let (_, stderr, code) = bcag(&["table", "--p", "4", "--trace"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("--trace"), "{stderr}");
}

fn read_json(path: &std::path::Path) -> bcag_harness::json::Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    bcag_harness::json::Json::parse(&text)
        .unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

#[test]
fn trace_subcommand_writes_both_artifacts() {
    let dir = std::env::temp_dir();
    let script = dir.join("bcag_cli_trace_script.hpf");
    std::fs::write(
        &script,
        "PROCESSORS P(4)
         TEMPLATE T(320)
         REAL A(320)
         ALIGN A(i) WITH T(i)
         DISTRIBUTE T(CYCLIC(8)) ONTO P
         TEMPLATE TB(640)
         REAL B(640)
         ALIGN B(i) WITH TB(i)
         DISTRIBUTE TB(CYCLIC(5)) ONTO P
         INIT B LINEAR 1 0
         INIT A CONST 0
         ASSIGN A(0:99:3) = B(2:68:2)
         PRINT SUM A(0:99:3)",
    )
    .expect("write script");
    let out = dir.join("bcag_cli_trace_out.json");
    let chrome = dir.join("bcag_cli_trace_out.chrome.json");
    let (stdout, stderr, code) = bcag(&[
        "trace",
        "--p",
        "8",
        "--k",
        "4",
        script.to_str().unwrap(),
        "--trace",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");

    let summary = read_json(&out);
    assert_eq!(
        summary.get("format").and_then(|f| f.as_str()),
        Some("bcag-trace/v2"),
        "{stdout}"
    );
    // --p 8 took effect: per-node lanes exist for all eight nodes.
    let lanes = summary.get("lanes").and_then(|l| l.as_arr()).unwrap();
    let labels: Vec<&str> = lanes
        .iter()
        .filter_map(|l| l.get("label").and_then(|s| s.as_str()))
        .collect();
    for m in 0..8 {
        assert!(
            labels.contains(&format!("node-{m}").as_str()),
            "missing node-{m} lane in {labels:?}"
        );
    }
    assert!(summary.get("counters").is_some());
    assert!(summary.get("critical_path_ns").is_some());

    let events = read_json(&chrome);
    let evs = events.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
    assert!(!evs.is_empty());
    // Metadata names the node lanes; complete events carry durations.
    let phases: Vec<&str> = evs
        .iter()
        .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
        .collect();
    assert!(phases.contains(&"M"), "{phases:?}");
    assert!(phases.contains(&"X"), "{phases:?}");

    let _ = std::fs::remove_file(&script);
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(&chrome);
}

#[test]
fn trace_synthetic_fallback_and_global_flag() {
    let dir = std::env::temp_dir();

    // No script: the built-in synthetic workload runs.
    let out = dir.join("bcag_cli_trace_synth.json");
    let (stdout, stderr, code) = bcag(&[
        "trace",
        "--p",
        "3",
        "--k",
        "4",
        "--trace",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("synthetic workload"), "{stdout}");
    let summary = read_json(&out);
    let counters = summary.get("counters").unwrap();
    assert!(counters.get("table_entries").and_then(|c| c.as_i64()) > Some(0));
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(dir.join("bcag_cli_trace_synth.chrome.json"));

    // Global flag on an ordinary subcommand traces the whole run.
    let out = dir.join("bcag_cli_trace_global.json");
    let (stdout, _, code) = bcag(&[
        "table",
        "--p",
        "4",
        "--k",
        "8",
        "--l",
        "4",
        "--s",
        "9",
        "--trace",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("start global=13"), "{stdout}");
    let summary = read_json(&out);
    assert_eq!(
        summary.get("format").and_then(|f| f.as_str()),
        Some("bcag-trace/v2")
    );
    let counters = summary.get("counters").unwrap();
    assert!(counters.get("table_entries").and_then(|c| c.as_i64()) > Some(0));
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_file(dir.join("bcag_cli_trace_global.chrome.json"));
}

/// `bcag trace` prints the human-readable digest (top-spans table +
/// histogram percentiles) and `--prom` writes a Prometheus exposition.
#[test]
fn trace_prints_summary_tables_and_writes_prometheus() {
    let dir = std::env::temp_dir();
    let out = dir.join("bcag_cli_trace_prom.json");
    let prom = dir.join("bcag_cli_trace_prom.prom");
    let (stdout, stderr, code) = bcag(&[
        "trace",
        "--p",
        "4",
        "--k",
        "8",
        "--prom",
        prom.to_str().unwrap(),
        "--trace",
        out.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("top spans by total time:"), "{stdout}");
    assert!(stdout.contains("histogram percentiles:"), "{stdout}");
    assert!(stdout.contains("recv_wait_ns"), "{stdout}");
    let text = std::fs::read_to_string(&prom).unwrap();
    assert!(text.contains("# TYPE bcag_messages_sent counter"), "{text}");
    assert!(text.contains("bcag_recv_wait_ns_bucket{le="), "{text}");
    assert!(text.contains("bcag_recv_wait_ns_count"), "{text}");
    for f in [&out, &prom, &dir.join("bcag_cli_trace_prom.chrome.json")] {
        let _ = std::fs::remove_file(f);
    }
}

/// `bcag stats` runs its built-in script and prints the flight-recorder
/// table, cache effectiveness and headline percentiles.
#[test]
fn stats_prints_flight_recorder_and_percentiles() {
    let (stdout, stderr, code) = bcag(&["stats"]);
    assert_eq!(code, 0, "stderr:\n{stderr}");
    assert!(stdout.contains("flight recorder: last"), "{stdout}");
    assert!(stdout.contains("rt.ASSIGN"), "{stdout}");
    assert!(stdout.contains("REDISTRIBUTE A CYCLIC(5)"), "{stdout}");
    assert!(stdout.contains("schedule cache: hits="), "{stdout}");
    assert!(stdout.contains("histogram percentiles:"), "{stdout}");
    assert!(stdout.contains("rt_statement_ns"), "{stdout}");
    // The self-tuning dispatch line: mode, resolved L2 and the decision
    // counters the run recorded.
    assert!(stdout.contains("tune: mode="), "{stdout}");
    assert!(stdout.contains("decisions: runs="), "{stdout}");
}

#[test]
fn bad_input_fails_with_diagnostics() {
    let (_, stderr, code) = bcag(&["table", "--p", "0", "--k", "8", "--l", "0", "--s", "9"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("processor count"), "{stderr}");

    let (_, stderr, code) = bcag(&["table", "--p", "4"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("missing required flag"), "{stderr}");

    let (_, stderr, code) = bcag(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");
}

#[test]
fn help_lists_subcommands() {
    let (stdout, _, code) = bcag(&["help"]);
    assert_eq!(code, 0);
    for sub in [
        "table", "layout", "visits", "basis", "plan", "hpf", "codegen", "verify", "run", "trace",
    ] {
        assert!(stdout.contains(sub), "help missing `{sub}`");
    }
}
