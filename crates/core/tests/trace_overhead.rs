//! Disabled-tracing overhead budget.
//!
//! The instrumentation in `bcag-core` must be free when tracing is off: the
//! fast path is one relaxed atomic load per site. This test holds that to a
//! budget instead of trusting it: it measures the per-call cost of the
//! disabled primitives, multiplies by a generous upper bound on the number
//! of instrumentation hits in one `build_all`, and asserts the product is
//! under 2% of the measured `build_all` time itself.

use std::time::Instant;

use bcag_core::lattice_alg::build_all;
use bcag_core::params::Problem;

/// Median wall time of `f` over `reps` runs, in nanoseconds.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[test]
fn disabled_instrumentation_overhead_under_two_percent() {
    // The paper's iPSC/860 scale with a large block: long enough tables
    // that the timing is stable, small enough to keep the test fast.
    let problem = Problem::new(32, 512, 4, 9).unwrap();

    // Count span hits once with tracing on; counter sites are bounded
    // analytically (every build touches a handful of `count` calls).
    let (patterns, trace) = bcag_trace::capture(|| build_all(&problem).unwrap());
    assert_eq!(patterns.len(), 32);
    let span_hits: usize = trace.lanes.iter().map(|l| l.events.len()).sum();
    assert!(span_hits >= 33, "expected per-proc spans, got {span_hits}");
    // Generous bound: every span plus 20 counter calls per processor.
    let hits = (span_hits + 20 * 33) as u64;

    // Per-call cost of the disabled primitives (tracing is off again here:
    // `capture` stopped the session above).
    assert!(!bcag_trace::enabled());
    let batch = 10_000u64;
    let span_ns = median_ns(20, || {
        for _ in 0..batch {
            let _sp = bcag_trace::span("overhead.probe");
        }
    }) / batch;
    let count_ns = median_ns(20, || {
        for _ in 0..batch {
            bcag_trace::count("overhead_probe", 1);
        }
    }) / batch;
    // The histogram sites added for percentile telemetry share the same
    // contract: record / timed_span / gauge are one relaxed load when off.
    let record_ns = median_ns(20, || {
        for _ in 0..batch {
            bcag_trace::record("overhead_probe_ns", 42);
        }
    }) / batch;
    let timed_ns = median_ns(20, || {
        for _ in 0..batch {
            let _t = bcag_trace::timed_span("overhead_probe_ns");
        }
    }) / batch;
    let gauge_ns = median_ns(20, || {
        for _ in 0..batch {
            bcag_trace::gauge("overhead_probe_depth", 3);
        }
    }) / batch;
    let per_hit_ns = span_ns
        .max(count_ns)
        .max(record_ns)
        .max(timed_ns)
        .max(gauge_ns)
        .max(1);

    // The workload itself, instrumented but with tracing disabled.
    let build_ns = median_ns(30, || {
        std::hint::black_box(build_all(&problem).unwrap());
    });

    let overhead_ns = per_hit_ns * hits;
    let budget_ns = build_ns / 50; // 2%
    assert!(
        overhead_ns < budget_ns,
        "disabled-tracing overhead {overhead_ns}ns ({hits} hits x {per_hit_ns}ns) \
         exceeds 2% of build_all ({build_ns}ns median)"
    );

    // Absolute sanity: a disabled primitive is a few atomic loads, not a
    // lock. Allow a loose 200ns ceiling for noisy CI machines.
    assert!(
        per_hit_ns < 200,
        "disabled primitive costs {per_hit_ns}ns per call"
    );
}
