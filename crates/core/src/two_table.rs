//! Offset-indexed tables for the fastest node-code shape (Figure 8(d)).
//!
//! The `AM` table produced by Figure 5 is indexed by *access order*:
//! `AM[0]` is the gap applied at the start location, whatever its offset.
//! The code shape of Figure 8(d) instead indexes by **local offset**
//! (`0 <= offset < k`), requiring two tables: `deltaM[offset]`, the gap to
//! apply when the current access sits at that block offset, and
//! `NextOffset[offset]`, the block offset of the following access. The
//! paper gives the required change to lines 36–38 of the algorithm:
//!
//! ```text
//! AM[offset − km]        = a_r·k + b_r
//! NextOffset[offset − km] = offset − km + b_r
//! offset                  = offset + b_r
//! ```
//!
//! (and similarly for Equations 2 and 3). The start state is
//! `startoffset = start mod k`.
//!
//! The benefit (Section 6.2): the traversal loop body becomes two loads and
//! an add with no wrap-around conditional — the fastest shape measured in
//! Table 2 — at the price of storing two `k`-entry tables.

use crate::error::Result;
use crate::method::{build, Method};
use crate::params::Problem;
use crate::pattern::{AccessPattern, Pattern};

/// The `deltaM` / `NextOffset` pair of Figure 8(d).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoTable {
    /// Gap to apply from an access at each block offset; entries at offsets
    /// the section never visits are 0 and never read.
    pub delta_m: Vec<i64>,
    /// Block offset of the next access, indexed like `delta_m`.
    pub next_offset: Vec<i64>,
    /// Block offset of the start location: `start mod k`.
    pub start_offset: i64,
    /// Number of distinct offsets visited (the cycle length).
    pub length: usize,
}

impl TwoTable {
    /// Reindexes an access pattern into offset-indexed tables. Returns
    /// `None` for an empty pattern (no start state exists).
    ///
    /// ```
    /// use bcag_core::{params::Problem, lattice_alg, two_table::TwoTable};
    /// let pr = Problem::new(4, 8, 4, 9).unwrap();
    /// let tt = TwoTable::from_pattern(&lattice_alg::build(&pr, 1).unwrap()).unwrap();
    /// assert_eq!(tt.start_offset, 5); // start mod k = 13 mod 8
    /// assert_eq!(tt.delta_m[5], 3);
    /// ```
    pub fn from_pattern(pattern: &AccessPattern) -> Option<TwoTable> {
        let c = match pattern.pattern() {
            Pattern::Empty => return None,
            Pattern::Cyclic(c) => c,
        };
        let k = pattern.problem().k();
        let mut delta_m = vec![0i64; k as usize];
        let mut next_offset = vec![0i64; k as usize];
        // Walk one cycle; local offsets are local addresses mod k.
        let mut local = c.start_local;
        for &gap in &c.gaps {
            let off = (local % k) as usize;
            let next = local + gap;
            delta_m[off] = gap;
            next_offset[off] = next % k;
            local = next;
        }
        debug_assert_eq!(local % k, c.start_local % k, "cycle must close");
        Some(TwoTable {
            delta_m,
            next_offset,
            start_offset: c.start_local % k,
            length: c.gaps.len(),
        })
    }

    /// Convenience: build with the given method and reindex.
    pub fn build(problem: &Problem, m: i64, method: Method) -> Result<Option<TwoTable>> {
        Ok(Self::from_pattern(&build(problem, m, method)?))
    }

    /// Builds the tables **directly inside the Figure 5 loop**, exactly as
    /// the paper specifies for code shape 8(d): replace lines 36–38 with
    ///
    /// ```text
    /// AM[offset − km]         = a_r·k + b_r
    /// NextOffset[offset − km] = offset − km + b_r
    /// offset                  = offset + b_r
    /// ```
    ///
    /// (with the analogous changes at lines 42–43 and 45–46). Returns
    /// `None` when the processor owns no section element. Output is
    /// identical to [`TwoTable::from_pattern`] over the lattice method,
    /// which the tests pin down.
    pub fn build_direct(problem: &Problem, m: i64) -> Result<Option<TwoTable>> {
        use crate::basis::Basis;
        use crate::layout::Layout;
        use crate::start::{start_info_with, ClassSolver};

        problem.check_proc(m)?;
        let solver = ClassSolver::new(problem);
        let info = start_info_with(&solver, m);
        let Some(start_global) = info.start else {
            return Ok(None);
        };
        let k = problem.k();
        let lay = Layout::new(problem);
        let start_offset = lay.local_addr(start_global) % k;
        if info.length == 1 {
            // Single class: the table has one live entry that loops to
            // itself with the period gap (Figure 5 line 16 analogue).
            let mut delta_m = vec![0i64; k as usize];
            let mut next_offset = vec![0i64; k as usize];
            delta_m[start_offset as usize] = problem.period_local();
            next_offset[start_offset as usize] = start_offset;
            return Ok(Some(TwoTable {
                delta_m,
                next_offset,
                start_offset,
                length: 1,
            }));
        }
        let basis = Basis::compute_with(problem, &solver)?;
        let (b_r, gap_r) = (basis.r.b, basis.gap_r(k));
        let (b_l, gap_l) = (basis.l.b, basis.gap_l(k));
        let km = k * m;
        let window_end = k * (m + 1);
        let length = info.length as usize;
        let mut delta_m = vec![0i64; k as usize];
        let mut next_offset = vec![0i64; k as usize];
        let mut offset = lay.in_row_offset(start_global);
        let mut emitted = 0usize;
        while emitted < length {
            while emitted < length && offset + b_r < window_end {
                delta_m[(offset - km) as usize] = gap_r;
                next_offset[(offset - km) as usize] = offset - km + b_r;
                offset += b_r;
                emitted += 1;
            }
            if emitted == length {
                break;
            }
            let from = offset - km;
            let mut gap = gap_l;
            offset -= b_l;
            if offset < km {
                gap += gap_r;
                offset += b_r;
            }
            delta_m[from as usize] = gap;
            next_offset[from as usize] = offset - km;
            emitted += 1;
        }
        // Close the cycle: the final entry's successor is the start state.
        Ok(Some(TwoTable {
            delta_m,
            next_offset,
            start_offset,
            length,
        }))
    }

    /// Enumerates local addresses starting from `start_local` while they are
    /// `<= last_local`, exactly as the Figure 8(d) loop does.
    pub fn locals_from(&self, start_local: i64, last_local: i64) -> Vec<i64> {
        let mut out = Vec::new();
        let mut base = start_local;
        let mut off = self.start_offset;
        while base <= last_local {
            out.push(base);
            base += self.delta_m[off as usize];
            off = self.next_offset[off as usize];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;

    #[test]
    fn figure6_two_table() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let pat = lattice_alg::build(&pr, 1).unwrap();
        let tt = TwoTable::from_pattern(&pat).unwrap();
        assert_eq!(tt.start_offset, 5); // start local address 5, 5 mod 8
        assert_eq!(tt.length, 8);
        // Offsets visited in order: 5,0,4,3,7,2,6,1 with gaps 3,12,15,12,...
        assert_eq!(tt.delta_m[5], 3);
        assert_eq!(tt.next_offset[5], 0);
        assert_eq!(tt.delta_m[0], 12);
        assert_eq!(tt.next_offset[0], 4);
    }

    #[test]
    fn traversal_equals_pattern_iteration() {
        for (p, k, l, s) in [
            (4i64, 8i64, 4i64, 9i64),
            (3, 4, 0, 7),
            (2, 16, 5, 35),
            (5, 3, 1, 11),
        ] {
            let pr = Problem::new(p, k, l, s).unwrap();
            for m in 0..p {
                let pat = lattice_alg::build(&pr, m).unwrap();
                let Some(tt) = TwoTable::from_pattern(&pat) else {
                    assert!(pat.is_empty());
                    continue;
                };
                let u = l + 50 * s;
                let expect = pat.locals_to(u);
                if expect.is_empty() {
                    continue;
                }
                let got = tt.locals_from(pat.start_local().unwrap(), *expect.last().unwrap());
                assert_eq!(got, expect, "p={p} k={k} l={l} s={s} m={m}");
            }
        }
    }

    #[test]
    fn direct_construction_equals_reindexing() {
        for p in 1..=4i64 {
            for k in [1i64, 2, 4, 8, 16] {
                for s in [1i64, 3, 7, 9, 16, 31, 33, 64] {
                    for l in [0i64, 4, 11] {
                        let pr = Problem::new(p, k, l, s).unwrap();
                        for m in 0..p {
                            let via_pattern =
                                TwoTable::from_pattern(&lattice_alg::build(&pr, m).unwrap());
                            let direct = TwoTable::build_direct(&pr, m).unwrap();
                            match (via_pattern, direct) {
                                (None, None) => {}
                                (Some(a), Some(b)) => {
                                    // Unvisited slots are don't-cares in both
                                    // constructions; compare the live cycle.
                                    assert_eq!(a.start_offset, b.start_offset);
                                    assert_eq!(a.length, b.length);
                                    let mut off = a.start_offset;
                                    for _ in 0..a.length {
                                        assert_eq!(
                                            a.delta_m[off as usize], b.delta_m[off as usize],
                                            "gap at offset {off} (p={p} k={k} s={s} l={l} m={m})"
                                        );
                                        assert_eq!(
                                            a.next_offset[off as usize],
                                            b.next_offset[off as usize],
                                            "next at offset {off} (p={p} k={k} s={s} l={l} m={m})"
                                        );
                                        off = a.next_offset[off as usize];
                                    }
                                }
                                (a, b) => panic!("presence mismatch: {a:?} vs {b:?}"),
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_pattern_has_no_tables() {
        let pr = Problem::new(2, 1, 0, 2).unwrap();
        let pat = lattice_alg::build(&pr, 1).unwrap();
        assert!(TwoTable::from_pattern(&pat).is_none());
    }

    #[test]
    fn visited_offsets_form_one_cycle() {
        // Every visited offset must appear exactly once per cycle, so
        // next_offset restricted to visited offsets is a single cycle of
        // length `length`.
        let pr = Problem::new(8, 16, 3, 37).unwrap();
        for m in 0..8 {
            let pat = lattice_alg::build(&pr, m).unwrap();
            let Some(tt) = TwoTable::from_pattern(&pat) else {
                continue;
            };
            let mut seen = [false; 16];
            let mut off = tt.start_offset;
            for _ in 0..tt.length {
                assert!(!seen[off as usize], "offset revisited within a cycle");
                seen[off as usize] = true;
                off = tt.next_offset[off as usize];
            }
            assert_eq!(off, tt.start_offset, "cycle must close");
            assert_eq!(seen.iter().filter(|&&b| b).count(), tt.length);
        }
    }
}
