//! The result type shared by every table-construction method: a processor's
//! cyclic access pattern (start location + memory-gap table `AM`).
//!
//! The paper's output (Figure 5) is the pair `(AM, length)` plus the start
//! location. We additionally carry the per-entry *global* index steps —
//! derived for free by every builder — because tests, bounded iteration and
//! the communication substrate all need to know *which* array element each
//! local address corresponds to.

use crate::error::Result;
use crate::layout::Layout;
use crate::params::Problem;
use crate::start::{count_owned, last_location};

/// The cyclic part of a non-empty access pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclicPattern {
    /// Global index of the first owned section element (`>= l`).
    pub start_global: i64,
    /// Local memory address of the start on this processor.
    pub start_local: i64,
    /// The `AM` table: local-memory gaps between consecutive owned section
    /// elements, in access order starting from the start location. Length
    /// is the cycle length (`<= k`); entry `t` is applied to move from the
    /// `t`-th to the `(t+1)`-th access (indices mod `length`).
    pub gaps: Vec<i64>,
    /// Global-index advance paired with each entry of `gaps`.
    pub global_steps: Vec<i64>,
}

/// A processor's access pattern: empty, or cyclic with period at most `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// The processor owns no section elements.
    Empty,
    /// The processor's accesses repeat with the given gap cycle.
    Cyclic(CyclicPattern),
}

/// Access pattern for one processor, bundled with its problem parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPattern {
    problem: Problem,
    m: i64,
    pattern: Pattern,
}

impl AccessPattern {
    /// Assembles a pattern; intended for the builder modules
    /// ([`crate::lattice_alg`], [`crate::sorting_alg`],
    /// [`crate::hiranandani`], [`crate::oracle`]).
    pub fn from_parts(problem: Problem, m: i64, pattern: Pattern) -> Self {
        AccessPattern {
            problem,
            m,
            pattern,
        }
    }

    /// The validated problem parameters this pattern answers.
    #[inline]
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Processor number the pattern belongs to.
    #[inline]
    pub fn proc(&self) -> i64 {
        self.m
    }

    /// The pattern body.
    #[inline]
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Cycle length (`0` when the processor owns nothing).
    pub fn len(&self) -> usize {
        match &self.pattern {
            Pattern::Empty => 0,
            Pattern::Cyclic(c) => c.gaps.len(),
        }
    }

    /// True when the processor owns no section elements.
    pub fn is_empty(&self) -> bool {
        matches!(self.pattern, Pattern::Empty)
    }

    /// The `AM` gap table (empty slice for an empty pattern).
    pub fn gaps(&self) -> &[i64] {
        match &self.pattern {
            Pattern::Empty => &[],
            Pattern::Cyclic(c) => &c.gaps,
        }
    }

    /// Global index of the first owned element, if any.
    pub fn start_global(&self) -> Option<i64> {
        match &self.pattern {
            Pattern::Empty => None,
            Pattern::Cyclic(c) => Some(c.start_global),
        }
    }

    /// Local address of the first owned element, if any.
    pub fn start_local(&self) -> Option<i64> {
        match &self.pattern {
            Pattern::Empty => None,
            Pattern::Cyclic(c) => Some(c.start_local),
        }
    }

    /// Iterates `(global_index, local_address)` pairs in access order,
    /// without an upper bound (infinite for non-empty patterns).
    pub fn iter(&self) -> PatternIter<'_> {
        PatternIter {
            pattern: self,
            state: self.initial_state(),
        }
    }

    /// Iterates accesses whose global index is `<= u`.
    pub fn iter_to(&self, u: i64) -> impl Iterator<Item = Access> + '_ {
        self.iter().take_while(move |acc| acc.global <= u)
    }

    /// Collects the local addresses of all accesses with global index
    /// `<= u` (the sequence a node program would traverse).
    pub fn locals_to(&self, u: i64) -> Vec<i64> {
        self.iter_to(u).map(|a| a.local).collect()
    }

    /// Local address of the *last* access `<= u`, computed in closed form
    /// (used to bound node-code loops, like `lastmem` in Figure 8).
    pub fn last_local(&self, u: i64) -> Result<Option<i64>> {
        let lay = Layout::new(&self.problem);
        Ok(last_location(&self.problem, self.m, u)?.map(|g| lay.local_addr(g)))
    }

    /// Number of accesses with global index `<= u`, in closed form.
    pub fn count_to(&self, u: i64) -> Result<i64> {
        count_owned(&self.problem, self.m, u)
    }

    fn initial_state(&self) -> Option<IterState> {
        match &self.pattern {
            Pattern::Empty => None,
            Pattern::Cyclic(c) => Some(IterState {
                global: c.start_global,
                local: c.start_local,
                idx: 0,
            }),
        }
    }

    /// Exhaustively checks the structural invariants every builder must
    /// satisfy; used by tests (including property tests) for all methods.
    ///
    /// Verified properties:
    /// * gap entries are strictly positive (accesses are strictly
    ///   increasing in local memory);
    /// * gaps sum to one local period `k·s/d` and global steps to one
    ///   global period `lcm(s, pk)`;
    /// * every enumerated access over two periods is owned by `m`, lies on
    ///   the section, has the correct local address, and consecutive
    ///   accesses are consecutive owned section elements (nothing skipped).
    pub fn check_invariants(&self) {
        let c = match &self.pattern {
            Pattern::Empty => return,
            Pattern::Cyclic(c) => c,
        };
        let pr = &self.problem;
        let lay = Layout::new(pr);
        assert_eq!(c.gaps.len(), c.global_steps.len());
        assert!(!c.gaps.is_empty());
        assert!(c.gaps.len() as i64 <= pr.k(), "cycle length exceeds k");
        assert!(c.gaps.iter().all(|&g| g > 0), "non-positive gap");
        assert!(
            c.global_steps.iter().all(|&g| g > 0),
            "non-positive global step"
        );
        assert_eq!(
            c.gaps.iter().sum::<i64>(),
            pr.period_local(),
            "gap cycle sum"
        );
        assert_eq!(
            c.global_steps.iter().sum::<i64>(),
            pr.period_global(),
            "global step cycle sum"
        );
        // Walk two periods and cross-check against the layout.
        assert_eq!(lay.owner(c.start_global), self.m);
        assert_eq!(lay.local_addr(c.start_global), c.start_local);
        assert!(c.start_global >= pr.l());
        assert_eq!(
            (c.start_global - pr.l()) % pr.s(),
            0,
            "start not on section"
        );
        let mut prev = c.start_global;
        for acc in self.iter().take(2 * c.gaps.len() + 1).skip(1) {
            assert_eq!(lay.owner(acc.global), self.m, "access not owned");
            assert_eq!((acc.global - pr.l()) % pr.s(), 0, "access not on section");
            assert_eq!(lay.local_addr(acc.global), acc.local, "local address drift");
            // No owned section element lies strictly between prev and this.
            let skipped = ((prev - pr.l()) / pr.s() + 1..(acc.global - pr.l()) / pr.s())
                .map(|j| pr.l() + pr.s() * j)
                .filter(|&g| lay.owner(g) == self.m)
                .count();
            assert_eq!(skipped, 0, "access sequence skipped an owned element");
            prev = acc.global;
        }
    }
}

/// One access: the array element's global index and its local address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Access {
    /// Global array index of the element.
    pub global: i64,
    /// Local memory address on the owning processor.
    pub local: i64,
}

#[derive(Debug, Clone, Copy)]
struct IterState {
    global: i64,
    local: i64,
    idx: usize,
}

/// Iterator over a pattern's accesses in increasing global-index order.
#[derive(Debug, Clone)]
pub struct PatternIter<'a> {
    pattern: &'a AccessPattern,
    state: Option<IterState>,
}

impl Iterator for PatternIter<'_> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let st = self.state.as_mut()?;
        let out = Access {
            global: st.global,
            local: st.local,
        };
        if let Pattern::Cyclic(c) = &self.pattern.pattern {
            st.local += c.gaps[st.idx];
            st.global += c.global_steps[st.idx];
            st.idx = (st.idx + 1) % c.gaps.len();
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure6_pattern() -> AccessPattern {
        // Hand-assembled from the paper's worked example (Figure 6):
        // p=4, k=8, l=4, s=9, m=1, start=13, AM=[3,12,15,12,3,12,3,12].
        let problem = Problem::new(4, 8, 4, 9).unwrap();
        // Global steps recovered from the walk in Section 5:
        // 13→40 (27), 40→76 (36), 76→139 (63), 139→175 (36), 175→202 (27),
        // 202→238 (36), 238→265 (27), 265→301 (36).
        AccessPattern::from_parts(
            problem,
            1,
            Pattern::Cyclic(CyclicPattern {
                start_global: 13,
                start_local: 5, // 13 = course 0, in-row 13, block offset 5
                gaps: vec![3, 12, 15, 12, 3, 12, 3, 12],
                global_steps: vec![27, 36, 63, 36, 27, 36, 27, 36],
            }),
        )
    }

    #[test]
    fn figure6_pattern_is_valid() {
        figure6_pattern().check_invariants();
    }

    #[test]
    fn iteration_matches_figure6_walk() {
        let pat = figure6_pattern();
        let globals: Vec<i64> = pat.iter().take(9).map(|a| a.global).collect();
        assert_eq!(globals, vec![13, 40, 76, 139, 175, 202, 238, 265, 301]);
    }

    #[test]
    fn bounded_iteration() {
        let pat = figure6_pattern();
        let upto: Vec<i64> = pat.iter_to(202).map(|a| a.global).collect();
        assert_eq!(upto, vec![13, 40, 76, 139, 175, 202]);
        assert_eq!(pat.count_to(202).unwrap(), 6);
        // last_local agrees with the final iterated access.
        let last = pat.iter_to(202).last().unwrap();
        assert_eq!(pat.last_local(202).unwrap(), Some(last.local));
        // Below the start: nothing.
        assert_eq!(pat.iter_to(12).count(), 0);
        assert_eq!(pat.last_local(12).unwrap(), None);
    }

    #[test]
    fn empty_pattern_behaves() {
        let problem = Problem::new(2, 1, 0, 2).unwrap();
        let pat = AccessPattern::from_parts(problem, 1, Pattern::Empty);
        assert!(pat.is_empty());
        assert_eq!(pat.len(), 0);
        assert_eq!(pat.iter().count(), 0);
        assert_eq!(pat.gaps(), &[] as &[i64]);
        pat.check_invariants();
    }
}
