//! Finite-state-machine view of the gap sequence.
//!
//! Chatterjee et al. "visualize the table containing the offset and memory
//! gap sequences as the transition diagram of a finite state machine"
//! (paper Section 2): states are the block offsets the section visits on a
//! processor; the transition out of a state is labelled with the local
//! memory gap; the machine's transition structure depends only on
//! `(p, k, s)`, while the *start state* depends on the lower bound `l` and
//! the processor number `m`.
//!
//! This module materializes that view and uses it to verify the paper's
//! Section 6.1 observation: when `gcd(s, pk) = 1` the local `AM` sequences
//! of all processors are cyclic shifts of one another.

use crate::error::Result;
use crate::method::{build, Method};
use crate::params::Problem;
use crate::pattern::{AccessPattern, Pattern};

/// One FSM state: a visited block offset with its outgoing transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct State {
    /// Block offset (in `[0, k)`) this state represents.
    pub offset: i64,
    /// Local memory gap emitted on the transition out of this state.
    pub gap: i64,
    /// Index (into [`Fsm::states`]) of the successor state.
    pub next: usize,
}

/// The transition diagram of a processor's access sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsm {
    /// States in *access order starting from the start state*; the
    /// transition structure is a single cycle through all of them.
    pub states: Vec<State>,
    /// Index of the start state (always 0 by construction; kept explicit
    /// for readability at call sites).
    pub start: usize,
}

impl Fsm {
    /// Builds the FSM from an access pattern. Returns `None` for an empty
    /// pattern.
    pub fn from_pattern(pattern: &AccessPattern) -> Option<Fsm> {
        let c = match pattern.pattern() {
            Pattern::Empty => return None,
            Pattern::Cyclic(c) => c,
        };
        let k = pattern.problem().k();
        let n = c.gaps.len();
        let mut states = Vec::with_capacity(n);
        let mut local = c.start_local;
        for (t, &gap) in c.gaps.iter().enumerate() {
            states.push(State {
                offset: local % k,
                gap,
                next: (t + 1) % n,
            });
            local += gap;
        }
        Some(Fsm { states, start: 0 })
    }

    /// Convenience: build the pattern with `method` and convert.
    pub fn build(problem: &Problem, m: i64, method: Method) -> Result<Option<Fsm>> {
        Ok(Self::from_pattern(&build(problem, m, method)?))
    }

    /// The gap sequence read off by running the machine one full cycle from
    /// the start state.
    pub fn gap_cycle(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.states.len());
        let mut s = self.start;
        for _ in 0..self.states.len() {
            out.push(self.states[s].gap);
            s = self.states[s].next;
        }
        out
    }
}

/// True when `b` is a cyclic rotation of `a` (used to check the Section 6.1
/// claim that, for `gcd(s, pk) = 1`, per-processor `AM` tables are cyclic
/// shifts of one another).
pub fn is_cyclic_shift(a: &[i64], b: &[i64]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    if a.is_empty() {
        return true;
    }
    (0..a.len()).any(|r| a.iter().cycle().skip(r).take(a.len()).eq(b.iter()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;

    #[test]
    fn fsm_reproduces_gap_table() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let pat = lattice_alg::build(&pr, 1).unwrap();
        let fsm = Fsm::from_pattern(&pat).unwrap();
        assert_eq!(fsm.gap_cycle(), pat.gaps());
        assert_eq!(fsm.states.len(), 8);
    }

    #[test]
    fn cyclic_shift_detection() {
        assert!(is_cyclic_shift(&[1, 2, 3], &[3, 1, 2]));
        assert!(is_cyclic_shift(&[1, 2, 3], &[1, 2, 3]));
        assert!(!is_cyclic_shift(&[1, 2, 3], &[3, 2, 1]));
        assert!(!is_cyclic_shift(&[1, 2], &[1, 2, 3]));
        assert!(is_cyclic_shift(&[], &[]));
        assert!(is_cyclic_shift(&[5, 5], &[5, 5]));
    }

    #[test]
    fn coprime_stride_tables_are_cyclic_shifts() {
        // Section 6.1: "if GCD(s, pk) = 1, then the local AM sequences are
        // cyclic shifts of one another".
        for s in [7i64, 9, 31, 33] {
            let pr = Problem::new(4, 8, 0, s).unwrap();
            assert_eq!(pr.d(), 1);
            let base = lattice_alg::build(&pr, 0).unwrap();
            for m in 1..4 {
                let pat = lattice_alg::build(&pr, m).unwrap();
                assert!(
                    is_cyclic_shift(base.gaps(), pat.gaps()),
                    "s={s} m={m}: {:?} vs {:?}",
                    base.gaps(),
                    pat.gaps()
                );
            }
        }
    }

    #[test]
    fn transition_structure_independent_of_lower_bound() {
        // The transition table depends only on (p, k, s); the lower bound
        // only moves the start state (paper Section 2). Compare the state
        // sets (offset -> gap maps) for two lower bounds.
        let pr_a = Problem::new(4, 8, 0, 9).unwrap();
        let pr_b = Problem::new(4, 8, 13, 9).unwrap();
        for m in 0..4 {
            let fa = Fsm::from_pattern(&lattice_alg::build(&pr_a, m).unwrap()).unwrap();
            let fb = Fsm::from_pattern(&lattice_alg::build(&pr_b, m).unwrap()).unwrap();
            let mut map_a: Vec<(i64, i64)> = fa.states.iter().map(|s| (s.offset, s.gap)).collect();
            let mut map_b: Vec<(i64, i64)> = fb.states.iter().map(|s| (s.offset, s.gap)).collect();
            map_a.sort_unstable();
            map_b.sort_unstable();
            assert_eq!(map_a, map_b, "m={m}");
        }
    }
}
