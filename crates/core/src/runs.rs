//! Run-length compilation of gap tables — contiguity analysis.
//!
//! The paper's `AM` table drives the node loop one element at a time:
//! `addr += deltaM[i]`. But whenever `s < k` the owned elements cluster:
//! inside one course the stride-`s` hits are `s` apart, and for `s == 1`
//! they are *contiguous*. This module folds a gap table into a [`RunPlan`]
//! — a cyclic list of constant-gap [`Run`]s — so traversal clients can
//! replace the per-element walk with a handful of slice operations per
//! period: `memcpy` for unit-gap runs, a tight strided loop otherwise.
//!
//! Compilation preserves the access sequence **exactly**: expanding a
//! `RunPlan` reproduces, element by element, the address stream of the
//! per-element walk over `(start, last, AM)` (property-tested against the
//! table-free [`crate::walker`] oracle). Three shapes get closed forms:
//!
//! * [`RunShape::Single`] — `AM` is empty: exactly one element (`p·k ∤ s`
//!   never produces this, but single-element sections do);
//! * [`RunShape::Uniform`] — every gap equal (covers `s == 1` dense
//!   memory, and every `s | k` intra-block pattern, e.g. the `s = 2`
//!   half-stride case): the whole traversal is **one** arithmetic
//!   progression, `gap == 1` being a single `memcpy`;
//! * [`RunShape::Cyclic`] — the general case: maximal constant-gap runs,
//!   split at the period boundary so the decomposition is exactly
//!   periodic and anchored at `start`.
//!
//! The decomposition never lets a wide-gap run "steal" the first element
//! of a following unit run — unit runs are the memcpy currency, so the
//! grouping keeps them maximal.

/// One constant-gap run inside a cyclic [`RunPlan`]: `len` elements spaced
/// `gap` apart, then `skip` from the run's last element to the next run's
/// first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Number of elements in the run (`>= 1`).
    pub len: i64,
    /// Local-address step between consecutive elements (`1` = contiguous).
    /// Conventionally `1` for single-element runs.
    pub gap: i64,
    /// Step from this run's last element to the next run's first element.
    pub skip: i64,
}

/// The contiguity class of a compiled gap table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunShape {
    /// The node owns nothing; the traversal is empty.
    Empty,
    /// `delta_m` is empty: exactly one element, at `start`.
    Single,
    /// Every gap equals `gap`: the whole traversal is one arithmetic
    /// progression from `start` to `last`.
    Uniform {
        /// The common gap (`1` = the traversal is one contiguous slice).
        gap: i64,
    },
    /// General periodic case: the runs of one table period, in order,
    /// anchored at `start`. `sum(run.len) == delta_m.len()`.
    Cyclic(Vec<Run>),
}

/// One expanded segment of a traversal: `len` elements at
/// `addr, addr + gap, …, addr + (len-1)·gap`, all `<= last`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First local address of the segment.
    pub addr: i64,
    /// Address step inside the segment (`1` = contiguous).
    pub gap: i64,
    /// Number of elements (`>= 1`).
    pub len: i64,
}

/// A gap table compiled to runs: the run-coalesced form of a node plan's
/// `(start, last, AM)` triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunPlan {
    start: i64,
    last: i64,
    shape: RunShape,
}

impl RunPlan {
    /// The empty plan (a node that owns nothing).
    pub fn empty() -> RunPlan {
        RunPlan {
            start: 0,
            last: -1,
            shape: RunShape::Empty,
        }
    }

    /// Compiles `(start, last, delta_m)` — the node-plan triple of
    /// [`crate::pattern::AccessPattern`] traversals — into runs.
    ///
    /// `start == None` (or `start > last`) yields the empty plan. Gaps
    /// must be strictly positive (the pattern invariant).
    pub fn compile(start: Option<i64>, last: i64, delta_m: &[i64]) -> RunPlan {
        let Some(start) = start else {
            return RunPlan::empty();
        };
        if start > last {
            return RunPlan::empty();
        }
        if delta_m.is_empty() {
            return RunPlan {
                start,
                last,
                shape: RunShape::Single,
            };
        }
        debug_assert!(delta_m.iter().all(|&g| g > 0), "gaps must be positive");
        let g0 = delta_m[0];
        if delta_m.iter().all(|&g| g == g0) {
            return RunPlan {
                start,
                last,
                shape: RunShape::Uniform { gap: g0 },
            };
        }
        RunPlan {
            start,
            last,
            shape: RunShape::Cyclic(group_runs(delta_m)),
        }
    }

    /// `true` when the traversal visits nothing.
    pub fn is_empty(&self) -> bool {
        matches!(self.shape, RunShape::Empty)
    }

    /// The contiguity class.
    pub fn shape(&self) -> &RunShape {
        &self.shape
    }

    /// First local address, when non-empty.
    pub fn start(&self) -> Option<i64> {
        (!self.is_empty()).then_some(self.start)
    }

    /// Inclusive last local address bound of the traversal.
    pub fn last(&self) -> i64 {
        self.last
    }

    /// `true` when some run spans more than one element — i.e. the plan
    /// offers slice copies the element-by-element walk does not. Clients
    /// with a cheap scalar path may fall back to it when this is `false`
    /// (all-singleton runs pay per-segment dispatch for no gain).
    pub fn coalesces(&self) -> bool {
        match &self.shape {
            RunShape::Empty | RunShape::Single => false,
            RunShape::Uniform { .. } => self.count() > 1,
            RunShape::Cyclic(runs) => runs.iter().any(|r| r.len >= 2),
        }
    }

    /// Number of runs per table period (`0` when empty, `1` for the
    /// closed-form shapes). The coalescing factor is
    /// `delta_m.len() / runs_per_period()`.
    pub fn runs_per_period(&self) -> usize {
        match &self.shape {
            RunShape::Empty => 0,
            RunShape::Single | RunShape::Uniform { .. } => 1,
            RunShape::Cyclic(runs) => runs.len(),
        }
    }

    /// Elements per gap-table period — the `delta_m` length the plan was
    /// compiled from (`0` when empty, `1` for the closed-form shapes,
    /// which repeat a one-gap period). The average run length is
    /// `period_elements() / runs_per_period()`.
    pub fn period_elements(&self) -> usize {
        match &self.shape {
            RunShape::Empty => 0,
            RunShape::Single | RunShape::Uniform { .. } => 1,
            RunShape::Cyclic(runs) => runs.iter().map(|r| r.len as usize).sum(),
        }
    }

    /// Exact number of elements the traversal visits, in closed form over
    /// whole periods plus one partial-period walk.
    pub fn count(&self) -> usize {
        match &self.shape {
            RunShape::Empty => 0,
            RunShape::Single => 1,
            RunShape::Uniform { gap } => ((self.last - self.start) / gap + 1) as usize,
            RunShape::Cyclic(runs) => {
                let advance: i64 = runs.iter().map(|r| (r.len - 1) * r.gap + r.skip).sum();
                let per_period: i64 = runs.iter().map(|r| r.len).sum();
                let q = (self.last - self.start) / advance;
                let mut n = q * per_period;
                let mut addr = self.start + q * advance;
                for r in runs {
                    if addr > self.last {
                        break;
                    }
                    let avail = (self.last - addr) / r.gap + 1;
                    n += avail.min(r.len);
                    if avail < r.len {
                        break;
                    }
                    addr += (r.len - 1) * r.gap + r.skip;
                }
                n as usize
            }
        }
    }

    /// Calls `f` for every traversal segment, in access order, clamped to
    /// `last`. This is the hot-path expansion: clients turn each
    /// [`Segment`] into one slice copy or one strided loop.
    pub fn for_each_segment(&self, mut f: impl FnMut(Segment)) {
        match &self.shape {
            RunShape::Empty => {}
            RunShape::Single => f(Segment {
                addr: self.start,
                gap: 1,
                len: 1,
            }),
            RunShape::Uniform { gap } => f(Segment {
                addr: self.start,
                gap: *gap,
                len: (self.last - self.start) / gap + 1,
            }),
            RunShape::Cyclic(runs) => {
                let mut addr = self.start;
                'outer: loop {
                    for r in runs {
                        if addr > self.last {
                            break 'outer;
                        }
                        let avail = (self.last - addr) / r.gap + 1;
                        let take = avail.min(r.len);
                        f(Segment {
                            addr,
                            gap: r.gap,
                            len: take,
                        });
                        if take < r.len {
                            break 'outer;
                        }
                        addr += (r.len - 1) * r.gap + r.skip;
                    }
                }
            }
        }
    }

    /// Expands the plan to the full element-by-element address sequence —
    /// the test oracle for the exactness obligation.
    pub fn expand(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.count());
        self.for_each_segment(|seg| {
            out.extend((0..seg.len).map(|j| seg.addr + j * seg.gap));
        });
        out
    }
}

/// Records the run-coalescing trace counters for a traversal that executed
/// `segments` coalesced (multi-element) segments covering `elements`
/// elements. The average coalesced run length is
/// `run_len_total / runs_coalesced`. No-op when nothing coalesced.
pub fn count_coalesced(segments: u64, elements: u64) {
    if segments > 0 {
        bcag_trace::count("runs_coalesced", segments);
        bcag_trace::count("run_len_total", elements);
    }
}

/// Greedy maximal constant-gap grouping of one table period. Element `i`
/// has forward gap `delta_m[i]`; a run of elements `a..=b` uses gaps
/// `a..b` internally (all equal) and `delta_m[b]` as its skip. Runs never
/// cross the period boundary, so the decomposition tiles exactly.
fn group_runs(delta_m: &[i64]) -> Vec<Run> {
    let n = delta_m.len();
    let mut runs = Vec::new();
    let mut a = 0usize;
    while a < n {
        let g = delta_m[a];
        let mut b = a;
        // Absorb element b+1 while its connecting gap matches — except a
        // wide-gap run must not steal the head of a unit run (the element
        // whose own forward gap is 1 belongs to the contiguous block it
        // starts, unless it is the period's final element).
        while b + 1 < n && delta_m[b] == g && (g == 1 || delta_m[b + 1] != 1 || b + 1 == n - 1) {
            b += 1;
        }
        runs.push(Run {
            len: (b - a + 1) as i64,
            gap: if b > a { g } else { 1 },
            skip: delta_m[b],
        });
        a = b + 1;
    }
    debug_assert_eq!(runs.iter().map(|r| r.len).sum::<i64>(), n as i64);
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference per-element walk: the contract every shape must match.
    fn walk(start: Option<i64>, last: i64, delta_m: &[i64]) -> Vec<i64> {
        let Some(start) = start else { return vec![] };
        let mut out = Vec::new();
        let mut addr = start;
        let mut i = 0usize;
        while addr <= last {
            out.push(addr);
            if delta_m.is_empty() {
                break;
            }
            addr += delta_m[i];
            i += 1;
            if i == delta_m.len() {
                i = 0;
            }
        }
        out
    }

    fn check(start: Option<i64>, last: i64, delta_m: &[i64]) -> RunPlan {
        let plan = RunPlan::compile(start, last, delta_m);
        let expect = walk(start, last, delta_m);
        assert_eq!(
            plan.expand(),
            expect,
            "start={start:?} last={last} AM={delta_m:?}"
        );
        assert_eq!(plan.count(), expect.len());
        plan
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        assert!(RunPlan::compile(None, 100, &[1, 2]).is_empty());
        assert!(RunPlan::compile(Some(5), 4, &[1]).is_empty());
        assert_eq!(RunPlan::empty().expand(), Vec::<i64>::new());
        assert_eq!(RunPlan::empty().count(), 0);
        assert_eq!(RunPlan::empty().runs_per_period(), 0);
        // delta_m empty: exactly one element.
        let single = check(Some(7), 7, &[]);
        assert_eq!(single.shape(), &RunShape::Single);
        assert_eq!(single.expand(), vec![7]);
    }

    #[test]
    fn dense_is_one_memcpy_segment() {
        let plan = check(Some(3), 42, &[1]);
        assert_eq!(plan.shape(), &RunShape::Uniform { gap: 1 });
        let mut segs = Vec::new();
        plan.for_each_segment(|s| segs.push(s));
        assert_eq!(
            segs,
            vec![Segment {
                addr: 3,
                gap: 1,
                len: 40
            }]
        );
    }

    #[test]
    fn uniform_stride_is_one_segment() {
        // s=2 | k: gaps are all 2 — the half-stride bench case.
        let plan = check(Some(0), 1023, &[2, 2, 2, 2]);
        assert_eq!(plan.shape(), &RunShape::Uniform { gap: 2 });
        assert_eq!(plan.runs_per_period(), 1);
        assert_eq!(plan.count(), 512);
    }

    #[test]
    fn figure6_table_groups_exactly() {
        // The paper's worked example: p=4, k=8, l=4, s=9, proc 1 —
        // AM = [3,12,15,12,3,12,3,12], start 5 (local), varied bounds.
        let am = [3i64, 12, 15, 12, 3, 12, 3, 12];
        for last in [5, 8, 20, 35, 50, 77, 100, 200, 500] {
            check(Some(5), last, &am);
        }
    }

    #[test]
    fn unit_runs_are_not_stolen() {
        // [5,1,1,1,9]: the 5-gap element must stay a singleton so the
        // unit run keeps all four of its elements.
        let plan = check(Some(0), 200, &[5, 1, 1, 1, 9]);
        let RunShape::Cyclic(runs) = plan.shape() else {
            panic!("expected cyclic");
        };
        assert_eq!(
            runs,
            &vec![
                Run {
                    len: 1,
                    gap: 1,
                    skip: 5
                },
                Run {
                    len: 4,
                    gap: 1,
                    skip: 9
                },
            ]
        );
    }

    #[test]
    fn wide_gap_runs_coalesce() {
        // [3,3,3,10]: one gap-3 run of 4 elements, then the skip.
        let plan = check(Some(2), 300, &[3, 3, 3, 10]);
        let RunShape::Cyclic(runs) = plan.shape() else {
            panic!("expected cyclic");
        };
        assert_eq!(
            runs,
            &vec![Run {
                len: 4,
                gap: 3,
                skip: 10
            }]
        );
    }

    #[test]
    fn period_final_unit_gap_is_absorbed() {
        // [5,5,1]: trailing gap-1 is the period-boundary skip, so the
        // gap-5 run may absorb the final element.
        let plan = check(Some(0), 120, &[5, 5, 1]);
        let RunShape::Cyclic(runs) = plan.shape() else {
            panic!("expected cyclic");
        };
        assert_eq!(
            runs,
            &vec![Run {
                len: 3,
                gap: 5,
                skip: 1
            }]
        );
    }

    #[test]
    fn clamping_stops_mid_run_and_mid_period() {
        // Force the bound inside a run and between runs.
        let am = [1i64, 1, 7, 2, 2, 19];
        for last in 0..=120 {
            check(Some(0), last, &am);
        }
    }

    #[test]
    fn expansion_matches_walk_on_mixed_tables() {
        for (start, last, am) in [
            (0i64, 97i64, vec![1i64, 1, 1, 5]),
            (11, 400, vec![2, 2, 9, 1, 1, 1, 4]),
            (0, 63, vec![7]),
            (3, 3, vec![4, 4]),
            (0, 1000, vec![1, 2, 1, 2, 10]),
        ] {
            check(Some(start), last, &am);
        }
    }
}
