//! ASCII renderings of the paper's layout figures.
//!
//! Figure 1 of the paper draws the `cyclic(8)`-over-4-processors layout as a
//! matrix of rows of `pk` elements, with the elements of the section
//! `l = 0, s = 9` boxed. Figures 2, 4 and 6 reuse the same canvas to show
//! basis-vector segments and the points the algorithm visits. This module
//! renders the same pictures as text, for documentation, the CLI, and the
//! `layout_viz` example.

use crate::basis::Basis;
use crate::layout::Layout;
use crate::params::Problem;
use crate::pattern::AccessPattern;

/// How an element is decorated in the rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// Plain element: printed as its index.
    None,
    /// Section element: printed in `[brackets]` (the paper's rectangles).
    Boxed,
    /// Element visited by the table-construction walk: printed in `<...>`.
    Visited,
    /// The section's lower bound: printed in `(parentheses)` (the paper's
    /// circle).
    Origin,
}

/// Renders `rows` courses of the layout, decorating each element with the
/// mark chosen by `classify`. Processor boundaries are drawn with `|`.
pub fn render_layout<F>(p: i64, k: i64, rows: i64, classify: F) -> String
where
    F: Fn(i64) -> Mark,
{
    let lay = Layout::from_raw(p, k);
    let pk = lay.row_len();
    let max_index = rows * pk - 1;
    let width = max_index.to_string().len() + 2; // room for the decoration
    let mut out = String::new();

    // Header with processor numbers.
    out.push_str("  ");
    for proc in 0..p {
        let label = format!("Proc {proc}");
        let block_width = (width + 1) * k as usize;
        out.push_str(&format!("{label:^block_width$}"));
        if proc + 1 < p {
            out.push(' ');
        }
    }
    out.push('\n');

    for row in 0..rows {
        out.push_str("  ");
        for col in 0..pk {
            let i = row * pk + col;
            let cell = match classify(i) {
                Mark::None => format!(" {i} "),
                Mark::Boxed => format!("[{i}]"),
                Mark::Visited => format!("<{i}>"),
                Mark::Origin => format!("({i})"),
            };
            out.push_str(&format!("{cell:>width$}"));
            if col % k == k - 1 && col + 1 < pk {
                out.push_str(" |");
            } else {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

/// Figure-1 style rendering: section elements boxed, lower bound circled.
pub fn render_section(problem: &Problem, rows: i64) -> String {
    let l = problem.l();
    let s = problem.s();
    render_layout(problem.p(), problem.k(), rows, |i| {
        if i == l {
            Mark::Origin
        } else if i > l && (i - l) % s == 0 {
            Mark::Boxed
        } else {
            Mark::None
        }
    })
}

/// Figure-6 style rendering for one processor: the points the access walk
/// visits are highlighted, everything else on the section boxed.
pub fn render_visits(pattern: &AccessPattern, rows: i64) -> String {
    let pr = pattern.problem();
    let (l, s) = (pr.l(), pr.s());
    let limit = rows * pr.row_len();
    let visited: std::collections::HashSet<i64> =
        pattern.iter_to(limit).map(|a| a.global).collect();
    render_layout(pr.p(), pr.k(), rows, |i| {
        if i == l {
            Mark::Origin
        } else if visited.contains(&i) {
            Mark::Visited
        } else if i > l && (i - l) % s == 0 {
            Mark::Boxed
        } else {
            Mark::None
        }
    })
}

/// Figure-2 style rendering of the lattice itself: the strip
/// `0 <= b < pk`, `0 <= a < rows` of the coordinate plane, with lattice
/// points marked. `O` is the origin, `R` the endpoint of the basis vector
/// R (the minimum of the initial cycle), `M` the maximum of the initial
/// cycle (whose displacement to the next cycle start is L), `*` other
/// lattice points, `·` non-points; `|` separates processors.
pub fn render_lattice(problem: &Problem, rows: i64) -> String {
    let pk = problem.row_len();
    let k = problem.k();
    let s = problem.s();
    let basis = Basis::compute(problem).ok();
    let (r_pt, m_pt) = match &basis {
        Some(b) => (
            Some((b.r.b, b.r.a)),
            // The max point in absolute coordinates: L = max − (0, s/d).
            Some((b.l.b, b.l.a + s / problem.d())),
        ),
        None => (None, None),
    };
    let mut out = String::new();
    out.push_str("    y\\x ");
    for b in 0..pk {
        out.push_str(&format!("{:>3}", b % 10));
        if b % k == k - 1 && b + 1 < pk {
            out.push_str(" |");
        }
    }
    out.push('\n');
    for a in 0..rows {
        out.push_str(&format!("{a:>7} "));
        for b in 0..pk {
            let is_point = (pk as i128 * a as i128 + b as i128).rem_euclid(s as i128) == 0;
            let mark = if (b, a) == (0, 0) {
                "  O"
            } else if Some((b, a)) == r_pt {
                "  R"
            } else if Some((b, a)) == m_pt {
                "  M"
            } else if is_point {
                "  *"
            } else {
                "  ·"
            };
            out.push_str(mark);
            if b % k == k - 1 && b + 1 < pk {
                out.push_str(" |");
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a textual summary of the basis vectors, in the style of the
/// Figure 3 caption ("Vectors R = (4,1) and L = (5,−1)").
pub fn describe_basis(problem: &Problem) -> String {
    match Basis::compute(problem) {
        Ok(b) => format!(
            "R = ({}, {}) for section index {} (global {}), \
             L = ({}, {}) for section index {} (relative to next cycle)\n\
             local gaps: +R -> {}, -L -> {}",
            b.r.b,
            b.r.a,
            b.r.i,
            b.r.i * problem.s(),
            b.l.b,
            b.l.a,
            b.l.i,
            b.gap_r(problem.k()),
            b.gap_l(problem.k()),
        ),
        Err(_) => format!(
            "degenerate lattice: gcd(s, pk) = {} >= k = {}; at most one offset \
             class per processor",
            problem.d(),
            problem.k()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;

    #[test]
    fn figure1_rendering_marks_section() {
        let pr = Problem::new(4, 8, 0, 9).unwrap();
        let pic = render_section(&pr, 3);
        assert!(pic.contains("(0)"), "lower bound circled");
        assert!(pic.contains("[9]"), "first stride element boxed");
        assert!(pic.contains("[18]"));
        assert!(pic.contains(" 1 "), "non-section element plain");
        assert!(pic.contains("Proc 0") && pic.contains("Proc 3"));
        // 3 rows + header.
        assert_eq!(pic.lines().count(), 4);
    }

    #[test]
    fn figure6_rendering_marks_visits() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let pat = lattice_alg::build(&pr, 1).unwrap();
        let pic = render_visits(&pat, 10);
        assert!(pic.contains("(4)"), "lower bound");
        assert!(pic.contains("<13>"), "start visited");
        assert!(pic.contains("<40>"));
        assert!(
            pic.contains("[22]"),
            "section element not on proc 1 stays boxed"
        );
    }

    #[test]
    fn lattice_strip_rendering() {
        let pr = Problem::new(4, 8, 0, 9).unwrap();
        let pic = render_lattice(&pr, 10);
        // 10 rows plus the header.
        assert_eq!(pic.lines().count(), 11);
        assert!(pic.contains('O'), "origin marked");
        assert!(pic.contains('R'), "R endpoint marked");
        assert!(pic.contains('M'), "cycle maximum marked");
        // R = (4, 1): row for a = 1 must carry the R mark.
        let row1 = pic.lines().nth(2).unwrap();
        assert!(row1.contains('R'), "{row1}");
        // The max point (5, 8): row a = 8 carries M.
        let row8 = pic.lines().nth(9).unwrap();
        assert!(row8.contains('M'), "{row8}");
        // Point count: lattice points in the strip are the multiples of 9
        // below 10·32 = 320, i.e. ceil(320/9) = 36 points.
        let stars = pic.matches('*').count() + 3; // plus O, R, M
        assert_eq!(stars, 36);
    }

    #[test]
    fn basis_description() {
        let pr = Problem::new(4, 8, 0, 9).unwrap();
        let d = describe_basis(&pr);
        assert!(d.contains("R = (4, 1)"));
        assert!(d.contains("L = (5, -1)"));
        let degenerate = Problem::new(4, 8, 0, 16).unwrap();
        assert!(describe_basis(&degenerate).contains("degenerate"));
    }
}
