//! Lowering pass: classify a compiled [`RunPlan`] into a flat list of
//! shape-tagged segments a plan compiler can monomorphize over.
//!
//! [`crate::runs`] compresses a gap table into a periodic description;
//! traversal clients expand it segment by segment and branch on the gap
//! *inside* the hot loop (a `match gap` per segment, per statement, per
//! epoch). This module moves that branch to compile time: [`lower_plan`]
//! unrolls the full clamped traversal once and tags every segment with
//! its [`ShapeClass`], so a downstream compiler (`bcag-spmd::fuse`) can
//! bind each segment to a gap-specialized kernel — a function pointer
//! selected once, with the gap constant-folded into its body — and the
//! executed epoch contains no per-run dispatch at all.
//!
//! The trade is memory for dispatch: a lowered plan stores every segment
//! of the traversal (the periodic structure is gone), which is fine for
//! plans that live in a bounded cache and are executed many times, and
//! exactly wrong for one-shot traversals — those should stay on
//! [`RunPlan::for_each_segment`].

use crate::runs::RunPlan;

/// The kernel class of one constant-gap segment. Gaps 2–4 get their own
/// classes because the pack/unpack kernels have const-generic
/// specializations at those widths; everything wider shares one
/// runtime-gap kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeClass {
    /// `gap == 1`: the segment is one contiguous slice (`memcpy` grade).
    Memcpy,
    /// `gap == 2`: const-generic strided kernel.
    Stride2,
    /// `gap == 3`: const-generic strided kernel.
    Stride3,
    /// `gap == 4`: const-generic strided kernel.
    Stride4,
    /// `gap >= 5`: generic strided kernel reading the gap at runtime.
    Wide,
}

impl ShapeClass {
    /// Classifies a (strictly positive) gap.
    pub fn of_gap(gap: i64) -> ShapeClass {
        debug_assert!(gap > 0, "gaps must be positive");
        match gap {
            1 => ShapeClass::Memcpy,
            2 => ShapeClass::Stride2,
            3 => ShapeClass::Stride3,
            4 => ShapeClass::Stride4,
            _ => ShapeClass::Wide,
        }
    }

    /// Classifies a gap for elements of `elem_bytes` against the cache
    /// line: once the element pitch (`gap × elem_bytes`) spans a full
    /// 64-byte line, every element sits on its own line and the
    /// traversal is fetch-bound — const-generic unrolling cannot win, so
    /// those segments take the runtime-gap [`ShapeClass::Wide`] kernel
    /// and keep the specialized classes for the gaps where line
    /// utilization is above one element per fetch. All kernels are
    /// semantically identical, so the classification is bit-exact; only
    /// dispatch changes.
    pub fn of_gap_for(gap: i64, elem_bytes: usize) -> ShapeClass {
        let pitch = (gap.max(1) as u128) * (elem_bytes.max(1) as u128);
        if gap > 1 && pitch >= crate::locality::CACHE_LINE_BYTES as u128 {
            ShapeClass::Wide
        } else {
            ShapeClass::of_gap(gap)
        }
    }
}

/// One lowered traversal segment: `len` elements at `addr, addr + gap, …`,
/// pre-classified for kernel selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweredSegment {
    /// First local address of the segment.
    pub addr: i64,
    /// Address step inside the segment.
    pub gap: i64,
    /// Number of elements (`>= 1`).
    pub len: i64,
    /// The kernel class implied by `gap`.
    pub class: ShapeClass,
}

/// Flattens a [`RunPlan`] into its full, clamped, classified segment
/// list, in access order. The result reproduces the plan's traversal
/// exactly: concatenating each segment's arithmetic progression yields
/// [`RunPlan::expand`].
pub fn lower_plan(plan: &RunPlan) -> Vec<LoweredSegment> {
    let mut out = Vec::new();
    plan.for_each_segment(|seg| {
        out.push(LoweredSegment {
            addr: seg.addr,
            gap: seg.gap,
            len: seg.len,
            class: ShapeClass::of_gap(seg.gap),
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_classes_cover_the_kernel_table() {
        assert_eq!(ShapeClass::of_gap(1), ShapeClass::Memcpy);
        assert_eq!(ShapeClass::of_gap(2), ShapeClass::Stride2);
        assert_eq!(ShapeClass::of_gap(3), ShapeClass::Stride3);
        assert_eq!(ShapeClass::of_gap(4), ShapeClass::Stride4);
        assert_eq!(ShapeClass::of_gap(5), ShapeClass::Wide);
        assert_eq!(ShapeClass::of_gap(64), ShapeClass::Wide);
    }

    #[test]
    fn line_aware_classes_demote_full_line_pitches() {
        // 8-byte elements: gaps 2–4 stay specialized (pitch < 64B)…
        assert_eq!(ShapeClass::of_gap_for(2, 8), ShapeClass::Stride2);
        assert_eq!(ShapeClass::of_gap_for(4, 8), ShapeClass::Stride4);
        // …and gap 8 was Wide already.
        assert_eq!(ShapeClass::of_gap_for(8, 8), ShapeClass::Wide);
        // 32-byte elements: gap 2 pitches a full line — Wide.
        assert_eq!(ShapeClass::of_gap_for(2, 32), ShapeClass::Wide);
        assert_eq!(ShapeClass::of_gap_for(3, 32), ShapeClass::Wide);
        // Contiguous segments are memcpy regardless of element width.
        assert_eq!(ShapeClass::of_gap_for(1, 64), ShapeClass::Memcpy);
        // 1-byte elements keep every specialized class.
        assert_eq!(ShapeClass::of_gap_for(4, 1), ShapeClass::Stride4);
    }

    #[test]
    fn lowering_preserves_the_address_stream() {
        for (start, last, am) in [
            (Some(0i64), 97i64, vec![1i64, 1, 1, 5]),
            (Some(11), 400, vec![2, 2, 9, 1, 1, 1, 4]),
            (Some(5), 200, vec![3, 12, 15, 12, 3, 12, 3, 12]),
            (Some(0), 63, vec![7]),
            (Some(7), 7, vec![]),
            (None, 100, vec![1, 2]),
        ] {
            let plan = RunPlan::compile(start, last, &am);
            let lowered = lower_plan(&plan);
            let mut stream = Vec::new();
            for seg in &lowered {
                assert_eq!(seg.class, ShapeClass::of_gap(seg.gap));
                stream.extend((0..seg.len).map(|j| seg.addr + j * seg.gap));
            }
            assert_eq!(stream, plan.expand(), "start={start:?} AM={am:?}");
        }
    }

    #[test]
    fn empty_plan_lowers_to_nothing() {
        assert!(lower_plan(&RunPlan::empty()).is_empty());
    }
}
