//! Elementary number theory used by every address-generation algorithm.
//!
//! The paper's algorithm (Figure 5, line 3) calls the extended Euclid
//! algorithm once to obtain `d = gcd(s, pk)` together with Bezout
//! coefficients `x, y` such that `s*x + pk*y = d`; everything else is
//! floor-division and floor-modulus arithmetic on `i64` values, widened to
//! `i128` wherever a product could overflow.

use crate::error::{BcagError, Result};

/// Result of the extended Euclid algorithm: `d = gcd(a, b)` (nonnegative)
/// and Bezout coefficients with `a*x + b*y = d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendedGcd {
    /// `gcd(a, b) >= 0`.
    pub d: i64,
    /// Coefficient of `a`.
    pub x: i64,
    /// Coefficient of `b`.
    pub y: i64,
}

/// Extended Euclid algorithm (iterative).
///
/// Returns `d = gcd(a, b) >= 0` and `x, y` with `a*x + b*y = d`.
/// Runs in `O(log min(|a|, |b|))` time, which is the source of the
/// `min(log s, log p)` term in the paper's complexity bound.
///
/// ```
/// use bcag_core::numth::extended_euclid;
/// let g = extended_euclid(9, 32);
/// assert_eq!(g.d, 1);
/// assert_eq!(9 * g.x + 32 * g.y, 1);
/// ```
pub fn extended_euclid(a: i64, b: i64) -> ExtendedGcd {
    // Invariants: old_r = a*old_x + b*old_y, r = a*x + b*y.
    let (mut old_r, mut r) = (a, b);
    let (mut old_x, mut x) = (1i64, 0i64);
    let (mut old_y, mut y) = (0i64, 1i64);
    let mut iters = 0u64;
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_x, x) = (x, old_x - q * x);
        (old_y, y) = (y, old_y - q * y);
        iters += 1;
    }
    bcag_trace::count("gcd_iters", iters);
    if old_r < 0 {
        ExtendedGcd {
            d: -old_r,
            x: -old_x,
            y: -old_y,
        }
    } else {
        ExtendedGcd {
            d: old_r,
            x: old_x,
            y: old_y,
        }
    }
}

/// `gcd(a, b) >= 0`.
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Least common multiple, checked against `i64` overflow.
pub fn lcm(a: i64, b: i64) -> Result<i64> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let d = gcd(a, b);
    mul(a / d, b)
}

/// Floor division: rounds toward negative infinity.
///
/// ```
/// use bcag_core::numth::div_floor;
/// assert_eq!(div_floor(7, 3), 2);
/// assert_eq!(div_floor(-7, 3), -3);
/// ```
#[inline]
pub fn div_floor(a: i64, n: i64) -> i64 {
    debug_assert!(n > 0, "div_floor requires a positive modulus");
    a.div_euclid(n)
}

/// Floor modulus: result always in `[0, n)` for `n > 0`.
///
/// ```
/// use bcag_core::numth::mod_floor;
/// assert_eq!(mod_floor(-7, 32), 25);
/// assert_eq!(mod_floor(7, 32), 7);
/// ```
#[inline]
pub fn mod_floor(a: i64, n: i64) -> i64 {
    debug_assert!(n > 0, "mod_floor requires a positive modulus");
    a.rem_euclid(n)
}

/// Checked `i64` multiplication surfaced as a [`BcagError::Overflow`].
#[inline]
pub fn mul(a: i64, b: i64) -> Result<i64> {
    a.checked_mul(b).ok_or(BcagError::Overflow)
}

/// Checked `i64` addition surfaced as a [`BcagError::Overflow`].
#[inline]
pub fn add(a: i64, b: i64) -> Result<i64> {
    a.checked_add(b).ok_or(BcagError::Overflow)
}

/// Computes `(a * b) mod n` without intermediate overflow by widening to
/// `i128`. `n` must be positive; the result lies in `[0, n)`.
#[inline]
pub fn mulmod(a: i64, b: i64, n: i64) -> i64 {
    debug_assert!(n > 0);
    ((a as i128 * b as i128).rem_euclid(n as i128)) as i64
}

/// Smallest nonnegative solution `j` of the linear congruence
/// `s * j ≡ i (mod n)`, or `None` when no solution exists.
///
/// The congruence is solvable iff `d = gcd(s, n)` divides `i`; the minimal
/// solution is `j = ((i/d) * x) mod (n/d)` where `s*x + n*y = d`
/// (paper, Section 2). Callers that already hold the [`ExtendedGcd`] should
/// use [`diophantine_min_with`] to avoid recomputing it.
pub fn diophantine_min(s: i64, n: i64, i: i64) -> Option<i64> {
    let g = extended_euclid(s, n);
    diophantine_min_with(&g, n, i)
}

/// Same as [`diophantine_min`] but reuses a precomputed extended-GCD of
/// `(s, n)`; this is exactly what the loops in lines 4–11 and 19–26 of the
/// paper's Figure 5 do.
#[inline]
pub fn diophantine_min_with(g: &ExtendedGcd, n: i64, i: i64) -> Option<i64> {
    if g.d == 0 {
        return if i == 0 { Some(0) } else { None };
    }
    if i % g.d != 0 {
        return None;
    }
    let n_d = n / g.d;
    Some(mulmod(i / g.d, g.x, n_d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_euclid_paper_example() {
        // p = 4, k = 8, s = 9: the paper reports d = 1, x = -7, y = 2.
        let g = extended_euclid(9, 32);
        assert_eq!(g.d, 1);
        assert_eq!(9 * g.x + 32 * g.y, 1);
        // Any valid Bezout pair is fine, but check that the canonical one
        // derived by the iterative scheme matches the paper's.
        assert_eq!((g.x, g.y), (-7, 2));
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)]
    fn extended_euclid_zero_cases() {
        assert_eq!(extended_euclid(0, 0).d, 0);
        let g = extended_euclid(0, 5);
        assert_eq!(g.d, 5);
        assert_eq!(0 * g.x + 5 * g.y, 5);
        let g = extended_euclid(5, 0);
        assert_eq!(g.d, 5);
        assert_eq!(5 * g.x, 5);
    }

    #[test]
    fn extended_euclid_matches_gcd_over_grid() {
        for a in -40i64..=40 {
            for b in -40i64..=40 {
                let g = extended_euclid(a, b);
                assert_eq!(g.d, gcd(a, b), "gcd mismatch for ({a},{b})");
                assert_eq!(
                    a as i128 * g.x as i128 + b as i128 * g.y as i128,
                    g.d as i128,
                    "Bezout identity fails for ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn div_mod_floor_agreement() {
        for a in -100i64..=100 {
            for n in 1i64..=12 {
                let q = div_floor(a, n);
                let r = mod_floor(a, n);
                assert_eq!(q * n + r, a);
                assert!((0..n).contains(&r));
            }
        }
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(9, 32).unwrap(), 288);
        assert_eq!(lcm(4, 6).unwrap(), 12);
        assert_eq!(lcm(0, 6).unwrap(), 0);
        assert!(lcm(i64::MAX, i64::MAX - 1).is_err());
    }

    #[test]
    fn diophantine_minimal_solution() {
        // s*j ≡ i (mod 32) with s = 9: from the worked example, i = 9
        // (offset class of the start on processor 1 with l = 4) gives j = 1.
        assert_eq!(diophantine_min(9, 32, 9), Some(1));
        // Unsolvable when gcd does not divide i.
        assert_eq!(diophantine_min(6, 32, 3), None);
        // Exhaustive check of minimality.
        for s in 1i64..=20 {
            for n in 1i64..=24 {
                for i in -30i64..=30 {
                    match diophantine_min(s, n, i) {
                        Some(j) => {
                            assert!((0..n / gcd(s, n)).contains(&j));
                            assert_eq!(mod_floor(s * j - i, n), 0);
                            // Minimality: no smaller nonnegative solution.
                            for jj in 0..j {
                                assert_ne!(mod_floor(s * jj - i, n), 0);
                            }
                        }
                        None => {
                            for jj in 0..n {
                                assert_ne!(
                                    mod_floor(s * jj - i, n),
                                    0,
                                    "missed solution s={s} n={n} i={i} j={jj}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mulmod_no_overflow() {
        let big = i64::MAX / 2;
        let r = mulmod(big, big, 1_000_000_007);
        assert!((0..1_000_000_007).contains(&r));
    }
}
