//! The sorting-based baseline of Chatterjee, Gilbert, Long, Schreiber and
//! Teng (PPoPP'93), as described in Section 2 of the paper and used as the
//! experimental comparison point in Section 6.
//!
//! The method shares the start-location computation with the lattice
//! algorithm (the paper made the shared segments "coded identically" for a
//! fair comparison — we share the literal code via [`crate::start`]). It
//! then materializes the first access of every owned offset class, **sorts**
//! them into increasing global order, and scans the sorted sequence to read
//! off the local memory gaps. The sort is the `O(k log k)` term that the
//! lattice method eliminates.
//!
//! Matching the paper's implementation notes, the sort is pluggable: a
//! comparison sort, the linear-time radix sort (their code used radix for
//! `k >= 64`), or an automatic switch at `k = 64`.

use crate::error::Result;
use crate::layout::Layout;
use crate::params::Problem;
use crate::pattern::{AccessPattern, CyclicPattern, Pattern};
use crate::radix;
use crate::start::first_cycle_locs;

/// Which sorting routine the baseline uses for the first-cycle locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortKind {
    /// `slice::sort_unstable` (pattern-defeating quicksort).
    Comparison,
    /// LSD radix sort ([`crate::radix`]).
    Radix,
    /// The paper's implementation policy: radix sort when `k >= 64`,
    /// comparison sort otherwise.
    Auto,
}

/// Builds processor `m`'s access pattern with the sorting baseline.
///
/// ```
/// use bcag_core::{params::Problem, sorting_alg::{build, SortKind}};
/// let pr = Problem::new(4, 8, 4, 9).unwrap();
/// let pat = build(&pr, 1, SortKind::Comparison).unwrap();
/// assert_eq!(pat.gaps(), &[3, 12, 15, 12, 3, 12, 3, 12]);
/// ```
pub fn build(problem: &Problem, m: i64, sort: SortKind) -> Result<AccessPattern> {
    problem.check_proc(m)?;
    // Shared segment (Figure 5 lines 3–11): one first-cycle location per
    // solvable offset class. Unlike the lattice method, the baseline must
    // store all of them.
    let mut locs = first_cycle_locs(problem, m)?;
    if locs.is_empty() {
        return Ok(AccessPattern::from_parts(*problem, m, Pattern::Empty));
    }

    // The sort: the dominating O(k log k) step of the baseline.
    match sort {
        SortKind::Comparison => locs.sort_unstable(),
        SortKind::Radix => radix::sort_i64(&mut locs),
        SortKind::Auto => {
            if problem.k() >= 64 {
                radix::sort_i64(&mut locs)
            } else {
                locs.sort_unstable()
            }
        }
    }

    // Linear scan of the sorted cycle to produce the gap table; the final
    // entry wraps around to the start of the next cycle (one period later).
    let lay = Layout::new(problem);
    let start_global = locs[0];
    let start_local = lay.local_addr(start_global);
    let n = locs.len();
    let mut gaps = Vec::with_capacity(n);
    let mut global_steps = Vec::with_capacity(n);
    for t in 0..n {
        let (next_g, next_local) = if t + 1 < n {
            (locs[t + 1], lay.local_addr(locs[t + 1]))
        } else {
            (
                locs[0] + problem.period_global(),
                lay.local_addr(locs[0]) + problem.period_local(),
            )
        };
        gaps.push(next_local - lay.local_addr(locs[t]));
        global_steps.push(next_g - locs[t]);
    }

    let c = CyclicPattern {
        start_global,
        start_local,
        gaps,
        global_steps,
    };
    Ok(AccessPattern::from_parts(*problem, m, Pattern::Cyclic(c)))
}

/// Builds the patterns of all `p` processors.
pub fn build_all(problem: &Problem, sort: SortKind) -> Result<Vec<AccessPattern>> {
    (0..problem.p()).map(|m| build(problem, m, sort)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;

    #[test]
    fn figure6_worked_example_all_sorts() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        for sort in [SortKind::Comparison, SortKind::Radix, SortKind::Auto] {
            let pat = build(&pr, 1, sort).unwrap();
            assert_eq!(pat.start_global(), Some(13));
            assert_eq!(pat.gaps(), &[3, 12, 15, 12, 3, 12, 3, 12]);
            pat.check_invariants();
        }
    }

    #[test]
    fn agrees_with_lattice_method_over_sweep() {
        for p in 1..=4i64 {
            for k in [1i64, 2, 4, 8, 16] {
                for s in [1i64, 3, 7, 9, 15, 16, 31, 32, 33, 63, 65, 97] {
                    for l in [0i64, 2, 11] {
                        let pr = Problem::new(p, k, l, s).unwrap();
                        for m in 0..p {
                            let lat = lattice_alg::build(&pr, m).unwrap();
                            let srt = build(&pr, m, SortKind::Comparison).unwrap();
                            assert_eq!(lat, srt, "p={p} k={k} s={s} l={l} m={m}");
                            let rad = build(&pr, m, SortKind::Radix).unwrap();
                            assert_eq!(lat, rad, "radix p={p} k={k} s={s} l={l} m={m}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_processor() {
        let pr = Problem::new(2, 1, 0, 2).unwrap();
        let pat = build(&pr, 1, SortKind::Auto).unwrap();
        assert!(pat.is_empty());
    }

    #[test]
    fn invariants_hold() {
        for s in [7i64, 99, 31, 33] {
            let pr = Problem::new(8, 4, 0, s).unwrap();
            for m in 0..8 {
                build(&pr, m, SortKind::Comparison)
                    .unwrap()
                    .check_invariants();
            }
        }
    }
}
