//! Selection of the enumeration basis `R`, `L` (paper Section 4,
//! Figure 5 lines 19–30).
//!
//! `R = (b_r, a_r)` is the lattice point of the *smallest positive* section
//! index whose in-row offset falls in `(0, k)`; `L = (b_l, a_l)` comes from
//! the *largest* first-cycle index, taken relative to the point that starts
//! the next cycle (index `pk/d`, coordinates `(0, s/d)`), so `a_l < 0`.
//! Theorem 2 shows `{R, L}` is a basis of the access lattice, and Theorem 3
//! shows the displacement from one owned element to the next is always
//! `R`, `−L`, or `R − L` — the three-case step at the heart of the
//! linear-time algorithm.
//!
//! Both vectors depend only on `(p, k, s)`: they are independent of the
//! lower bound `l` and of the processor number `m`, so a compiler can hoist
//! their computation when parameters are compile-time constants (paper
//! Section 6.1).

use crate::error::{BcagError, Result};
use crate::lattice::LatticePoint;
use crate::numth::{self, mod_floor};
use crate::params::Problem;
use crate::start::ClassSolver;

/// The enumeration basis: `R` (rightward/downward step) and `L` (leftward
/// step, negative course displacement), each carrying its section index so
/// global indices can be advanced without division.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Basis {
    /// `R = (b_r, a_r)` with section index `i_r > 0`; `0 < b_r < k`,
    /// `a_r >= 0`.
    pub r: LatticePoint,
    /// `L = (b_l, a_l)` with section index `i_l < 0`; `0 < b_l < k`,
    /// `a_l < 0` in the nondegenerate cases handled here.
    pub l: LatticePoint,
}

impl Basis {
    /// Local-memory gap of a forward `R` step: `a_r·k + b_r` (Equation 1).
    #[inline]
    pub fn gap_r(&self, k: i64) -> i64 {
        self.r.local_gap(k)
    }

    /// Local-memory gap of a `−L` step: `−(a_l·k + b_l)` (Equation 2).
    #[inline]
    pub fn gap_l(&self, k: i64) -> i64 {
        -self.l.local_gap(k)
    }

    /// Computes `R` and `L` for the problem's `(p, k, s)`.
    ///
    /// Returns an error when the sequence degenerates: the basis exists only
    /// when some solvable offset class lies strictly inside `(0, k)`, i.e.
    /// when `d = gcd(s, pk) < k`. The degenerate cases are exactly the
    /// length-0/length-1 special cases of Figure 5 lines 12–18, which the
    /// table-construction front-ends handle before asking for a basis.
    ///
    /// ```
    /// use bcag_core::{params::Problem, basis::Basis};
    /// // Figures 3/4: p=4, k=8, s=9 gives R=(4,1) and L=(5,−1).
    /// let pr = Problem::new(4, 8, 0, 9).unwrap();
    /// let basis = Basis::compute(&pr).unwrap();
    /// assert_eq!((basis.r.b, basis.r.a), (4, 1));
    /// assert_eq!((basis.l.b, basis.l.a), (5, -1));
    /// ```
    pub fn compute(problem: &Problem) -> Result<Self> {
        let solver = ClassSolver::new(problem);
        Self::compute_with(problem, &solver)
    }

    /// Same as [`Basis::compute`] with a caller-supplied [`ClassSolver`] so
    /// the full algorithm runs extended Euclid exactly once (Figure 5).
    pub fn compute_with(problem: &Problem, solver: &ClassSolver) -> Result<Self> {
        let d = solver.d();
        let k = problem.k();
        let pk = problem.row_len();
        let s = problem.s();
        if d >= k {
            return Err(BcagError::Precondition(
                "basis undefined: gcd(s, pk) >= k leaves at most one offset class per processor",
            ));
        }
        // Lines 19–26: minimum and maximum first-access over the offset
        // classes of the initial cycle of processor 0 with l = 0, i.e.
        // offsets i in (0, k) that are multiples of d. Use the same
        // d-stepping the start-location loop uses.
        let n_d = pk / d;
        let mut min = i64::MAX;
        let mut max = 0i64;
        let mut i = d;
        let mut steps = 0u64;
        while i < k {
            let j = numth::mulmod(i / d, solver.g.x, n_d);
            let loc = s * j;
            min = min.min(loc);
            max = max.max(loc);
            i += d;
            steps += 1;
        }
        bcag_trace::count("basis_steps", steps);
        debug_assert!(min < i64::MAX);
        // Lines 28–30: coordinates. R from the minimum; L from the maximum
        // relative to the next cycle's first point (index pk/d at (0, s/d)).
        let r = LatticePoint {
            b: mod_floor(min, pk),
            a: min / pk,
            i: min / s,
        };
        let l = LatticePoint {
            b: mod_floor(max, pk),
            a: max / pk - s / d,
            i: max / s - n_d,
        };
        debug_assert!(r.b > 0 && r.b < k, "0 < b_r < k");
        debug_assert!(l.b > 0 && l.b < k, "0 < b_l < k");
        debug_assert!(r.i > 0 && l.i < 0);
        Ok(Basis { r, l })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::SectionLattice;

    #[test]
    fn paper_example_vectors() {
        let pr = Problem::new(4, 8, 0, 9).unwrap();
        let b = Basis::compute(&pr).unwrap();
        // Figure 3/4: R = (4, 1) for index 36, L = (5, −1) for index 261
        // relative to 288.
        assert_eq!((b.r.b, b.r.a, b.r.i), (4, 1, 4));
        assert_eq!((b.l.b, b.l.a, b.l.i), (5, -1, -3));
        // Gap values used in the Figure 6 walk: +12 and +3.
        assert_eq!(b.gap_r(8), 12);
        assert_eq!(b.gap_l(8), 3);
    }

    #[test]
    fn vectors_are_lattice_points_and_a_basis() {
        for p in 1..=5i64 {
            for k in 2..=6i64 {
                for s in 1..=50i64 {
                    let pr = Problem::new(p, k, 0, s).unwrap();
                    let lat = SectionLattice::new(&pr);
                    match Basis::compute(&pr) {
                        Ok(b) => {
                            // Both points satisfy pk·a + b = i·s.
                            assert_eq!(lat.membership(b.r.b, b.r.a).map(|q| q.i), Some(b.r.i));
                            assert_eq!(lat.membership(b.l.b, b.l.a).map(|q| q.i), Some(b.l.i));
                            // Theorem 2: they form a basis.
                            assert!(lat.is_basis(&b.r, &b.l), "p={p} k={k} s={s}");
                            // Offsets strictly inside (0, k).
                            assert!(b.r.b > 0 && b.r.b < k);
                            assert!(b.l.b > 0 && b.l.b < k);
                        }
                        Err(_) => {
                            assert!(
                                pr.d() >= k,
                                "basis should exist when d < k (p={p} k={k} s={s})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn r_is_smallest_positive_in_strip() {
        // Exhaustive semantic check of R's definition: the smallest positive
        // section index whose in-row offset is in (0, k).
        for (p, k, s) in [(4i64, 8i64, 9i64), (3, 4, 7), (5, 3, 11), (2, 8, 6)] {
            let pr = Problem::new(p, k, 0, s).unwrap();
            let b = Basis::compute(&pr).unwrap();
            let pk = p * k;
            let expected = (1..)
                .map(|i| i * s)
                .find(|&g| {
                    let off = g % pk;
                    off > 0 && off < k
                })
                .unwrap();
            assert_eq!(b.r.i * s, expected, "p={p} k={k} s={s}");
        }
    }

    #[test]
    fn l_is_largest_in_first_cycle() {
        for (p, k, s) in [(4i64, 8i64, 9i64), (3, 4, 7), (5, 3, 11), (2, 8, 6)] {
            let pr = Problem::new(p, k, 0, s).unwrap();
            let b = Basis::compute(&pr).unwrap();
            let pk = p * k;
            let period = pr.period_elements();
            let largest = (1..period)
                .map(|i| i * s)
                .filter(|&g| {
                    let off = g % pk;
                    off > 0 && off < k
                })
                .max()
                .unwrap();
            // L = largest − next-cycle start.
            assert_eq!(b.l.i * s, largest - pr.period_global(), "p={p} k={k} s={s}");
        }
    }

    #[test]
    fn degenerate_when_d_at_least_k() {
        // s = 16, pk = 32 => d = 16 >= k = 8.
        let pr = Problem::new(4, 8, 0, 16).unwrap();
        assert!(Basis::compute(&pr).is_err());
        // pk | s: d = 32 >= 8.
        let pr = Problem::new(4, 8, 0, 32).unwrap();
        assert!(Basis::compute(&pr).is_err());
    }
}
