//! Intersection of arithmetic progressions.
//!
//! The communication-set problem for `A(lₐ:uₐ:sₐ) = B(l_b:u_b:s_b)`
//! (Chatterjee et al.; Stichnoth, O'Hallaron and Gross — paper Section 7)
//! reduces to intersecting arithmetic progressions: the set of section
//! ranks `t` whose B-element lives on processor `src` is a union of
//! progressions (one per owned offset class), and likewise for the
//! A-element on `dst`. The ranks exchanged between a processor pair are
//! pairwise intersections, each solvable in closed form with the Chinese
//! Remainder construction below.

use crate::numth::{extended_euclid, gcd, lcm, mulmod};

/// An infinite ascending arithmetic progression `{ first + i·step : i ≥ 0 }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ap {
    /// Smallest element.
    pub first: i64,
    /// Positive step.
    pub step: i64,
}

impl Ap {
    /// Creates a progression; `step` must be positive.
    pub fn new(first: i64, step: i64) -> Ap {
        assert!(step > 0, "Ap requires a positive step");
        Ap { first, step }
    }

    /// True when `v` belongs to the progression.
    pub fn contains(&self, v: i64) -> bool {
        v >= self.first && (v - self.first) % self.step == 0
    }

    /// Iterates elements `<= hi`.
    pub fn iter_to(&self, hi: i64) -> impl Iterator<Item = i64> + '_ {
        let first = self.first;
        let step = self.step;
        (0..)
            .map(move |i| first + i * step)
            .take_while(move |&v| v <= hi)
    }

    /// Number of elements `<= hi`.
    pub fn count_to(&self, hi: i64) -> i64 {
        if hi < self.first {
            0
        } else {
            (hi - self.first) / self.step + 1
        }
    }
}

/// Intersects two progressions. The result (when non-empty) is itself a
/// progression with `step = lcm(step₁, step₂)` and `first` the smallest
/// common element; the intersection is empty iff
/// `gcd(step₁, step₂) ∤ (first₂ − first₁)`.
///
/// ```
/// use bcag_core::intersect::{intersect, Ap};
/// // {1, 4, 7, ...} ∩ {3, 8, 13, ...} = {13, 28, ...}
/// let i = intersect(&Ap::new(1, 3), &Ap::new(3, 5)).unwrap();
/// assert_eq!((i.first, i.step), (13, 15));
/// assert!(intersect(&Ap::new(0, 2), &Ap::new(1, 2)).is_none());
/// ```
pub fn intersect(a: &Ap, b: &Ap) -> Option<Ap> {
    let g = gcd(a.step, b.step);
    let diff = b.first - a.first;
    if diff.rem_euclid(g) != 0 {
        return None;
    }
    // Solve a.first + a.step·x ≡ b.first (mod b.step):
    // a.step·x ≡ diff (mod b.step); divide through by g.
    let step_a = a.step / g;
    let step_b = b.step / g;
    let target = diff.div_euclid(g).rem_euclid(step_b);
    // step_a and step_b are coprime: invert step_a mod step_b.
    let e = extended_euclid(step_a, step_b);
    debug_assert_eq!(e.d, 1);
    let x0 = mulmod(target, e.x, step_b); // in [0, step_b)
    let step = lcm(a.step, b.step).expect("caller keeps steps in range");
    let mut first = a.first + a.step * x0;
    debug_assert!(b.contains(first) || first < b.first);
    // Lift above b.first if needed (x0 solved the congruence, not the bound).
    if first < b.first {
        let deficit = b.first - first;
        first += (deficit + step - 1) / step * step;
    }
    debug_assert!(a.contains(first) && b.contains(first));
    Some(Ap { first, step })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_intersect(a: &Ap, b: &Ap, hi: i64) -> Vec<i64> {
        let set: std::collections::HashSet<i64> = b.iter_to(hi).collect();
        a.iter_to(hi).filter(|v| set.contains(v)).collect()
    }

    #[test]
    fn doc_example() {
        let i = intersect(&Ap::new(1, 3), &Ap::new(3, 5)).unwrap();
        assert_eq!((i.first, i.step), (13, 15));
    }

    #[test]
    fn exhaustive_small_grid() {
        for f1 in 0..12i64 {
            for s1 in 1..10i64 {
                for f2 in 0..12i64 {
                    for s2 in 1..10i64 {
                        let a = Ap::new(f1, s1);
                        let b = Ap::new(f2, s2);
                        let expect = brute_intersect(&a, &b, 300);
                        match intersect(&a, &b) {
                            None => assert!(
                                expect.is_empty(),
                                "missed intersection {a:?} {b:?}: {expect:?}"
                            ),
                            Some(i) => {
                                let got: Vec<i64> = i.iter_to(300).collect();
                                assert_eq!(got, expect, "{a:?} {b:?}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn identical_progressions() {
        let a = Ap::new(7, 11);
        let i = intersect(&a, &a).unwrap();
        assert_eq!((i.first, i.step), (7, 11));
    }

    #[test]
    fn disjoint_residues() {
        assert!(intersect(&Ap::new(0, 4), &Ap::new(1, 4)).is_none());
        assert!(intersect(&Ap::new(0, 6), &Ap::new(3, 4)).is_none()); // parity clash
    }

    #[test]
    fn negative_first_elements() {
        let i = intersect(&Ap::new(-20, 3), &Ap::new(-5, 7)).unwrap();
        assert!(i.contains(i.first));
        assert_eq!((i.first + 20) % 3, 0);
        assert_eq!((i.first + 5) % 7, 0);
        assert!(i.first >= -5);
        // First really is minimal.
        assert!(!Ap::new(-20, 3).contains(i.first - i.step) || i.first - i.step < -5);
    }

    #[test]
    fn ap_counting() {
        let a = Ap::new(5, 9);
        assert_eq!(a.count_to(4), 0);
        assert_eq!(a.count_to(5), 1);
        assert_eq!(a.count_to(23), 3); // 5, 14, 23
        assert_eq!(a.iter_to(23).count(), 3);
    }
}
