//! Closed-form random access into an access sequence.
//!
//! The gap table supports sequential traversal; some clients (load
//! balancers, work splitters, out-of-order prefetchers) instead need *the
//! t-th element my processor owns* without walking the first `t − 1`. Since
//! the sequence is cyclic — access `t = q·L + r` sits exactly `q` periods
//! past access `r` — prefix sums over one cycle give O(1) lookups after an
//! O(k) setup.

use crate::pattern::{Access, AccessPattern, Pattern};

/// Prefix-summed view of an access pattern for O(1) `nth` queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomAccess {
    start_global: i64,
    start_local: i64,
    /// `prefix_local[r]` = local-address offset of access `r` from the
    /// start, for `r` in `0..=L` (entry `L` is one full local period).
    prefix_local: Vec<i64>,
    /// Same for global indices; entry `L` is one full global period.
    prefix_global: Vec<i64>,
}

impl RandomAccess {
    /// Builds the prefix sums. Returns `None` for an empty pattern.
    pub fn new(pattern: &AccessPattern) -> Option<RandomAccess> {
        let c = match pattern.pattern() {
            Pattern::Empty => return None,
            Pattern::Cyclic(c) => c,
        };
        let n = c.gaps.len();
        let mut prefix_local = Vec::with_capacity(n + 1);
        let mut prefix_global = Vec::with_capacity(n + 1);
        let (mut pl, mut pg) = (0i64, 0i64);
        prefix_local.push(0);
        prefix_global.push(0);
        for t in 0..n {
            pl += c.gaps[t];
            pg += c.global_steps[t];
            prefix_local.push(pl);
            prefix_global.push(pg);
        }
        Some(RandomAccess {
            start_global: c.start_global,
            start_local: c.start_local,
            prefix_local,
            prefix_global,
        })
    }

    /// Cycle length `L`.
    pub fn cycle_len(&self) -> usize {
        self.prefix_local.len() - 1
    }

    /// The `t`-th access (0-based) of this processor's sequence, in O(1).
    ///
    /// ```
    /// use bcag_core::{params::Problem, lattice_alg, nth::RandomAccess};
    /// let pr = Problem::new(4, 8, 4, 9).unwrap();
    /// let pat = lattice_alg::build(&pr, 1).unwrap();
    /// let ra = RandomAccess::new(&pat).unwrap();
    /// // Access #8 is the start of the second cycle: global 301.
    /// assert_eq!(ra.nth(8).global, 301);
    /// ```
    pub fn nth(&self, t: i64) -> Access {
        assert!(t >= 0, "access rank must be nonnegative");
        let n = self.cycle_len() as i64;
        let (q, r) = (t / n, (t % n) as usize);
        Access {
            global: self.start_global + q * self.prefix_global[n as usize] + self.prefix_global[r],
            local: self.start_local + q * self.prefix_local[n as usize] + self.prefix_local[r],
        }
    }

    /// Inverse query: the rank of the access at global index `g`, or `None`
    /// when `g` is not one of this processor's accesses. O(L) per call.
    pub fn rank_of_global(&self, g: i64) -> Option<i64> {
        if g < self.start_global {
            return None;
        }
        let n = self.cycle_len();
        let period = self.prefix_global[n];
        let delta = g - self.start_global;
        let q = delta / period;
        let rem = delta % period;
        let r = self.prefix_global[..n].iter().position(|&pg| pg == rem)?;
        Some(q * n as i64 + r as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;
    use crate::params::Problem;

    #[test]
    fn nth_matches_iteration() {
        for (p, k, l, s) in [
            (4i64, 8i64, 4i64, 9i64),
            (3, 5, 0, 7),
            (2, 16, 11, 37),
            (5, 2, 1, 6),
        ] {
            let pr = Problem::new(p, k, l, s).unwrap();
            for m in 0..p {
                let pat = lattice_alg::build(&pr, m).unwrap();
                let Some(ra) = RandomAccess::new(&pat) else {
                    assert!(pat.is_empty());
                    continue;
                };
                for (t, acc) in pat.iter().take(50).enumerate() {
                    assert_eq!(ra.nth(t as i64), acc, "p={p} k={k} l={l} s={s} m={m} t={t}");
                }
            }
        }
    }

    #[test]
    fn rank_of_global_inverts_nth() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let pat = lattice_alg::build(&pr, 1).unwrap();
        let ra = RandomAccess::new(&pat).unwrap();
        for t in 0..100i64 {
            let acc = ra.nth(t);
            assert_eq!(ra.rank_of_global(acc.global), Some(t));
        }
        // Non-accesses return None.
        assert_eq!(ra.rank_of_global(12), None); // before start
        assert_eq!(ra.rank_of_global(14), None); // not on section/processor
    }

    #[test]
    fn empty_pattern_has_no_random_access() {
        let pr = Problem::new(2, 1, 0, 2).unwrap();
        let pat = lattice_alg::build(&pr, 1).unwrap();
        assert!(RandomAccess::new(&pat).is_none());
    }

    #[test]
    fn figure6_specific_ranks() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let pat = lattice_alg::build(&pr, 1).unwrap();
        let ra = RandomAccess::new(&pat).unwrap();
        assert_eq!(ra.nth(0).global, 13);
        assert_eq!(ra.nth(3).global, 139);
        assert_eq!(ra.nth(8).global, 301); // start + one global period
        assert_eq!(ra.nth(8).local, 77); // 5 + one local period (72)
        assert_eq!(ra.nth(16).global, 13 + 2 * 288);
    }
}
