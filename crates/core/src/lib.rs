//! # bcag-core — Block-Cyclic Address Generation
//!
//! Core algorithms reproducing **"A Linear-Time Algorithm for Computing the
//! Memory Access Sequence in Data-Parallel Programs"** (Kennedy,
//! Nedeljković, Sethi; PPOPP 1995).
//!
//! Given an array distributed `cyclic(k)` over `p` processors (the general
//! block-cyclic distribution of HPF) and a regular section `A(l : u : s)`,
//! each processor must enumerate the local memory addresses of the section
//! elements it owns, in increasing global index order. The answer is a start
//! address plus a cyclic table of memory gaps (`AM`) of period at most `k`.
//!
//! This crate provides:
//!
//! * [`lattice_alg`] — the paper's contribution: `O(k + min(log s, log p))`
//!   table construction via an integer-lattice basis (Figure 5);
//! * [`sorting_alg`] — the `O(k log k)` baseline of Chatterjee et al.
//!   (PPoPP'93), with comparison and radix sorts;
//! * [`hiranandani`] — the restricted `O(k)` method of Hiranandani et al.
//!   (ICS'94), valid when `s mod pk < k`;
//! * [`oracle`] — a brute-force reference for testing;
//! * [`walker`] — table-free address generation straight from the basis
//!   vectors `R` and `L` (the extension sketched at the end of Section 6.2);
//! * [`two_table`] — the offset-indexed `deltaM`/`NextOffset` tables that
//!   drive the fastest node-code shape of Figure 8(d);
//! * [`runs`] — run-length compilation of gap tables: contiguity analysis
//!   that folds `AM` into constant-gap runs so traversals become slice
//!   copies (`memcpy` when `s == 1`) instead of per-element walks;
//! * [`lower`] — lowering pass over compiled [`runs`]: flattens a
//!   `RunPlan` into shape-classified segments so plan compilers can bind
//!   gap-specialized kernels ahead of execution;
//! * [`tune`] — self-tuning dispatch pass: derives a
//!   `DispatchDecision` (pack strategy, code shape, transfer block
//!   size) per plan from the [`locality`] measurements, replacing
//!   hand-set env-var A/Bs with line-utilization and L2-residency
//!   criteria;
//! * [`fsm`] — the finite-state-machine view of the gap sequence used by
//!   Chatterjee et al. to describe the problem;
//! * [`aligned`] — affine alignments (`A(i)` at template cell `a·i + b`) by
//!   two applications of the core algorithm;
//! * [`viz`] — ASCII renderings of the paper's layout figures.
//!
//! ## Quickstart
//!
//! ```
//! use bcag_core::{params::Problem, method::{build, Method}};
//!
//! // The paper's worked example (Figure 6): p=4, k=8, l=4, s=9, proc 1.
//! let problem = Problem::new(4, 8, 4, 9).unwrap();
//! let pattern = build(&problem, 1, Method::Lattice).unwrap();
//! assert_eq!(pattern.start_global(), Some(13));
//! assert_eq!(pattern.gaps(), &[3, 12, 15, 12, 3, 12, 3, 12]);
//!
//! // Enumerate the first few local addresses the node program would touch.
//! let locals: Vec<i64> = pattern.iter().take(4).map(|a| a.local).collect();
//! assert_eq!(locals, vec![5, 8, 20, 35]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aligned;
pub mod basis;
pub mod codegen;
pub mod descending;
pub mod error;
pub mod fsm;
pub mod hiranandani;
pub mod intersect;
pub mod lattice;
pub mod lattice_alg;
pub mod layout;
pub mod locality;
pub mod lower;
pub mod method;
pub mod nth;
pub mod numth;
pub mod oracle;
pub mod params;
pub mod pattern;
pub mod radix;
pub mod runs;
pub mod section;
pub mod sorting_alg;
pub mod special;
pub mod start;
pub mod tune;
pub mod two_table;
pub mod virtual_views;
pub mod viz;
pub mod walker;

pub use error::{BcagError, Result};
pub use layout::Layout;
pub use lower::{lower_plan, LoweredSegment, ShapeClass};
pub use method::{build, Method};
pub use params::Problem;
pub use pattern::{Access, AccessPattern, CyclicPattern, Pattern};
pub use runs::{Run, RunPlan, RunShape, Segment};
pub use section::RegularSection;
pub use tune::{
    decide, decide_with, default_tune, set_default_tune, CodeShapeChoice, DispatchDecision,
    PackChoice, TuneMode,
};
