//! The integer lattice of regular-section accesses (paper Section 3).
//!
//! Treat each array element as a point of `Z²` with the x-axis running along
//! in-row offsets and the y-axis along courses (rows). For a distribution
//! with row length `pk` and a section of stride `s` (lower bound folded
//! away), the set
//!
//! ```text
//! Λ = { (b, a) ∈ Z² : pk·a + b = i·s,  i ∈ Z }
//! ```
//!
//! is an integer lattice (Theorem 1): it is discrete and closed under
//! subtraction. Each point corresponds to the section element with index
//! `i`; `b` is its in-row offset displacement and `a` its course
//! displacement relative to the origin.
//!
//! Two lattice points `(b₁,a₁)` (index `i₁`) and `(b₂,a₂)` (index `i₂`)
//! form a basis iff `|a₁·i₂ − a₂·i₁| = 1` (Section 3), and a point can be
//! extended to a basis iff `gcd(a, i) = 1` (no other lattice point lies on
//! the segment from the origin).

use crate::error::{BcagError, Result};
use crate::numth::gcd;
use crate::params::Problem;

/// A point of the section lattice, carrying its section index `i` so that
/// `pk·a + b = i·s` holds by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatticePoint {
    /// x-coordinate: in-row offset displacement.
    pub b: i64,
    /// y-coordinate: course (row) displacement.
    pub a: i64,
    /// Section index: the point represents section element `i` (global
    /// array index `i·s` in the `l = 0` instance).
    pub i: i64,
}

impl LatticePoint {
    /// Local-memory gap contributed by traversing this displacement on a
    /// single processor: `a·k + b` (Section 4 / Figure 5 line 36).
    #[inline]
    pub fn local_gap(&self, k: i64) -> i64 {
        self.a * k + self.b
    }

    /// Componentwise addition; indices add as well (lattices are closed
    /// under addition of points).
    pub fn add(&self, other: &LatticePoint) -> LatticePoint {
        LatticePoint {
            b: self.b + other.b,
            a: self.a + other.a,
            i: self.i + other.i,
        }
    }

    /// Componentwise subtraction.
    pub fn sub(&self, other: &LatticePoint) -> LatticePoint {
        LatticePoint {
            b: self.b - other.b,
            a: self.a - other.a,
            i: self.i - other.i,
        }
    }

    /// True when no other lattice point lies strictly between the origin and
    /// this point, i.e. the point is *primitive* and can belong to a basis.
    /// Equivalent to `gcd(a, i) = 1` (Section 3).
    pub fn is_primitive(&self) -> bool {
        gcd(self.a, self.i) == 1
    }
}

/// The access lattice for a given `(p, k, s)`. Independent of the section's
/// lower bound `l` (the paper folds `l` away before reasoning about Λ).
#[derive(Debug, Clone, Copy)]
pub struct SectionLattice {
    pk: i64,
    s: i64,
}

impl SectionLattice {
    /// Builds the lattice for a validated problem.
    pub fn new(problem: &Problem) -> Self {
        SectionLattice {
            pk: problem.row_len(),
            s: problem.s(),
        }
    }

    /// Row length `pk`.
    #[inline]
    pub fn row_len(&self) -> i64 {
        self.pk
    }

    /// Section stride `s`.
    #[inline]
    pub fn stride(&self) -> i64 {
        self.s
    }

    /// Constructs the lattice point for section index `i`, reduced to the
    /// fundamental strip `0 <= b < pk`:
    /// `b = (i·s) mod pk`, `a = (i·s) div pk`.
    pub fn point_for_index(&self, i: i64) -> LatticePoint {
        let v = (i as i128) * (self.s as i128);
        let pk = self.pk as i128;
        LatticePoint {
            b: v.rem_euclid(pk) as i64,
            a: v.div_euclid(pk) as i64,
            i,
        }
    }

    /// Membership test: `(b, a)` is a lattice point iff `pk·a + b` is a
    /// multiple of `s`; returns the point (with its index) when it is.
    pub fn membership(&self, b: i64, a: i64) -> Option<LatticePoint> {
        let v = (self.pk as i128) * (a as i128) + b as i128;
        if v.rem_euclid(self.s as i128) == 0 {
            Some(LatticePoint {
                b,
                a,
                i: (v / self.s as i128) as i64,
            })
        } else {
            None
        }
    }

    /// Basis test from Section 3: `v₁, v₂` generate Λ iff
    /// `|a₁·i₂ − a₂·i₁| = 1`.
    pub fn is_basis(&self, v1: &LatticePoint, v2: &LatticePoint) -> bool {
        let det = (v1.a as i128) * (v2.i as i128) - (v2.a as i128) * (v1.i as i128);
        det == 1 || det == -1
    }

    /// Completes a primitive point into a basis using the extended Euclid
    /// construction of Section 3: choose `i₁ = 1`,
    /// `(b₁, a₁) = (s mod pk, s div pk)`, then find `a₂, i₂` with
    /// `a₁·i₂ − a₂·i₁ = 1` and set `b₂ = i₂·s − pk·a₂`.
    ///
    /// Returns the constructed pair `(v1, v2)`.
    pub fn euclid_basis(&self) -> Result<(LatticePoint, LatticePoint)> {
        let v1 = self.point_for_index(1);
        // Solve a1 * i2 - a2 * 1 = 1  =>  a2 = a1 * i2 - 1 for any i2; the
        // extended Euclid form in the paper finds integers via gcd(a1, i1).
        // With i1 = 1, gcd(a1, 1) = 1 always; pick i2 = 0, a2 = -1.
        let i2 = 0i64;
        let a2 = v1.a * i2 - 1;
        let b2 = i2
            .checked_mul(self.s)
            .and_then(|x| {
                let pa = self.pk.checked_mul(a2)?;
                x.checked_sub(pa)
            })
            .ok_or(BcagError::Overflow)?;
        let v2 = LatticePoint {
            b: b2,
            a: a2,
            i: i2,
        };
        debug_assert!(self.is_basis(&v1, &v2));
        Ok((v1, v2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_lattice() -> SectionLattice {
        let pr = Problem::new(4, 8, 0, 9).unwrap();
        SectionLattice::new(&pr)
    }

    #[test]
    fn figure2_basis_vectors() {
        // Figure 2: (3, 3) with 3·32 + 3 = 99 = 11·9, and (−1, 2) with
        // 2·32 − 1 = 63 = 7·9. Since 3·7 − 2·11 = −1 they form a basis.
        let lat = paper_lattice();
        let v1 = lat.membership(3, 3).expect("(3,3) is a lattice point");
        assert_eq!(v1.i, 11);
        let v2 = lat.membership(-1, 2).expect("(-1,2) is a lattice point");
        assert_eq!(v2.i, 7);
        assert!(lat.is_basis(&v1, &v2));
        assert!(v1.is_primitive());
        assert!(v2.is_primitive());
    }

    #[test]
    fn point_for_index_satisfies_equation() {
        let lat = paper_lattice();
        for i in -50..=50 {
            let pt = lat.point_for_index(i);
            assert_eq!(32 * pt.a + pt.b, 9 * i);
            assert!((0..32).contains(&pt.b));
            assert_eq!(lat.membership(pt.b, pt.a), Some(pt));
        }
    }

    #[test]
    fn membership_rejects_non_points() {
        let lat = paper_lattice();
        // 32·1 + 1 = 33, not a multiple of 9.
        assert!(lat.membership(1, 1).is_none());
        // 32·1 + 4 = 36 = 4·9: a point.
        assert_eq!(lat.membership(4, 1).map(|p| p.i), Some(4));
    }

    #[test]
    fn closure_under_subtraction() {
        // Theorem 1's proof: differences of lattice points are lattice points.
        let lat = paper_lattice();
        for i1 in -10..=10 {
            for i2 in -10..=10 {
                let p1 = lat.point_for_index(i1);
                let p2 = lat.point_for_index(i2);
                let diff = p1.sub(&p2);
                assert!(lat.membership(diff.b, diff.a).is_some());
            }
        }
    }

    #[test]
    fn non_primitive_point_detected() {
        let lat = paper_lattice();
        // Index 22 = 2·11 doubles the (3,3) point: (6,6), gcd(6,22)=2.
        let p = lat.point_for_index(22);
        assert_eq!((p.b, p.a), (6, 6));
        assert!(!p.is_primitive());
    }

    #[test]
    fn euclid_basis_always_valid() {
        for p in 1..=6i64 {
            for k in 1..=6i64 {
                for s in 1..=40i64 {
                    let pr = Problem::new(p, k, 0, s).unwrap();
                    let lat = SectionLattice::new(&pr);
                    let (v1, v2) = lat.euclid_basis().unwrap();
                    assert!(lat.is_basis(&v1, &v2), "p={p} k={k} s={s}");
                    assert!(lat.membership(v1.b, v1.a).is_some());
                    assert!(lat.membership(v2.b, v2.a).is_some());
                }
            }
        }
    }

    #[test]
    fn determinant_not_one_is_not_basis() {
        let lat = paper_lattice();
        let v1 = lat.point_for_index(2);
        let v2 = lat.point_for_index(4);
        assert!(!lat.is_basis(&v1, &v2));
    }
}
