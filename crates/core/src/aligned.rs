//! Affine alignments: `A(i)` aligned to template cell `a·i + b`.
//!
//! HPF separates *alignment* (array → template) from *distribution*
//! (template → processors). The core algorithm assumes identity alignment;
//! the paper notes (Section 2, citing Chatterjee et al.) that "the memory
//! access problem for any affine alignment can be solved by two
//! applications of the access sequence computation algorithm". This module
//! performs that composition:
//!
//! 1. **Storage problem** — the template cells occupied by `A` form the
//!    regular section `b : ∞ : a` of the template. A processor packs the
//!    cells it owns contiguously; the *packed address* of `A(i)` is the rank
//!    of its template cell among the processor's owned cells.
//! 2. **Access problem** — the section `A(l : u : s)` touches template cells
//!    `a·(l + t·s) + b`, a section with lower bound `a·l + b` and stride
//!    `a·s`, whose per-processor enumeration the core algorithm provides.
//!
//! The packed gap between consecutive accesses is the rank difference,
//! which [`crate::start::count_owned`] answers in closed form — so no
//! sorting and no per-element scanning of the storage sequence is needed.

use crate::error::{BcagError, Result};
use crate::method::{build, Method};
use crate::params::Problem;
use crate::pattern::{AccessPattern, Pattern};
use crate::start::count_owned;

/// An affine alignment `i ↦ a·i + b` of an array to a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Alignment {
    /// Alignment stride; must be positive (a negative `a` can be handled by
    /// reversing the array's index space first).
    pub a: i64,
    /// Alignment offset; must be nonnegative (template cells are `>= 0`).
    pub b: i64,
}

impl Alignment {
    /// Identity alignment `i ↦ i`.
    pub const IDENTITY: Alignment = Alignment { a: 1, b: 0 };

    /// Validates `a >= 1`, `b >= 0`.
    pub fn new(a: i64, b: i64) -> Result<Self> {
        if a == 0 {
            return Err(BcagError::ZeroAlignmentStride);
        }
        if a < 0 {
            return Err(BcagError::Precondition(
                "negative alignment stride: reverse the array index space first",
            ));
        }
        if b < 0 {
            return Err(BcagError::NegativeLowerBound { l: b });
        }
        Ok(Alignment { a, b })
    }

    /// Template cell of array element `i`.
    #[inline]
    pub fn cell(&self, i: i64) -> i64 {
        self.a * i + self.b
    }
}

/// Access sequence of an aligned array in *packed local storage* units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignedPattern {
    /// The template-level access pattern (application #2 of the core
    /// algorithm): local addresses here are template-local, counting holes.
    pub template: AccessPattern,
    /// Packed address of the start access in `A`'s compressed local
    /// storage, or `None` for an empty pattern.
    pub start_packed: Option<i64>,
    /// Packed-storage gaps between consecutive accesses (cyclic, same
    /// period as `template`'s gap table).
    pub packed_gaps: Vec<i64>,
}

/// Computes processor `m`'s access sequence for the section
/// `A(l : ∞ : s)` of an array aligned by `align` to a template distributed
/// `cyclic(k)` over `p` processors.
///
/// ```
/// use bcag_core::aligned::{aligned_pattern, Alignment};
/// use bcag_core::method::Method;
/// // A(i) at template cell 2i + 1, template cyclic(8) over 4 procs;
/// // access A(0 : ∞ : 9) on processor 1.
/// let pat = aligned_pattern(4, 8, Alignment::new(2, 1).unwrap(), 0, 9, 1,
///                           Method::Lattice).unwrap();
/// assert_eq!(pat.packed_gaps.len(), pat.template.len());
/// ```
pub fn aligned_pattern(
    p: i64,
    k: i64,
    align: Alignment,
    l: i64,
    s: i64,
    m: i64,
    method: Method,
) -> Result<AlignedPattern> {
    // Application #1: the storage problem (template cells of A).
    let storage = Problem::new(p, k, align.b, align.a)?;
    // Application #2: the access problem (template cells of the section).
    let access = Problem::new(p, k, align.cell(l), align.a * s)?;
    let template = build(&access, m, method)?;

    let c = match template.pattern() {
        Pattern::Empty => {
            return Ok(AlignedPattern {
                template,
                start_packed: None,
                packed_gaps: vec![],
            })
        }
        Pattern::Cyclic(c) => c.clone(),
    };

    // Rank of a template cell c in packed storage: the number of owned
    // storage cells <= c - 1... but the access cell itself *is* a storage
    // cell, so rank(c) = count_owned(storage, m, c) - 1.
    let rank = |cell: i64| -> Result<i64> { Ok(count_owned(&storage, m, cell)? - 1) };

    let start_packed = rank(c.start_global)?;
    let mut packed_gaps = Vec::with_capacity(c.gaps.len());
    let mut cell = c.start_global;
    let mut r = start_packed;
    for &step in &c.global_steps {
        let next_cell = cell + step;
        let next_r = rank(next_cell)?;
        packed_gaps.push(next_r - r);
        cell = next_cell;
        r = next_r;
    }
    Ok(AlignedPattern {
        template,
        start_packed: Some(start_packed),
        packed_gaps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    /// Brute-force packed enumeration: list A's template cells owned by m in
    /// increasing order (packed storage), then walk the section and record
    /// the packed index of each owned access.
    fn brute_packed(
        p: i64,
        k: i64,
        align: Alignment,
        l: i64,
        s: i64,
        m: i64,
        n_accesses: usize,
    ) -> Vec<i64> {
        let lay = Layout::from_raw(p, k);
        // Enough template cells to cover the requested accesses.
        let max_cell = align.cell(l + (n_accesses as i64 + 1) * s * lay.row_len());
        let storage: Vec<i64> = (0..)
            .map(|i| align.cell(i))
            .take_while(|&c| c <= max_cell)
            .filter(|&c| lay.owner(c) == m)
            .collect();
        let rank_of =
            |cell: i64| storage.binary_search(&cell).expect("access must be stored") as i64;
        (0..)
            .map(|t| align.cell(l + t * s))
            .take_while(|&c| c <= max_cell)
            .filter(|&c| lay.owner(c) == m)
            .take(n_accesses)
            .map(rank_of)
            .collect()
    }

    fn enumerate_packed(pat: &AlignedPattern, n: usize) -> Vec<i64> {
        let Some(start) = pat.start_packed else {
            return vec![];
        };
        let mut out = vec![start];
        let mut r = start;
        for t in 0..n.saturating_sub(1) {
            r += pat.packed_gaps[t % pat.packed_gaps.len()];
            out.push(r);
        }
        out
    }

    #[test]
    fn identity_alignment_reduces_to_core() {
        // With a = 1, b = 0 the packed address *is* the local address.
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let core = crate::lattice_alg::build(&pr, 1).unwrap();
        let alp = aligned_pattern(4, 8, Alignment::IDENTITY, 4, 9, 1, Method::Lattice).unwrap();
        assert_eq!(alp.start_packed, core.start_local());
        assert_eq!(alp.packed_gaps, core.gaps());
    }

    #[test]
    fn matches_brute_force_sweep() {
        for (a, b) in [(1i64, 0i64), (2, 0), (2, 1), (3, 5), (5, 2)] {
            let align = Alignment::new(a, b).unwrap();
            for (p, k) in [(2i64, 4i64), (4, 8), (3, 5)] {
                for (l, s) in [(0i64, 1i64), (0, 3), (2, 7), (1, 9)] {
                    for m in 0..p {
                        let alp = aligned_pattern(p, k, align, l, s, m, Method::Lattice).unwrap();
                        let n = 12usize;
                        let got = enumerate_packed(&alp, n);
                        let expect = brute_packed(p, k, align, l, s, m, n);
                        let lim = got.len().min(expect.len());
                        assert_eq!(
                            &got[..lim],
                            &expect[..lim],
                            "a={a} b={b} p={p} k={k} l={l} s={s} m={m}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn alignment_validation() {
        assert!(Alignment::new(0, 0).is_err());
        assert!(Alignment::new(-1, 0).is_err());
        assert!(Alignment::new(1, -1).is_err());
        assert!(Alignment::new(3, 7).is_ok());
    }

    #[test]
    fn packed_gaps_are_positive() {
        let align = Alignment::new(3, 2).unwrap();
        let alp = aligned_pattern(4, 8, align, 0, 7, 2, Method::Lattice).unwrap();
        assert!(alp.packed_gaps.iter().all(|&g| g > 0));
    }
}
