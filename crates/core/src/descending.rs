//! Descending traversal: negative-stride sections.
//!
//! Section 2 of the paper assumes `s > 0` and notes the negative case "can
//! be treated analogously": the element *set* of `A(l : u : s)` with
//! `s < 0` equals that of the reversed ascending section, and the traversal
//! visits it in decreasing global order. Descending local enumeration walks
//! the same gap cycle backwards, so no new table construction is needed —
//! one ascending table plus the rank of the final element suffice.

use crate::error::Result;
use crate::method::{build, Method};
use crate::nth::RandomAccess;
use crate::params::Problem;
use crate::pattern::Access;
use crate::section::RegularSection;
use crate::start::{count_owned, last_location};

/// Iterator over a processor's accesses in *decreasing* global order,
/// covering the owned elements of `l..=u` of the ascending problem.
#[derive(Debug, Clone)]
pub struct DescendingWalker {
    gaps: Vec<i64>,
    global_steps: Vec<i64>,
    /// Index of the gap that *arrived at* the current position (walking
    /// backwards consumes gaps in reverse order).
    idx: usize,
    pos: Access,
    remaining: i64,
}

impl DescendingWalker {
    /// Builds a descending walker over the owned elements of the ascending
    /// problem bounded by `u`. Yields nothing when the processor owns no
    /// section element in `[l, u]`.
    ///
    /// ```
    /// use bcag_core::{params::Problem, descending::DescendingWalker};
    /// let pr = Problem::new(4, 8, 4, 9).unwrap();
    /// let down: Vec<i64> = DescendingWalker::new(&pr, 1, 301).unwrap()
    ///     .map(|a| a.global).collect();
    /// assert_eq!(&down[..3], &[301, 265, 238]);
    /// ```
    pub fn new(problem: &Problem, m: i64, u: i64) -> Result<DescendingWalker> {
        let pat = build(problem, m, Method::Lattice)?;
        let empty = DescendingWalker {
            gaps: vec![1],
            global_steps: vec![1],
            idx: 0,
            pos: Access {
                global: 0,
                local: 0,
            },
            remaining: 0,
        };
        let Some(ra) = RandomAccess::new(&pat) else {
            return Ok(empty);
        };
        let Some(last_g) = last_location(problem, m, u)? else {
            return Ok(empty);
        };
        let count = count_owned(problem, m, u)?;
        let rank = ra
            .rank_of_global(last_g)
            .expect("last location is an access");
        let last = ra.nth(rank);
        let len = pat.len();
        Ok(DescendingWalker {
            gaps: pat.gaps().to_vec(),
            global_steps: match pat.pattern() {
                crate::pattern::Pattern::Cyclic(c) => c.global_steps.clone(),
                crate::pattern::Pattern::Empty => unreachable!("non-empty checked"),
            },
            // Gap used to arrive at rank `rank` is entry (rank-1) mod L.
            idx: ((rank - 1).rem_euclid(len as i64)) as usize,
            pos: last,
            remaining: count,
        })
    }

    /// Convenience: a descending traversal for the section as the user
    /// wrote it (typically with `s < 0`). `p`, `k` describe the layout.
    pub fn for_section(
        p: i64,
        k: i64,
        section: &RegularSection,
        m: i64,
    ) -> Result<DescendingWalker> {
        let norm = section.normalized();
        if norm.count == 0 {
            let problem = Problem::new(p, k, 0, 1)?;
            return Self::new(&problem, m, -1); // u < l: empty
        }
        let problem = Problem::new(p, k, norm.lo, norm.step)?;
        Self::new(&problem, m, norm.hi)
    }
}

impl Iterator for DescendingWalker {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.pos;
        self.remaining -= 1;
        if self.remaining > 0 {
            self.pos.global -= self.global_steps[self.idx];
            self.pos.local -= self.gaps[self.idx];
            self.idx = if self.idx == 0 {
                self.gaps.len() - 1
            } else {
                self.idx - 1
            };
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for DescendingWalker {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;

    #[test]
    fn descending_is_reverse_of_ascending() {
        for (p, k, l, s, u) in [
            (4i64, 8i64, 4i64, 9i64, 301i64),
            (3, 5, 0, 7, 200),
            (2, 16, 11, 37, 1000),
            (4, 8, 0, 32, 700),
            (2, 1, 0, 2, 50),
        ] {
            let pr = Problem::new(p, k, l, s).unwrap();
            for m in 0..p {
                let pat = lattice_alg::build(&pr, m).unwrap();
                let mut fwd: Vec<Access> = pat.iter_to(u).collect();
                fwd.reverse();
                let bwd: Vec<Access> = DescendingWalker::new(&pr, m, u).unwrap().collect();
                assert_eq!(bwd, fwd, "p={p} k={k} l={l} s={s} u={u} m={m}");
            }
        }
    }

    #[test]
    fn negative_stride_section_traversal() {
        // A(95 : 5 : -9) on cyclic(8) x 4: visits 95, 86, 77, ... downward.
        let sec = RegularSection::new(95, 5, -9).unwrap();
        let mut all: Vec<i64> = Vec::new();
        for m in 0..4 {
            let walker = DescendingWalker::for_section(4, 8, &sec, m).unwrap();
            for acc in walker {
                assert!(sec.contains(acc.global), "m={m} g={}", acc.global);
                all.push(acc.global);
            }
        }
        all.sort_unstable();
        let mut expect: Vec<i64> = sec.iter().collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn per_processor_descending_order() {
        let sec = RegularSection::new(300, 0, -7).unwrap();
        for m in 0..4 {
            let globals: Vec<i64> = DescendingWalker::for_section(4, 8, &sec, m)
                .unwrap()
                .map(|a| a.global)
                .collect();
            assert!(
                globals.windows(2).all(|w| w[0] > w[1]),
                "m={m}: {globals:?}"
            );
        }
    }

    #[test]
    fn empty_cases() {
        let sec = RegularSection::new(5, 10, -1).unwrap(); // empty
        let w = DescendingWalker::for_section(2, 4, &sec, 0).unwrap();
        assert_eq!(w.count(), 0);

        let pr = Problem::new(2, 1, 0, 2).unwrap();
        let w = DescendingWalker::new(&pr, 1, 100).unwrap(); // proc 1 owns nothing
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn exact_size_iterator() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let w = DescendingWalker::new(&pr, 1, 301).unwrap();
        assert_eq!(w.len(), 9);
        let collected: Vec<Access> = w.collect();
        assert_eq!(collected.len(), 9);
        assert_eq!(collected[0].global, 301);
    }
}
