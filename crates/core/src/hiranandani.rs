//! The restricted linear-time method of Hiranandani, Kennedy,
//! Mellor-Crummey and Sethi (ICS'94), which the paper cites as prior work:
//! `O(k)` table construction, but **only** when `s mod pk < k`.
//!
//! Under that condition the in-row offset advances by `s' = s mod pk < k`
//! per section element, so the walk can never jump *over* a processor's
//! block window (the window is `k` wide and each hop is shorter). The next
//! owned element after leaving the window is therefore reachable with one
//! ceiling division — no sorting and no lattice basis needed. The simple
//! structure is why the original implementation could generate the local
//! index sequence "without actually sorting it" (paper Section 7).

use crate::error::{BcagError, Result};
use crate::layout::Layout;
use crate::numth::mod_floor;
use crate::params::Problem;
use crate::pattern::{AccessPattern, CyclicPattern, Pattern};
use crate::start::{start_info_with, ClassSolver};

/// True when the method's precondition `s mod pk < k` holds.
pub fn applicable(problem: &Problem) -> bool {
    problem.s() % problem.row_len() < problem.k()
}

/// Builds processor `m`'s access pattern with the special-case method.
///
/// Returns [`BcagError::Precondition`] when `s mod pk >= k`.
///
/// ```
/// use bcag_core::{params::Problem, hiranandani};
/// // s = 3 < k = 8: applicable.
/// let pr = Problem::new(4, 8, 0, 3).unwrap();
/// let pat = hiranandani::build(&pr, 1).unwrap();
/// pat.check_invariants();
/// // s = 9 >= k = 8 (and 9 mod 32 = 9): not applicable.
/// let pr = Problem::new(4, 8, 0, 9).unwrap();
/// assert!(hiranandani::build(&pr, 1).is_err());
/// ```
pub fn build(problem: &Problem, m: i64) -> Result<AccessPattern> {
    problem.check_proc(m)?;
    if !applicable(problem) {
        return Err(BcagError::Precondition(
            "Hiranandani et al. method requires s mod pk < k",
        ));
    }
    let solver = ClassSolver::new(problem);
    let info = start_info_with(&solver, m);
    let Some(start_global) = info.start else {
        return Ok(AccessPattern::from_parts(*problem, m, Pattern::Empty));
    };
    let lay = Layout::new(problem);
    let start_local = lay.local_addr(start_global);
    if info.length == 1 {
        let c = CyclicPattern {
            start_global,
            start_local,
            gaps: vec![problem.period_local()],
            global_steps: vec![problem.period_global()],
        };
        return Ok(AccessPattern::from_parts(*problem, m, Pattern::Cyclic(c)));
    }

    let pk = problem.row_len();
    let k = problem.k();
    let s = problem.s();
    let sp = s % pk; // in-row advance per element; 1 <= sp < k here
    debug_assert!(
        sp >= 1,
        "sp == 0 implies d = pk >= k, handled as length <= 1"
    );
    let km = k * m;
    let window_end = km + k;

    let length = info.length as usize;
    let mut gaps = Vec::with_capacity(length);
    let mut global_steps = Vec::with_capacity(length);
    let mut g = start_global;
    let mut o = lay.in_row_offset(start_global);
    for _ in 0..length {
        // One section step.
        let mut g1 = g + s;
        let mut o1 = o + sp;
        if o1 >= pk {
            o1 -= pk;
        }
        // If that left the window, hop straight to the next element whose
        // offset re-enters it. Offsets advance by sp < k per element, so the
        // window cannot be jumped over; one ceiling division finds the count.
        if !(km..window_end).contains(&o1) {
            let target = if o1 < km { km } else { km + pk };
            let t = (target - o1 + sp - 1) / sp; // ceil((target - o1)/sp)
            g1 += t * s;
            o1 = mod_floor(o1 + t * sp, pk);
            debug_assert!((km..window_end).contains(&o1));
        }
        gaps.push(lay.local_addr(g1) - lay.local_addr(g));
        global_steps.push(g1 - g);
        g = g1;
        o = o1;
    }

    let c = CyclicPattern {
        start_global,
        start_local,
        gaps,
        global_steps,
    };
    Ok(AccessPattern::from_parts(*problem, m, Pattern::Cyclic(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;

    #[test]
    fn applicability() {
        assert!(applicable(&Problem::new(4, 8, 0, 3).unwrap()));
        assert!(applicable(&Problem::new(4, 8, 0, 32).unwrap())); // 32 mod 32 = 0 < 8
        assert!(applicable(&Problem::new(4, 8, 0, 33).unwrap())); // 1 < 8
        assert!(applicable(&Problem::new(4, 8, 0, 39).unwrap())); // 7 < 8
        assert!(!applicable(&Problem::new(4, 8, 0, 9).unwrap())); // 9 >= 8
        assert!(!applicable(&Problem::new(4, 8, 0, 31).unwrap())); // 31 >= 8
    }

    #[test]
    fn agrees_with_lattice_when_applicable() {
        for p in 1..=4i64 {
            for k in [1i64, 2, 4, 8] {
                for s_raw in 1i64..=80 {
                    for l in [0i64, 5] {
                        let pr = Problem::new(p, k, l, s_raw).unwrap();
                        if !applicable(&pr) {
                            continue;
                        }
                        for m in 0..p {
                            let a = lattice_alg::build(&pr, m).unwrap();
                            let b = build(&pr, m).unwrap();
                            assert_eq!(a, b, "p={p} k={k} s={s_raw} l={l} m={m}");
                            b.check_invariants();
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_out_of_scope_stride() {
        let pr = Problem::new(4, 8, 0, 9).unwrap();
        assert!(matches!(build(&pr, 0), Err(BcagError::Precondition(_))));
    }

    #[test]
    fn multiple_of_pk_stride() {
        // sp == 0: pure period stepping, handled by the length<=1 path.
        let pr = Problem::new(4, 8, 0, 64).unwrap();
        let pat = build(&pr, 0).unwrap();
        assert_eq!(pat.len(), 1);
        pat.check_invariants();
    }
}
