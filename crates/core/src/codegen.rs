//! Node-code generation: emit the C loops of Figure 8.
//!
//! Section 6.1: *"If input parameters p, k, l, and s for our algorithm are
//! compile-time constants, then the compiler could compute the table of
//! memory gaps (AM) for each processor"* and bake it into the node program.
//! This module performs that compiler step — given a processor's access
//! pattern it emits self-contained C translation units in each of the four
//! shapes of Figure 8, with the tables embedded as `static` arrays and the
//! bounds folded to literals.
//!
//! The emitted text matches the paper's fragments line for line (modulo
//! identifier hygiene), so the generated code doubles as executable
//! documentation of Figure 8; golden tests pin the exact output for the
//! paper's worked example.

use crate::error::{BcagError, Result};
use crate::layout::Layout;
use crate::params::Problem;
use crate::pattern::AccessPattern;
use crate::start::last_location;
use crate::two_table::TwoTable;

/// Which Figure 8 fragment to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Figure 8(a): modulo-wrapped index.
    ModLoop,
    /// Figure 8(b): branch-reset index.
    BranchLoop,
    /// Figure 8(c): split counted loop with early exit.
    SplitLoop,
    /// Figure 8(d): offset-indexed two-table loop.
    TwoTableLoop,
}

fn fmt_table(name: &str, values: &[i64]) -> String {
    let body = values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "static const long {name}[{}] = {{ {body} }};\n",
        values.len()
    )
}

/// Emits a complete C function `void node_m<M>(double *A)` executing
/// `A(l:u:s) = <value>` on processor `M`'s local memory, in the requested
/// shape. Returns an error when the processor owns no section element
/// within `u` (there is nothing to generate — a real compiler would emit an
/// empty function; we surface the condition instead).
pub fn emit_c(
    problem: &Problem,
    m: i64,
    u: i64,
    pattern: &AccessPattern,
    shape: Shape,
    value: &str,
) -> Result<String> {
    let lay = Layout::new(problem);
    let Some(start) = pattern.start_local() else {
        return Err(BcagError::Precondition("processor owns no section element"));
    };
    let Some(last_g) = last_location(problem, m, u)? else {
        return Err(BcagError::Precondition(
            "no owned element within the upper bound",
        ));
    };
    let last = lay.local_addr(last_g);
    let length = pattern.len();
    let mut out = String::new();
    out.push_str(&format!(
        "/* generated: p={} k={} l={} s={} u={} proc={} shape={:?} */\n",
        problem.p(),
        problem.k(),
        problem.l(),
        problem.s(),
        u,
        m,
        shape
    ));
    match shape {
        Shape::ModLoop | Shape::BranchLoop | Shape::SplitLoop => {
            out.push_str(&fmt_table("deltaM", pattern.gaps()));
        }
        Shape::TwoTableLoop => {
            let tt = TwoTable::from_pattern(pattern).expect("non-empty pattern");
            out.push_str(&fmt_table("deltaM", &tt.delta_m));
            out.push_str(&fmt_table("nextoffset", &tt.next_offset));
        }
    }
    out.push_str(&format!("\nvoid node_m{m}(double *A) {{\n"));
    out.push_str(&format!("    double *base = A + {start};\n"));
    out.push_str(&format!("    double *lastmem = A + {last};\n"));
    match shape {
        Shape::ModLoop => {
            out.push_str("    int i = 0;\n");
            out.push_str("    while (base <= lastmem) {\n");
            out.push_str(&format!("        *base = {value};\n"));
            out.push_str("        base += deltaM[i];\n");
            out.push_str(&format!("        i = (i + 1) % {length};\n"));
            out.push_str("    }\n");
        }
        Shape::BranchLoop => {
            out.push_str("    int i = 0;\n");
            out.push_str("    while (base <= lastmem) {\n");
            out.push_str(&format!("        *base = {value};\n"));
            out.push_str("        base += deltaM[i++];\n");
            out.push_str(&format!("        if (i == {length}) i = 0;\n"));
            out.push_str("    }\n");
        }
        Shape::SplitLoop => {
            out.push_str("    int i;\n");
            out.push_str("    while (1) {\n");
            out.push_str(&format!("        for (i = 0; i < {length}; i++) {{\n"));
            out.push_str(&format!("            *base = {value};\n"));
            out.push_str("            base += deltaM[i];\n");
            out.push_str("            if (base > lastmem) goto done;\n");
            out.push_str("        }\n");
            out.push_str("    }\n");
            out.push_str("done:;\n");
        }
        Shape::TwoTableLoop => {
            let tt = TwoTable::from_pattern(pattern).expect("non-empty pattern");
            out.push_str(&format!("    int i = {};\n", tt.start_offset));
            out.push_str("    while (base <= lastmem) {\n");
            out.push_str(&format!("        *base = {value};\n"));
            out.push_str("        base += deltaM[i];\n");
            out.push_str("        i = nextoffset[i];\n");
            out.push_str("    }\n");
        }
    }
    out.push_str("}\n");
    Ok(out)
}

/// A pure-Rust interpreter of the emitted loop semantics, used to verify
/// that the generated text computes what the library computes (the tests
/// parse nothing — they rerun the same control flow the C text encodes).
pub fn interpret(
    pattern: &AccessPattern,
    problem: &Problem,
    m: i64,
    u: i64,
    shape: Shape,
) -> Result<Vec<i64>> {
    let lay = Layout::new(problem);
    let Some(start) = pattern.start_local() else {
        return Ok(vec![]);
    };
    let Some(last_g) = last_location(problem, m, u)? else {
        return Ok(vec![]);
    };
    let last = lay.local_addr(last_g);
    let gaps = pattern.gaps();
    let mut visited = Vec::new();
    match shape {
        Shape::ModLoop | Shape::BranchLoop | Shape::SplitLoop => {
            let mut base = start;
            let mut i = 0usize;
            while base <= last {
                visited.push(base);
                base += gaps[i];
                i = (i + 1) % gaps.len();
            }
        }
        Shape::TwoTableLoop => {
            let tt = TwoTable::from_pattern(pattern).expect("non-empty");
            let mut base = start;
            let mut i = tt.start_offset;
            while base <= last {
                visited.push(base);
                base += tt.delta_m[i as usize];
                i = tt.next_offset[i as usize];
            }
        }
    }
    Ok(visited)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;

    fn figure6() -> (Problem, AccessPattern) {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let pat = lattice_alg::build(&pr, 1).unwrap();
        (pr, pat)
    }

    #[test]
    fn golden_branch_loop() {
        let (pr, pat) = figure6();
        let c = emit_c(&pr, 1, 301, &pat, Shape::BranchLoop, "100.0").unwrap();
        let expect = "\
/* generated: p=4 k=8 l=4 s=9 u=301 proc=1 shape=BranchLoop */
static const long deltaM[8] = { 3, 12, 15, 12, 3, 12, 3, 12 };

void node_m1(double *A) {
    double *base = A + 5;
    double *lastmem = A + 77;
    int i = 0;
    while (base <= lastmem) {
        *base = 100.0;
        base += deltaM[i++];
        if (i == 8) i = 0;
    }
}
";
        assert_eq!(c, expect);
    }

    #[test]
    fn golden_two_table_loop() {
        let (pr, pat) = figure6();
        let c = emit_c(&pr, 1, 301, &pat, Shape::TwoTableLoop, "100.0").unwrap();
        assert!(c.contains("static const long deltaM[8]"));
        assert!(c.contains("static const long nextoffset[8]"));
        assert!(
            c.contains("int i = 5;"),
            "start offset = start mod k = 13 mod 8"
        );
        assert!(c.contains("i = nextoffset[i];"));
    }

    #[test]
    fn all_shapes_emit_and_interpret_identically() {
        for (p, k, l, s, u) in [
            (4i64, 8i64, 4i64, 9i64, 301i64),
            (3, 4, 0, 7, 150),
            (2, 16, 5, 3, 200),
        ] {
            let pr = Problem::new(p, k, l, s).unwrap();
            for m in 0..p {
                let pat = lattice_alg::build(&pr, m).unwrap();
                if pat.is_empty() {
                    continue;
                }
                let expect = pat.locals_to(u);
                for shape in [
                    Shape::ModLoop,
                    Shape::BranchLoop,
                    Shape::SplitLoop,
                    Shape::TwoTableLoop,
                ] {
                    if expect.is_empty() {
                        assert!(emit_c(&pr, m, u, &pat, shape, "0.0").is_err());
                        continue;
                    }
                    let c = emit_c(&pr, m, u, &pat, shape, "0.0").unwrap();
                    assert!(c.contains(&format!("void node_m{m}")));
                    let visited = interpret(&pat, &pr, m, u, shape).unwrap();
                    assert_eq!(visited, expect, "{shape:?} p={p} k={k} l={l} s={s} m={m}");
                }
            }
        }
    }

    #[test]
    fn mod_loop_matches_paper_fragment_structure() {
        let (pr, pat) = figure6();
        let c = emit_c(&pr, 1, 301, &pat, Shape::ModLoop, "100.0").unwrap();
        assert!(c.contains("i = (i + 1) % 8;"));
        let c = emit_c(&pr, 1, 301, &pat, Shape::SplitLoop, "100.0").unwrap();
        assert!(c.contains("goto done;"));
    }

    #[test]
    fn empty_cases_error() {
        let pr = Problem::new(2, 1, 0, 2).unwrap();
        let pat = lattice_alg::build(&pr, 1).unwrap();
        assert!(emit_c(&pr, 1, 100, &pat, Shape::BranchLoop, "0.0").is_err());
    }
}
