//! Virtual-processor enumeration schemes (related work, paper Section 7).
//!
//! Gupta, Kaushik, Huang and Sadayappan compile `cyclic(k)` array
//! statements through *virtual processor views*: a `cyclic(k)` distribution
//! over `p` processors is viewed as either
//!
//! * **virtual-cyclic** — `k` virtual `cyclic(1)` processors per physical
//!   processor, one per block offset: elements of the same offset are
//!   visited in increasing index order, but elements of *different* offsets
//!   are visited in offset order, **not** global index order; or
//! * **virtual-block** — each course's block as a virtual `block`
//!   processor: elements are visited in increasing index order, but when
//!   `s > k` the scheme degenerates to run-time resolution (the paper's
//!   critique).
//!
//! These orders suffice for independent (`forall`) loops but not for
//! arbitrary loops, which is exactly why the paper insists on increasing
//! global index order. This module implements both views so the difference
//! is testable and benchmarkable: all three enumerations produce the same
//! *set* of (global, local) accesses; only the lattice order is globally
//! sorted.

use crate::error::Result;
use crate::layout::Layout;
use crate::params::Problem;
use crate::pattern::Access;
use crate::start::ClassSolver;

/// Enumerates processor `m`'s accesses in **virtual-cyclic** order: offset
/// class by offset class (ascending block offset), each class in increasing
/// index order, bounded by `u`.
pub fn virtual_cyclic(problem: &Problem, m: i64, u: i64) -> Result<Vec<Access>> {
    problem.check_proc(m)?;
    let lay = Layout::new(problem);
    let solver = ClassSolver::new(problem);
    // First access of every owned class, then stride one period within the
    // class. Sort classes by their block offset.
    let mut firsts: Vec<i64> = solver.first_locs(m).collect();
    firsts.sort_unstable_by_key(|&g| lay.block_offset(g));
    let period = problem.period_global();
    let mut out = Vec::new();
    for first in firsts {
        let mut g = first;
        while g <= u {
            out.push(Access {
                global: g,
                local: lay.local_addr(g),
            });
            g += period;
        }
    }
    Ok(out)
}

/// Enumerates processor `m`'s accesses in **virtual-block** order: course
/// by course (each of `m`'s blocks in turn), each block's owned elements in
/// increasing index order, bounded by `u`.
///
/// For `s <= k` this coincides with increasing global order; for `s > k`
/// most blocks hold at most one access and the outer scan over blocks is
/// the "run-time resolution" degeneration Gupta et al. acknowledge — the
/// loop below walks every course up to `u` even when empty.
pub fn virtual_block(problem: &Problem, m: i64, u: i64) -> Result<Vec<Access>> {
    problem.check_proc(m)?;
    let lay = Layout::new(problem);
    let (l, s, k, pk) = (problem.l(), problem.s(), problem.k(), problem.row_len());
    if u < l {
        return Ok(vec![]);
    }
    let mut out = Vec::new();
    let mut course = 0i64;
    loop {
        let block_lo = course * pk + m * k;
        if block_lo > u {
            break;
        }
        let block_hi = (block_lo + k - 1).min(u);
        // Owned section elements within [block_lo, block_hi]:
        // smallest j with l + s·j >= block_lo.
        if block_hi >= l {
            let j0 = (block_lo - l).max(0).div_euclid(s)
                + i64::from((block_lo - l).max(0).rem_euclid(s) != 0);
            let mut g = l + s * j0;
            while g <= block_hi {
                out.push(Access {
                    global: g,
                    local: lay.local_addr(g),
                });
                g += s;
            }
        }
        course += 1;
    }
    Ok(out)
}

/// Convenience for tests/benches: the lattice enumeration bounded by `u`
/// (increasing global order — the order the paper's algorithm produces).
pub fn lattice_order(problem: &Problem, m: i64, u: i64) -> Result<Vec<Access>> {
    let pat = crate::lattice_alg::build(problem, m)?;
    Ok(pat.iter_to(u).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn setup(p: i64, k: i64, l: i64, s: i64) -> Problem {
        Problem::new(p, k, l, s).unwrap()
    }

    #[test]
    fn all_views_agree_on_the_access_set() {
        for (p, k, l, s) in [
            (4i64, 8i64, 4i64, 9i64),
            (3, 4, 0, 7),
            (2, 16, 3, 5),
            (4, 2, 1, 11),
        ] {
            let pr = setup(p, k, l, s);
            let u = l + 40 * s;
            for m in 0..p {
                let a: HashSet<_> = lattice_order(&pr, m, u).unwrap().into_iter().collect();
                let b: HashSet<_> = virtual_cyclic(&pr, m, u).unwrap().into_iter().collect();
                let c: HashSet<_> = virtual_block(&pr, m, u).unwrap().into_iter().collect();
                assert_eq!(a, b, "virtual-cyclic set p={p} k={k} l={l} s={s} m={m}");
                assert_eq!(a, c, "virtual-block set p={p} k={k} l={l} s={s} m={m}");
            }
        }
    }

    #[test]
    fn virtual_block_is_sorted_virtual_cyclic_is_not() {
        // The paper's worked example: s = 9 > k = 8 makes virtual-cyclic's
        // offset-major order differ from global order.
        let pr = setup(4, 8, 4, 9);
        let u = 4 + 40 * 9;
        let vc = virtual_cyclic(&pr, 1, u).unwrap();
        let vb = virtual_block(&pr, 1, u).unwrap();
        let is_sorted = |v: &[Access]| v.windows(2).all(|w| w[0].global < w[1].global);
        assert!(
            is_sorted(&vb),
            "virtual-block visits in increasing index order"
        );
        assert!(!is_sorted(&vc), "virtual-cyclic order is offset-major here");
        // Within each offset class, virtual-cyclic is increasing.
        let lay = crate::layout::Layout::new(&pr);
        for w in vc.windows(2) {
            if lay.block_offset(w[0].global) == lay.block_offset(w[1].global) {
                assert!(w[0].global < w[1].global);
            }
        }
    }

    #[test]
    fn virtual_block_matches_lattice_for_small_strides() {
        // s <= k: both orders are increasing global order, so they agree
        // elementwise.
        for s in 1..=8i64 {
            let pr = setup(4, 8, 2, s);
            let u = 2 + 30 * s;
            for m in 0..4 {
                assert_eq!(
                    virtual_block(&pr, m, u).unwrap(),
                    lattice_order(&pr, m, u).unwrap(),
                    "s={s} m={m}"
                );
            }
        }
    }

    #[test]
    fn empty_and_boundary_cases() {
        let pr = setup(2, 1, 0, 2);
        assert!(virtual_cyclic(&pr, 1, 100).unwrap().is_empty());
        assert!(virtual_block(&pr, 1, 100).unwrap().is_empty());
        let pr = setup(4, 8, 50, 9);
        assert!(virtual_cyclic(&pr, 0, 10).unwrap().is_empty());
        assert!(virtual_block(&pr, 0, 10).unwrap().is_empty());
    }
}
