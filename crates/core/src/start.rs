//! Starting location, sequence length, and last location for a processor
//! (paper Section 2 and Figure 5 lines 1–18).
//!
//! Element `A(i)` belongs to processor `m` iff its in-row offset
//! `i mod pk` lies in `[km, k(m+1))`. The first section element on `m` is
//! found by solving, for each target offset, the linear Diophantine
//! congruence `s·j ≡ i (mod pk)` where `i` ranges over the window
//! `[km−l, km−l+k)`; each solvable congruence yields the earliest section
//! element of that offset class, and the minimum over classes is the start.
//!
//! The paper notes (end of Section 5's presentation) that the loop can skip
//! directly between solvable equations, which are exactly `d = gcd(s, pk)`
//! apart; we implement that stepping so the loop body runs `length` times,
//! not `k` times.

use crate::error::Result;
use crate::numth::{self, mod_floor, ExtendedGcd};
use crate::params::Problem;

/// Outcome of the start-location computation for one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartInfo {
    /// Global index of the first section element owned by the processor,
    /// or `None` when the processor owns no section elements at all
    /// (`length == 0`).
    pub start: Option<i64>,
    /// Length of the cyclic gap sequence: the number of distinct offset
    /// classes of the section that fall inside this processor's block
    /// window. At most `k`.
    pub length: i64,
}

/// Shared plumbing for the per-offset-class congruences: holds the extended
/// GCD of `(s, pk)` plus the derived constants every method needs.
#[derive(Debug, Clone, Copy)]
pub struct ClassSolver {
    pub(crate) g: ExtendedGcd,
    pk: i64,
    s: i64,
    l: i64,
    k: i64,
}

impl ClassSolver {
    /// Runs extended Euclid once (Figure 5 line 3) and captures the problem
    /// constants.
    pub fn new(problem: &Problem) -> Self {
        let g = numth::extended_euclid(problem.s(), problem.row_len());
        ClassSolver {
            g,
            pk: problem.row_len(),
            s: problem.s(),
            l: problem.l(),
            k: problem.k(),
        }
    }

    /// `d = gcd(s, pk)`.
    #[inline]
    pub fn d(&self) -> i64 {
        self.g.d
    }

    /// Iterates the solvable congruence targets `i` (multiples of `d`) in
    /// the window `[km−l, km−l+k)`, yielding for each the global index
    /// `loc = l + s·j` of the earliest section element whose in-row offset
    /// is `l + i (mod pk)`.
    pub fn first_locs(&self, m: i64) -> impl Iterator<Item = i64> + '_ {
        let d = self.g.d;
        let w0 = m * self.k - self.l;
        // First multiple of d at or above w0.
        let first = w0 + mod_floor(-w0, d);
        let end = w0 + self.k;
        let n_d = self.pk / d;
        (0..)
            .map(move |t| first + t * d)
            .take_while(move |&i| i < end)
            .map(move |i| {
                // Smallest nonnegative j with s·j ≡ i (mod pk):
                // j = ((i/d)·x) mod (pk/d).
                let j = numth::mulmod(i / d, self.g.x, n_d);
                self.l + self.s * j
            })
    }
}

/// Computes the start location and sequence length for processor `m`
/// (Figure 5 lines 1–11 plus the length-0 detection of lines 12–14).
///
/// ```
/// use bcag_core::{params::Problem, start::start_info};
/// // Worked example of Figure 6: p=4, k=8, l=4, s=9, m=1.
/// let pr = Problem::new(4, 8, 4, 9).unwrap();
/// let info = start_info(&pr, 1).unwrap();
/// assert_eq!(info.start, Some(13));
/// assert_eq!(info.length, 8);
/// ```
pub fn start_info(problem: &Problem, m: i64) -> Result<StartInfo> {
    problem.check_proc(m)?;
    let solver = ClassSolver::new(problem);
    Ok(start_info_with(&solver, m))
}

/// Same as [`start_info`] but reuses a prepared [`ClassSolver`]; used by the
/// full table-construction algorithms so that extended Euclid runs once.
pub fn start_info_with(solver: &ClassSolver, m: i64) -> StartInfo {
    let mut start = i64::MAX;
    let mut length = 0i64;
    for loc in solver.first_locs(m) {
        start = start.min(loc);
        length += 1;
    }
    // One congruence solved per owned offset class (the d-stepping skips
    // the unsolvable targets entirely).
    bcag_trace::count("solver_steps", length as u64);
    StartInfo {
        start: (length > 0).then_some(start),
        length,
    }
}

/// Global index of the last section element `<= u` owned by processor `m`,
/// or `None` when the processor owns none in `[l, u]`.
///
/// Mirrors the paper's remark that the upper bound is handled "in a similar
/// way using the upper bound u": for each solvable offset class with minimal
/// solution `j₀`, the solutions are `j₀ + t·(pk/d)`, so the largest section
/// element `<= u` in the class is found by one floor division.
pub fn last_location(problem: &Problem, m: i64, u: i64) -> Result<Option<i64>> {
    problem.check_proc(m)?;
    if u < problem.l() {
        return Ok(None);
    }
    let solver = ClassSolver::new(problem);
    let big_j = (u - problem.l()) / problem.s(); // largest admissible j overall
    let n_d = problem.row_len() / solver.d();
    let mut best: Option<i64> = None;
    for loc in solver.first_locs(m) {
        let j0 = (loc - problem.l()) / problem.s();
        if j0 > big_j {
            continue; // this class first appears beyond u
        }
        let j_max = j0 + (big_j - j0) / n_d * n_d;
        let cand = problem.l() + problem.s() * j_max;
        best = Some(best.map_or(cand, |b: i64| b.max(cand)));
    }
    Ok(best)
}

/// Number of section elements of `[l, u]` owned by processor `m`.
pub fn count_owned(problem: &Problem, m: i64, u: i64) -> Result<i64> {
    problem.check_proc(m)?;
    if u < problem.l() {
        return Ok(0);
    }
    let solver = ClassSolver::new(problem);
    let big_j = (u - problem.l()) / problem.s();
    let n_d = problem.row_len() / solver.d();
    let mut total = 0i64;
    for loc in solver.first_locs(m) {
        let j0 = (loc - problem.l()) / problem.s();
        if j0 <= big_j {
            total += (big_j - j0) / n_d + 1;
        }
    }
    Ok(total)
}

/// Collects the first-cycle locations (one per solvable offset class) for
/// processor `m`, *unsorted*. This is the data the sorting-based baseline of
/// Chatterjee et al. sorts; the lattice method never materializes it.
pub fn first_cycle_locs(problem: &Problem, m: i64) -> Result<Vec<i64>> {
    problem.check_proc(m)?;
    let solver = ClassSolver::new(problem);
    Ok(solver.first_locs(m).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    /// Brute-force reference: scan one full period of the section.
    fn brute_start(problem: &Problem, m: i64) -> (Option<i64>, i64) {
        let lay = Layout::new(problem);
        let mut first = None;
        let mut classes = std::collections::HashSet::new();
        for j in 0..problem.period_elements() {
            let g = problem.l() + problem.s() * j;
            if lay.owner(g) == m {
                first.get_or_insert(g);
                classes.insert(lay.in_row_offset(g));
            }
        }
        (first, classes.len() as i64)
    }

    #[test]
    fn figure6_start() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let info = start_info(&pr, 1).unwrap();
        assert_eq!(info.start, Some(13));
        assert_eq!(info.length, 8);
    }

    #[test]
    fn matches_brute_force_sweep() {
        for p in 1..=4i64 {
            for k in [1i64, 2, 3, 5, 8] {
                for s in [1i64, 2, 3, 7, 9, 15, 31, 32, 33, 64] {
                    for l in [0i64, 1, 4, 13] {
                        let pr = Problem::new(p, k, l, s).unwrap();
                        for m in 0..p {
                            let info = start_info(&pr, m).unwrap();
                            let (bs, bl) = brute_start(&pr, m);
                            assert_eq!(info.start, bs, "p={p} k={k} s={s} l={l} m={m}");
                            assert_eq!(info.length, bl, "p={p} k={k} s={s} l={l} m={m}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_when_stride_skips_processor() {
        // p=2, k=1, s=2, l=0: even indices only; processor 1 owns odd
        // indices (offsets 1 mod 2), so it gets nothing.
        let pr = Problem::new(2, 1, 0, 2).unwrap();
        let info = start_info(&pr, 1).unwrap();
        assert_eq!(info.start, None);
        assert_eq!(info.length, 0);
        let info0 = start_info(&pr, 0).unwrap();
        assert_eq!(info0.start, Some(0));
        assert_eq!(info0.length, 1);
    }

    #[test]
    fn last_location_brute_force() {
        for p in 1..=3i64 {
            for k in [1i64, 2, 4] {
                for s in [1i64, 3, 7, 8, 9] {
                    for l in [0i64, 5] {
                        let pr = Problem::new(p, k, l, s).unwrap();
                        let lay = Layout::new(&pr);
                        for u in [l, l + 1, l + 17, l + 100, l + 321] {
                            for m in 0..p {
                                let expect = (0..)
                                    .map(|j| l + s * j)
                                    .take_while(|&g| g <= u)
                                    .filter(|&g| lay.owner(g) == m)
                                    .last();
                                let got = last_location(&pr, m, u).unwrap();
                                assert_eq!(got, expect, "p={p} k={k} s={s} l={l} u={u} m={m}");
                                let cnt = count_owned(&pr, m, u).unwrap();
                                let expect_cnt = (0..)
                                    .map(|j| l + s * j)
                                    .take_while(|&g| g <= u)
                                    .filter(|&g| lay.owner(g) == m)
                                    .count()
                                    as i64;
                                assert_eq!(cnt, expect_cnt);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn last_before_lower_bound_is_none() {
        let pr = Problem::new(4, 8, 10, 9).unwrap();
        assert_eq!(last_location(&pr, 0, 9).unwrap(), None);
        assert_eq!(count_owned(&pr, 0, 9).unwrap(), 0);
    }

    #[test]
    fn first_cycle_locs_are_class_minima() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let locs = first_cycle_locs(&pr, 1).unwrap();
        assert_eq!(locs.len(), 8);
        // From the worked example: the eight first accesses on processor 1.
        let mut sorted = locs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![13, 40, 76, 139, 175, 202, 238, 265]);
        let lay = Layout::new(&pr);
        for &g in &locs {
            assert_eq!(lay.owner(g), 1);
        }
    }
}
