//! The `cyclic(k)` memory layout model (paper Section 2, Figure 1).
//!
//! Array elements laid out `cyclic(k)` over `p` processors form a
//! two-dimensional matrix: each *row* (course) holds `pk` consecutive
//! elements split into `p` blocks of `k`. Element `A(i)` lives at
//!
//! * **row** (course)       `i div pk`
//! * **processor**          `(i mod pk) div k`
//! * **offset in block**    `(i mod pk) mod k`
//!
//! and a processor stores its blocks contiguously, so the **local memory
//! address** of `A(i)` on its owner is `(i div pk) * k + (i mod pk) mod k`.
//!
//! The running example of Figure 1 (p = 4, k = 8): element 108 has offset 4
//! in block 3 of processor 1.

use crate::numth::{div_floor, mod_floor};
use crate::params::Problem;

/// Full placement of a global index under a `cyclic(k)` layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Place {
    /// Owning processor, in `[0, p)`.
    pub proc: i64,
    /// Course (row of the two-dimensional visualization), `i div pk`.
    pub course: i64,
    /// Offset within the block, `[0, k)`.
    pub offset: i64,
    /// Local memory address on the owning processor: `course * k + offset`.
    pub local: i64,
}

/// Stateless layout calculator for a `(p, k)` distribution.
///
/// Carries only `p` and `k`; methods accept global indices (which may exceed
/// any declared array extent — the layout is defined for all `i >= 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    p: i64,
    k: i64,
}

impl Layout {
    /// Builds a layout from validated problem parameters.
    pub fn new(problem: &Problem) -> Self {
        Layout {
            p: problem.p(),
            k: problem.k(),
        }
    }

    /// Builds a layout directly from `(p, k)`; both must be positive
    /// (typically obtained from a validated [`Problem`]).
    pub fn from_raw(p: i64, k: i64) -> Self {
        assert!(p >= 1 && k >= 1, "Layout requires p >= 1 and k >= 1");
        Layout { p, k }
    }

    /// Number of processors.
    #[inline]
    pub fn p(&self) -> i64 {
        self.p
    }

    /// Block size.
    #[inline]
    pub fn k(&self) -> i64 {
        self.k
    }

    /// Row length `pk`.
    #[inline]
    pub fn row_len(&self) -> i64 {
        self.p * self.k
    }

    /// Owning processor of global index `i`.
    ///
    /// ```
    /// use bcag_core::layout::Layout;
    /// let lay = Layout::from_raw(4, 8);
    /// assert_eq!(lay.owner(108), 1); // Figure 1
    /// ```
    #[inline]
    pub fn owner(&self, i: i64) -> i64 {
        mod_floor(i, self.row_len()) / self.k
    }

    /// In-row offset of `i`: its x-coordinate in the paper's lattice view,
    /// `i mod pk`, in `[0, pk)`.
    #[inline]
    pub fn in_row_offset(&self, i: i64) -> i64 {
        mod_floor(i, self.row_len())
    }

    /// Course (row number) of `i`: its y-coordinate in the lattice view.
    #[inline]
    pub fn course(&self, i: i64) -> i64 {
        div_floor(i, self.row_len())
    }

    /// Offset of `i` within its block, in `[0, k)`.
    #[inline]
    pub fn block_offset(&self, i: i64) -> i64 {
        mod_floor(i, self.row_len()) % self.k
    }

    /// Local memory address of `i` on its owning processor.
    #[inline]
    pub fn local_addr(&self, i: i64) -> i64 {
        self.course(i) * self.k + self.block_offset(i)
    }

    /// Local memory address of `i` *relative to processor `m`'s block
    /// window*: `(i div pk) * k + (i mod pk) - k*m`. Equals
    /// [`Layout::local_addr`] when `m` owns `i`; the formulation mirrors the
    /// paper's gap arithmetic, where a lattice displacement `(Δb, Δa)`
    /// between two elements of the same processor yields a local gap of
    /// `Δa*k + Δb`.
    #[inline]
    pub fn local_addr_on(&self, i: i64, m: i64) -> i64 {
        self.course(i) * self.k + self.in_row_offset(i) - self.k * m
    }

    /// Full placement of `i`.
    pub fn place(&self, i: i64) -> Place {
        Place {
            proc: self.owner(i),
            course: self.course(i),
            offset: self.block_offset(i),
            local: self.local_addr(i),
        }
    }

    /// Inverse map: the global index stored at `local` on processor `m`.
    ///
    /// ```
    /// use bcag_core::layout::Layout;
    /// let lay = Layout::from_raw(4, 8);
    /// assert_eq!(lay.global_of(1, 28), 108); // course 3 * k + offset 4
    /// ```
    #[inline]
    pub fn global_of(&self, m: i64, local: i64) -> i64 {
        let course = div_floor(local, self.k);
        let offset = mod_floor(local, self.k);
        course * self.row_len() + m * self.k + offset
    }

    /// Number of elements of `[0, n)` owned by processor `m`
    /// (the local extent of an array of `n` elements).
    pub fn local_len(&self, n: i64, m: i64) -> i64 {
        if n <= 0 {
            return 0;
        }
        let pk = self.row_len();
        let full_rows = n / pk;
        let rem = n % pk; // elements in the final partial row
        let in_partial = (rem - m * self.k).clamp(0, self.k);
        full_rows * self.k + in_partial
    }

    /// True when `m` owns global index `i`.
    #[inline]
    pub fn owns(&self, i: i64, m: i64) -> bool {
        self.owner(i) == m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> Layout {
        Layout::from_raw(4, 8)
    }

    #[test]
    fn figure1_element_108() {
        let lay = fig1();
        let pl = lay.place(108);
        assert_eq!(pl.proc, 1);
        assert_eq!(pl.course, 3);
        assert_eq!(pl.offset, 4);
        assert_eq!(pl.local, 28);
    }

    #[test]
    fn lattice_coordinates_figure1() {
        // "the coordinates of the array element with index 108 are (12, 3)":
        // x = in-row offset 12, y = row 3.
        let lay = fig1();
        assert_eq!(lay.in_row_offset(108), 12);
        assert_eq!(lay.course(108), 3);
    }

    #[test]
    fn global_local_roundtrip() {
        let lay = Layout::from_raw(5, 3);
        for i in 0..600 {
            let pl = lay.place(i);
            assert_eq!(lay.global_of(pl.proc, pl.local), i);
            assert_eq!(lay.local_addr_on(i, pl.proc), pl.local);
        }
    }

    #[test]
    fn local_len_counts() {
        let lay = fig1();
        // 320 elements = 10 full rows: every processor holds 80.
        for m in 0..4 {
            assert_eq!(lay.local_len(320, m), 80);
        }
        // 100 elements = 3 full rows (96) + partial row of 4 on processor 0.
        assert_eq!(lay.local_len(100, 0), 24 + 4);
        assert_eq!(lay.local_len(100, 1), 24);
        assert_eq!(lay.local_len(100, 3), 24);
        // Brute-force cross-check.
        for n in [0i64, 1, 7, 31, 32, 33, 95, 96, 97, 255] {
            for m in 0..4 {
                let expected = (0..n).filter(|&i| lay.owner(i) == m).count() as i64;
                assert_eq!(lay.local_len(n, m), expected, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn owner_striping() {
        let lay = fig1();
        // First row: 0..8 on proc 0, 8..16 on proc 1, etc.
        for i in 0..8 {
            assert_eq!(lay.owner(i), 0);
            assert_eq!(lay.owner(8 + i), 1);
            assert_eq!(lay.owner(16 + i), 2);
            assert_eq!(lay.owner(24 + i), 3);
            assert_eq!(lay.owner(32 + i), 0); // wraps to next course
        }
    }

    #[test]
    fn block_and_cyclic_degenerate_cases() {
        // cyclic(1) == cyclic: element i goes to processor i mod p.
        let cyc = Layout::from_raw(4, 1);
        for i in 0..40 {
            assert_eq!(cyc.owner(i), i % 4);
            assert_eq!(cyc.local_addr(i), i / 4);
        }
        // block over n = 32, p = 4 => k = 8: contiguous chunks.
        let blk = Layout::from_raw(4, 8);
        for i in 0..32 {
            assert_eq!(blk.owner(i), i / 8);
            assert_eq!(blk.local_addr(i), i % 8);
        }
    }
}
