//! Validated problem parameters.
//!
//! A [`Problem`] bundles the distribution parameters `(p, k)` with the
//! regular-section parameters `(l, s)` of the access-sequence problem the
//! paper states in Section 2: *given an array distributed `cyclic(k)` over
//! `p` processors and a regular section `A(l : u : s)`, produce for each
//! processor the sequence of local memory addresses it must touch, in
//! increasing global index order.*
//!
//! Following the paper we keep the upper bound `u` out of the core problem:
//! the gap sequence is independent of `u` (Section 2), which only determines
//! where enumeration stops. Bounded traversal takes `u` separately (see
//! [`crate::section`] and the iterator APIs).

use crate::error::{BcagError, Result};
use crate::numth::{self, gcd};

/// Safety margin: one full access period `s * p * k` and all intermediate
/// products must stay below this bound so that every computation in the
/// crate fits in `i64` without overflow checks on the hot paths.
pub const MAX_INDEX: i64 = i64::MAX / 8;

/// Validated problem parameters for one access-sequence computation.
///
/// Invariants (enforced by [`Problem::new`]):
/// * `p >= 1`, `k >= 1`
/// * `s >= 1` (negative strides are normalized away by
///   [`crate::section::RegularSection`]; `s = 0` is rejected)
/// * `l >= 0`
/// * `s * p * k <= MAX_INDEX` and `l <= MAX_INDEX`
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Problem {
    p: i64,
    k: i64,
    l: i64,
    s: i64,
}

impl Problem {
    /// Validates and constructs a problem instance.
    ///
    /// ```
    /// use bcag_core::params::Problem;
    /// let pr = Problem::new(4, 8, 4, 9).unwrap();
    /// assert_eq!(pr.row_len(), 32);
    /// assert!(Problem::new(4, 8, 4, 0).is_err());
    /// ```
    pub fn new(p: i64, k: i64, l: i64, s: i64) -> Result<Self> {
        if p < 1 {
            return Err(BcagError::InvalidProcessorCount { p });
        }
        if k < 1 {
            return Err(BcagError::InvalidBlockSize { k });
        }
        if s == 0 {
            return Err(BcagError::ZeroStride);
        }
        if s < 0 {
            // The core problem is stated for positive strides; Section 2 of
            // the paper notes the negative case "can be treated analogously",
            // which `RegularSection::normalized` implements by reversal.
            return Err(BcagError::Precondition(
                "core Problem requires s > 0; normalize the section first",
            ));
        }
        if l < 0 {
            return Err(BcagError::NegativeLowerBound { l });
        }
        let pk = numth::mul(p, k)?;
        let period = numth::mul(s, pk)?;
        if period > MAX_INDEX || l > MAX_INDEX {
            return Err(BcagError::Overflow);
        }
        // `l + period` must also be representable.
        numth::add(l, period)?;
        Ok(Problem { p, k, l, s })
    }

    /// Number of processors `p`.
    #[inline]
    pub fn p(&self) -> i64 {
        self.p
    }

    /// Block size `k` of the `cyclic(k)` distribution.
    #[inline]
    pub fn k(&self) -> i64 {
        self.k
    }

    /// Regular-section lower bound `l`.
    #[inline]
    pub fn l(&self) -> i64 {
        self.l
    }

    /// Regular-section stride `s` (always positive).
    #[inline]
    pub fn s(&self) -> i64 {
        self.s
    }

    /// Row length `pk`: one course of blocks across all processors.
    #[inline]
    pub fn row_len(&self) -> i64 {
        self.p * self.k
    }

    /// `d = gcd(s, pk)`; the number of offset classes the section visits is
    /// governed by this quantity.
    #[inline]
    pub fn d(&self) -> i64 {
        gcd(self.s, self.row_len())
    }

    /// Global-index period of the access pattern: `lcm(s, pk) = s * pk / d`.
    ///
    /// Two accesses whose global indices differ by this amount have the same
    /// in-row offset, hence the gap sequence repeats with (at most) this
    /// global period.
    #[inline]
    pub fn period_global(&self) -> i64 {
        self.s / self.d() * self.row_len()
    }

    /// Number of *section elements* per period: `pk / d`.
    #[inline]
    pub fn period_elements(&self) -> i64 {
        self.row_len() / self.d()
    }

    /// Local-memory advance per period on any processor: `k * s / d`
    /// (the value the paper assigns to `AM[0]` in the length-1 special case,
    /// Figure 5 line 16).
    #[inline]
    pub fn period_local(&self) -> i64 {
        self.s / self.d() * self.k
    }

    /// Validates a processor number against `p`.
    pub fn check_proc(&self, m: i64) -> Result<()> {
        if (0..self.p).contains(&m) {
            Ok(())
        } else {
            Err(BcagError::ProcessorOutOfRange { m, p: self.p })
        }
    }

    /// Returns the problem with a different lower bound (used by the basis
    /// computation, which always works on the `l = 0` instance because the
    /// lattice is independent of `l` — Theorem 1's discussion).
    pub fn with_lower_bound(&self, l: i64) -> Result<Self> {
        Problem::new(self.p, self.k, l, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Problem::new(0, 8, 0, 9).is_err());
        assert!(Problem::new(4, 0, 0, 9).is_err());
        assert!(Problem::new(4, 8, -1, 9).is_err());
        assert!(Problem::new(4, 8, 0, 0).is_err());
        assert!(Problem::new(4, 8, 0, -9).is_err());
        assert!(Problem::new(i64::MAX / 2, 8, 0, 9).is_err());
        assert!(Problem::new(4, 8, 0, 9).is_ok());
    }

    #[test]
    fn derived_quantities_paper_example() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        assert_eq!(pr.row_len(), 32);
        assert_eq!(pr.d(), 1);
        assert_eq!(pr.period_global(), 288); // lcm(9, 32)
        assert_eq!(pr.period_elements(), 32);
        assert_eq!(pr.period_local(), 72); // k * s / d = 8 * 9
    }

    #[test]
    fn derived_quantities_with_gcd() {
        // s = 12, pk = 32 => d = 4.
        let pr = Problem::new(4, 8, 0, 12).unwrap();
        assert_eq!(pr.d(), 4);
        assert_eq!(pr.period_global(), 96); // lcm(12, 32)
        assert_eq!(pr.period_elements(), 8);
        assert_eq!(pr.period_local(), 24);
    }

    #[test]
    fn check_proc_bounds() {
        let pr = Problem::new(4, 8, 0, 9).unwrap();
        assert!(pr.check_proc(0).is_ok());
        assert!(pr.check_proc(3).is_ok());
        assert!(pr.check_proc(4).is_err());
        assert!(pr.check_proc(-1).is_err());
    }
}
