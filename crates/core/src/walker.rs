//! Table-free address generation from the basis vectors alone.
//!
//! Section 6.2 of the paper closes with: *"An important feature of our
//! method is that the algorithm can be modified to return only vectors
//! `R = (b_r, a_r)` and `L = (b_l, a_l)`, without storing any tables. Based
//! on these values, every processor can generate its local addresses as
//! needed, using simple tests similar to those in lines 35 and 44 of
//! Figure 5."* (Details appear in the companion ICS'95 paper.)
//!
//! [`Walker`] is that modification: an iterator that carries only the two
//! basis vectors plus the current position, and produces each successive
//! access with at most two comparisons — `O(1)` space, no `AM` table. This
//! trades the table memory for a small per-access penalty, the time/space
//! tradeoff Knies, O'Keefe and MacDonald point out for table-based schemes.

use crate::basis::Basis;
use crate::error::Result;
use crate::layout::Layout;
use crate::params::Problem;
use crate::pattern::Access;
use crate::start::{start_info_with, ClassSolver};

/// How the walker advances: degenerate single-class patterns step by whole
/// periods; general patterns step by the Theorem-3 case analysis.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// `length <= 1`: every access is one full period after the previous.
    Periodic { gap: i64, step: i64 },
    /// General case: three-way step using R and L.
    Basis {
        b_r: i64,
        gap_r: i64,
        step_r: i64,
        b_l: i64,
        gap_l: i64,
        step_l: i64,
        km: i64,
        window_end: i64,
    },
}

/// Position of the walk: the global index, its in-row offset, and its local
/// memory address (all three advance in lockstep without division).
#[derive(Debug, Clone, Copy)]
struct Position {
    global: i64,
    offset: i64,
    local: i64,
}

/// Table-free access generator for one processor.
///
/// Implements `Iterator<Item = Access>`; the stream is infinite for a
/// non-empty pattern (bound it with [`Walker::up_to`] or standard iterator
/// adapters).
///
/// ```
/// use bcag_core::{params::Problem, walker::Walker};
/// let pr = Problem::new(4, 8, 4, 9).unwrap();
/// let walker = Walker::new(&pr, 1).unwrap();
/// let globals: Vec<i64> = walker.take(5).map(|a| a.global).collect();
/// assert_eq!(globals, vec![13, 40, 76, 139, 175]);
/// ```
#[derive(Debug, Clone)]
pub struct Walker {
    mode: Mode,
    pos: Option<Position>,
}

impl Walker {
    /// Builds a walker for processor `m`. Cost: one extended-Euclid call
    /// plus two `O(k)` scans (start location and basis) — identical to the
    /// table method's setup, but nothing proportional to `k` is stored.
    pub fn new(problem: &Problem, m: i64) -> Result<Self> {
        problem.check_proc(m)?;
        let solver = ClassSolver::new(problem);
        let info = start_info_with(&solver, m);
        let Some(start) = info.start else {
            return Ok(Walker {
                mode: Mode::Periodic { gap: 0, step: 0 },
                pos: None,
            });
        };
        let lay = Layout::new(problem);
        let pos = Position {
            global: start,
            offset: lay.in_row_offset(start),
            local: lay.local_addr(start),
        };
        if info.length == 1 {
            return Ok(Walker {
                mode: Mode::Periodic {
                    gap: problem.period_local(),
                    step: problem.period_global(),
                },
                pos: Some(pos),
            });
        }
        let basis = Basis::compute_with(problem, &solver)?;
        let k = problem.k();
        let s = problem.s();
        Ok(Walker {
            mode: Mode::Basis {
                b_r: basis.r.b,
                gap_r: basis.gap_r(k),
                step_r: basis.r.i * s,
                b_l: basis.l.b,
                gap_l: basis.gap_l(k),
                step_l: -basis.l.i * s,
                km: k * m,
                window_end: k * (m + 1),
            },
            pos: Some(pos),
        })
    }

    /// Bounds the walk at global index `u` (inclusive).
    pub fn up_to(self, u: i64) -> impl Iterator<Item = Access> {
        self.take_while(move |a| a.global <= u)
    }
}

impl Iterator for Walker {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let pos = self.pos.as_mut()?;
        let out = Access {
            global: pos.global,
            local: pos.local,
        };
        match self.mode {
            Mode::Periodic { gap, step } => {
                pos.local += gap;
                pos.global += step;
            }
            Mode::Basis {
                b_r,
                gap_r,
                step_r,
                b_l,
                gap_l,
                step_l,
                km,
                window_end,
            } => {
                // The test of Figure 5 line 35: does +R stay in the window?
                if pos.offset + b_r < window_end {
                    pos.offset += b_r;
                    pos.local += gap_r;
                    pos.global += step_r;
                } else {
                    // Equation 2 (−L), with the line-44 correction to
                    // Equation 3 (+R − L) when it undershoots.
                    pos.offset -= b_l;
                    pos.local += gap_l;
                    pos.global += step_l;
                    if pos.offset < km {
                        pos.offset += b_r;
                        pos.local += gap_r;
                        pos.global += step_r;
                    }
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;

    #[test]
    fn matches_table_based_enumeration() {
        for p in 1..=4i64 {
            for k in [1i64, 2, 4, 8] {
                for s in [1i64, 3, 7, 9, 16, 31, 33, 64] {
                    for l in [0i64, 4] {
                        let pr = Problem::new(p, k, l, s).unwrap();
                        for m in 0..p {
                            let pat = lattice_alg::build(&pr, m).unwrap();
                            let from_table: Vec<Access> = pat.iter().take(40).collect();
                            let from_walker: Vec<Access> =
                                Walker::new(&pr, m).unwrap().take(40).collect();
                            assert_eq!(from_table, from_walker, "p={p} k={k} s={s} l={l} m={m}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_walker() {
        let pr = Problem::new(2, 1, 0, 2).unwrap();
        let mut w = Walker::new(&pr, 1).unwrap();
        assert!(w.next().is_none());
    }

    #[test]
    fn bounded_walk() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let w = Walker::new(&pr, 1).unwrap();
        let globals: Vec<i64> = w.up_to(202).map(|a| a.global).collect();
        assert_eq!(globals, vec![13, 40, 76, 139, 175, 202]);
    }

    #[test]
    fn periodic_mode() {
        let pr = Problem::new(4, 8, 0, 32).unwrap();
        let w = Walker::new(&pr, 0).unwrap();
        let accesses: Vec<Access> = w.take(3).collect();
        assert_eq!(
            accesses[0],
            Access {
                global: 0,
                local: 0
            }
        );
        assert_eq!(
            accesses[1],
            Access {
                global: 32,
                local: 8
            }
        );
        assert_eq!(
            accesses[2],
            Access {
                global: 64,
                local: 16
            }
        );
    }
}
