//! The paper's linear-time algorithm (Figure 5): build the local memory
//! access sequence in `O(k + min(log s, log p))` time.
//!
//! Steps, following the figure line-by-line:
//!
//! 1. lines 3–11 — one extended-Euclid call plus the start-location loop
//!    (shared with every other method via [`crate::start`]);
//! 2. lines 12–18 — special cases `length == 0` (no accesses) and
//!    `length == 1` (a single offset class: the gap is one local period
//!    `k·s/d`);
//! 3. lines 19–30 — basis vectors `R` and `L` ([`crate::basis`]);
//! 4. lines 31–49 — the doubly nested gap loop, which emits one `AM` entry
//!    per owned offset class by applying Theorem 3's three-case step:
//!    Equation 1 (`+R`) while the offset stays inside the processor's
//!    window, Equation 2 (`−L`) when it would overflow, and Equation 3
//!    (`+R−L`) when `−L` alone undershoots the window. At most `2k + 1`
//!    points are examined (Section 5.1).

use crate::basis::Basis;
use crate::error::Result;
use crate::layout::Layout;
use crate::params::Problem;
use crate::pattern::{AccessPattern, CyclicPattern, Pattern};
use crate::start::{start_info_with, ClassSolver};

/// Builds processor `m`'s access pattern with the lattice method.
///
/// ```
/// use bcag_core::{params::Problem, lattice_alg};
/// // The paper's worked example: p=4, k=8, l=4, s=9, m=1.
/// let pr = Problem::new(4, 8, 4, 9).unwrap();
/// let pat = lattice_alg::build(&pr, 1).unwrap();
/// assert_eq!(pat.start_global(), Some(13));
/// assert_eq!(pat.gaps(), &[3, 12, 15, 12, 3, 12, 3, 12]);
/// ```
pub fn build(problem: &Problem, m: i64) -> Result<AccessPattern> {
    let _sp = bcag_trace::span("core.build");
    problem.check_proc(m)?;
    let solver = ClassSolver::new(problem);
    let info = start_info_with(&solver, m);

    // Lines 12–14: no owned offset class.
    let Some(start_global) = info.start else {
        return Ok(AccessPattern::from_parts(*problem, m, Pattern::Empty));
    };
    let lay = Layout::new(problem);
    let start_local = lay.local_addr(start_global);

    // Lines 15–17: one offset class; successive accesses are exactly one
    // period apart.
    if info.length == 1 {
        bcag_trace::count("table_entries", 1);
        let c = CyclicPattern {
            start_global,
            start_local,
            gaps: vec![problem.period_local()],
            global_steps: vec![problem.period_global()],
        };
        return Ok(AccessPattern::from_parts(*problem, m, Pattern::Cyclic(c)));
    }

    // Lines 19–30: basis vectors. `length >= 2` guarantees `d < k`, so the
    // basis exists.
    let basis = Basis::compute_with(problem, &solver)?;
    let k = problem.k();
    let s = problem.s();
    let (b_r, gap_r, step_r) = (basis.r.b, basis.gap_r(k), basis.r.i * s);
    let (b_l, gap_l, step_l) = (basis.l.b, basis.gap_l(k), -basis.l.i * s);
    let km = k * m;
    let window_end = k * (m + 1);

    // Lines 31–49: the gap loop. `offset` is the in-row offset of the most
    // recently visited point, always within [km, window_end).
    let length = info.length as usize;
    let mut gaps = Vec::with_capacity(length);
    let mut global_steps = Vec::with_capacity(length);
    let mut offset = lay.in_row_offset(start_global); // line 32
    while gaps.len() < length {
        // Lines 35–39: Equation 1 while R stays inside the window.
        while gaps.len() < length && offset + b_r < window_end {
            gaps.push(gap_r);
            global_steps.push(step_r);
            offset += b_r;
        }
        if gaps.len() == length {
            break; // line 41
        }
        // Lines 42–43: Equation 2.
        let mut gap = gap_l;
        let mut step = step_l;
        offset -= b_l;
        // Lines 44–47: Equation 3 when −L left the window on the low side.
        if offset < km {
            gap += gap_r;
            step += step_r;
            offset += b_r;
        }
        gaps.push(gap);
        global_steps.push(step);
    }

    bcag_trace::count("table_entries", gaps.len() as u64);
    let c = CyclicPattern {
        start_global,
        start_local,
        gaps,
        global_steps,
    };
    Ok(AccessPattern::from_parts(*problem, m, Pattern::Cyclic(c)))
}

/// Builds the patterns of all `p` processors, reusing the shared
/// `m`-independent work where possible.
pub fn build_all(problem: &Problem) -> Result<Vec<AccessPattern>> {
    let _sp = bcag_trace::span("core.build_all");
    (0..problem.p()).map(|m| build(problem, m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_worked_example() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let pat = build(&pr, 1).unwrap();
        assert_eq!(pat.start_global(), Some(13));
        assert_eq!(pat.start_local(), Some(5));
        assert_eq!(pat.gaps(), &[3, 12, 15, 12, 3, 12, 3, 12]);
        pat.check_invariants();
        // The walk visits 13, 40, 76, 139, ... and reaches 301 (first point
        // of the next cycle) after one full cycle.
        let walk: Vec<i64> = pat.iter().take(9).map(|a| a.global).collect();
        assert_eq!(walk, vec![13, 40, 76, 139, 175, 202, 238, 265, 301]);
    }

    #[test]
    fn figure1_section_processor0() {
        // Figure 1 highlights section l=0, s=9 on p=4, k=8. On processor 0
        // the first cycle of accesses is 0, 36, 99, 135, 162, 198, 225, 261
        // and the next cycle starts at 288.
        let pr = Problem::new(4, 8, 0, 9).unwrap();
        let pat = build(&pr, 0).unwrap();
        assert_eq!(pat.start_global(), Some(0));
        let walk: Vec<i64> = pat.iter().take(9).map(|a| a.global).collect();
        assert_eq!(walk, vec![0, 36, 99, 135, 162, 198, 225, 261, 288]);
        pat.check_invariants();
    }

    #[test]
    fn empty_processor() {
        let pr = Problem::new(2, 1, 0, 2).unwrap();
        let pat = build(&pr, 1).unwrap();
        assert!(pat.is_empty());
    }

    #[test]
    fn length_one_special_case() {
        // pk | s: every access lands on the same offset.
        let pr = Problem::new(4, 8, 0, 32).unwrap();
        let pat = build(&pr, 0).unwrap();
        assert_eq!(pat.len(), 1);
        assert_eq!(pat.gaps(), &[8]); // k·s/d = 8·32/32
        pat.check_invariants();
        // s = 16, d = 16 >= k: one class per processor window.
        let pr = Problem::new(4, 8, 0, 16).unwrap();
        for m in 0..4 {
            let pat = build(&pr, m).unwrap();
            assert!(pat.len() <= 1);
            pat.check_invariants();
        }
    }

    #[test]
    fn invariants_over_parameter_sweep() {
        for p in 1..=4i64 {
            for k in [1i64, 2, 3, 4, 8] {
                for s in [1i64, 2, 3, 5, 7, 9, 15, 16, 31, 32, 33, 65] {
                    for l in [0i64, 1, 7] {
                        let pr = Problem::new(p, k, l, s).unwrap();
                        for m in 0..p {
                            let pat = build(&pr, m).unwrap();
                            pat.check_invariants();
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stride_one_is_dense_blocks() {
        // s = 1: every element is accessed; gaps within a block are 1 and
        // the jump between courses is k·(p−1)+1 local? No: local addresses
        // are contiguous per block and consecutive between courses, so all
        // gaps are 1 except none — local memory is dense, AM = [1; k].
        let pr = Problem::new(4, 8, 0, 1).unwrap();
        for m in 0..4 {
            let pat = build(&pr, m).unwrap();
            assert_eq!(pat.len(), 8);
            assert_eq!(pat.gaps(), &[1; 8]);
            pat.check_invariants();
        }
    }

    #[test]
    fn reverse_sorted_case_pk_minus_1() {
        // s = pk − 1 produces the reverse-sorted first cycle the paper
        // calls out in Section 6.1.
        let pr = Problem::new(4, 8, 0, 31).unwrap();
        for m in 0..4 {
            let pat = build(&pr, m).unwrap();
            assert_eq!(pat.len(), 8);
            pat.check_invariants();
        }
    }

    #[test]
    fn properly_sorted_case_pk_plus_1() {
        let pr = Problem::new(4, 8, 0, 33).unwrap();
        for m in 0..4 {
            let pat = build(&pr, m).unwrap();
            assert_eq!(pat.len(), 8);
            pat.check_invariants();
        }
    }
}
