//! Locality analytics over compiled [`RunPlan`]s: reuse-distance
//! histogram, working-set size and bytes-touched-per-cache-line.
//!
//! The paper's access sequences are *address streams*; whether a schedule
//! is memory-bound depends on how those streams map onto cache lines. This
//! module replays a plan's traversal at cache-line granularity through a
//! small LRU stack and reports distribution-shaped locality metrics:
//!
//! * **reuse distance** — for every re-touch of a line, the number of
//!   *distinct* lines accessed since its previous touch (the classic LRU
//!   stack distance; a fully-associative cache of `C` lines hits exactly
//!   the re-touches with distance `< C`);
//! * **working set** — the count of distinct lines the traversal touches;
//! * **bytes per line** — distinct bytes touched divided by lines
//!   touched: 64 means every fetched line is fully consumed, 8 means a
//!   gap-64 stride wastes 87.5% of each fetch.
//!
//! Analysis is bounded by [`MAX_ANALYZED`] elements (one prefix of the
//! traversal), so compiling a plan for a huge array never turns into an
//! unbounded simulation. [`record`] folds the results into the active
//! `bcag-trace` session as the `reuse_distance_lines` histogram plus
//! `locality_*` counters.

use bcag_trace::Histogram;

use crate::runs::RunPlan;

/// Cache-line size the analysis assumes, in bytes.
pub const CACHE_LINE_BYTES: u64 = 64;

/// Upper bound on traversal elements replayed per analysis.
pub const MAX_ANALYZED: usize = 1 << 14;

/// Distribution-shaped locality metrics of one plan traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityStats {
    /// Elements replayed (min of the plan's count and [`MAX_ANALYZED`]).
    pub elements: u64,
    /// Distinct cache lines touched — the working-set size in lines.
    pub lines: u64,
    /// Distinct bytes touched (`elements * elem_bytes`; traversal
    /// addresses are distinct within a plan).
    pub bytes_touched: u64,
    /// First-touch accesses (compulsory misses at line granularity).
    pub cold_misses: u64,
    /// LRU stack distances (in lines) of every line re-touch.
    pub reuse: Histogram,
}

impl LocalityStats {
    /// Average distinct bytes consumed per touched cache line (0 when the
    /// plan is empty). At most [`CACHE_LINE_BYTES`].
    pub fn bytes_per_line(&self) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            self.bytes_touched as f64 / self.lines as f64
        }
    }
}

/// Replays (a bounded prefix of) the plan's address stream at cache-line
/// granularity and returns its locality metrics. `elem_bytes` is the
/// element width the addresses index (8 for the `f64`/`i64` arrays the
/// runtime moves).
pub fn analyze(plan: &RunPlan, elem_bytes: usize) -> LocalityStats {
    let elem_bytes = elem_bytes.max(1) as u64;
    // LRU stack of line addresses, most recently used at the back. The
    // working set of a strided traversal prefix is small (it grows only
    // on cold misses), so a linear scan beats fancier structures here,
    // mirroring the schedule cache's reasoning.
    let mut stack: Vec<u64> = Vec::new();
    let mut reuse = Histogram::new();
    let mut elements = 0u64;
    let mut cold = 0u64;
    plan.for_each_segment(|seg| {
        for j in 0..seg.len {
            if elements >= MAX_ANALYZED as u64 {
                return;
            }
            elements += 1;
            let byte_addr = (seg.addr + j * seg.gap) as u64 * elem_bytes;
            let line = byte_addr / CACHE_LINE_BYTES;
            // A multi-byte element can straddle a line; charging the
            // first line keeps the replay one-access-per-element.
            if let Some(pos) = stack.iter().rposition(|&l| l == line) {
                let distance = (stack.len() - 1 - pos) as u64;
                stack.remove(pos);
                stack.push(line);
                reuse.record(distance);
            } else {
                cold += 1;
                stack.push(line);
            }
        }
    });
    LocalityStats {
        elements,
        lines: stack.len() as u64,
        bytes_touched: elements * elem_bytes,
        cold_misses: cold,
        reuse,
    }
}

/// Histogram-free locality summary for the tuning pass: distinct lines
/// and bytes over (a bounded prefix of) the traversal, skipping the LRU
/// replay entirely — [`analyze`]'s stack scan is `O(elements × working
/// set)`, too slow for the plan-compile path, while a distinct-line
/// count is `O(elements)`. The returned stats carry an empty `reuse`
/// histogram and `cold_misses == lines`; `max_elems` bounds the replay
/// (the gap table is periodic, so a few periods converge).
pub fn analyze_lines(plan: &RunPlan, elem_bytes: usize, max_elems: usize) -> LocalityStats {
    let elem_bytes = elem_bytes.max(1) as u64;
    let mut lines: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut elements = 0u64;
    plan.for_each_segment(|seg| {
        for j in 0..seg.len {
            if elements >= max_elems as u64 {
                return;
            }
            elements += 1;
            let byte_addr = (seg.addr + j * seg.gap) as u64 * elem_bytes;
            lines.insert(byte_addr / CACHE_LINE_BYTES);
        }
    });
    LocalityStats {
        elements,
        lines: lines.len() as u64,
        bytes_touched: elements * elem_bytes,
        cold_misses: lines.len() as u64,
        reuse: Histogram::new(),
    }
}

/// [`analyze`]s the plan and folds the results into the active trace
/// session: the `reuse_distance_lines` histogram plus the
/// `locality_elements` / `locality_lines_touched` /
/// `locality_bytes_touched` / `locality_cold_misses` counters. One
/// relaxed atomic load when tracing is disabled. Returns the stats so
/// callers can also inspect them directly.
pub fn record(plan: &RunPlan, elem_bytes: usize) -> Option<LocalityStats> {
    if !bcag_trace::enabled() {
        return None;
    }
    let stats = analyze(plan, elem_bytes);
    if stats.elements == 0 {
        return Some(stats);
    }
    bcag_trace::record_hist("reuse_distance_lines", &stats.reuse);
    bcag_trace::count("locality_elements", stats.elements);
    bcag_trace::count("locality_lines_touched", stats.lines);
    bcag_trace::count("locality_bytes_touched", stats.bytes_touched);
    bcag_trace::count("locality_cold_misses", stats.cold_misses);
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_plan(start: i64, last: i64, gap: i64) -> RunPlan {
        // A one-period gap table with a constant gap compiles to Uniform.
        RunPlan::compile(Some(start), last, &[gap, gap])
    }

    #[test]
    fn contiguous_traversal_fills_lines() {
        // 64 contiguous f64 elements = 512 bytes = 8 full lines.
        let plan = uniform_plan(0, 63, 1);
        let s = analyze(&plan, 8);
        assert_eq!(s.elements, 64);
        assert_eq!(s.lines, 8);
        assert_eq!(s.cold_misses, 8);
        assert_eq!(s.bytes_touched, 512);
        assert_eq!(s.bytes_per_line(), 64.0);
        // 8 elements share each line: 56 same-line re-touches at
        // distance 0.
        assert_eq!(s.reuse.count(), 56);
        assert_eq!(s.reuse.max(), 0);
    }

    #[test]
    fn wide_stride_wastes_lines() {
        // Gap 8 on f64: every element lands on its own line.
        let plan = uniform_plan(0, 8 * 31, 8);
        let s = analyze(&plan, 8);
        assert_eq!(s.elements, 32);
        assert_eq!(s.lines, 32);
        assert_eq!(s.cold_misses, 32);
        assert!(s.reuse.is_empty());
        assert_eq!(s.bytes_per_line(), 8.0);
    }

    #[test]
    fn cyclic_plan_interleaves_reuse() {
        // Two-run period: 4 contiguous then skip ahead — the skip
        // revisits no line, so reuse stays same-line spatial hits.
        let plan = RunPlan::compile(Some(0), 199, &[1, 1, 1, 17]);
        let s = analyze(&plan, 8);
        assert!(s.elements > 0);
        assert!(s.lines >= s.cold_misses.min(s.lines));
        assert_eq!(s.cold_misses + s.reuse.count(), s.elements);
    }

    #[test]
    fn empty_plan_yields_zeroes() {
        let s = analyze(&RunPlan::empty(), 8);
        assert_eq!(s.elements, 0);
        assert_eq!(s.lines, 0);
        assert_eq!(s.bytes_per_line(), 0.0);
        assert!(s.reuse.is_empty());
    }

    #[test]
    fn analysis_is_bounded() {
        let plan = uniform_plan(0, i64::MAX / 4, 1);
        let s = analyze(&plan, 8);
        assert_eq!(s.elements, MAX_ANALYZED as u64);
    }

    #[test]
    fn analyze_lines_agrees_with_full_analysis() {
        for (start, last, am, eb) in [
            (0i64, 63i64, vec![1i64], 8usize),
            (0, 8 * 31, vec![8, 8], 8),
            (0, 199, vec![1, 1, 1, 17], 8),
            (5, 900, vec![3, 12, 15, 12, 3, 12, 3, 12], 4),
        ] {
            let plan = RunPlan::compile(Some(start), last, &am);
            let fast = analyze_lines(&plan, eb, MAX_ANALYZED);
            let full = analyze(&plan, eb);
            assert_eq!(fast.elements, full.elements);
            assert_eq!(fast.lines, full.lines);
            assert_eq!(fast.bytes_touched, full.bytes_touched);
            assert_eq!(fast.bytes_per_line(), full.bytes_per_line());
            assert!(fast.reuse.is_empty());
        }
        // Bounded, like the full analysis.
        let huge = RunPlan::compile(Some(0), i64::MAX / 4, &[1, 1]);
        assert_eq!(analyze_lines(&huge, 8, 1000).elements, 1000);
        // Empty plan yields zeroes.
        let empty = analyze_lines(&RunPlan::empty(), 8, 100);
        assert_eq!(empty.elements, 0);
        assert_eq!(empty.bytes_per_line(), 0.0);
    }

    #[test]
    fn record_lands_histogram_and_counters_in_trace() {
        let plan = uniform_plan(0, 63, 1);
        let ((), trace) = bcag_trace::capture(|| {
            let stats = record(&plan, 8).expect("tracing enabled");
            assert_eq!(stats.lines, 8);
        });
        assert_eq!(trace.counter_total("locality_lines_touched"), 8);
        assert_eq!(trace.counter_total("locality_elements"), 64);
        let h = trace.histogram_total("reuse_distance_lines");
        assert_eq!(h.count(), 56);
    }

    #[test]
    fn record_is_inert_when_disabled() {
        // No capture session: must not record (and must not panic).
        assert!(record(&uniform_plan(0, 9, 1), 8).is_none());
    }
}
