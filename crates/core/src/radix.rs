//! Least-significant-digit radix sort for nonnegative `i64` keys.
//!
//! The sorting-based baseline of Chatterjee et al. dominates at
//! `O(k log k)`; the paper notes (Section 6.1) that *their* implementation
//! switched to a linear-time radix sort for `k >= 64`, which is why the
//! measured ratio between the two methods flattens to a constant for large
//! `k`. We reproduce that implementation choice faithfully: the baseline
//! can sort with either a comparison sort or this radix sort.

/// Number of bits per radix digit (256-way passes).
const DIGIT_BITS: u32 = 8;
const RADIX: usize = 1 << DIGIT_BITS;

/// Sorts a slice of nonnegative `i64` values ascending with an LSD radix
/// sort. Passes over digit positions that are constant across the whole
/// slice are skipped, so sorting values bounded by `B` costs
/// `O(n · ceil(log_256 B))`.
///
/// # Panics
/// Debug-asserts that all values are nonnegative (the access-sequence
/// workloads only ever sort global indices, which are `>= 0`).
pub fn sort_i64(data: &mut [i64]) {
    debug_assert!(data.iter().all(|&v| v >= 0));
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Determine how many digit positions actually vary.
    let max = *data.iter().max().expect("nonempty");
    let passes = (64 - (max as u64).leading_zeros()).div_ceil(DIGIT_BITS);
    let mut scratch = vec![0i64; n];
    let mut src_is_data = true;
    let mut shift = 0u32;
    while shift < passes * DIGIT_BITS {
        let (src, dst): (&mut [i64], &mut [i64]) = if src_is_data {
            (&mut data[..], &mut scratch[..])
        } else {
            (&mut scratch[..], &mut data[..])
        };
        let mut counts = [0usize; RADIX];
        for &v in src.iter() {
            counts[((v >> shift) as usize) & (RADIX - 1)] += 1;
        }
        // Skip passes where every key shares the digit.
        if counts.contains(&n) {
            shift += DIGIT_BITS;
            continue;
        }
        // Exclusive prefix sums -> stable scatter.
        let mut sum = 0usize;
        for c in counts.iter_mut() {
            let this = *c;
            *c = sum;
            sum += this;
        }
        for &v in src.iter() {
            let digit = ((v >> shift) as usize) & (RADIX - 1);
            dst[counts[digit]] = v;
            counts[digit] += 1;
        }
        src_is_data = !src_is_data;
        shift += DIGIT_BITS;
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_small_cases() {
        let mut v = vec![5i64, 1, 4, 1, 5, 9, 2, 6];
        sort_i64(&mut v);
        assert_eq!(v, vec![1, 1, 2, 4, 5, 5, 6, 9]);

        let mut v: Vec<i64> = vec![];
        sort_i64(&mut v);
        assert!(v.is_empty());

        let mut v = vec![42i64];
        sort_i64(&mut v);
        assert_eq!(v, vec![42]);
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        let mut asc: Vec<i64> = (0..1000).collect();
        let expect = asc.clone();
        sort_i64(&mut asc);
        assert_eq!(asc, expect);

        let mut desc: Vec<i64> = (0..1000).rev().collect();
        sort_i64(&mut desc);
        assert_eq!(desc, expect);
    }

    #[test]
    fn sorts_wide_value_range() {
        let mut v = vec![i64::MAX / 8, 0, 1 << 40, 77, 1 << 20, 3];
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_i64(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn matches_std_sort_on_pseudorandom_input() {
        // Deterministic LCG so the test needs no external entropy.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 16) as i64 & 0xFFFF_FFFF
        };
        for len in [2usize, 3, 10, 100, 1000, 4096] {
            let mut v: Vec<i64> = (0..len).map(|_| next()).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            sort_i64(&mut v);
            assert_eq!(v, expect, "len={len}");
        }
    }

    #[test]
    fn all_equal_values() {
        let mut v = vec![7i64; 257];
        sort_i64(&mut v);
        assert!(v.iter().all(|&x| x == 7));
    }
}
