//! Error type shared by all `bcag-core` constructors.
//!
//! The enumeration paths themselves (gap-table walks, iterators) are
//! infallible once a value has been constructed; every precondition is
//! checked up front so the hot loops stay branch-light and panic-free.

use std::fmt;

/// Errors produced while validating distribution/section parameters or while
/// running an algorithm whose preconditions are not met.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BcagError {
    /// Number of processors must satisfy `p >= 1`.
    InvalidProcessorCount {
        /// The offending processor count.
        p: i64,
    },
    /// Block size must satisfy `k >= 1`.
    InvalidBlockSize {
        /// The offending block size.
        k: i64,
    },
    /// Regular-section stride must be nonzero.
    ZeroStride,
    /// Lower bound of a regular section must be a valid array index (`l >= 0`).
    NegativeLowerBound {
        /// The offending bound.
        l: i64,
    },
    /// Requested processor number is outside `[0, p)`.
    ProcessorOutOfRange {
        /// The requested processor.
        m: i64,
        /// The processor count it was checked against.
        p: i64,
    },
    /// The parameter combination overflows the supported `i64` index range.
    ///
    /// Construction requires that one full access period (`s * p * k`) and
    /// all intermediate products fit comfortably in `i64`.
    Overflow,
    /// An algorithm-specific precondition failed; the message names it.
    ///
    /// For example the Hiranandani et al. method requires `s mod pk < k`.
    Precondition(&'static str),
    /// An upper bound `u < l` (with positive stride) describes an empty
    /// section where a non-empty one is required.
    EmptySection,
    /// Affine alignment coefficient must be nonzero.
    ZeroAlignmentStride,
}

impl fmt::Display for BcagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BcagError::InvalidProcessorCount { p } => {
                write!(f, "invalid processor count p = {p}; need p >= 1")
            }
            BcagError::InvalidBlockSize { k } => {
                write!(f, "invalid block size k = {k}; need k >= 1")
            }
            BcagError::ZeroStride => write!(f, "regular section stride must be nonzero"),
            BcagError::NegativeLowerBound { l } => {
                write!(f, "regular section lower bound l = {l} must be >= 0")
            }
            BcagError::ProcessorOutOfRange { m, p } => {
                write!(f, "processor m = {m} out of range [0, {p})")
            }
            BcagError::Overflow => {
                write!(f, "parameters overflow the supported i64 index range")
            }
            BcagError::Precondition(msg) => write!(f, "precondition failed: {msg}"),
            BcagError::EmptySection => write!(f, "regular section is empty"),
            BcagError::ZeroAlignmentStride => {
                write!(f, "affine alignment coefficient `a` must be nonzero")
            }
        }
    }
}

impl std::error::Error for BcagError {}

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, BcagError>;
