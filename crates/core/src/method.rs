//! Unified front-end over the table-construction methods, so callers (the
//! SPMD simulator, the benchmark harness, tests) can select an algorithm by
//! value.

use crate::error::Result;
use crate::params::Problem;
use crate::pattern::AccessPattern;
use crate::sorting_alg::SortKind;
use crate::{hiranandani, lattice_alg, oracle, sorting_alg};

/// Selects which algorithm computes the access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's lattice-basis method — `O(k + min(log s, log p))`.
    Lattice,
    /// Chatterjee et al. baseline with a comparison sort — `O(k log k)`.
    SortingComparison,
    /// Chatterjee et al. baseline with the radix sort — `O(k)` passes but
    /// with a large constant and `O(k)` extra space.
    SortingRadix,
    /// Chatterjee et al. baseline with the paper's implementation policy
    /// (radix for `k >= 64`).
    SortingAuto,
    /// Hiranandani et al. special case; errors when `s mod pk >= k`.
    Hiranandani,
    /// Brute-force scan over one full period — testing only.
    Oracle,
}

impl Method {
    /// All methods that are valid for *every* parameter combination.
    pub const GENERAL: [Method; 5] = [
        Method::Lattice,
        Method::SortingComparison,
        Method::SortingRadix,
        Method::SortingAuto,
        Method::Oracle,
    ];

    /// Short human-readable name (used by benches and the CLI).
    pub fn name(&self) -> &'static str {
        match self {
            Method::Lattice => "lattice",
            Method::SortingComparison => "sorting-cmp",
            Method::SortingRadix => "sorting-radix",
            Method::SortingAuto => "sorting",
            Method::Hiranandani => "hiranandani",
            Method::Oracle => "oracle",
        }
    }
}

/// Builds the access pattern of processor `m` with the chosen method.
///
/// ```
/// use bcag_core::{params::Problem, method::{build, Method}};
/// let pr = Problem::new(4, 8, 4, 9).unwrap();
/// let a = build(&pr, 1, Method::Lattice).unwrap();
/// let b = build(&pr, 1, Method::SortingRadix).unwrap();
/// assert_eq!(a, b); // every method computes the same table
/// ```
pub fn build(problem: &Problem, m: i64, method: Method) -> Result<AccessPattern> {
    match method {
        Method::Lattice => lattice_alg::build(problem, m),
        Method::SortingComparison => sorting_alg::build(problem, m, SortKind::Comparison),
        Method::SortingRadix => sorting_alg::build(problem, m, SortKind::Radix),
        Method::SortingAuto => sorting_alg::build(problem, m, SortKind::Auto),
        Method::Hiranandani => hiranandani::build(problem, m),
        Method::Oracle => oracle::build(problem, m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_general_methods_agree() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let reference = build(&pr, 1, Method::Oracle).unwrap();
        for method in Method::GENERAL {
            let pat = build(&pr, 1, method).unwrap();
            assert_eq!(pat, reference, "{}", method.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = Method::GENERAL
            .iter()
            .chain([Method::Hiranandani].iter())
            .map(|m| m.name())
            .collect();
        assert_eq!(names.len(), 6);
    }
}
