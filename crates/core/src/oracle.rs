//! Brute-force reference implementation ("oracle") used to validate every
//! real algorithm.
//!
//! Walks the section element-by-element over one full period
//! (`pk / d` section elements), keeps the ones the processor owns, and reads
//! the gap table off directly. `O(pk/d)` time — far slower than the real
//! methods for large `p`/`s`, but unconditionally correct and independent of
//! all the number theory the real methods rely on.

use crate::error::Result;
use crate::layout::Layout;
use crate::params::Problem;
use crate::pattern::{AccessPattern, CyclicPattern, Pattern};

/// Builds processor `m`'s access pattern by exhaustive scanning.
pub fn build(problem: &Problem, m: i64) -> Result<AccessPattern> {
    problem.check_proc(m)?;
    let lay = Layout::new(problem);
    // All owned accesses within the first period, in increasing order
    // (section elements are visited in increasing global index already).
    let owned: Vec<i64> = (0..problem.period_elements())
        .map(|j| problem.l() + problem.s() * j)
        .filter(|&g| lay.owner(g) == m)
        .collect();
    if owned.is_empty() {
        return Ok(AccessPattern::from_parts(*problem, m, Pattern::Empty));
    }
    let n = owned.len();
    let mut gaps = Vec::with_capacity(n);
    let mut global_steps = Vec::with_capacity(n);
    for t in 0..n {
        let (next_g, next_local) = if t + 1 < n {
            (owned[t + 1], lay.local_addr(owned[t + 1]))
        } else {
            (
                owned[0] + problem.period_global(),
                lay.local_addr(owned[0]) + problem.period_local(),
            )
        };
        gaps.push(next_local - lay.local_addr(owned[t]));
        global_steps.push(next_g - owned[t]);
    }
    let c = CyclicPattern {
        start_global: owned[0],
        start_local: lay.local_addr(owned[0]),
        gaps,
        global_steps,
    };
    Ok(AccessPattern::from_parts(*problem, m, Pattern::Cyclic(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;

    #[test]
    fn figure6_oracle() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let pat = build(&pr, 1).unwrap();
        assert_eq!(pat.start_global(), Some(13));
        assert_eq!(pat.gaps(), &[3, 12, 15, 12, 3, 12, 3, 12]);
        pat.check_invariants();
    }

    #[test]
    fn oracle_agrees_with_lattice() {
        for p in 1..=4i64 {
            for k in [1i64, 2, 3, 8] {
                for s in [1i64, 2, 5, 9, 16, 31, 33] {
                    for l in [0i64, 3] {
                        let pr = Problem::new(p, k, l, s).unwrap();
                        for m in 0..p {
                            let a = lattice_alg::build(&pr, m).unwrap();
                            let b = build(&pr, m).unwrap();
                            assert_eq!(a, b, "p={p} k={k} s={s} l={l} m={m}");
                        }
                    }
                }
            }
        }
    }
}
