//! Self-tuning dispatch: turn the [`crate::locality`] measurements into
//! concrete execution decisions instead of hand-tuned env-var A/Bs.
//!
//! The paper's run tables make every access sequence's memory footprint
//! statically predictable, and [`crate::locality`] already computes
//! working-set size and bytes-touched-per-cache-line from each compiled
//! [`RunPlan`]. This module closes the loop: [`decide`] derives a
//! [`DispatchDecision`] — pack strategy, node-code shape, and transfer
//! block size — from those numbers at plan-compile time, so the choice
//! keys on *measured line utilization* rather than on which env var the
//! operator remembered to set.
//!
//! The decision model, and the rationale for each threshold (thresholds
//! were fit to measurements of both pack modes across sparse-stride,
//! gap-64B, mixed and dense shapes — see EXPERIMENTS.md):
//!
//! * **Pack strategy.** Run-coalesced packing loses exactly where its
//!   per-segment dispatch cannot amortize: *short* segments at *low*
//!   line utilization. Below [`LOW_UTIL_BYTES_PER_LINE`] bytes consumed
//!   per 64-byte line **and** at most [`SHORT_RUN_MAX_ELEMS`] elements
//!   per average segment, the "runs" are 2–4-element strided stubs (a
//!   gap-12 pair every 3 elements) and the scalar gap-table walk is
//!   measured 1.3–1.5× faster for f64, 2–2.7× for u8 — the same
//!   whether the section is L2-resident or spilled, because both modes
//!   fetch the same lines; the difference is dispatch, not bandwidth.
//!   Long strided segments are the opposite: a uniform 64-byte stride
//!   compiles to one segment whose gather loop beats the walk 1.5–1.7×
//!   even at 8 bytes per line, so low utilization alone must not force
//!   the fallback. Mostly-singleton plans (average run length under 2)
//!   fall back regardless of utilization. Both criteria select
//!   [`PackChoice::PerElement`].
//! * **Code shape.** The same criterion picks the owner-computes loop:
//!   coalescing plans run the segment walk (Figure 8's RunLoop
//!   extension), degenerate ones the offset-indexed two-table walk of
//!   Figure 8(d) — the fastest scalar shape in Table 2.
//! * **Blocking.** A transfer whose staging working set exceeds half of
//!   L2 ([`block_elems_for`]) is split into L2-sized chunks so the
//!   stage→pack→send→unpack→apply pipeline stays cache-resident; the
//!   block size budgets a quarter of L2 per live buffer (snapshot
//!   staging, pack buffer, source and destination shares).
//!
//! The L2 size is probed from sysfs where available, defaults to
//! [`DEFAULT_L2_KB`], and is overridable with `BCAG_L2_KB` (clamped to
//! [[`MIN_L2_KB`], [`MAX_L2_KB`]]) so the block-size model is testable on
//! any host. `BCAG_TUNE=auto|fixed` selects whether downstream dispatch
//! honors the decisions at all — `fixed` reproduces the historical
//! hand-picked defaults for A/B runs.
//!
//! [`decide`] is a pure function of its inputs: equal
//! [`LocalityStats`]/plan/element-width/L2 always produce equal
//! decisions, so memoizing decisions next to the plans they describe is
//! safe (the property the cache relies on, pinned by a test below).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::locality::LocalityStats;
use crate::runs::{RunPlan, RunShape};

/// Whether downstream dispatch layers honor [`DispatchDecision`]s
/// (`Auto`, the default) or keep the historical fixed defaults
/// (`Fixed`) — the A/B switch of the self-tuning work, selected by
/// `BCAG_TUNE=auto|fixed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneMode {
    /// Measured, self-tuning dispatch (the default).
    Auto,
    /// Historical fixed defaults (run-coalesced packing, unblocked
    /// epochs), kept for A/B comparison.
    Fixed,
}

impl TuneMode {
    /// Stable label for reports and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            TuneMode::Auto => "auto",
            TuneMode::Fixed => "fixed",
        }
    }
}

/// 0 = unset (read the env var on first use), 1 = Auto, 2 = Fixed.
static DEFAULT_TUNE: AtomicU8 = AtomicU8::new(0);

/// The process-default [`TuneMode`]. First use reads `BCAG_TUNE`
/// (`fixed`/`off`/`0` disable self-tuning, anything else — including
/// unset — keeps it on); later uses return the cached choice.
pub fn default_tune() -> TuneMode {
    match DEFAULT_TUNE.load(Ordering::Relaxed) {
        1 => TuneMode::Auto,
        2 => TuneMode::Fixed,
        _ => {
            let mode = match std::env::var("BCAG_TUNE") {
                Ok(v)
                    if v.trim().eq_ignore_ascii_case("fixed")
                        || v.trim().eq_ignore_ascii_case("off")
                        || v.trim() == "0" =>
                {
                    TuneMode::Fixed
                }
                _ => TuneMode::Auto,
            };
            set_default_tune(mode);
            mode
        }
    }
}

/// Overrides the process-default [`TuneMode`] (benches and differential
/// tests flip this around statement calls).
pub fn set_default_tune(mode: TuneMode) {
    let v = match mode {
        TuneMode::Auto => 1,
        TuneMode::Fixed => 2,
    };
    DEFAULT_TUNE.store(v, Ordering::Relaxed);
}

/// Default L2 size assumed when neither the `BCAG_L2_KB` override nor
/// the sysfs probe yields an answer.
pub const DEFAULT_L2_KB: u64 = 512;

/// Smallest accepted `BCAG_L2_KB` value (a 32 KiB L2 exists on real
/// embedded parts; anything below is treated as a typo).
pub const MIN_L2_KB: u64 = 32;

/// Largest accepted `BCAG_L2_KB` value (1 GiB — beyond any cache, the
/// value would just disable blocking, which `BCAG_TUNE=fixed` already
/// does explicitly).
pub const MAX_L2_KB: u64 = 1 << 20;

/// Resolves a `BCAG_L2_KB` value, mirroring the cache's
/// `BCAG_SCHED_CACHE_CAP` pattern: a parsable positive number is clamped
/// to [[`MIN_L2_KB`], [`MAX_L2_KB`]]; unset or unparsable yields `None`
/// (fall through to the probe / default).
pub fn parse_l2_kb(var: Option<&str>) -> Option<u64> {
    let kb: u64 = var?.trim().parse().ok()?;
    if kb == 0 {
        return None;
    }
    Some(kb.clamp(MIN_L2_KB, MAX_L2_KB))
}

/// Best-effort L2 size probe: the unified L2 is cache `index2` in Linux
/// sysfs, with sizes spelled like `512K` or `1M`.
fn probe_l2_kb() -> Option<u64> {
    let s = std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index2/size").ok()?;
    let s = s.trim();
    let (num, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1u64),
        b'M' | b'm' => (&s[..s.len() - 1], 1024u64),
        _ => (s, 1),
    };
    let kb = num.trim().parse::<u64>().ok()?.checked_mul(mult)?;
    (kb > 0).then(|| kb.clamp(MIN_L2_KB, MAX_L2_KB))
}

/// 0 = uninitialized; otherwise the resolved L2 size in bytes.
static L2_BYTES: AtomicU64 = AtomicU64::new(0);

/// The L2 size (bytes) the blocking model budgets against: the
/// `BCAG_L2_KB` override when set, else the sysfs probe, else
/// [`DEFAULT_L2_KB`]. Resolved once and cached.
pub fn l2_bytes() -> u64 {
    let v = L2_BYTES.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let kb = parse_l2_kb(std::env::var("BCAG_L2_KB").ok().as_deref())
        .or_else(probe_l2_kb)
        .unwrap_or(DEFAULT_L2_KB);
    let bytes = kb * 1024;
    L2_BYTES.store(bytes, Ordering::Relaxed);
    bytes
}

/// Overrides the resolved L2 size (bytes, clamped to the `BCAG_L2_KB`
/// range) for the rest of the process — differential tests shrink it so
/// blocking triggers at test-sized transfers. Decisions already cached
/// under the old value are not invalidated; tests use fresh shapes.
pub fn set_l2_bytes(bytes: u64) {
    let clamped = (bytes / 1024).clamp(MIN_L2_KB, MAX_L2_KB) * 1024;
    L2_BYTES.store(clamped, Ordering::Relaxed);
}

/// Pack/unpack strategy a decision selects (mirrored onto
/// `bcag-spmd::pack::PackMode` by the dispatch layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackChoice {
    /// Run-coalesced slice copies.
    Runs,
    /// Scalar gap-table walk.
    PerElement,
}

/// Owner-computes loop shape a decision selects (mirrored onto
/// `bcag-spmd::codeshapes::CodeShape`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeShapeChoice {
    /// Run-coalesced segment walk (the RunLoop shape).
    RunLoop,
    /// Offset-indexed scalar walk of Figure 8(d) (the TwoTableLoop
    /// shape) — the fastest per-element traversal in Table 2.
    TwoTableLoop,
}

/// One plan's compiled dispatch decision: how to pack it, how to walk
/// it, and whether to split its transfers into cache-resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DispatchDecision {
    /// Pack/unpack strategy.
    pub pack: PackChoice,
    /// Owner-computes loop shape.
    pub code_shape: CodeShapeChoice,
    /// Transfer block size in elements; `0` means unblocked (the whole
    /// transfer fits comfortably in cache).
    pub block_elems: usize,
}

impl DispatchDecision {
    /// Compact label for `bcag stats` and bench reports, e.g.
    /// `runs`, `per-element`, `runs+blk16384`.
    pub fn label(&self) -> String {
        let pack = match self.pack {
            PackChoice::Runs => "runs",
            PackChoice::PerElement => "per-element",
        };
        if self.block_elems == 0 {
            pack.to_string()
        } else {
            format!("{pack}+blk{}", self.block_elems)
        }
    }
}

/// Line-utilization threshold (bytes actually consumed per 64-byte
/// fetch) below which a *short-segment* plan packs per-element.
/// Measured crossover on pair-run shapes: at 7–8 B/line the scalar
/// walk is 1.3–1.5× faster than per-segment dispatch for f64 (2–2.7×
/// for u8), at 12.8 B/line 1.3×, while at 21 B/line and above the
/// coalesced copies win (0.5× for the walk). 16 sits in the measured
/// gap. Utilization alone is not sufficient: see
/// [`SHORT_RUN_MAX_ELEMS`].
pub const LOW_UTIL_BYTES_PER_LINE: f64 = 16.0;

/// Upper bound on a cyclic plan's average segment length (elements) for
/// the low-utilization fallback to apply. Dispatch cost amortizes with
/// segment length, so only short segments lose to the scalar walk:
/// measured at stride 13, k = 8 (two 4-element segments per period) the
/// walk still wins 1.3×, while at k = 64 (13 segments averaging 4.9)
/// the segment loop already wins 1.1×, and by 16-element segments it
/// wins 2× — at the same 8 bytes per line. Uniform single-segment
/// plans never take the fallback.
pub const SHORT_RUN_MAX_ELEMS: usize = 4;

/// Upper bound on traversal elements the tuner replays per plan when it
/// measures line utilization — smaller than
/// [`crate::locality::MAX_ANALYZED`] because decisions sit on the plan
/// build path and the gap table is periodic (a few periods converge).
pub const ANALYZE_BOUND: usize = 4096;

/// Block size (elements) for a transfer of `count` elements of
/// `elem_bytes` each against an L2 of `l2_bytes`: `0` (unblocked) while
/// twice the payload fits in L2, else a quarter of L2 per live buffer —
/// snapshot staging, pack buffer, and the source/destination shares all
/// stay resident together. Never below 1024 elements, so tiny L2
/// overrides cannot fragment a transfer into per-element messages.
pub fn block_elems_for(count: u64, elem_bytes: usize, l2_bytes: u64) -> usize {
    let eb = elem_bytes.max(1) as u64;
    if count.saturating_mul(eb).saturating_mul(2) <= l2_bytes {
        return 0;
    }
    ((l2_bytes / (4 * eb)).max(1024)) as usize
}

/// [`decide_with`] against the process-wide [`l2_bytes`].
pub fn decide(stats: &LocalityStats, plan: &RunPlan, elem_bytes: usize) -> DispatchDecision {
    decide_with(stats, plan, elem_bytes, l2_bytes())
}

/// Derives the dispatch decision for one plan from its measured locality.
/// Pure: equal inputs always produce equal decisions (the cache-safety
/// property), and `stats` may be any analyzed prefix of the plan's
/// traversal — full-traversal figures are extrapolated from it.
pub fn decide_with(
    stats: &LocalityStats,
    plan: &RunPlan,
    elem_bytes: usize,
    l2_bytes: u64,
) -> DispatchDecision {
    if plan.is_empty() {
        return DispatchDecision {
            pack: PackChoice::Runs,
            code_shape: CodeShapeChoice::RunLoop,
            block_elems: 0,
        };
    }
    let count = plan.count() as u64;
    // Coalescing economics fall out of the run structure alone: a plan
    // whose average run is shorter than 2 elements offers almost no
    // slice copies, so the per-segment dispatch never pays for itself.
    // Short segments (at most SHORT_RUN_MAX_ELEMS elements on average)
    // amortize it poorly; uniform and single-run plans are one segment
    // and never dispatch-bound.
    let (worthwhile, short_runs) = match plan.shape() {
        RunShape::Cyclic(_) => {
            let rpp = plan.runs_per_period().max(1);
            let pe = plan.period_elements().max(1);
            (rpp * 2 <= pe, pe <= rpp * SHORT_RUN_MAX_ELEMS)
        }
        _ => (plan.coalesces(), false),
    };
    // The measured criterion: when the segments are short AND the
    // traversal wastes most of every fetched line, the coalesced "runs"
    // are strided stubs whose dispatch is pure overhead — resident or
    // spilled alike, since both modes fetch the same lines. Either
    // condition alone keeps the segment loop: long strided segments
    // beat the walk even at 8 B/line, and short dense pairs still move
    // whole slices.
    let low_util = stats.lines > 0 && stats.bytes_per_line() < LOW_UTIL_BYTES_PER_LINE;
    let pack = if !worthwhile || (low_util && short_runs) {
        PackChoice::PerElement
    } else {
        PackChoice::Runs
    };
    let code_shape = match pack {
        PackChoice::Runs => CodeShapeChoice::RunLoop,
        PackChoice::PerElement => CodeShapeChoice::TwoTableLoop,
    };
    DispatchDecision {
        pack,
        code_shape,
        block_elems: block_elems_for(count, elem_bytes, l2_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::analyze_lines;

    const L2: u64 = 512 * 1024;

    fn uniform_plan(last: i64, gap: i64) -> RunPlan {
        RunPlan::compile(Some(0), last, &[gap, gap])
    }

    #[test]
    fn mode_names_and_flip() {
        assert_eq!(TuneMode::Auto.name(), "auto");
        assert_eq!(TuneMode::Fixed.name(), "fixed");
        let before = default_tune();
        set_default_tune(TuneMode::Fixed);
        assert_eq!(default_tune(), TuneMode::Fixed);
        set_default_tune(before);
        assert_eq!(default_tune(), before);
    }

    #[test]
    fn parse_l2_kb_resolves_and_clamps_env_values() {
        assert_eq!(parse_l2_kb(None), None);
        assert_eq!(parse_l2_kb(Some("512")), Some(512));
        assert_eq!(parse_l2_kb(Some(" 1024 ")), Some(1024));
        // Clamped at both ends.
        assert_eq!(parse_l2_kb(Some("1")), Some(MIN_L2_KB));
        assert_eq!(parse_l2_kb(Some("999999999999")), Some(MAX_L2_KB));
        // Unparsable or zero falls through to the probe/default.
        assert_eq!(parse_l2_kb(Some("0")), None);
        assert_eq!(parse_l2_kb(Some("banana")), None);
        assert_eq!(parse_l2_kb(Some("-3")), None);
        assert_eq!(parse_l2_kb(Some("")), None);
    }

    #[test]
    fn l2_bytes_is_resolved_and_positive() {
        let v = l2_bytes();
        assert!(v >= MIN_L2_KB * 1024);
        assert!(v <= MAX_L2_KB * 1024);
        assert_eq!(l2_bytes(), v, "cached after first resolution");
    }

    #[test]
    fn dense_plans_keep_runs_unblocked_when_resident() {
        // 4096 contiguous f64: 32 KiB, fully line-utilized.
        let plan = uniform_plan(4095, 1);
        let stats = analyze_lines(&plan, 8, ANALYZE_BOUND);
        let d = decide_with(&stats, &plan, 8, L2);
        assert_eq!(d.pack, PackChoice::Runs);
        assert_eq!(d.code_shape, CodeShapeChoice::RunLoop);
        assert_eq!(d.block_elems, 0);
    }

    #[test]
    fn dense_spilling_plans_block() {
        // 1M contiguous f64 = 8 MiB >> L2: runs, but blocked.
        let plan = uniform_plan((1 << 20) - 1, 1);
        let stats = analyze_lines(&plan, 8, ANALYZE_BOUND);
        let d = decide_with(&stats, &plan, 8, L2);
        assert_eq!(d.pack, PackChoice::Runs);
        assert_eq!(d.block_elems, (L2 / (4 * 8)) as usize);
    }

    #[test]
    fn singleton_heavy_plans_fall_back_to_per_element() {
        // [5,1,5,1]: the unit-steal guard keeps the gap-5 elements out of
        // the unit runs, so the period groups as [1, 2, 1] — average run
        // length below 2, dispatch never amortizes.
        let plan = RunPlan::compile(Some(0), 4000, &[5, 1, 5, 1]);
        assert!(plan.runs_per_period() * 2 > plan.period_elements());
        let stats = analyze_lines(&plan, 8, ANALYZE_BOUND);
        let d = decide_with(&stats, &plan, 8, L2);
        assert_eq!(d.pack, PackChoice::PerElement);
        assert_eq!(d.code_shape, CodeShapeChoice::TwoTableLoop);
    }

    #[test]
    fn wasted_short_runs_fall_back_to_per_element() {
        // The figure-6-like sparse table (s = k+1): gap-12 runs of 2, so
        // every element sits on its own line — 8 of every 64 fetched
        // bytes used — and per-segment dispatch amortizes over 2
        // elements. The scalar walk measured 1.35× the coalesced path on
        // this structure for f64, 2.7× for u8 (resident and spilled
        // alike).
        let plan = RunPlan::compile(Some(0), 500_000, &[12, 3, 12, 15, 12, 3, 12, 3]);
        let stats = analyze_lines(&plan, 8, ANALYZE_BOUND);
        assert!(stats.bytes_per_line() < LOW_UTIL_BYTES_PER_LINE);
        let d = decide_with(&stats, &plan, 8, L2);
        assert_eq!(d.pack, PackChoice::PerElement);
        assert_eq!(d.code_shape, CodeShapeChoice::TwoTableLoop);
        // A half-line stride (32 B/line) keeps the coalesced path.
        let half = uniform_plan(2 * 4095, 2);
        let hstats = analyze_lines(&half, 8, ANALYZE_BOUND);
        assert_eq!(hstats.bytes_per_line(), 32.0);
        assert_eq!(decide_with(&hstats, &half, 8, L2).pack, PackChoice::Runs);
    }

    #[test]
    fn long_strided_segments_keep_runs_despite_low_utilization() {
        // The gap-64B uniform stride (s·elem_bytes = one line): 8 B/line
        // but ONE segment — its strided gather loop measured 1.5–1.7×
        // the gap-table walk, so utilization alone must not demote it.
        let strided = uniform_plan(8 * 4095, 8);
        let sstats = analyze_lines(&strided, 8, ANALYZE_BOUND);
        assert_eq!(sstats.bytes_per_line(), 8.0);
        let sd = decide_with(&sstats, &strided, 8, L2);
        assert_eq!(sd.pack, PackChoice::Runs);
        assert_eq!(sd.code_shape, CodeShapeChoice::RunLoop);
        // The amortization boundary, at identical 8 B/line utilization:
        // two 4-element segments per 8-element period (stride 13 at
        // k = 8) still walk scalar; 13 segments averaging 4.9 elements
        // (stride 13 at k = 64) keep the segment loop.
        let at_bound = RunPlan::compile(Some(0), 500_000, &[15, 2, 17, 17, 17, 17, 17, 2]);
        assert_eq!(at_bound.period_elements(), 8);
        assert_eq!(at_bound.runs_per_period(), 2);
        let bstats = analyze_lines(&at_bound, 8, ANALYZE_BOUND);
        assert_eq!(
            decide_with(&bstats, &at_bound, 8, L2).pack,
            PackChoice::PerElement
        );
        let mut gaps = vec![13i64; 64];
        for i in 0..13 {
            gaps[4 + 5 * i.min(11)] = 16; // 13 segments per 64-element period
        }
        let above = RunPlan::compile(Some(0), 500_000, &gaps);
        assert!(above.period_elements() > SHORT_RUN_MAX_ELEMS * above.runs_per_period());
        let astats = analyze_lines(&above, 8, ANALYZE_BOUND);
        assert_eq!(decide_with(&astats, &above, 8, L2).pack, PackChoice::Runs);
    }

    #[test]
    fn decisions_are_deterministic_for_equal_stats() {
        // The cache-safety property: equal (stats, plan, elem_bytes, L2)
        // inputs produce equal decisions, across calls and threads.
        let plans = [
            uniform_plan(100_000, 8),
            RunPlan::compile(Some(0), 123_456, &[1, 1, 5, 9]),
            RunPlan::compile(Some(3), 999, &[2, 11]),
            RunPlan::empty(),
        ];
        for plan in &plans {
            for eb in [1usize, 8, 32] {
                let stats = analyze_lines(plan, eb, ANALYZE_BOUND);
                let first = decide_with(&stats, plan, eb, L2);
                let again = decide_with(&stats.clone(), plan, eb, L2);
                assert_eq!(first, again);
                let from_thread = std::thread::scope(|s| {
                    s.spawn(|| decide_with(&stats, plan, eb, L2))
                        .join()
                        .unwrap()
                });
                assert_eq!(first, from_thread);
            }
        }
    }

    #[test]
    fn block_size_model() {
        // Resident payloads stay unblocked.
        assert_eq!(block_elems_for(1000, 8, L2), 0);
        // 2× payload crossing L2 triggers blocking at L2/4 per buffer.
        assert_eq!(block_elems_for(1 << 20, 8, L2), (L2 / 32) as usize);
        // The floor keeps tiny L2 overrides from shredding transfers.
        assert_eq!(block_elems_for(1 << 20, 8, 32 * 1024), 1024);
        // Wider elements get proportionally fewer per block.
        assert_eq!(block_elems_for(1 << 20, 32, L2), (L2 / 128) as usize);
    }

    #[test]
    fn labels_are_compact() {
        let d = DispatchDecision {
            pack: PackChoice::Runs,
            code_shape: CodeShapeChoice::RunLoop,
            block_elems: 0,
        };
        assert_eq!(d.label(), "runs");
        let b = DispatchDecision {
            pack: PackChoice::PerElement,
            code_shape: CodeShapeChoice::TwoTableLoop,
            block_elems: 4096,
        };
        assert_eq!(b.label(), "per-element+blk4096");
    }
}
