//! Regular sections `A(l : u : s)` in Fortran-90 triplet notation.
//!
//! The core algorithms work on the unbounded `(l, s)` form with `s > 0`
//! (the gap sequence does not depend on `u`, and the paper treats `s < 0`
//! "analogously" — Section 2). This module supplies the bounded, signed
//! user-facing form and the normalization onto the core form.

use crate::error::{BcagError, Result};

/// A bounded regular section `l : u : s` (both bounds inclusive, Fortran
/// style). `s` may be negative, in which case the section runs downward:
/// `l, l+s, l+2s, ...` while `>= u`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegularSection {
    /// First element of the traversal.
    pub l: i64,
    /// Inclusive bound: last index not beyond which the traversal runs.
    pub u: i64,
    /// Stride; nonzero, any sign.
    pub s: i64,
}

/// A section normalized to ascending order: elements
/// `{ lo, lo + step, ..., hi }` with `step > 0` and
/// `hi = lo + (count-1) * step`. Produced by [`RegularSection::normalized`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NormalizedSection {
    /// Smallest element.
    pub lo: i64,
    /// Largest element (== `lo` when `count == 1`).
    pub hi: i64,
    /// Positive stride.
    pub step: i64,
    /// Number of elements; zero for an empty section.
    pub count: i64,
    /// True when the original section traversed downward (`s < 0`); the
    /// ascending enumeration must be reversed to recover traversal order.
    pub reversed: bool,
}

impl RegularSection {
    /// Creates a section, validating `s != 0` and `l, u >= 0`.
    pub fn new(l: i64, u: i64, s: i64) -> Result<Self> {
        if s == 0 {
            return Err(BcagError::ZeroStride);
        }
        if l < 0 {
            return Err(BcagError::NegativeLowerBound { l });
        }
        if u < 0 {
            return Err(BcagError::NegativeLowerBound { l: u });
        }
        Ok(RegularSection { l, u, s })
    }

    /// Number of elements in the section.
    ///
    /// ```
    /// use bcag_core::section::RegularSection;
    /// assert_eq!(RegularSection::new(0, 31, 9).unwrap().count(), 4);
    /// assert_eq!(RegularSection::new(31, 0, -9).unwrap().count(), 4);
    /// assert_eq!(RegularSection::new(5, 4, 3).unwrap().count(), 0);
    /// ```
    pub fn count(&self) -> i64 {
        if self.s > 0 {
            if self.u < self.l {
                0
            } else {
                (self.u - self.l) / self.s + 1
            }
        } else if self.u > self.l {
            0
        } else {
            (self.l - self.u) / (-self.s) + 1
        }
    }

    /// True when the section contains no elements.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The `t`-th element of the traversal (0-based), if it exists.
    pub fn nth(&self, t: i64) -> Option<i64> {
        if t < 0 || t >= self.count() {
            None
        } else {
            Some(self.l + t * self.s)
        }
    }

    /// True when global index `i` is an element of the section.
    pub fn contains(&self, i: i64) -> bool {
        if self.s > 0 {
            i >= self.l && i <= self.u && (i - self.l) % self.s == 0
        } else {
            i <= self.l && i >= self.u && (self.l - i) % (-self.s) == 0
        }
    }

    /// Iterates the section elements in traversal order.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        let count = self.count();
        (0..count).map(move |t| self.l + t * self.s)
    }

    /// Normalizes to an ascending section with positive stride; the element
    /// *set* is preserved and `reversed` records the original direction
    /// (paper Section 2: "the case when s is negative can be treated
    /// analogously").
    pub fn normalized(&self) -> NormalizedSection {
        let count = self.count();
        if count == 0 {
            return NormalizedSection {
                lo: self.l,
                hi: self.l,
                step: self.s.abs(),
                count: 0,
                reversed: self.s < 0,
            };
        }
        let last = self.l + (count - 1) * self.s;
        if self.s > 0 {
            NormalizedSection {
                lo: self.l,
                hi: last,
                step: self.s,
                count,
                reversed: false,
            }
        } else {
            NormalizedSection {
                lo: last,
                hi: self.l,
                step: -self.s,
                count,
                reversed: true,
            }
        }
    }
}

impl NormalizedSection {
    /// Iterates the elements in ascending order.
    pub fn iter_ascending(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.count).map(move |t| self.lo + t * self.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(RegularSection::new(0, 10, 0).is_err());
        assert!(RegularSection::new(-1, 10, 1).is_err());
        assert!(RegularSection::new(0, -1, 1).is_err());
        assert!(RegularSection::new(0, 10, -3).is_ok());
    }

    #[test]
    fn counts_and_nth() {
        let sec = RegularSection::new(4, 301, 9).unwrap();
        assert_eq!(sec.count(), 34);
        assert_eq!(sec.nth(0), Some(4));
        assert_eq!(sec.nth(33), Some(301));
        assert_eq!(sec.nth(34), None);
        assert_eq!(sec.nth(-1), None);
    }

    #[test]
    fn contains_matches_iteration() {
        for &(l, u, s) in &[
            (0i64, 100i64, 7i64),
            (3, 90, 9),
            (90, 3, -9),
            (50, 50, 1),
            (10, 9, 3),
        ] {
            let sec = RegularSection::new(l, u, s).unwrap();
            let elems: Vec<i64> = sec.iter().collect();
            assert_eq!(elems.len() as i64, sec.count());
            for i in 0..=120 {
                assert_eq!(
                    sec.contains(i),
                    elems.contains(&i),
                    "l={l} u={u} s={s} i={i}"
                );
            }
        }
    }

    #[test]
    fn normalization_reverses_negative_stride() {
        let sec = RegularSection::new(100, 5, -7).unwrap();
        let n = sec.normalized();
        assert!(n.reversed);
        assert_eq!(n.step, 7);
        assert_eq!(n.count, sec.count());
        // Same element set, ascending.
        let mut forward: Vec<i64> = sec.iter().collect();
        forward.reverse();
        let asc: Vec<i64> = n.iter_ascending().collect();
        assert_eq!(forward, asc);
        assert_eq!(n.lo, *asc.first().unwrap());
        assert_eq!(n.hi, *asc.last().unwrap());
    }

    #[test]
    fn normalization_identity_for_positive() {
        let sec = RegularSection::new(4, 301, 9).unwrap();
        let n = sec.normalized();
        assert!(!n.reversed);
        assert_eq!((n.lo, n.hi, n.step, n.count), (4, 301, 9, 34));
    }

    #[test]
    fn empty_sections() {
        let sec = RegularSection::new(10, 9, 3).unwrap();
        assert!(sec.is_empty());
        assert_eq!(sec.normalized().count, 0);
        let sec = RegularSection::new(9, 10, -3).unwrap();
        assert!(sec.is_empty());
    }

    #[test]
    fn single_element_sections() {
        for s in [1i64, 5, -5] {
            let sec = RegularSection::new(7, 7, s).unwrap();
            assert_eq!(sec.count(), 1);
            assert_eq!(sec.iter().collect::<Vec<_>>(), vec![7]);
        }
    }
}
