//! Special-case fast paths for table construction.
//!
//! Section 6.1: *"Chatterjee et al. describe several special cases that can
//! be handled more efficiently ... the special cases could be detected in
//! our implementation in the same way as in theirs."* This module is that
//! detection layer: a classifier that recognizes the degenerate parameter
//! shapes and constructs their patterns directly — no extended Euclid, no
//! basis — falling back to the general lattice algorithm otherwise.
//!
//! Recognized cases:
//!
//! * **Dense** (`s = 1`): every element is touched; each processor's gaps
//!   are all 1 (local storage is contiguous per block and blocks abut).
//! * **IntraBlock** (`s < k` and `k mod s == 0`): the stride divides the
//!   block size (and hence `pk`), so the cycle is the constant gap `s`
//!   repeated `k/s` times — see `build_intra_block` for the derivation;
//!   Dense is its `s = 1` instance.
//! * **PeriodOnly** (`gcd(s, pk) >= k`): at most one offset class per
//!   processor — the length ≤ 1 case of Figure 5 lines 12–18, which the
//!   general path already constructs without basis work.
//!
//! The classifier is *sound*: whatever it returns is verified equal to the
//! lattice method by the test suite; anything not recognized returns
//! `General`.

use crate::error::Result;
use crate::layout::Layout;
use crate::method::{build, Method};
use crate::numth::gcd;
use crate::params::Problem;
use crate::pattern::{AccessPattern, CyclicPattern, Pattern};

/// Outcome of the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecialCase {
    /// `s = 1`: dense traversal.
    Dense,
    /// `s < k` and `k % s == 0`: constant-gap cycle.
    IntraBlock,
    /// `gcd(s, pk) >= k`: at most one class per processor.
    PeriodOnly,
    /// No fast path applies; use the general algorithm.
    General,
}

/// Classifies the problem's parameters.
pub fn classify(problem: &Problem) -> SpecialCase {
    let (s, k, pk) = (problem.s(), problem.k(), problem.row_len());
    if s == 1 {
        SpecialCase::Dense
    } else if gcd(s, pk) >= k {
        SpecialCase::PeriodOnly
    } else if s < k && k % s == 0 {
        SpecialCase::IntraBlock
    } else {
        SpecialCase::General
    }
}

/// Builds the pattern using a special-case constructor when one applies,
/// falling back to the lattice algorithm otherwise. Output is always
/// identical to [`crate::lattice_alg::build`].
///
/// ```
/// use bcag_core::{params::Problem, special::{build_fast, classify, SpecialCase}};
/// let pr = Problem::new(4, 8, 0, 2).unwrap();
/// assert_eq!(classify(&pr), SpecialCase::IntraBlock);
/// let pat = build_fast(&pr, 1).unwrap();
/// assert_eq!(pat.gaps(), &[2, 2, 2, 2]); // k/s uniform gaps
/// ```
pub fn build_fast(problem: &Problem, m: i64) -> Result<AccessPattern> {
    problem.check_proc(m)?;
    match classify(problem) {
        // Dense is the s = 1 instance of the intra-block constructor
        // (1 always divides k); the k = 1 corner degenerates to PeriodOnly
        // structure and goes through the general path.
        SpecialCase::Dense if problem.k() > 1 => Ok(build_intra_block(problem, m)),
        SpecialCase::IntraBlock => Ok(build_intra_block(problem, m)),
        // PeriodOnly still needs the start-location solver (one congruence),
        // which the general path already handles in O(1) table work.
        _ => build(problem, m, Method::Lattice),
    }
}

/// `s < k` and `s | k`: because `s` also divides `pk`, every access has the
/// same in-row offset residue `r = l mod s`, one global period is exactly
/// one course (`lcm(s, pk) = pk`), and each course contributes `k/s`
/// accesses to every processor at block offsets `r, r+s, ..., r+k−s`.
///
/// Consequently **every local gap is `s`** — including the course-to-course
/// hop, where the course advance (`+k` local) exactly cancels the offset
/// rewind (`−(k−s)`). Only the global steps distinguish the hop
/// (`pk − k + s` instead of `s`), and its position in the cycle is fixed by
/// the start location's block offset.
fn build_intra_block(problem: &Problem, m: i64) -> AccessPattern {
    let (s, k, pk, l) = (problem.s(), problem.k(), problem.row_len(), problem.l());
    debug_assert!(s < k && k % s == 0 && pk % s == 0);
    let lay = Layout::new(problem);
    // Start: first section element >= l owned by m. Offsets advance by s
    // and the window is k >= s wide, so at most one jump is needed.
    let mut g = l;
    if lay.owner(g) != m {
        let off = lay.in_row_offset(g);
        let target = if off < m * k { m * k } else { m * k + pk };
        g += (target - off + s - 1) / s * s;
        debug_assert_eq!(lay.owner(g), m);
    }
    let length = (k / s) as usize;
    let entry = lay.block_offset(g); // block offset of the start access
    let r = entry % s; // residue class of all accesses
                       // In-row successors of the start before the course hop:
    let within = ((r + k - s) - entry) / s;
    let gaps = vec![s; length];
    let mut global_steps = vec![s; length];
    global_steps[within as usize] = pk - k + s;
    let c = CyclicPattern {
        start_global: g,
        start_local: lay.local_addr(g),
        gaps,
        global_steps,
    };
    AccessPattern::from_parts(*problem, m, Pattern::Cyclic(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice_alg;

    #[test]
    fn classifier() {
        let pr = |s| Problem::new(4, 8, 0, s).unwrap();
        assert_eq!(classify(&pr(1)), SpecialCase::Dense);
        assert_eq!(classify(&pr(2)), SpecialCase::IntraBlock);
        assert_eq!(classify(&pr(4)), SpecialCase::IntraBlock);
        assert_eq!(classify(&pr(3)), SpecialCase::General); // 8 % 3 != 0
        assert_eq!(classify(&pr(16)), SpecialCase::PeriodOnly); // gcd 16 >= 8
        assert_eq!(classify(&pr(32)), SpecialCase::PeriodOnly);
        assert_eq!(classify(&pr(9)), SpecialCase::General);
    }

    #[test]
    fn fast_path_equals_lattice_everywhere() {
        for p in 1..=4i64 {
            for k in [1i64, 2, 4, 6, 8, 12] {
                for s in 1..=40i64 {
                    for l in [0i64, 3, 17] {
                        let pr = Problem::new(p, k, l, s).unwrap();
                        for m in 0..p {
                            let fast = build_fast(&pr, m).unwrap();
                            let slow = lattice_alg::build(&pr, m).unwrap();
                            assert_eq!(
                                fast,
                                slow,
                                "p={p} k={k} s={s} l={l} m={m} case={:?}",
                                classify(&pr)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dense_pattern_structure() {
        let pr = Problem::new(4, 8, 5, 1).unwrap();
        for m in 0..4 {
            let pat = build_fast(&pr, m).unwrap();
            assert_eq!(pat.gaps(), &[1; 8][..]);
            pat.check_invariants();
        }
    }

    #[test]
    fn intra_block_pattern_structure() {
        let pr = Problem::new(4, 8, 0, 2).unwrap();
        let pat = build_fast(&pr, 1).unwrap();
        assert_eq!(pat.len(), 4); // k/s accesses per block
        pat.check_invariants();
    }
}
