//! Processor grids.
//!
//! HPF's `PROCESSORS` directive declares a multidimensional arrangement of
//! abstract processors; each distributed array dimension maps onto one grid
//! dimension. Physical (linear) processor ranks are obtained by mixed-radix
//! linearization of grid coordinates.

use bcag_core::error::{BcagError, Result};

/// A rectangular grid of abstract processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorGrid {
    dims: Vec<i64>,
}

impl ProcessorGrid {
    /// Creates a grid; every extent must be `>= 1`.
    pub fn new(dims: Vec<i64>) -> Result<Self> {
        if dims.is_empty() {
            return Err(BcagError::Precondition(
                "processor grid needs >= 1 dimension",
            ));
        }
        for &d in &dims {
            if d < 1 {
                return Err(BcagError::InvalidProcessorCount { p: d });
            }
        }
        // Guard the total size.
        let mut total: i64 = 1;
        for &d in &dims {
            total = total.checked_mul(d).ok_or(BcagError::Overflow)?;
        }
        let _ = total;
        Ok(ProcessorGrid { dims })
    }

    /// A one-dimensional grid of `p` processors.
    pub fn linear(p: i64) -> Result<Self> {
        Self::new(vec![p])
    }

    /// Grid rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extent of grid dimension `d`.
    pub fn extent(&self, d: usize) -> i64 {
        self.dims[d]
    }

    /// Extents of all dimensions.
    pub fn extents(&self) -> &[i64] {
        &self.dims
    }

    /// Total number of processors.
    pub fn size(&self) -> i64 {
        self.dims.iter().product()
    }

    /// Linearizes grid coordinates to a rank in `[0, size)`.
    /// The **first** coordinate varies fastest (column-major, matching the
    /// Fortran heritage of HPF).
    pub fn linearize(&self, coords: &[i64]) -> Result<i64> {
        if coords.len() != self.dims.len() {
            return Err(BcagError::Precondition("coordinate rank mismatch"));
        }
        let mut rank = 0i64;
        let mut stride = 1i64;
        for (c, d) in coords.iter().zip(&self.dims) {
            if !(0..*d).contains(c) {
                return Err(BcagError::ProcessorOutOfRange { m: *c, p: *d });
            }
            rank += c * stride;
            stride *= d;
        }
        Ok(rank)
    }

    /// Inverse of [`ProcessorGrid::linearize`].
    pub fn delinearize(&self, rank: i64) -> Result<Vec<i64>> {
        if !(0..self.size()).contains(&rank) {
            return Err(BcagError::ProcessorOutOfRange {
                m: rank,
                p: self.size(),
            });
        }
        let mut coords = Vec::with_capacity(self.dims.len());
        let mut r = rank;
        for &d in &self.dims {
            coords.push(r % d);
            r /= d;
        }
        Ok(coords)
    }

    /// Iterates all grid coordinates in rank order.
    pub fn iter_coords(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        (0..self.size()).map(move |r| self.delinearize(r).expect("rank in range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_roundtrip() {
        let grid = ProcessorGrid::new(vec![3, 4, 2]).unwrap();
        assert_eq!(grid.size(), 24);
        for r in 0..24 {
            let c = grid.delinearize(r).unwrap();
            assert_eq!(grid.linearize(&c).unwrap(), r);
        }
    }

    #[test]
    fn first_coordinate_fastest() {
        let grid = ProcessorGrid::new(vec![3, 4]).unwrap();
        assert_eq!(grid.linearize(&[0, 0]).unwrap(), 0);
        assert_eq!(grid.linearize(&[1, 0]).unwrap(), 1);
        assert_eq!(grid.linearize(&[0, 1]).unwrap(), 3);
        assert_eq!(grid.linearize(&[2, 3]).unwrap(), 11);
    }

    #[test]
    fn bounds_checked() {
        let grid = ProcessorGrid::new(vec![3, 4]).unwrap();
        assert!(grid.linearize(&[3, 0]).is_err());
        assert!(grid.linearize(&[0, -1]).is_err());
        assert!(grid.linearize(&[0]).is_err());
        assert!(grid.delinearize(12).is_err());
        assert!(grid.delinearize(-1).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(ProcessorGrid::new(vec![]).is_err());
        assert!(ProcessorGrid::new(vec![0]).is_err());
        assert!(ProcessorGrid::linear(32).is_ok());
    }

    #[test]
    fn iter_coords_covers_grid() {
        let grid = ProcessorGrid::new(vec![2, 3]).unwrap();
        let all: Vec<Vec<i64>> = grid.iter_coords().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![1, 0]);
        assert_eq!(all[5], vec![1, 2]);
    }
}
