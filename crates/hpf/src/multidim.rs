//! Multidimensional arrays and sections.
//!
//! HPF alignments and distributions are independent per dimension, and a
//! multidimensional section in Fortran-90 triplet notation has independent
//! subscripts, so "the memory access problem simply reduces to multiple
//! applications of the algorithm for the one-dimensional case" (paper
//! Section 2). [`ArrayMap`] is that product construction: one
//! [`DimMap`] per dimension plus a [`ProcessorGrid`], with local storage
//! linearized **column-major** (first dimension fastest — Fortran order).

use bcag_core::error::{BcagError, Result};
use bcag_core::method::Method;
use bcag_core::section::RegularSection;

use crate::dimmap::DimMap;
use crate::grid::ProcessorGrid;

/// Mapping of a whole multidimensional array onto a processor grid.
#[derive(Debug, Clone)]
pub struct ArrayMap {
    dims: Vec<DimMap>,
    grid: ProcessorGrid,
}

impl ArrayMap {
    /// Builds the map; the processor grid is derived from the per-dimension
    /// effective processor counts (serial dimensions contribute extent 1).
    pub fn new(dims: Vec<DimMap>) -> Result<Self> {
        if dims.is_empty() {
            return Err(BcagError::Precondition("array needs >= 1 dimension"));
        }
        let grid = ProcessorGrid::new(dims.iter().map(|d| d.procs()).collect())?;
        Ok(ArrayMap { dims, grid })
    }

    /// Array rank.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension maps.
    pub fn dims(&self) -> &[DimMap] {
        &self.dims
    }

    /// The processor grid.
    pub fn grid(&self) -> &ProcessorGrid {
        &self.grid
    }

    /// Array extents.
    pub fn extents(&self) -> Vec<i64> {
        self.dims.iter().map(|d| d.extent()).collect()
    }

    /// Total number of array elements.
    pub fn size(&self) -> i64 {
        self.dims.iter().map(|d| d.extent()).product()
    }

    /// Grid coordinates of the processor owning `idx`.
    pub fn owner_coords(&self, idx: &[i64]) -> Result<Vec<i64>> {
        self.check_index(idx)?;
        Ok(idx
            .iter()
            .zip(&self.dims)
            .map(|(&i, d)| d.owner(i))
            .collect())
    }

    /// Linear rank of the owner of `idx`.
    pub fn owner_rank(&self, idx: &[i64]) -> Result<i64> {
        let coords = self.owner_coords(idx)?;
        self.grid.linearize(&coords)
    }

    /// Per-dimension local extents on the processor with grid coordinates
    /// `coords`.
    pub fn local_extents(&self, coords: &[i64]) -> Result<Vec<i64>> {
        if coords.len() != self.dims.len() {
            return Err(BcagError::Precondition("coordinate rank mismatch"));
        }
        coords
            .iter()
            .zip(&self.dims)
            .map(|(&c, d)| d.local_extent(c))
            .collect()
    }

    /// Number of array elements stored on the processor at `coords`.
    pub fn local_size(&self, coords: &[i64]) -> Result<i64> {
        Ok(self.local_extents(coords)?.iter().product())
    }

    /// Column-major local linear address of `idx` on its owning processor.
    pub fn local_linear(&self, idx: &[i64]) -> Result<i64> {
        self.check_index(idx)?;
        let coords = self.owner_coords(idx)?;
        let extents = self.local_extents(&coords)?;
        let mut addr = 0i64;
        let mut stride = 1i64;
        for ((&i, d), &ext) in idx.iter().zip(&self.dims).zip(&extents) {
            addr += d.local_index(i)? * stride;
            stride *= ext;
        }
        Ok(addr)
    }

    /// Enumerates, for the processor at `coords`, all owned elements of the
    /// multidimensional section, as `(global_index, local_linear)` pairs in
    /// column-major section order (first dimension fastest). Each dimension
    /// is solved independently with `method` and the results composed.
    pub fn section_accesses(
        &self,
        coords: &[i64],
        section: &[RegularSection],
        method: Method,
    ) -> Result<Vec<(Vec<i64>, i64)>> {
        let _sp = bcag_trace::span("hpf.section_accesses");
        if section.len() != self.dims.len() || coords.len() != self.dims.len() {
            return Err(BcagError::Precondition("section/coordinate rank mismatch"));
        }
        for sec in section {
            if sec.s <= 0 {
                return Err(BcagError::Precondition(
                    "section_accesses requires ascending triplets; normalize first",
                ));
            }
        }
        // One application of the 1-D algorithm per dimension.
        let mut per_dim: Vec<Vec<(i64, i64)>> = Vec::with_capacity(self.dims.len());
        for ((d, sec), &c) in self.dims.iter().zip(section).zip(coords) {
            per_dim.push(d.owned_accesses(c, sec.l, sec.u, sec.s, method)?);
        }
        if per_dim.iter().any(|v| v.is_empty()) {
            return Ok(vec![]);
        }
        let extents = self.local_extents(coords)?;
        let mut strides = Vec::with_capacity(extents.len());
        let mut stride = 1i64;
        for &e in &extents {
            strides.push(stride);
            stride *= e;
        }
        // Odometer over the per-dimension access lists, first dim fastest.
        let mut counters = vec![0usize; per_dim.len()];
        let total: usize = per_dim.iter().map(|v| v.len()).product();
        let mut out = Vec::with_capacity(total);
        for _ in 0..total {
            let mut idx = Vec::with_capacity(per_dim.len());
            let mut addr = 0i64;
            for (dn, &cnt) in counters.iter().enumerate() {
                let (g, packed) = per_dim[dn][cnt];
                idx.push(g);
                addr += packed * strides[dn];
            }
            out.push((idx, addr));
            // Advance the odometer.
            for (dn, cnt) in counters.iter_mut().enumerate() {
                *cnt += 1;
                if *cnt < per_dim[dn].len() {
                    break;
                }
                *cnt = 0;
            }
        }
        Ok(out)
    }

    fn check_index(&self, idx: &[i64]) -> Result<()> {
        if idx.len() != self.dims.len() {
            return Err(BcagError::Precondition("index rank mismatch"));
        }
        for (&i, d) in idx.iter().zip(&self.dims) {
            if !(0..d.extent()).contains(&i) {
                return Err(BcagError::Precondition("index out of bounds"));
            }
        }
        Ok(())
    }

    /// Iterates every global multi-index of the array (column-major).
    pub fn iter_indices(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        let extents = self.extents();
        let total = self.size();
        (0..total).map(move |mut r| {
            let mut idx = Vec::with_capacity(extents.len());
            for &e in &extents {
                idx.push(r % e);
                r /= e;
            }
            idx
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;

    fn map_2d() -> ArrayMap {
        // 12x10 array, dim 0 cyclic(2) over 2 procs, dim 1 cyclic(3) over 2.
        ArrayMap::new(vec![
            DimMap::simple(12, 2, Dist::CyclicK(2)).unwrap(),
            DimMap::simple(10, 2, Dist::CyclicK(3)).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn owner_is_product_of_dim_owners() {
        let map = map_2d();
        for idx in map.iter_indices() {
            let coords = map.owner_coords(&idx).unwrap();
            assert_eq!(coords[0], map.dims()[0].owner(idx[0]));
            assert_eq!(coords[1], map.dims()[1].owner(idx[1]));
        }
    }

    #[test]
    fn local_linear_is_bijective_per_processor() {
        let map = map_2d();
        use std::collections::HashMap;
        let mut seen: HashMap<(i64, i64), Vec<i64>> = HashMap::new();
        for idx in map.iter_indices() {
            let rank = map.owner_rank(&idx).unwrap();
            let addr = map.local_linear(&idx).unwrap();
            seen.entry((rank, addr)).or_default().push(0);
        }
        // No two elements share (processor, local address).
        assert!(seen.values().all(|v| v.len() == 1));
        // Every processor's address space is exactly [0, local_size).
        for coords in map.grid().iter_coords() {
            let rank = map.grid().linearize(&coords).unwrap();
            let size = map.local_size(&coords).unwrap();
            for a in 0..size {
                assert!(
                    seen.contains_key(&(rank, a)),
                    "hole at rank {rank} addr {a}"
                );
            }
        }
    }

    #[test]
    fn section_accesses_match_brute_force() {
        let map = map_2d();
        let section = vec![
            RegularSection::new(1, 11, 3).unwrap(),
            RegularSection::new(0, 9, 2).unwrap(),
        ];
        for coords in map.grid().iter_coords() {
            let got = map
                .section_accesses(&coords, &section, Method::Lattice)
                .unwrap();
            // Brute force: walk the section column-major, keep owned elems.
            let mut expect = Vec::new();
            for j in (0..=9).step_by(2) {
                for i in (1..=11).step_by(3) {
                    let idx = vec![i, j];
                    if map.owner_coords(&idx).unwrap() == coords {
                        let addr = map.local_linear(&idx).unwrap();
                        expect.push((idx, addr));
                    }
                }
            }
            assert_eq!(got, expect, "coords={coords:?}");
        }
    }

    #[test]
    fn three_dimensional_with_serial_dim() {
        let map = ArrayMap::new(vec![
            DimMap::simple(6, 2, Dist::CyclicK(2)).unwrap(),
            DimMap::simple(4, 1, Dist::Serial).unwrap(),
            DimMap::simple(6, 3, Dist::Cyclic).unwrap(),
        ])
        .unwrap();
        assert_eq!(map.grid().extents(), &[2, 1, 3]);
        let section = vec![
            RegularSection::new(0, 5, 2).unwrap(),
            RegularSection::new(1, 3, 1).unwrap(),
            RegularSection::new(0, 5, 3).unwrap(),
        ];
        let mut total = 0usize;
        for coords in map.grid().iter_coords() {
            let accesses = map
                .section_accesses(&coords, &section, Method::Lattice)
                .unwrap();
            for (idx, addr) in &accesses {
                assert_eq!(&map.owner_coords(idx).unwrap(), &coords);
                assert_eq!(map.local_linear(idx).unwrap(), *addr);
            }
            total += accesses.len();
        }
        // 3 * 3 * 2 section elements, each owned exactly once.
        assert_eq!(total, 18);
    }

    #[test]
    fn rank_mismatch_rejected() {
        let map = map_2d();
        assert!(map.owner_coords(&[1]).is_err());
        assert!(map.local_linear(&[1, 2, 3]).is_err());
        assert!(map
            .section_accesses(
                &[0, 0],
                &[RegularSection::new(0, 5, 1).unwrap()],
                Method::Lattice
            )
            .is_err());
    }

    #[test]
    fn descending_triplet_rejected() {
        let map = map_2d();
        let sec = vec![
            RegularSection::new(11, 1, -3).unwrap(),
            RegularSection::new(0, 9, 2).unwrap(),
        ];
        assert!(map
            .section_accesses(&[0, 0], &sec, Method::Lattice)
            .is_err());
    }
}
