//! Subscripts with multiple index variables — the other extension the
//! paper delegates to its companion ICS'95 work (Section 2: "subscripts
//! containing multiple index variables are described in our related
//! work").
//!
//! The shape handled here is a `forall` nest over index variables
//! `i₀, …, i_{D−1}` (each `0 .. extent_d`) accessing the one-dimensional
//! array element
//!
//! ```text
//! A(c + c₀·i₀ + c₁·i₁ + ... + c_{D−1}·i_{D−1})
//! ```
//!
//! For a fixed prefix `(i₀, …, i_{D−2})` the subscript is an ordinary
//! regular section in the innermost variable: lower bound
//! `c + Σ c_d·i_d`, stride `c_{D−1}` — one application of the core
//! algorithm per prefix. Patterns are cached per lower-bound **residue
//! modulo the access period**, because the transition structure depends
//! only on `(p, k, s)` (Section 2); across prefixes only the start state
//! moves, so the cache stays small even for large nests.

use bcag_core::error::{BcagError, Result};
use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::pattern::AccessPattern;
use bcag_core::start::last_location;
use bcag_core::Layout;

use crate::dimmap::DimMap;

/// One access of a multi-variable subscript nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultivarAccess {
    /// The values of the index variables.
    pub ivars: Vec<i64>,
    /// The array element's global index.
    pub global: i64,
    /// Its local address on the owning processor.
    pub local: i64,
}

/// Enumerates, for processor `m`, the owned accesses of
/// `A(c + Σ coefs[d]·i_d)` over the full nest `0 <= i_d < extents[d]`,
/// in loop-lexicographic order (last variable fastest).
///
/// Requirements: identity alignment on `dm`, positive coefficients, and
/// the subscript must stay inside the array for the extreme iteration.
pub fn multivar_accesses(
    dm: &DimMap,
    m: i64,
    c: i64,
    coefs: &[i64],
    extents: &[i64],
) -> Result<Vec<MultivarAccess>> {
    if coefs.is_empty() || coefs.len() != extents.len() {
        return Err(BcagError::Precondition("coefs/extents rank mismatch"));
    }
    if dm.alignment().a != 1 || dm.alignment().b != 0 {
        return Err(BcagError::Precondition(
            "multivar_accesses currently requires identity alignment",
        ));
    }
    for (&cf, &e) in coefs.iter().zip(extents) {
        if cf <= 0 {
            return Err(BcagError::Precondition("coefficients must be positive"));
        }
        if e < 0 {
            return Err(BcagError::Precondition("extents must be nonnegative"));
        }
    }
    if c < 0 {
        return Err(BcagError::Precondition("constant term must be nonnegative"));
    }
    let max_subscript = c + coefs
        .iter()
        .zip(extents)
        .map(|(&cf, &e)| cf * (e - 1).max(0))
        .sum::<i64>();
    if extents.contains(&0) {
        return Ok(vec![]);
    }
    if max_subscript >= dm.extent() {
        return Err(BcagError::Precondition("subscript leaves the array bounds"));
    }

    let inner_coef = *coefs.last().expect("nonempty");
    let inner_extent = *extents.last().expect("nonempty");
    let lay = Layout::from_raw(dm.procs(), dm.block_size());

    // Pattern cache keyed by the lower bound's residue modulo the access
    // period: patterns with equal residue are translates of each other by a
    // whole number of periods, with identical gaps and shifted start.
    let probe = Problem::new(dm.procs(), dm.block_size(), 0, inner_coef)?;
    let period = probe.period_global();
    let mut cache: std::collections::HashMap<i64, AccessPattern> = std::collections::HashMap::new();

    let mut out = Vec::new();
    let outer_rank = coefs.len() - 1;
    let mut prefix = vec![0i64; outer_rank];
    loop {
        // Lower bound for this prefix.
        let lo = c + coefs[..outer_rank]
            .iter()
            .zip(&prefix)
            .map(|(&cf, &i)| cf * i)
            .sum::<i64>();
        let hi = lo + inner_coef * (inner_extent - 1);
        let problem = Problem::new(dm.procs(), dm.block_size(), lo, inner_coef)?;
        let residue = lo % period;
        let pattern = match cache.get(&residue) {
            Some(p) => translate(p, &problem, lo - p.problem().l())?,
            None => {
                let p = build(&problem, m, Method::Lattice)?;
                cache.insert(residue, p.clone());
                p
            }
        };
        if let Some(last_g) = last_location(&problem, m, hi)? {
            for acc in pattern.iter() {
                if acc.global > last_g {
                    break;
                }
                let mut ivars = prefix.clone();
                ivars.push((acc.global - lo) / inner_coef);
                debug_assert_eq!(lay.owner(acc.global), m);
                out.push(MultivarAccess {
                    ivars,
                    global: acc.global,
                    local: acc.local,
                });
            }
        }
        // Advance the prefix odometer (last prefix variable fastest).
        if outer_rank == 0 {
            break;
        }
        let mut d = outer_rank;
        loop {
            d -= 1;
            prefix[d] += 1;
            if prefix[d] < extents[d] {
                break;
            }
            prefix[d] = 0;
            if d == 0 {
                return Ok(out);
            }
        }
    }
    Ok(out)
}

/// Shifts a cached pattern by a whole number of periods (same residue):
/// the gap cycle is reused verbatim; start positions translate linearly.
fn translate(cached: &AccessPattern, problem: &Problem, delta: i64) -> Result<AccessPattern> {
    use bcag_core::pattern::{CyclicPattern, Pattern};
    debug_assert_eq!(delta % problem.period_global().max(1), 0);
    let periods = delta / problem.period_global().max(1);
    match cached.pattern() {
        Pattern::Empty => Ok(AccessPattern::from_parts(
            *problem,
            cached.proc(),
            Pattern::Empty,
        )),
        Pattern::Cyclic(c) => Ok(AccessPattern::from_parts(
            *problem,
            cached.proc(),
            Pattern::Cyclic(CyclicPattern {
                start_global: c.start_global + periods * problem.period_global(),
                start_local: c.start_local + periods * problem.period_local(),
                gaps: c.gaps.clone(),
                global_steps: c.global_steps.clone(),
            }),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;

    fn brute(dm: &DimMap, m: i64, c: i64, coefs: &[i64], extents: &[i64]) -> Vec<MultivarAccess> {
        let mut out = Vec::new();
        let rank = coefs.len();
        let mut ivars = vec![0i64; rank];
        'outer: loop {
            let g = c + coefs
                .iter()
                .zip(&ivars)
                .map(|(&cf, &i)| cf * i)
                .sum::<i64>();
            if dm.owner(g) == m {
                out.push(MultivarAccess {
                    ivars: ivars.clone(),
                    global: g,
                    local: dm.local_index(g).unwrap(),
                });
            }
            let mut d = rank;
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                ivars[d] += 1;
                if ivars[d] < extents[d] {
                    break;
                }
                ivars[d] = 0;
            }
        }
        out
    }

    #[test]
    fn two_variable_nest_matches_brute_force() {
        let dm = DimMap::simple(400, 4, Dist::CyclicK(8)).unwrap();
        for (c, coefs, extents) in [
            (0i64, vec![20i64, 3i64], vec![10i64, 6i64]),
            (5, vec![7, 2], vec![12, 9]),
            (1, vec![13, 13], vec![5, 5]),
        ] {
            for m in 0..4 {
                let got = multivar_accesses(&dm, m, c, &coefs, &extents).unwrap();
                let expect = brute(&dm, m, c, &coefs, &extents);
                assert_eq!(got, expect, "m={m} c={c} coefs={coefs:?}");
            }
        }
    }

    #[test]
    fn three_variable_nest() {
        let dm = DimMap::simple(600, 3, Dist::CyclicK(5)).unwrap();
        let (c, coefs, extents) = (2i64, vec![100i64, 10i64, 1i64], vec![5i64, 8i64, 9i64]);
        for m in 0..3 {
            let got = multivar_accesses(&dm, m, c, &coefs, &extents).unwrap();
            let expect = brute(&dm, m, c, &coefs, &extents);
            assert_eq!(got, expect, "m={m}");
        }
    }

    #[test]
    fn single_variable_reduces_to_plain_section() {
        let dm = DimMap::simple(320, 4, Dist::CyclicK(8)).unwrap();
        let got = multivar_accesses(&dm, 1, 4, &[9], &[34]).unwrap();
        // A(4 + 9·t), t < 34 == A(4:301:9): the worked example.
        let locals: Vec<i64> = got.iter().map(|a| a.local).collect();
        assert_eq!(&locals[..4], &[5, 8, 20, 35]);
        assert_eq!(got.len(), 9);
    }

    #[test]
    fn validation_and_degenerate_cases() {
        let dm = DimMap::simple(100, 2, Dist::CyclicK(4)).unwrap();
        assert!(multivar_accesses(&dm, 0, 0, &[], &[]).is_err());
        assert!(multivar_accesses(&dm, 0, 0, &[1, 2], &[3]).is_err());
        assert!(multivar_accesses(&dm, 0, 0, &[0], &[5]).is_err());
        assert!(multivar_accesses(&dm, 0, 0, &[50], &[3]).is_err()); // exits array
        assert_eq!(
            multivar_accesses(&dm, 0, 0, &[1, 1], &[0, 5]).unwrap(),
            vec![]
        );
    }

    #[test]
    fn coupled_coefficients_cover_every_iteration_once() {
        // Each (i, j) is a distinct iteration even when subscripts collide;
        // the enumeration must list every owned iteration, including
        // aliased elements.
        let dm = DimMap::simple(60, 2, Dist::CyclicK(3)).unwrap();
        let coefs = vec![4i64, 4i64]; // i and j alias: 4i + 4j
        let extents = vec![6i64, 6i64];
        let mut total = 0usize;
        for m in 0..2 {
            let got = multivar_accesses(&dm, m, 0, &coefs, &extents).unwrap();
            let expect = brute(&dm, m, 0, &coefs, &extents);
            assert_eq!(got, expect, "m={m}");
            total += got.len();
        }
        assert_eq!(total, 36, "every iteration appears exactly once");
    }
}
