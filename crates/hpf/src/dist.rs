//! HPF distribution formats.
//!
//! HPF's `DISTRIBUTE` directive offers `BLOCK`, `CYCLIC` and `CYCLIC(K)`
//! per dimension (plus `*` for undistributed dimensions). The paper's
//! observation (Section 1): *block* and *cyclic* are both special cases of
//! `cyclic(k)` — `cyclic` is `cyclic(1)` and `block` is `cyclic(ceil(n/p))`
//! — so a single layout engine covers all three once `k` is resolved.

use bcag_core::error::{BcagError, Result};

/// A per-dimension distribution format, prior to resolving the block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// `BLOCK`: contiguous chunks of `ceil(n/p)` elements.
    Block,
    /// `CYCLIC`: round-robin single elements (`cyclic(1)`).
    Cyclic,
    /// `CYCLIC(K)`: round-robin blocks of `k` elements — the general form.
    CyclicK(i64),
    /// `*`: the dimension is not distributed (every processor holds all of
    /// it); equivalent to distributing over one processor.
    Serial,
}

impl Dist {
    /// Resolves the effective block size `k` for a template of extent `n`
    /// distributed over `p` processors.
    ///
    /// ```
    /// use bcag_hpf::dist::Dist;
    /// assert_eq!(Dist::Block.block_size(100, 4).unwrap(), 25);
    /// assert_eq!(Dist::Block.block_size(101, 4).unwrap(), 26);
    /// assert_eq!(Dist::Cyclic.block_size(100, 4).unwrap(), 1);
    /// assert_eq!(Dist::CyclicK(8).block_size(100, 4).unwrap(), 8);
    /// ```
    pub fn block_size(&self, n: i64, p: i64) -> Result<i64> {
        if p < 1 {
            return Err(BcagError::InvalidProcessorCount { p });
        }
        match *self {
            Dist::Block => {
                if n < 1 {
                    return Err(BcagError::EmptySection);
                }
                Ok((n + p - 1) / p)
            }
            Dist::Cyclic => Ok(1),
            Dist::CyclicK(k) => {
                if k < 1 {
                    Err(BcagError::InvalidBlockSize { k })
                } else {
                    Ok(k)
                }
            }
            Dist::Serial => {
                if n < 1 {
                    return Err(BcagError::EmptySection);
                }
                Ok(n) // one block spanning the whole dimension
            }
        }
    }

    /// The effective processor count along this dimension (`1` for serial
    /// dimensions, `p` otherwise).
    pub fn effective_procs(&self, p: i64) -> i64 {
        match self {
            Dist::Serial => 1,
            _ => p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcag_core::Layout;

    #[test]
    fn block_is_cyclic_ceil_n_over_p() {
        // The paper's equivalence: block == cyclic(ceil(n/p)). With
        // n = 100, p = 4 => k = 25, element i lives on processor i/25.
        let k = Dist::Block.block_size(100, 4).unwrap();
        let lay = Layout::from_raw(4, k);
        for i in 0..100 {
            assert_eq!(lay.owner(i), i / 25);
        }
    }

    #[test]
    fn cyclic_is_cyclic_1() {
        let k = Dist::Cyclic.block_size(77, 5).unwrap();
        let lay = Layout::from_raw(5, k);
        for i in 0..77 {
            assert_eq!(lay.owner(i), i % 5);
        }
    }

    #[test]
    fn serial_dimension_is_single_block() {
        let k = Dist::Serial.block_size(64, 8).unwrap();
        assert_eq!(k, 64);
        assert_eq!(Dist::Serial.effective_procs(8), 1);
        let lay = Layout::from_raw(1, k);
        for i in 0..64 {
            assert_eq!(lay.owner(i), 0);
            assert_eq!(lay.local_addr(i), i);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Dist::CyclicK(0).block_size(10, 2).is_err());
        assert!(Dist::Block.block_size(0, 2).is_err());
        assert!(Dist::Block.block_size(10, 0).is_err());
    }

    #[test]
    fn uneven_block_still_covers_all_elements() {
        // n = 10, p = 4 => k = 3: processors get 3,3,3,1 elements.
        let k = Dist::Block.block_size(10, 4).unwrap();
        assert_eq!(k, 3);
        let lay = Layout::from_raw(4, k);
        let counts: Vec<i64> = (0..4).map(|m| lay.local_len(10, m)).collect();
        assert_eq!(counts, vec![3, 3, 3, 1]);
    }
}
