//! Triangular / trapezoidal section access — the paper's future work.
//!
//! The second open problem named in the conclusions: sections whose inner
//! bounds depend on the outer index, as in the loop nest
//!
//! ```text
//! do i = lo, hi, si
//!     do j = jl(i), ju(i), sj        ! jl, ju affine in i
//! ```
//!
//! (lower/upper triangles, trapezoids, banded matrices). The key
//! observation from the paper makes this cheap: **the gap sequence is
//! independent of the upper bound `u`** (Section 2) — only the start and
//! the stopping point move. So one table construction per processor column
//! serves *every* row; per row only `start`/`last` locations are recomputed,
//! each `O(k)` ... and the row dimension itself is enumerated with its own
//! pattern. Total: `O((k₀ + rows·k₁))` table work instead of per-element
//! scanning.

use bcag_core::error::{BcagError, Result};
use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::pattern::AccessPattern;
use bcag_core::start::last_location;

use crate::multidim::ArrayMap;

/// Affine bound `a·i + b` evaluated per outer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineBound {
    /// Coefficient of the outer index.
    pub a: i64,
    /// Constant term.
    pub b: i64,
}

impl AffineBound {
    /// Constant bound.
    pub const fn constant(b: i64) -> AffineBound {
        AffineBound { a: 0, b }
    }

    /// The identity bound `i`.
    pub const fn outer() -> AffineBound {
        AffineBound { a: 1, b: 0 }
    }

    /// Evaluates at outer index `i`.
    pub fn at(&self, i: i64) -> i64 {
        self.a * i + self.b
    }
}

/// A two-dimensional triangular/trapezoidal region:
/// outer `i = lo : hi : si` (dimension 0), inner
/// `j = jl(i) : ju(i) : sj` (dimension 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trapezoid {
    /// Outer lower bound.
    pub lo: i64,
    /// Outer upper bound (inclusive).
    pub hi: i64,
    /// Outer stride (positive).
    pub si: i64,
    /// Inner lower bound as a function of the outer index.
    pub jl: AffineBound,
    /// Inner upper bound as a function of the outer index.
    pub ju: AffineBound,
    /// Inner stride (positive).
    pub sj: i64,
}

impl Trapezoid {
    /// The lower-left triangle of an `n × n` array: `j <= i`.
    pub fn lower_triangle(n: i64) -> Trapezoid {
        Trapezoid {
            lo: 0,
            hi: n - 1,
            si: 1,
            jl: AffineBound::constant(0),
            ju: AffineBound::outer(),
            sj: 1,
        }
    }

    /// The strict upper triangle of an `n × n` array: `j > i`.
    pub fn strict_upper_triangle(n: i64) -> Trapezoid {
        Trapezoid {
            lo: 0,
            hi: n - 1,
            si: 1,
            jl: AffineBound { a: 1, b: 1 },
            ju: AffineBound::constant(n - 1),
            sj: 1,
        }
    }

    /// Sequential row-by-row enumeration (the reference semantics).
    pub fn iter(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        let rows = move || {
            (0..)
                .map(move |t| self.lo + t * self.si)
                .take_while(move |&i| i <= self.hi)
        };
        rows().flat_map(move |i| {
            (0..)
                .map(move |t| self.jl.at(i) + t * self.sj)
                .take_while(move |&j| j <= self.ju.at(i))
                .map(move |j| (i, j))
        })
    }
}

/// Enumerates the trapezoid's elements owned by the processor at `coords`
/// on a 2-D array map, in row-major region order, as
/// `((i, j), local_linear)` pairs.
///
/// Implementation per the module docs: the inner dimension's gap table is
/// built **once** (it does not depend on the per-row bounds); each owned
/// row re-derives only its start/last pair.
pub fn trapezoid_accesses(
    map: &ArrayMap,
    coords: &[i64],
    region: &Trapezoid,
) -> Result<Vec<((i64, i64), i64)>> {
    if map.rank() != 2 || coords.len() != 2 {
        return Err(BcagError::Precondition(
            "trapezoid_accesses requires a 2-D map",
        ));
    }
    if region.si <= 0 || region.sj <= 0 {
        return Err(BcagError::Precondition(
            "trapezoid strides must be positive",
        ));
    }
    let d0 = &map.dims()[0];
    let d1 = &map.dims()[1];
    if d0.alignment().a != 1
        || d0.alignment().b != 0
        || d1.alignment().a != 1
        || d1.alignment().b != 0
    {
        return Err(BcagError::Precondition(
            "trapezoid_accesses currently requires identity alignment",
        ));
    }
    if region.lo < 0 || region.hi >= d0.extent() {
        return Err(BcagError::Precondition("outer bounds leave the array"));
    }

    // Outer dimension: one ordinary bounded section.
    let outer_problem = Problem::new(d0.procs(), d0.block_size(), region.lo, region.si)?;
    let outer = build(&outer_problem, coords[0], Method::Lattice)?;

    let extents = map.local_extents(coords)?;
    let stride1 = extents[0]; // column-major: dim-1 contributes ×(local extent of dim 0)

    // Inner dimension: per owned row, one O(k₁) table build bounded by the
    // row's own upper bound. (The transition structure is shared across
    // rows — Section 2: the table depends only on (p, k, s), the lower
    // bound only picks the start state — so a production runtime could
    // build it once and per-row recompute only start/last; we rebuild for
    // clarity, which keeps the row cost at O(k₁) either way.)
    let mut cache: std::collections::HashMap<i64, AccessPattern> = std::collections::HashMap::new();

    let mut out = Vec::new();
    for acc0 in outer.iter_to(region.hi) {
        let i = acc0.global;
        let local0 = acc0.local;
        let (jl, ju) = (region.jl.at(i), region.ju.at(i));
        if jl > ju {
            continue; // empty row of the trapezoid
        }
        if jl < 0 || ju >= d1.extent() {
            return Err(BcagError::Precondition("inner bounds leave the array"));
        }
        let inner_problem = Problem::new(d1.procs(), d1.block_size(), jl, region.sj)?;
        // Affine bounds revisit few distinct jl values modulo the period;
        // cache the pattern per exact lower bound.
        let row_pattern = match cache.get(&jl) {
            Some(p) => p.clone(),
            None => {
                let p = build(&inner_problem, coords[1], Method::Lattice)?;
                cache.insert(jl, p.clone());
                p
            }
        };
        let Some(last_j) = last_location(&inner_problem, coords[1], ju)? else {
            continue;
        };
        for acc1 in row_pattern.iter() {
            if acc1.global > last_j {
                break;
            }
            out.push(((i, acc1.global), local0 + acc1.local * stride1));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimmap::DimMap;
    use crate::dist::Dist;

    fn map_2d(n: i64) -> ArrayMap {
        ArrayMap::new(vec![
            DimMap::simple(n, 2, Dist::CyclicK(3)).unwrap(),
            DimMap::simple(n, 2, Dist::CyclicK(4)).unwrap(),
        ])
        .unwrap()
    }

    fn brute(map: &ArrayMap, coords: &[i64], region: &Trapezoid) -> Vec<((i64, i64), i64)> {
        region
            .iter()
            .filter_map(|(i, j)| {
                let idx = vec![i, j];
                if map.owner_coords(&idx).unwrap() == coords {
                    Some(((i, j), map.local_linear(&idx).unwrap()))
                } else {
                    None
                }
            })
            .collect()
    }

    #[test]
    fn lower_triangle_coverage() {
        let n = 24;
        let map = map_2d(n);
        let region = Trapezoid::lower_triangle(n);
        let mut total = 0usize;
        for coords in map.grid().iter_coords() {
            let got = trapezoid_accesses(&map, &coords, &region).unwrap();
            let expect = brute(&map, &coords, &region);
            assert_eq!(got, expect, "coords {coords:?}");
            total += got.len();
        }
        assert_eq!(total as i64, n * (n + 1) / 2);
    }

    #[test]
    fn strict_upper_triangle_coverage() {
        let n = 20;
        let map = map_2d(n);
        let region = Trapezoid::strict_upper_triangle(n);
        let mut total = 0usize;
        for coords in map.grid().iter_coords() {
            let got = trapezoid_accesses(&map, &coords, &region).unwrap();
            assert_eq!(got, brute(&map, &coords, &region));
            total += got.len();
        }
        assert_eq!(total as i64, n * (n - 1) / 2);
    }

    #[test]
    fn strided_banded_trapezoid() {
        let n = 40;
        let map = map_2d(n);
        // Band: j in [i, min(i+9, n-1)] with strides 2 (outer) and 3 (inner).
        let region = Trapezoid {
            lo: 1,
            hi: n - 11,
            si: 2,
            jl: AffineBound::outer(),
            ju: AffineBound { a: 1, b: 9 },
            sj: 3,
        };
        for coords in map.grid().iter_coords() {
            let got = trapezoid_accesses(&map, &coords, &region).unwrap();
            assert_eq!(got, brute(&map, &coords, &region), "coords {coords:?}");
        }
    }

    #[test]
    fn empty_rows_are_skipped() {
        let n = 16;
        let map = map_2d(n);
        // ju < jl everywhere: empty region.
        let region = Trapezoid {
            lo: 0,
            hi: n - 1,
            si: 1,
            jl: AffineBound::constant(5),
            ju: AffineBound::constant(4),
            sj: 1,
        };
        for coords in map.grid().iter_coords() {
            assert!(trapezoid_accesses(&map, &coords, &region)
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn validation() {
        let map = map_2d(10);
        let mut region = Trapezoid::lower_triangle(10);
        region.si = 0;
        assert!(trapezoid_accesses(&map, &[0, 0], &region).is_err());
        let region = Trapezoid::lower_triangle(11); // exceeds extent
        assert!(trapezoid_accesses(&map, &[0, 0], &region).is_err());
    }
}
