//! Diagonal (coupled-subscript) section access — the paper's future work.
//!
//! The conclusions name "compiling programs that access diagonal or
//! trapezoidal array sections" as an open problem, and the companion ICS'95
//! paper handles "coupled subscripts". A diagonal section couples all
//! subscripts to one index variable:
//!
//! ```text
//! A(l₀ + t·s₀, l₁ + t·s₁, ...)   for t = 0 .. count−1
//! ```
//!
//! Processor `(m₀, m₁, ...)` owns the `t`-th element iff it owns it in
//! *every* dimension. Per dimension, the owned `t`-values form a union of
//! at most `k_d` arithmetic progressions (one per owned offset class, step
//! `pk_d / d_d` — exactly the class structure the start-location loop of
//! Figure 5 exposes); the diagonal's owned set is the intersection of those
//! unions, computed in closed form with [`bcag_core::intersect`]. Cost:
//! `O(Π k_d)` progression pairs plus the output size — no per-element
//! scanning.

use bcag_core::error::{BcagError, Result};
use bcag_core::intersect::{intersect, Ap};
use bcag_core::params::Problem;
use bcag_core::start::first_cycle_locs;

use crate::multidim::ArrayMap;

/// One access of a diagonal section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagonalAccess {
    /// The index-variable value.
    pub t: i64,
    /// The global multi-index `lᵈ + t·sᵈ`.
    pub index: Vec<i64>,
    /// Column-major local linear address on the owning processor.
    pub local: i64,
}

/// Enumerates, for the processor at `coords`, the owned elements of the
/// diagonal section `A(starts[d] + t·strides[d])`, `0 <= t < count`, in
/// increasing `t` order.
///
/// Strides must be positive and every touched index must stay inside the
/// array (checked up front from the extreme `t` values).
pub fn diagonal_accesses(
    map: &ArrayMap,
    coords: &[i64],
    starts: &[i64],
    strides: &[i64],
    count: i64,
) -> Result<Vec<DiagonalAccess>> {
    let rank = map.rank();
    if starts.len() != rank || strides.len() != rank || coords.len() != rank {
        return Err(BcagError::Precondition("diagonal rank mismatch"));
    }
    if count < 0 {
        return Err(BcagError::Precondition(
            "diagonal count must be nonnegative",
        ));
    }
    for d in 0..rank {
        if strides[d] <= 0 {
            return Err(BcagError::Precondition("diagonal strides must be positive"));
        }
        if starts[d] < 0
            || (count > 0 && starts[d] + (count - 1) * strides[d] >= map.dims()[d].extent())
        {
            return Err(BcagError::Precondition("diagonal leaves the array bounds"));
        }
    }
    if count == 0 {
        return Ok(vec![]);
    }
    let t_max = count - 1;

    // Per-dimension owned t-sets as unions of APs.
    let mut current: Option<Vec<Ap>> = None;
    for d in 0..rank {
        let dm = &map.dims()[d];
        let align = dm.alignment();
        // Template-level problem for this dimension's diagonal subscript.
        let problem = Problem::new(
            dm.procs(),
            dm.block_size(),
            align.cell(starts[d]),
            align.a * strides[d],
        )?;
        let step = problem.period_elements();
        let aps: Vec<Ap> = first_cycle_locs(&problem, coords[d])?
            .into_iter()
            .map(|loc| Ap::new((loc - align.cell(starts[d])) / (align.a * strides[d]), step))
            .collect();
        current = Some(match current {
            None => aps,
            Some(prev) => {
                let mut merged = Vec::new();
                for a in &prev {
                    for b in &aps {
                        if let Some(c) = intersect(a, b) {
                            if c.first <= t_max {
                                merged.push(c);
                            }
                        }
                    }
                }
                merged
            }
        });
    }

    // Materialize, sort by t, map to indices and local addresses.
    let mut ts: Vec<i64> = current
        .expect("rank >= 1")
        .iter()
        .flat_map(|ap| ap.iter_to(t_max).collect::<Vec<_>>())
        .collect();
    ts.sort_unstable();
    ts.dedup(); // distinct class pairs cannot collide, but stay defensive
    ts.into_iter()
        .map(|t| {
            let index: Vec<i64> = (0..rank).map(|d| starts[d] + t * strides[d]).collect();
            debug_assert_eq!(&map.owner_coords(&index)?, coords);
            let local = map.local_linear(&index)?;
            Ok(DiagonalAccess { t, index, local })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimmap::DimMap;
    use crate::dist::Dist;
    use bcag_core::aligned::Alignment;

    fn brute(
        map: &ArrayMap,
        coords: &[i64],
        starts: &[i64],
        strides: &[i64],
        count: i64,
    ) -> Vec<DiagonalAccess> {
        (0..count)
            .filter_map(|t| {
                let index: Vec<i64> = starts
                    .iter()
                    .zip(strides)
                    .map(|(&l, &s)| l + t * s)
                    .collect();
                if map.owner_coords(&index).unwrap() == coords {
                    let local = map.local_linear(&index).unwrap();
                    Some(DiagonalAccess { t, index, local })
                } else {
                    None
                }
            })
            .collect()
    }

    #[test]
    fn main_diagonal_2d() {
        let map = ArrayMap::new(vec![
            DimMap::simple(48, 2, Dist::CyclicK(4)).unwrap(),
            DimMap::simple(48, 3, Dist::CyclicK(5)).unwrap(),
        ])
        .unwrap();
        let mut total = 0usize;
        for coords in map.grid().iter_coords() {
            let got = diagonal_accesses(&map, &coords, &[0, 0], &[1, 1], 48).unwrap();
            let expect = brute(&map, &coords, &[0, 0], &[1, 1], 48);
            assert_eq!(got, expect, "coords {coords:?}");
            total += got.len();
        }
        assert_eq!(total, 48, "every diagonal element owned exactly once");
    }

    #[test]
    fn strided_skew_diagonals() {
        let map = ArrayMap::new(vec![
            DimMap::simple(60, 2, Dist::CyclicK(3)).unwrap(),
            DimMap::simple(90, 2, Dist::CyclicK(4)).unwrap(),
        ])
        .unwrap();
        for (starts, strides, count) in [
            ([1i64, 2i64], [2i64, 3i64], 25i64),
            ([5, 0], [1, 4], 20),
            ([0, 1], [3, 2], 20),
        ] {
            for coords in map.grid().iter_coords() {
                let got = diagonal_accesses(&map, &coords, &starts, &strides, count).unwrap();
                let expect = brute(&map, &coords, &starts, &strides, count);
                assert_eq!(got, expect, "coords {coords:?} starts {starts:?}");
            }
        }
    }

    #[test]
    fn three_dimensional_diagonal() {
        let map = ArrayMap::new(vec![
            DimMap::simple(24, 2, Dist::CyclicK(2)).unwrap(),
            DimMap::simple(24, 1, Dist::Serial).unwrap(),
            DimMap::simple(24, 3, Dist::Cyclic).unwrap(),
        ])
        .unwrap();
        for coords in map.grid().iter_coords() {
            let got = diagonal_accesses(&map, &coords, &[0, 0, 0], &[1, 1, 1], 24).unwrap();
            let expect = brute(&map, &coords, &[0, 0, 0], &[1, 1, 1], 24);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn aligned_diagonal() {
        let map = ArrayMap::new(vec![
            DimMap::new(30, 2, Dist::CyclicK(4), Alignment::new(2, 1).unwrap()).unwrap(),
            DimMap::simple(30, 2, Dist::CyclicK(3)).unwrap(),
        ])
        .unwrap();
        for coords in map.grid().iter_coords() {
            let got = diagonal_accesses(&map, &coords, &[0, 1], &[1, 1], 29).unwrap();
            let expect = brute(&map, &coords, &[0, 1], &[1, 1], 29);
            assert_eq!(got, expect, "coords {coords:?}");
        }
    }

    #[test]
    fn validation() {
        let map = ArrayMap::new(vec![
            DimMap::simple(10, 2, Dist::CyclicK(2)).unwrap(),
            DimMap::simple(10, 2, Dist::CyclicK(2)).unwrap(),
        ])
        .unwrap();
        // Out of bounds.
        assert!(diagonal_accesses(&map, &[0, 0], &[0, 0], &[1, 1], 11).is_err());
        // Rank mismatch.
        assert!(diagonal_accesses(&map, &[0, 0], &[0], &[1, 1], 5).is_err());
        // Nonpositive stride.
        assert!(diagonal_accesses(&map, &[0, 0], &[0, 0], &[1, 0], 5).is_err());
        // Empty.
        assert_eq!(
            diagonal_accesses(&map, &[0, 0], &[0, 0], &[1, 1], 0).unwrap(),
            vec![]
        );
    }
}
