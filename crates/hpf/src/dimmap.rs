//! Per-dimension mapping: array dimension → template → processor dimension.
//!
//! One `DimMap` captures the full HPF mapping chain for a single array
//! dimension: the array extent, the affine alignment onto a template
//! dimension, and the distribution of that template dimension over a
//! processor-grid dimension. Because HPF alignments and distributions are
//! per-dimension and independent (paper Section 2), the multidimensional
//! machinery in [`crate::multidim`] is a plain product of `DimMap`s.

use bcag_core::aligned::{aligned_pattern, AlignedPattern, Alignment};
use bcag_core::error::Result;
use bcag_core::method::Method;
use bcag_core::params::Problem;
use bcag_core::start::count_owned;
use bcag_core::Layout;

use crate::dist::Dist;

/// Mapping of one array dimension onto one processor-grid dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimMap {
    /// Array extent `n` (valid indices `0..n`).
    n: i64,
    /// Effective processor count along this dimension.
    p: i64,
    /// Resolved block size of the template distribution.
    k: i64,
    /// Affine alignment of array indices to template cells.
    align: Alignment,
    /// Extent of the template dimension.
    template_extent: i64,
}

impl DimMap {
    /// Builds the mapping: resolves the distribution's block size against
    /// the template extent implied by the alignment
    /// (`align.cell(n-1) + 1` cells are needed).
    pub fn new(n: i64, p: i64, dist: Dist, align: Alignment) -> Result<Self> {
        let template_extent = align.cell(n - 1) + 1;
        let p_eff = dist.effective_procs(p);
        let k = dist.block_size(template_extent, p_eff)?;
        // Validate the (p, k) pair through the core constructor.
        let _ = Problem::new(p_eff, k, 0, 1)?;
        Ok(DimMap {
            n,
            p: p_eff,
            k,
            align,
            template_extent,
        })
    }

    /// Identity-aligned shorthand.
    pub fn simple(n: i64, p: i64, dist: Dist) -> Result<Self> {
        Self::new(n, p, dist, Alignment::IDENTITY)
    }

    /// Array extent.
    pub fn extent(&self) -> i64 {
        self.n
    }

    /// Effective processors along the dimension.
    pub fn procs(&self) -> i64 {
        self.p
    }

    /// Resolved block size.
    pub fn block_size(&self) -> i64 {
        self.k
    }

    /// The alignment in force.
    pub fn alignment(&self) -> Alignment {
        self.align
    }

    /// Extent of the template dimension.
    pub fn template_extent(&self) -> i64 {
        self.template_extent
    }

    fn layout(&self) -> Layout {
        Layout::from_raw(self.p, self.k)
    }

    /// The storage problem: template cells occupied by the array, as a
    /// regular section of the template (`b : ... : a`).
    fn storage_problem(&self) -> Result<Problem> {
        Problem::new(self.p, self.k, self.align.b, self.align.a)
    }

    /// Owning processor (grid coordinate along this dimension) of array
    /// index `i`.
    pub fn owner(&self, i: i64) -> i64 {
        self.layout().owner(self.align.cell(i))
    }

    /// Packed local index of array element `i` on its owner: the rank of
    /// its template cell among the owner's occupied cells. For identity
    /// alignment this equals the `cyclic(k)` local address.
    pub fn local_index(&self, i: i64) -> Result<i64> {
        let m = self.owner(i);
        Ok(count_owned(&self.storage_problem()?, m, self.align.cell(i))? - 1)
    }

    /// Number of array elements of this dimension stored on processor `m`
    /// (the local extent used for local linearization).
    pub fn local_extent(&self, m: i64) -> Result<i64> {
        if self.n == 0 {
            return Ok(0);
        }
        count_owned(&self.storage_problem()?, m, self.align.cell(self.n - 1))
    }

    /// The per-dimension access sequence for section `l : u : s` (ascending,
    /// `s > 0`) on processor `m`: the list of `(global_index, packed_local)`
    /// pairs, produced by the chosen core method.
    pub fn owned_accesses(
        &self,
        m: i64,
        l: i64,
        u: i64,
        s: i64,
        method: Method,
    ) -> Result<Vec<(i64, i64)>> {
        let alp: AlignedPattern = aligned_pattern(self.p, self.k, self.align, l, s, m, method)?;
        let Some(start_packed) = alp.start_packed else {
            return Ok(vec![]);
        };
        let u_eff = u.min(self.n - 1);
        let cell_bound = self.align.cell(u_eff);
        let mut out = Vec::new();
        let mut packed = start_packed;
        let a = self.align.a;
        let b = self.align.b;
        for (t, acc) in alp.template.iter_to(cell_bound).enumerate() {
            // Recover the array index from the template cell.
            debug_assert_eq!((acc.global - b) % a, 0);
            let i = (acc.global - b) / a;
            out.push((i, packed));
            packed += alp.packed_gaps[t % alp.packed_gaps.len()];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_block_mapping() {
        let dm = DimMap::simple(100, 4, Dist::Block).unwrap();
        assert_eq!(dm.block_size(), 25);
        for i in 0..100 {
            assert_eq!(dm.owner(i), i / 25);
            assert_eq!(dm.local_index(i).unwrap(), i % 25);
        }
        for m in 0..4 {
            assert_eq!(dm.local_extent(m).unwrap(), 25);
        }
    }

    #[test]
    fn identity_cyclic_k_mapping() {
        let dm = DimMap::simple(320, 4, Dist::CyclicK(8)).unwrap();
        assert_eq!(dm.owner(108), 1); // Figure 1
        assert_eq!(dm.local_index(108).unwrap(), 28);
        assert_eq!(dm.local_extent(0).unwrap(), 80);
    }

    #[test]
    fn serial_dimension() {
        let dm = DimMap::simple(64, 8, Dist::Serial).unwrap();
        assert_eq!(dm.procs(), 1);
        for i in 0..64 {
            assert_eq!(dm.owner(i), 0);
            assert_eq!(dm.local_index(i).unwrap(), i);
        }
        assert_eq!(dm.local_extent(0).unwrap(), 64);
    }

    #[test]
    fn aligned_mapping_packs_correctly() {
        // A(i) at template cell 2i+1, template cyclic(4) over 3 procs.
        let align = Alignment::new(2, 1).unwrap();
        let dm = DimMap::new(30, 3, Dist::CyclicK(4), align).unwrap();
        // Packed indices must be 0,1,2,... per processor in increasing i.
        let mut next_packed = [0i64; 3];
        for i in 0..30 {
            let m = dm.owner(i) as usize;
            assert_eq!(dm.local_index(i).unwrap(), next_packed[m], "i={i}");
            next_packed[m] += 1;
        }
        for m in 0..3 {
            assert_eq!(dm.local_extent(m).unwrap(), next_packed[m as usize]);
        }
    }

    #[test]
    fn owned_accesses_match_brute_force() {
        let dm = DimMap::simple(320, 4, Dist::CyclicK(8)).unwrap();
        for m in 0..4 {
            let got = dm.owned_accesses(m, 4, 310, 9, Method::Lattice).unwrap();
            let expect: Vec<(i64, i64)> = (0..)
                .map(|t| 4 + 9 * t)
                .take_while(|&i| i <= 310)
                .filter(|&i| dm.owner(i) == m)
                .map(|i| (i, dm.local_index(i).unwrap()))
                .collect();
            assert_eq!(got, expect, "m={m}");
        }
    }

    #[test]
    fn owned_accesses_with_alignment() {
        let align = Alignment::new(3, 2).unwrap();
        let dm = DimMap::new(60, 2, Dist::CyclicK(5), align).unwrap();
        for m in 0..2 {
            let got = dm.owned_accesses(m, 1, 55, 4, Method::Lattice).unwrap();
            let expect: Vec<(i64, i64)> = (0..)
                .map(|t| 1 + 4 * t)
                .take_while(|&i| i <= 55)
                .filter(|&i| dm.owner(i) == m)
                .map(|i| (i, dm.local_index(i).unwrap()))
                .collect();
            assert_eq!(got, expect, "m={m}");
        }
    }
}
