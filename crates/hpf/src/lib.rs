//! # bcag-hpf — HPF-style data-mapping substrate
//!
//! The paper targets High Performance Fortran's two-level data mapping:
//! arrays are *aligned* (affinely) to templates, and templates are
//! *distributed* (`block` / `cyclic` / `cyclic(k)`) over processor grids.
//! This crate supplies that substrate on top of the core address-generation
//! engine:
//!
//! * [`dist`] — distribution formats and their reduction to `cyclic(k)`;
//! * [`grid`] — multidimensional processor grids;
//! * [`dimmap`] — the full per-dimension mapping chain
//!   (array → template → processors) including packed local storage under
//!   affine alignment;
//! * [`multidim`] — multidimensional arrays and sections as products of
//!   independent one-dimensional problems (paper Section 2);
//! * [`parse`] — a parser for HPF-style `PROCESSORS` / `TEMPLATE` / `ALIGN`
//!   / `DISTRIBUTE` directives and section expressions;
//! * [`diagonal`] and [`triangular`] — the paper's named future work:
//!   coupled-subscript (diagonal) and trapezoidal section access;
//! * [`multivar`] — subscripts with multiple index variables
//!   (`A(c + Σ c_d·i_d)` over a forall nest), the companion ICS'95
//!   extension.
//!
//! ```
//! use bcag_hpf::{dist::Dist, dimmap::DimMap, multidim::ArrayMap};
//! use bcag_core::{section::RegularSection, method::Method};
//!
//! // REAL A(320); ALIGN A(i) WITH T(i); DISTRIBUTE T(CYCLIC(8)) ONTO P(4)
//! let map = ArrayMap::new(vec![DimMap::simple(320, 4, Dist::CyclicK(8)).unwrap()]).unwrap();
//! // A(4 : 301 : 9) on processor 1 — the paper's worked example.
//! let sec = vec![RegularSection::new(4, 301, 9).unwrap()];
//! let accesses = map.section_accesses(&[1], &sec, Method::Lattice).unwrap();
//! let locals: Vec<i64> = accesses.iter().map(|(_, a)| *a).collect();
//! assert_eq!(&locals[..4], &[5, 8, 20, 35]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diagonal;
pub mod dimmap;
pub mod dist;
pub mod grid;
pub mod multidim;
pub mod multivar;
pub mod parse;
pub mod scalapack;
pub mod triangular;

pub use dimmap::DimMap;
pub use dist::Dist;
pub use grid::ProcessorGrid;
pub use multidim::ArrayMap;
pub use parse::Program;
