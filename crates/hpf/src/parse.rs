//! Parser for a small HPF-style directive language.
//!
//! Enough of HPF's mapping sublanguage to express every configuration in
//! the paper, so examples and the CLI can be driven by the same text a
//! Fortran programmer would write:
//!
//! ```text
//! PROCESSORS P(4)
//! TEMPLATE T(320)
//! REAL A(320)
//! ALIGN A(i) WITH T(i)
//! DISTRIBUTE T(CYCLIC(8)) ONTO P
//! ```
//!
//! plus section expressions like `A(4:301:9)`. Restrictions versus full
//! HPF: alignments are per-dimension affine (`a*i + b`, no transposition),
//! distributions are `BLOCK`, `CYCLIC`, `CYCLIC(K)` or `*`, and every array
//! must be aligned to a declared template.

use std::collections::HashMap;
use std::fmt;

use bcag_core::aligned::Alignment;
use bcag_core::section::RegularSection;

use crate::dimmap::DimMap;
use crate::dist::Dist;
use crate::multidim::ArrayMap;

/// Parse/semantic error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// A parsed program: all declared entities and directives.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Processor arrangements by name.
    pub grids: HashMap<String, Vec<i64>>,
    /// Templates by name (per-dimension extents).
    pub templates: HashMap<String, Vec<i64>>,
    /// Arrays by name (per-dimension extents).
    pub arrays: HashMap<String, Vec<i64>>,
    /// Alignments: array name → (template name, per-dimension affine).
    pub aligns: HashMap<String, (String, Vec<Alignment>)>,
    /// Distributions: template name → (per-dimension format, grid name).
    pub dists: HashMap<String, (Vec<Dist>, String)>,
}

impl Program {
    /// Parses a whole program, one directive per line. Blank lines and
    /// `!`-comments are ignored; keywords are case-insensitive. The
    /// optional HPF sigil `!HPF$` at the start of a line is accepted.
    pub fn parse(src: &str) -> Result<Program, ParseError> {
        let _sp = bcag_trace::span("hpf.parse");
        let mut prog = Program::default();
        for (no, raw) in src.lines().enumerate() {
            let mut line = raw.trim();
            if let Some(rest) = line
                .strip_prefix("!HPF$")
                .or_else(|| line.strip_prefix("!hpf$"))
            {
                line = rest.trim();
            } else if line.starts_with('!') || line.is_empty() {
                continue;
            }
            prog.parse_line(line)
                .map_err(|e| ParseError(format!("line {}: {}", no + 1, e.0)))?;
        }
        Ok(prog)
    }

    fn parse_line(&mut self, line: &str) -> Result<(), ParseError> {
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("PROCESSORS ") {
            let (name, dims) = parse_name_and_ints(rest)?;
            self.grids.insert(name, dims);
        } else if let Some(rest) = upper.strip_prefix("TEMPLATE ") {
            let (name, dims) = parse_name_and_ints(rest)?;
            self.templates.insert(name, dims);
        } else if let Some(rest) = upper
            .strip_prefix("REAL ")
            .or_else(|| upper.strip_prefix("INTEGER "))
            .or_else(|| upper.strip_prefix("DIMENSION "))
        {
            let (name, dims) = parse_name_and_ints(rest)?;
            self.arrays.insert(name, dims);
        } else if upper.starts_with("ALIGN ") {
            self.parse_align(&upper)?;
        } else if upper.starts_with("DISTRIBUTE ") {
            self.parse_distribute(&upper)?;
        } else {
            return err(format!("unrecognized directive `{line}`"));
        }
        Ok(())
    }

    /// `ALIGN A(i) WITH T(2*i+1)` / `ALIGN A(i, j) WITH T(i, 3*j)`.
    fn parse_align(&mut self, upper: &str) -> Result<(), ParseError> {
        let rest = upper.strip_prefix("ALIGN ").expect("caller checked");
        let Some((lhs, rhs)) = rest.split_once(" WITH ") else {
            return err("ALIGN needs the form `ALIGN A(dummies) WITH T(exprs)`");
        };
        let (array, dummies) = parse_call(lhs.trim())?;
        let (template, exprs) = parse_call(rhs.trim())?;
        if dummies.len() != exprs.len() {
            return err("ALIGN rank mismatch between array and template");
        }
        let mut aligns = Vec::with_capacity(exprs.len());
        for (dim, (dummy, expr)) in dummies.iter().zip(&exprs).enumerate() {
            let dummy = dummy.trim();
            if dummy.is_empty() || !dummy.chars().all(|c| c.is_ascii_alphabetic()) {
                return err(format!("ALIGN dummy `{dummy}` must be an identifier"));
            }
            let (a, b) = parse_affine(expr.trim(), dummy)
                .map_err(|e| ParseError(format!("dimension {}: {}", dim + 1, e.0)))?;
            let alignment = Alignment::new(a, b)
                .map_err(|e| ParseError(format!("dimension {}: {e}", dim + 1)))?;
            aligns.push(alignment);
        }
        self.aligns.insert(array, (template, aligns));
        Ok(())
    }

    /// `DISTRIBUTE T(CYCLIC(8)) ONTO P` / `DISTRIBUTE T(BLOCK, *) ONTO P`.
    fn parse_distribute(&mut self, upper: &str) -> Result<(), ParseError> {
        let rest = upper.strip_prefix("DISTRIBUTE ").expect("caller checked");
        let Some((lhs, grid)) = rest.split_once(" ONTO ") else {
            return err("DISTRIBUTE needs the form `DISTRIBUTE T(formats) ONTO P`");
        };
        let (template, formats) = parse_call(lhs.trim())?;
        let mut dists = Vec::with_capacity(formats.len());
        for f in &formats {
            let f = f.trim();
            let dist = if f == "BLOCK" {
                Dist::Block
            } else if f == "CYCLIC" {
                Dist::Cyclic
            } else if f == "*" {
                Dist::Serial
            } else if let Some(k) = f.strip_prefix("CYCLIC(").and_then(|x| x.strip_suffix(')')) {
                let k: i64 = k
                    .trim()
                    .parse()
                    .map_err(|_| ParseError(format!("bad CYCLIC block size `{k}`")))?;
                Dist::CyclicK(k)
            } else {
                return err(format!("unknown distribution format `{f}`"));
            };
            dists.push(dist);
        }
        self.dists
            .insert(template, (dists, grid.trim().to_string()));
        Ok(())
    }

    /// Resolves an array's full mapping chain into an [`ArrayMap`].
    pub fn array_map(&self, array: &str) -> Result<ArrayMap, ParseError> {
        let array = array.to_ascii_uppercase();
        let Some(extents) = self.arrays.get(&array) else {
            return err(format!("array `{array}` not declared"));
        };
        let Some((template, aligns)) = self.aligns.get(&array) else {
            return err(format!("array `{array}` has no ALIGN directive"));
        };
        let Some(t_extents) = self.templates.get(template) else {
            return err(format!("template `{template}` not declared"));
        };
        let Some((dists, grid)) = self.dists.get(template) else {
            return err(format!("template `{template}` has no DISTRIBUTE directive"));
        };
        let Some(grid_dims) = self.grids.get(grid) else {
            return err(format!("processor arrangement `{grid}` not declared"));
        };
        if extents.len() != aligns.len()
            || t_extents.len() != dists.len()
            || extents.len() != t_extents.len()
        {
            return err("rank mismatch across array/template/distribution");
        }
        // Grid dims are consumed by the distributed (non-serial) template
        // dimensions, in order.
        let distributed: Vec<usize> = dists
            .iter()
            .enumerate()
            .filter(|(_, d)| !matches!(d, Dist::Serial))
            .map(|(i, _)| i)
            .collect();
        if distributed.len() != grid_dims.len() {
            return err(format!(
                "template `{template}` has {} distributed dimensions but grid `{grid}` has rank {}",
                distributed.len(),
                grid_dims.len()
            ));
        }
        let mut per_dim_p = vec![1i64; dists.len()];
        for (gslot, &tdim) in distributed.iter().enumerate() {
            per_dim_p[tdim] = grid_dims[gslot];
        }
        // Check the alignment image fits the template.
        let mut dims = Vec::with_capacity(extents.len());
        for d in 0..extents.len() {
            let image_max = aligns[d].cell(extents[d] - 1);
            if image_max >= t_extents[d] {
                return err(format!(
                    "alignment image of dimension {} exceeds template extent ({} >= {})",
                    d + 1,
                    image_max,
                    t_extents[d]
                ));
            }
            let dm = DimMap::new(extents[d], per_dim_p[d], dists[d], aligns[d])
                .map_err(|e| ParseError(e.to_string()))?;
            dims.push(dm);
        }
        ArrayMap::new(dims).map_err(|e| ParseError(e.to_string()))
    }

    /// Parses a section expression `A(4:301:9, 0:9:2)`; returns the array
    /// name and the per-dimension triplets. Supports `l:u` (stride 1),
    /// plain `i` (degenerate `i:i`) and negative strides.
    pub fn parse_section(expr: &str) -> Result<(String, Vec<RegularSection>), ParseError> {
        let (name, parts) = parse_call(expr.trim().to_ascii_uppercase().as_str())?;
        let mut triplets = Vec::with_capacity(parts.len());
        for part in &parts {
            let fields: Vec<&str> = part.split(':').map(str::trim).collect();
            let sec = match fields.as_slice() {
                [one] => {
                    let i = parse_i64(one)?;
                    RegularSection::new(i, i, 1)
                }
                [l, u] => RegularSection::new(parse_i64(l)?, parse_i64(u)?, 1),
                [l, u, s] => RegularSection::new(parse_i64(l)?, parse_i64(u)?, parse_i64(s)?),
                _ => return err(format!("bad triplet `{part}`")),
            }
            .map_err(|e| ParseError(e.to_string()))?;
            triplets.push(sec);
        }
        Ok((name, triplets))
    }
}

/// Parses `NAME(INT, INT, ...)`.
fn parse_name_and_ints(s: &str) -> Result<(String, Vec<i64>), ParseError> {
    let (name, parts) = parse_call(s.trim())?;
    let ints = parts
        .iter()
        .map(|p| parse_i64(p.trim()))
        .collect::<Result<Vec<_>, _>>()?;
    if ints.is_empty() {
        return err(format!("`{name}` needs at least one extent"));
    }
    Ok((name, ints))
}

/// Splits `NAME(arg, arg, ...)` into the name and raw argument strings.
fn parse_call(s: &str) -> Result<(String, Vec<String>), ParseError> {
    let Some(open) = s.find('(') else {
        return err(format!("expected `NAME(...)`, got `{s}`"));
    };
    if !s.ends_with(')') {
        return err(format!("missing closing parenthesis in `{s}`"));
    }
    let name = s[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return err(format!("bad name `{name}`"));
    }
    let inner = &s[open + 1..s.len() - 1];
    let parts = inner.split(',').map(|p| p.trim().to_string()).collect();
    Ok((name.to_string(), parts))
}

fn parse_i64(s: &str) -> Result<i64, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("expected an integer, got `{s}`")))
}

/// Parses an affine expression in `dummy`: `i`, `3*i`, `i+2`, `2*i-1`,
/// `5` (constant ⇒ `a = 0`, rejected later by `Alignment`).
fn parse_affine(expr: &str, dummy: &str) -> Result<(i64, i64), ParseError> {
    let compact: String = expr.chars().filter(|c| !c.is_whitespace()).collect();
    let dummy = dummy.to_ascii_uppercase();
    // Split an optional trailing "+c" / "-c" (scan from the end, past the
    // dummy, so "2*I-1" splits at the last sign).
    let (head, b) = match compact.rfind(['+', '-']) {
        Some(pos) if pos > 0 && compact[..pos].contains(&dummy) => {
            let b: i64 = compact[pos..]
                .parse()
                .map_err(|_| ParseError(format!("bad affine constant in `{expr}`")))?;
            (&compact[..pos], b)
        }
        _ => (compact.as_str(), 0),
    };
    let a = if head == dummy {
        1
    } else if let Some(coef) = head.strip_suffix(&format!("*{dummy}")) {
        parse_i64(coef)?
    } else if let Some(coef) = head.strip_prefix(&format!("{dummy}*")) {
        parse_i64(coef)?
    } else {
        return err(format!("expression `{expr}` is not affine in `{dummy}`"));
    };
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcag_core::method::Method;

    const PAPER_PROGRAM: &str = "
        ! The paper's running configuration.
        PROCESSORS P(4)
        TEMPLATE T(320)
        REAL A(320)
        !HPF$ ALIGN A(i) WITH T(i)
        !HPF$ DISTRIBUTE T(CYCLIC(8)) ONTO P
    ";

    #[test]
    fn parses_the_paper_configuration() {
        let prog = Program::parse(PAPER_PROGRAM).unwrap();
        let map = prog.array_map("A").unwrap();
        assert_eq!(map.rank(), 1);
        assert_eq!(map.grid().size(), 4);
        assert_eq!(map.dims()[0].block_size(), 8);
        // Element 108: processor 1, local 28 (Figure 1).
        assert_eq!(map.owner_rank(&[108]).unwrap(), 1);
        assert_eq!(map.local_linear(&[108]).unwrap(), 28);
    }

    #[test]
    fn parses_sections() {
        let (name, secs) = Program::parse_section("A(4:301:9)").unwrap();
        assert_eq!(name, "A");
        assert_eq!(secs.len(), 1);
        assert_eq!((secs[0].l, secs[0].u, secs[0].s), (4, 301, 9));

        let (_, secs) = Program::parse_section("B(0:9, 5, 10:0:-2)").unwrap();
        assert_eq!((secs[0].l, secs[0].u, secs[0].s), (0, 9, 1));
        assert_eq!((secs[1].l, secs[1].u, secs[1].s), (5, 5, 1));
        assert_eq!((secs[2].l, secs[2].u, secs[2].s), (10, 0, -2));
    }

    #[test]
    fn end_to_end_section_enumeration() {
        let prog = Program::parse(PAPER_PROGRAM).unwrap();
        let map = prog.array_map("A").unwrap();
        let (_, secs) = Program::parse_section("A(4:301:9)").unwrap();
        let accesses = map.section_accesses(&[1], &secs, Method::Lattice).unwrap();
        let locals: Vec<i64> = accesses.iter().map(|(_, a)| *a).collect();
        assert_eq!(locals, vec![5, 8, 20, 35, 47, 50, 62, 65, 77]);
    }

    #[test]
    fn affine_alignment_forms() {
        assert_eq!(parse_affine("I", "I").unwrap(), (1, 0));
        assert_eq!(parse_affine("2*I", "I").unwrap(), (2, 0));
        assert_eq!(parse_affine("I*2", "I").unwrap(), (2, 0));
        assert_eq!(parse_affine("I+3", "I").unwrap(), (1, 3));
        assert_eq!(parse_affine("2*I+1", "I").unwrap(), (2, 1));
        assert_eq!(parse_affine("3 * I - 2", "I").unwrap(), (3, -2));
        assert!(parse_affine("I*I", "I").is_err());
        assert!(parse_affine("J+1", "I").is_err());
    }

    #[test]
    fn aligned_program() {
        let prog = Program::parse(
            "PROCESSORS Q(3)
             TEMPLATE T(100)
             REAL B(30)
             ALIGN B(j) WITH T(2*j+1)
             DISTRIBUTE T(CYCLIC(4)) ONTO Q",
        )
        .unwrap();
        let map = prog.array_map("B").unwrap();
        // B(5) sits at template cell 11: owner = (11 mod 12) / 4 = 2.
        assert_eq!(map.owner_rank(&[5]).unwrap(), 2);
    }

    #[test]
    fn multidimensional_program() {
        let prog = Program::parse(
            "PROCESSORS GRID(2, 2)
             TEMPLATE T(48, 48)
             REAL A(48, 48)
             ALIGN A(i, j) WITH T(i, j)
             DISTRIBUTE T(CYCLIC(4), CYCLIC(4)) ONTO GRID",
        )
        .unwrap();
        let map = prog.array_map("A").unwrap();
        assert_eq!(map.grid().extents(), &[2, 2]);
        assert_eq!(map.local_size(&[0, 0]).unwrap(), 24 * 24);
    }

    #[test]
    fn serial_dimension_consumes_no_grid_slot() {
        let prog = Program::parse(
            "PROCESSORS P(4)
             TEMPLATE T(64, 16)
             REAL A(64, 16)
             ALIGN A(i, j) WITH T(i, j)
             DISTRIBUTE T(BLOCK, *) ONTO P",
        )
        .unwrap();
        let map = prog.array_map("A").unwrap();
        assert_eq!(map.grid().extents(), &[4, 1]);
        assert_eq!(map.dims()[0].block_size(), 16);
        assert_eq!(map.dims()[1].procs(), 1);
    }

    #[test]
    fn error_paths() {
        assert!(Program::parse("NONSENSE X(3)").is_err());
        let prog = Program::parse("PROCESSORS P(4)").unwrap();
        assert!(prog.array_map("A").is_err());
        // Missing ALIGN.
        let prog = Program::parse(
            "PROCESSORS P(2)
             TEMPLATE T(10)
             REAL A(10)
             DISTRIBUTE T(BLOCK) ONTO P",
        )
        .unwrap();
        assert!(prog.array_map("A").is_err());
        // Alignment image exceeding the template.
        let prog = Program::parse(
            "PROCESSORS P(2)
             TEMPLATE T(10)
             REAL A(10)
             ALIGN A(i) WITH T(2*i)
             DISTRIBUTE T(BLOCK) ONTO P",
        )
        .unwrap();
        assert!(prog.array_map("A").is_err());
        // Grid rank mismatch.
        let prog = Program::parse(
            "PROCESSORS P(2, 2)
             TEMPLATE T(10)
             REAL A(10)
             ALIGN A(i) WITH T(i)
             DISTRIBUTE T(BLOCK) ONTO P",
        )
        .unwrap();
        assert!(prog.array_map("A").is_err());
    }

    #[test]
    fn case_insensitive_and_comments() {
        let prog = Program::parse(
            "! a comment
             processors p(4)

             template t(320)
             real a(320)
             align a(I) with t(I)
             distribute t(cyclic(8)) onto p",
        )
        .unwrap();
        assert!(prog.array_map("a").is_ok());
        assert!(prog.array_map("A").is_ok());
    }
}
