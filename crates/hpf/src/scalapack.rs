//! ScaLAPACK array-descriptor interoperability.
//!
//! The paper's introduction cites Dongarra, van de Geijn and Walker's
//! *block-scattered* decomposition — the layout ScaLAPACK standardized as
//! the 9-element `DESC` integer array (type 1): `[dtype, ctxt, m, n, mb,
//! nb, rsrc, csrc, lld]`. This module converts between those descriptors
//! and this library's [`ArrayMap`], so access sequences can be generated
//! for matrices laid out by (or destined for) ScaLAPACK routines.
//!
//! Restrictions of the bridge: identity alignment, `rsrc = csrc = 0` (no
//! rotated starting processor), and `lld` equal to the tight local leading
//! dimension.

use bcag_core::error::{BcagError, Result};

use crate::dimmap::DimMap;
use crate::dist::Dist;
use crate::multidim::ArrayMap;

/// The descriptor type tag for dense block-cyclic matrices.
pub const DTYPE_DENSE: i64 = 1;

/// A ScaLAPACK type-1 array descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Desc {
    /// Descriptor type (`1` for dense).
    pub dtype: i64,
    /// BLACS context handle (carried, not interpreted; encodes the grid as
    /// `nprow * 10_000 + npcol` in this simulation).
    pub ctxt: i64,
    /// Global rows.
    pub m: i64,
    /// Global columns.
    pub n: i64,
    /// Row block size.
    pub mb: i64,
    /// Column block size.
    pub nb: i64,
    /// First processor row holding the matrix (must be 0 here).
    pub rsrc: i64,
    /// First processor column holding the matrix (must be 0 here).
    pub csrc: i64,
    /// Local leading dimension on this process.
    pub lld: i64,
}

impl Desc {
    /// As the raw 9-integer array ScaLAPACK routines take.
    pub fn to_array(&self) -> [i64; 9] {
        [
            self.dtype, self.ctxt, self.m, self.n, self.mb, self.nb, self.rsrc, self.csrc, self.lld,
        ]
    }

    /// From the raw 9-integer array.
    pub fn from_array(a: &[i64; 9]) -> Desc {
        Desc {
            dtype: a[0],
            ctxt: a[1],
            m: a[2],
            n: a[3],
            mb: a[4],
            nb: a[5],
            rsrc: a[6],
            csrc: a[7],
            lld: a[8],
        }
    }

    /// Grid shape encoded in the simulated context handle.
    pub fn grid_shape(&self) -> (i64, i64) {
        (self.ctxt / 10_000, self.ctxt % 10_000)
    }
}

/// Builds the descriptor for a matrix mapped by `map` (rank-2, identity
/// alignment), as seen by the process at grid coordinates `(prow, pcol)`.
pub fn desc_from_map(map: &ArrayMap, prow: i64, pcol: i64) -> Result<Desc> {
    if map.rank() != 2 {
        return Err(BcagError::Precondition("ScaLAPACK descriptors are rank-2"));
    }
    for d in map.dims() {
        if d.alignment().a != 1 || d.alignment().b != 0 {
            return Err(BcagError::Precondition(
                "ScaLAPACK bridge requires identity alignment",
            ));
        }
    }
    let rows = &map.dims()[0];
    let cols = &map.dims()[1];
    let lld = rows.local_extent(prow)?.max(1);
    let _ = pcol; // lld depends only on the process row for column-major storage
    Ok(Desc {
        dtype: DTYPE_DENSE,
        ctxt: rows.procs() * 10_000 + cols.procs(),
        m: rows.extent(),
        n: cols.extent(),
        mb: rows.block_size(),
        nb: cols.block_size(),
        rsrc: 0,
        csrc: 0,
        lld,
    })
}

/// Reconstructs an [`ArrayMap`] from a descriptor.
pub fn map_from_desc(desc: &Desc) -> Result<ArrayMap> {
    if desc.dtype != DTYPE_DENSE {
        return Err(BcagError::Precondition(
            "only dtype=1 descriptors are supported",
        ));
    }
    if desc.rsrc != 0 || desc.csrc != 0 {
        return Err(BcagError::Precondition(
            "rsrc/csrc must be 0 in this bridge",
        ));
    }
    let (nprow, npcol) = desc.grid_shape();
    ArrayMap::new(vec![
        DimMap::simple(desc.m, nprow, Dist::CyclicK(desc.mb))?,
        DimMap::simple(desc.n, npcol, Dist::CyclicK(desc.nb))?,
    ])
}

/// ScaLAPACK's `NUMROC` (number of rows or columns): how many of `n`
/// indices distributed `cyclic(nb)` over `nprocs` land on `iproc`.
/// Provided both for compatibility and as an independent cross-check of
/// the layout arithmetic.
pub fn numroc(n: i64, nb: i64, iproc: i64, nprocs: i64) -> i64 {
    let nblocks = n / nb;
    let mut count = nblocks / nprocs * nb;
    let extra_blocks = nblocks % nprocs;
    use std::cmp::Ordering;
    match iproc.cmp(&extra_blocks) {
        Ordering::Less => count += nb,
        Ordering::Equal => count += n % nb,
        Ordering::Greater => {}
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcag_core::Layout;

    #[test]
    fn descriptor_roundtrip() {
        let map = ArrayMap::new(vec![
            DimMap::simple(100, 2, Dist::CyclicK(8)).unwrap(),
            DimMap::simple(64, 3, Dist::CyclicK(4)).unwrap(),
        ])
        .unwrap();
        let desc = desc_from_map(&map, 0, 0).unwrap();
        assert_eq!(desc.to_array(), [1, 20_003, 100, 64, 8, 4, 0, 0, 52]);
        let back = map_from_desc(&desc).unwrap();
        assert_eq!(back.extents(), vec![100, 64]);
        assert_eq!(back.dims()[0].block_size(), 8);
        assert_eq!(back.dims()[1].procs(), 3);
        // Ownership agrees everywhere.
        for i in (0..100).step_by(7) {
            for j in (0..64).step_by(5) {
                assert_eq!(
                    map.owner_coords(&[i, j]).unwrap(),
                    back.owner_coords(&[i, j]).unwrap()
                );
            }
        }
    }

    #[test]
    fn lld_is_local_row_extent() {
        let map = ArrayMap::new(vec![
            DimMap::simple(100, 2, Dist::CyclicK(8)).unwrap(),
            DimMap::simple(64, 3, Dist::CyclicK(4)).unwrap(),
        ])
        .unwrap();
        // 100 rows cyclic(8) over 2: proc row 0 gets 52, row 1 gets 48.
        assert_eq!(desc_from_map(&map, 0, 0).unwrap().lld, 52);
        assert_eq!(desc_from_map(&map, 1, 0).unwrap().lld, 48);
    }

    #[test]
    fn numroc_matches_layout() {
        for n in [1i64, 7, 64, 100, 321] {
            for nb in [1i64, 2, 5, 8] {
                for nprocs in [1i64, 2, 3, 4] {
                    let lay = Layout::from_raw(nprocs, nb);
                    for iproc in 0..nprocs {
                        assert_eq!(
                            numroc(n, nb, iproc, nprocs),
                            lay.local_len(n, iproc),
                            "n={n} nb={nb} iproc={iproc} nprocs={nprocs}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_unsupported_descriptors() {
        let mut raw = [1i64, 20_002, 10, 10, 2, 2, 0, 0, 5];
        raw[0] = 2; // wrong dtype
        assert!(map_from_desc(&Desc::from_array(&raw)).is_err());
        raw[0] = 1;
        raw[6] = 1; // rsrc != 0
        assert!(map_from_desc(&Desc::from_array(&raw)).is_err());
    }
}
