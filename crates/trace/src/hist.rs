//! HDR-style latency/size histograms: power-of-two buckets subdivided
//! into linear sub-buckets, giving bounded relative error with a small,
//! lazily-grown table and an exact bucket-wise merge.
//!
//! Values below [`SUB_BUCKETS`] land in exact unit-width buckets. Above
//! that, each power-of-two range `[2^m, 2^(m+1))` splits into
//! [`SUB_BUCKETS`] equal sub-buckets, so any recorded value is bucketed
//! within a factor of `1/SUB_BUCKETS` (~3.1%) of its true magnitude.
//! Percentile queries return the *upper bound* of the bucket holding the
//! target rank (and exactly `max()` at the top), which keeps
//! `percentile(q)` monotone in `q`; [`Histogram::percentile_bounds`]
//! exposes the full bucket interval when the error bound matters.
//!
//! Merging adds bucket counts index-by-index, so merge is associative and
//! commutative and `Trace::merged` composes per-process histograms into
//! exactly the histogram a single-process run would have recorded.

/// log2 of the number of linear sub-buckets per power-of-two range.
pub const SUB_BITS: u32 = 5;
/// Number of linear sub-buckets per power-of-two range (32): the maximum
/// relative bucketing error is `1/SUB_BUCKETS` ≈ 3.1%.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Returns the bucket index for a value. Values `< SUB_BUCKETS` map to
/// exact unit buckets; larger values map into the linear sub-bucket of
/// their power-of-two range.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let block = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) - SUB_BUCKETS) as usize;
    (block << SUB_BITS) + sub
}

/// Returns the inclusive `[lo, hi]` value range covered by a bucket index.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    let block = index >> SUB_BITS;
    let sub = (index & (SUB_BUCKETS as usize - 1)) as u64;
    if block == 0 {
        return (sub, sub);
    }
    let shift = (block - 1) as u32;
    let lo = (SUB_BUCKETS + sub) << shift;
    let hi = lo + ((1u64 << shift) - 1);
    (lo, hi)
}

/// A fixed-error histogram of `u64` samples (typically nanoseconds or
/// bytes). Zero-dependency and allocation-light: the bucket table grows
/// lazily to the highest index actually recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.max = self.max.max(v);
    }

    /// Adds another histogram's buckets into this one (exact: merging
    /// per-process histograms equals recording all samples in one).
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, n) in other.counts.iter().enumerate() {
            self.counts[i] += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Value at quantile `q` in `[0, 100]`: the upper bound of the bucket
    /// containing the target rank, except the top of the distribution
    /// where the exact `max()` is returned. Monotone in `q`. Returns 0 on
    /// an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        match self.rank_bucket(q) {
            None => 0,
            Some((idx, is_last)) => {
                if is_last {
                    self.max
                } else {
                    bucket_bounds(idx).1
                }
            }
        }
    }

    /// The `[lo, hi]` bucket interval containing quantile `q`: the true
    /// sample value at that rank lies within these bounds. Returns
    /// `(0, 0)` on an empty histogram.
    pub fn percentile_bounds(&self, q: f64) -> (u64, u64) {
        match self.rank_bucket(q) {
            None => (0, 0),
            Some((idx, _)) => bucket_bounds(idx),
        }
    }

    /// Finds the bucket holding the rank for quantile `q`; returns
    /// `(index, is_last_nonempty)`.
    fn rank_bucket(&self, q: f64) -> Option<(usize, bool)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        let mut last = 0usize;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            last = i;
            if cum >= rank {
                // Is this the last non-empty bucket?
                let is_last = self.counts[i + 1..].iter().all(|&m| m == 0);
                return Some((i, is_last));
            }
        }
        Some((last, true))
    }

    /// Iterates the non-empty buckets as `(index, count)` pairs in
    /// ascending index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    /// Rebuilds a histogram from serialized parts: `(index, count)` bucket
    /// pairs plus the exact `sum` and `max` that bucketing discards.
    pub fn from_parts(buckets: &[(usize, u64)], sum: u64, max: u64) -> Self {
        let mut h = Histogram::new();
        for &(idx, n) in buckets {
            if n == 0 {
                continue;
            }
            if idx >= h.counts.len() {
                h.counts.resize(idx + 1, 0);
            }
            h.counts[idx] += n;
            h.count += n;
        }
        h.sum = sum;
        h.max = max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS {
            let idx = bucket_index(v);
            assert_eq!(bucket_bounds(idx), (v, v), "v={v}");
        }
    }

    #[test]
    fn bounds_contain_value_and_tile_the_axis() {
        let mut expected_lo = 0u64;
        for idx in 0..bucket_index(1 << 20) {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "idx={idx}");
            assert!(hi >= lo);
            expected_lo = hi + 1;
        }
        for v in [0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "v={v} not in [{lo},{hi}]");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 12_345, 1 << 30, (1 << 40) + 12_345] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let err = (hi - lo) as f64 / lo as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "v={v} err={err}");
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.percentile(100.0), 1000);
        let p50 = h.percentile(50.0);
        assert!((470..=540).contains(&p50), "p50={p50}");
        let (lo, hi) = h.percentile_bounds(50.0);
        assert!(lo <= 500 && 500 <= hi + hi / 16, "bounds ({lo},{hi})");
        // Monotone in q.
        let mut prev = 0;
        for q in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(q);
            assert!(v >= prev, "q={q}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..500u64 {
            let v = i * i % 7919;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn parts_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 31, 32, 1000, 123_456_789] {
            h.record(v);
        }
        let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_parts(&buckets, h.sum(), h.max());
        assert_eq!(back, h);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.percentile_bounds(50.0), (0, 0));
        assert_eq!(h.mean(), 0);
        assert!(h.is_empty());
    }
}
