//! # bcag-trace — zero-dependency tracing and metrics
//!
//! The paper's contribution is a *cost* claim — `O(k + min(log s, log p))`
//! table construction, and node programs whose communication volume and
//! load balance drive the `cyclic(k)` trade-off. This crate records where
//! that time and traffic actually go inside a run, so perf work has a
//! shared measurement vocabulary instead of end-to-end wall clocks only.
//!
//! Model:
//!
//! * **Spans** — [`span`] returns an RAII guard; the enclosed region is
//!   timed with a monotonic [`Instant`] and recorded as a complete event
//!   (name, start, duration, nesting depth) on the current thread's lane.
//! * **Counters** — [`count`] adds to a named per-lane counter. The
//!   instrumented stack uses a fixed vocabulary (`basis_steps`,
//!   `table_entries`, `gcd_iters`, `solver_steps`, `messages_sent`,
//!   `elements_moved`, `elements_nonlocal`, `bytes_packed`,
//!   `elements_packed`, `recv_wait_ns`, `barrier_wait_ns`,
//!   `schedule_cache_hits`, `schedule_cache_misses`,
//!   `pool_buffer_reuses`); see
//!   `docs/ALGORITHM.md` for what each one measures.
//! * **Lanes** — events and counters are collected per thread. The SPMD
//!   machine runs one thread per simulated node and labels each lane
//!   `node-<m>`, so a collected [`Trace`] contains per-node timelines,
//!   mirroring the paper's per-processor timing discipline.
//! * **On/off switch** — tracing is globally disabled by default. Every
//!   recording primitive first reads one relaxed [`AtomicBool`]; when
//!   disabled nothing else runs, so instrumented hot paths stay within
//!   noise of uninstrumented builds (asserted by
//!   `bcag-core/tests/trace_overhead.rs`).
//!
//! Collection is generation-checked: [`start`] clears the sink and bumps a
//! generation counter; guards that straddle a [`stop`] are discarded
//! rather than polluting the next session. [`capture`] wraps the whole
//! cycle and also serializes concurrent sessions in one process (the
//! switch and sink are process-global).
//!
//! * **Histograms** — [`record`] adds a sample to a named per-lane
//!   [`Histogram`] (HDR-style: power-of-two buckets with linear
//!   sub-buckets, ~3.1% bucket error); [`timed_span`] is the RAII form
//!   that records the guarded scope's duration in nanoseconds without
//!   producing a timeline event. Histograms merge exactly, so
//!   [`Trace::merged`] composes per-process distributions just like
//!   counters.
//! * **Gauges** — [`gauge`] samples an instantaneous value (queue depth,
//!   cache occupancy) with a timestamp; the Chrome export renders them as
//!   counter tracks over time.
//!
//! Export lives in [`export`]: a `bcag-trace/v2` summary (counter totals,
//! histogram percentiles, per-lane aggregates, max-over-nodes critical
//! path), the Chrome Trace Event format loadable by `chrome://tracing` /
//! Perfetto, and a Prometheus-style text exposition writer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod hist;

pub use hist::Histogram;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Vec<Arc<Mutex<LaneData>>>> = Mutex::new(Vec::new());
static ANON_LANES: AtomicU64 = AtomicU64::new(0);
static TAGS: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

/// Nanoseconds since the process-wide trace epoch (first use).
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One completed span on a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span name (static so the record path never allocates for names).
    pub name: &'static str,
    /// Start time, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at open time (0 = top-level on its lane).
    pub depth: u32,
}

/// One timestamped gauge sample on a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Gauge name.
    pub name: &'static str,
    /// Sample time, nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Instantaneous value at that time.
    pub value: u64,
}

/// Mutable per-thread collection state.
struct LaneData {
    label: String,
    depth: u32,
    events: Vec<Event>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    samples: Vec<Sample>,
}

thread_local! {
    /// This thread's lane for the current generation, if registered.
    static LANE: RefCell<Option<(u64, Arc<Mutex<LaneData>>)>> = const { RefCell::new(None) };
}

/// Runs `f` on this thread's lane for the current generation, registering
/// a fresh lane with the global sink on first use. Only called from paths
/// already gated on [`enabled`], so disabled runs never touch the TLS.
fn with_lane<R>(f: impl FnOnce(&mut LaneData) -> R) -> R {
    let gen = GENERATION.load(Ordering::Acquire);
    LANE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let stale = !matches!(&*slot, Some((g, _)) if *g == gen);
        if stale {
            let label = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| {
                    format!("thread-{}", ANON_LANES.fetch_add(1, Ordering::Relaxed))
                });
            let lane = Arc::new(Mutex::new(LaneData {
                label,
                depth: 0,
                events: Vec::new(),
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
                samples: Vec::new(),
            }));
            lock_clean(&REGISTRY).push(lane.clone());
            *slot = Some((gen, lane));
        }
        let (_, lane) = slot.as_ref().expect("lane registered above");
        let result = f(&mut lock_clean(lane));
        result
    })
}

/// Locks ignoring poisoning: a panicking instrumented test must not take
/// down every later tracing session in the process.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether tracing is currently recording. The recording primitives check
/// this themselves; instrumentation only needs it to skip *setup* work
/// (formatting a lane label, timing a wait) that would otherwise run on
/// the disabled path.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a recording session: clears the sink and enables tracing.
pub fn start() {
    let mut reg = lock_clean(&REGISTRY);
    reg.clear();
    lock_clean(&TAGS).clear();
    GENERATION.fetch_add(1, Ordering::Release);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Attaches a session-level tag (e.g. `transport = shm`) to the trace
/// being recorded. Tags describe run configuration rather than events;
/// they land in the `bcag-trace/v1` summary. Setting a key again replaces
/// its value. No-op while tracing is disabled.
pub fn set_tag(key: &str, value: &str) {
    if !enabled() {
        return;
    }
    let mut tags = lock_clean(&TAGS);
    if let Some(slot) = tags.iter_mut().find(|(k, _)| k == key) {
        slot.1 = value.to_string();
    } else {
        tags.push((key.to_string(), value.to_string()));
    }
}

/// Stops recording and returns everything collected since [`start`].
/// Lanes are sorted by label (numeric-aware, so `node-2` < `node-10`).
pub fn stop() -> Trace {
    ENABLED.store(false, Ordering::SeqCst);
    GENERATION.fetch_add(1, Ordering::Release);
    let tags = std::mem::take(&mut *lock_clean(&TAGS));
    let handles = std::mem::take(&mut *lock_clean(&REGISTRY));
    let mut lanes: Vec<Lane> = handles
        .into_iter()
        .map(|h| {
            let mut d = lock_clean(&h);
            Lane {
                label: std::mem::take(&mut d.label),
                events: std::mem::take(&mut d.events),
                counters: std::mem::take(&mut d.counters),
                histograms: std::mem::take(&mut d.histograms),
                samples: std::mem::take(&mut d.samples),
            }
        })
        .collect();
    lanes.sort_by(|a, b| natural_key(&a.label).cmp(&natural_key(&b.label)));
    Trace { lanes, tags }
}

/// Interns a string as `&'static str`. Span and counter names are static
/// in the record path; deserialization ([`export::from_json`]) has only
/// owned strings, so it leaks each *distinct* name once through this
/// registry. The set of span/counter names in the instrumented stack is a
/// small fixed vocabulary, so the leak is bounded.
pub fn intern(name: &str) -> &'static str {
    static INTERNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut set = lock_clean(&INTERNED);
    if let Some(s) = set.iter().find(|s| **s == name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    set.push(leaked);
    leaked
}

/// Splits a label into (text, number) runs so lane sorting treats embedded
/// integers numerically.
fn natural_key(s: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut text = String::new();
    let mut rest = s;
    while !rest.is_empty() {
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            let c = rest.chars().next().expect("nonempty");
            text.push(c);
            rest = &rest[c.len_utf8()..];
        } else {
            out.push((
                std::mem::take(&mut text),
                digits.parse().unwrap_or(u64::MAX),
            ));
            rest = &rest[digits.len()..];
        }
    }
    if !text.is_empty() {
        out.push((text, 0));
    }
    out
}

/// Serialization for whole sessions: [`capture`] holds this so two
/// concurrent captures (e.g. parallel tests in one binary) cannot
/// interleave on the process-global switch.
fn session_lock() -> MutexGuard<'static, ()> {
    static SESSION: Mutex<()> = Mutex::new(());
    lock_clean(&SESSION)
}

/// Runs `f` with tracing enabled and returns what it recorded, serializing
/// against other concurrent captures in this process.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Trace) {
    let _guard = session_lock();
    start();
    let result = f();
    (result, stop())
}

/// Relabels the current thread's lane (the SPMD machine labels node
/// threads `node-<m>`). No-op while tracing is disabled.
pub fn set_lane_label(label: &str) {
    if !enabled() {
        return;
    }
    with_lane(|l| l.label = label.to_string());
}

/// Adds `delta` to the named counter on the current thread's lane.
/// A disabled call is one relaxed atomic load.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_lane(|l| *l.counters.entry(name).or_insert(0) += delta);
}

/// Adds `delta` to a counter on the lane currently labeled `label` (used
/// by the machine to credit each node's `barrier_wait_ns` after the join,
/// when only the launcher knows the maximum). Unknown labels are ignored.
pub fn count_on_lane(label: &str, name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    for lane in lock_clean(&REGISTRY).iter() {
        let mut d = lock_clean(lane);
        if d.label == label {
            *d.counters.entry(name).or_insert(0) += delta;
            return;
        }
    }
}

/// Records one sample into the named histogram on the current thread's
/// lane. A disabled call is one relaxed atomic load.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_lane(|l| l.histograms.entry(name).or_default().record(value));
}

/// Records a sample into a histogram on the lane currently labeled
/// `label` (the histogram analogue of [`count_on_lane`]: the machine
/// credits each node's barrier wait after the join, when only the
/// launcher knows the maximum). Unknown labels are ignored.
pub fn record_on_lane(label: &str, name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    for lane in lock_clean(&REGISTRY).iter() {
        let mut d = lock_clean(lane);
        if d.label == label {
            d.histograms.entry(name).or_default().record(value);
            return;
        }
    }
}

/// Merges a locally-built [`Histogram`] into the named histogram on the
/// current thread's lane (bulk form of [`record`]: analyses that build a
/// distribution off to the side fold it in with one call). A disabled
/// call is one relaxed atomic load.
#[inline]
pub fn record_hist(name: &'static str, h: &Histogram) {
    if !enabled() || h.is_empty() {
        return;
    }
    with_lane(|l| l.histograms.entry(name).or_default().merge(h));
}

/// Samples an instantaneous gauge value (queue depth, cache occupancy)
/// on the current thread's lane. A disabled call is one relaxed atomic
/// load.
#[inline]
pub fn gauge(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let t_ns = now_ns();
    with_lane(|l| l.samples.push(Sample { name, t_ns, value }));
}

/// [`gauge`] for names built at runtime (per-shard occupancy gauges like
/// `schedule_cache_shard3_entries`): interns the name once, then samples
/// like any static gauge. A disabled call returns before formatting-time
/// costs matter to the caller, but the caller should still gate any
/// `format!` behind [`enabled`].
#[inline]
pub fn gauge_dyn(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    gauge(intern(name), value);
}

/// The current in-session total of a counter across all registered lanes
/// (0 while disabled). Lets always-on diagnostics (the flight recorder)
/// read live deltas without waiting for [`stop`].
pub fn counter_now(name: &str) -> u64 {
    if !enabled() {
        return 0;
    }
    lock_clean(&REGISTRY)
        .iter()
        .map(|lane| lock_clean(lane).counters.get(name).copied().unwrap_or(0))
        .sum()
}

/// RAII guard returned by [`timed_span`]; records the elapsed nanoseconds
/// into a histogram on drop (no timeline event).
#[must_use = "a timed_span measures the scope holding the guard"]
pub struct TimedSpan {
    open: Option<(&'static str, u64, Instant)>,
}

/// Times the guarded scope and records its duration (ns) into the named
/// histogram when the guard drops. Cheaper than [`span`] on hot paths
/// that only need the distribution, not the timeline. Disabled calls are
/// one relaxed atomic load; guards straddling a [`stop`] are discarded.
#[inline]
pub fn timed_span(name: &'static str) -> TimedSpan {
    if !enabled() {
        return TimedSpan { open: None };
    }
    let gen = GENERATION.load(Ordering::Acquire);
    TimedSpan {
        open: Some((name, gen, Instant::now())),
    }
}

impl Drop for TimedSpan {
    fn drop(&mut self) {
        let Some((name, gen, t0)) = self.open.take() else {
            return;
        };
        if GENERATION.load(Ordering::Acquire) != gen || !enabled() {
            return;
        }
        let ns = t0.elapsed().as_nanos() as u64;
        with_lane(|l| l.histograms.entry(name).or_default().record(ns));
    }
}

/// RAII span guard returned by [`span`]; records a complete event on drop.
#[must_use = "a span measures the scope holding the guard"]
pub struct Span {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    gen: u64,
    start_ns: u64,
    depth: u32,
}

/// Opens a span on the current thread's lane. When tracing is disabled
/// this is one relaxed atomic load and a `None` guard.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { open: None };
    }
    let gen = GENERATION.load(Ordering::Acquire);
    let depth = with_lane(|l| {
        let d = l.depth;
        l.depth += 1;
        d
    });
    Span {
        open: Some(OpenSpan {
            name,
            gen,
            start_ns: now_ns(),
            depth,
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else { return };
        // A stop()/start() while the guard was live: the lane this span
        // opened on is gone; recording now would resurrect stale state.
        if GENERATION.load(Ordering::Acquire) != open.gen || !enabled() {
            return;
        }
        let dur_ns = now_ns().saturating_sub(open.start_ns);
        with_lane(|l| {
            l.depth = l.depth.saturating_sub(1);
            l.events.push(Event {
                name: open.name,
                start_ns: open.start_ns,
                dur_ns,
                depth: open.depth,
            });
        });
    }
}

/// One thread's collected timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lane {
    /// Lane label (`main`, `node-3`, ...).
    pub label: String,
    /// Completed spans, in completion order.
    pub events: Vec<Event>,
    /// Counter totals accumulated on this lane.
    pub counters: BTreeMap<&'static str, u64>,
    /// Sample distributions recorded on this lane.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Timestamped gauge samples recorded on this lane.
    pub samples: Vec<Sample>,
}

impl Lane {
    /// Total busy time: the sum of top-level (depth 0) span durations.
    /// Nested spans are contained in their parents, so this never double
    /// counts.
    pub fn busy_ns(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.depth == 0)
            .map(|e| e.dur_ns)
            .sum()
    }

    /// This lane's total for a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The node number for lanes labeled `node-<m>`.
    pub fn node_id(&self) -> Option<usize> {
        self.label.strip_prefix("node-")?.parse().ok()
    }

    /// This lane's histogram for a name, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

/// Per-span-name aggregate produced by [`Trace::span_rollup`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: &'static str,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total time inside these spans (children included).
    pub total_ns: u64,
    /// Time inside these spans minus time inside their nested children.
    pub self_ns: u64,
}

/// A completed recording session: one [`Lane`] per participating thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Lanes, sorted by label (numeric-aware).
    pub lanes: Vec<Lane>,
    /// Session-level configuration tags set via [`set_tag`].
    pub tags: Vec<(String, String)>,
}

impl Trace {
    /// An empty trace (no lanes, no tags).
    pub fn empty() -> Self {
        Trace {
            lanes: vec![],
            tags: vec![],
        }
    }

    /// Merges several traces into one: lanes are concatenated and re-sorted
    /// by label, tags are unioned (first writer of a key wins). Used by the
    /// multi-process launcher to fold each node process's trace into the
    /// parent's timeline.
    pub fn merged(traces: impl IntoIterator<Item = Trace>) -> Trace {
        let mut lanes = Vec::new();
        let mut tags: Vec<(String, String)> = Vec::new();
        for t in traces {
            lanes.extend(t.lanes);
            for (k, v) in t.tags {
                if !tags.iter().any(|(k2, _)| *k2 == k) {
                    tags.push((k, v));
                }
            }
        }
        lanes.sort_by(|a, b| natural_key(&a.label).cmp(&natural_key(&b.label)));
        Trace { lanes, tags }
    }

    /// The value of a session tag, if set.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
    /// Sum of a counter over all lanes.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.lanes.iter().map(|l| l.counter(name)).sum()
    }

    /// The lane with the given label, if any.
    pub fn lane(&self, label: &str) -> Option<&Lane> {
        self.lanes.iter().find(|l| l.label == label)
    }

    /// Per-node totals of a counter: index `m` holds the `node-<m>` lane's
    /// total. The length covers the highest node lane present; nodes
    /// without a lane (never scheduled work) read as 0.
    pub fn per_node_counter(&self, name: &str) -> Vec<u64> {
        let nodes: Vec<(usize, u64)> = self
            .lanes
            .iter()
            .filter_map(|l| Some((l.node_id()?, l.counter(name))))
            .collect();
        let len = nodes.iter().map(|(m, _)| m + 1).max().unwrap_or(0);
        let mut out = vec![0u64; len];
        for (m, v) in nodes {
            out[m] += v;
        }
        out
    }

    /// Number of completed spans with the given name, across lanes.
    pub fn span_count(&self, name: &str) -> usize {
        self.lanes
            .iter()
            .flat_map(|l| &l.events)
            .filter(|e| e.name == name)
            .count()
    }

    /// Exact merge of a histogram over all lanes: the distribution a
    /// single lane would hold had it recorded every sample. Empty when no
    /// lane recorded the name.
    pub fn histogram_total(&self, name: &str) -> Histogram {
        let mut out = Histogram::new();
        for lane in &self.lanes {
            if let Some(h) = lane.histograms.get(name) {
                out.merge(h);
            }
        }
        out
    }

    /// Every histogram name present on any lane, sorted and deduplicated.
    pub fn histogram_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .lanes
            .iter()
            .flat_map(|l| l.histograms.keys().copied())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Per-span-name totals with self time (total minus nested children),
    /// sorted by total time descending. Events on a lane are in
    /// completion order, so children always precede their parent; a
    /// per-depth accumulator attributes each child's duration to its
    /// enclosing span exactly once.
    pub fn span_rollup(&self) -> Vec<SpanStat> {
        let mut stats: BTreeMap<&'static str, SpanStat> = BTreeMap::new();
        for lane in &self.lanes {
            let mut child_ns: Vec<u64> = Vec::new();
            for e in &lane.events {
                let d = e.depth as usize;
                if child_ns.len() <= d + 1 {
                    child_ns.resize(d + 2, 0);
                }
                let nested = std::mem::take(&mut child_ns[d + 1]);
                child_ns[d] += e.dur_ns;
                let s = stats.entry(e.name).or_insert(SpanStat {
                    name: e.name,
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                });
                s.count += 1;
                s.total_ns += e.dur_ns;
                s.self_ns += e.dur_ns.saturating_sub(nested);
            }
        }
        let mut out: Vec<SpanStat> = stats.into_values().collect();
        out.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        out
    }

    /// The paper's timing discipline: the maximum busy time over node
    /// lanes (falling back to all lanes when no `node-<m>` lane exists).
    pub fn critical_path_ns(&self) -> u64 {
        let nodes = self
            .lanes
            .iter()
            .filter(|l| l.node_id().is_some())
            .map(Lane::busy_ns)
            .max();
        nodes.unwrap_or_else(|| self.lanes.iter().map(Lane::busy_ns).max().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_returns_inert_guards() {
        let _guard = session_lock();
        assert!(!enabled());
        let sp = span("never");
        count("never", 7);
        set_lane_label("ghost");
        drop(sp);
        start();
        let trace = stop();
        assert!(trace.lanes.is_empty(), "{trace:?}");
    }

    #[test]
    fn spans_nest_and_counters_accumulate() {
        let ((), trace) = capture(|| {
            set_lane_label("node-0");
            let _outer = span("outer");
            count("widgets", 2);
            {
                let _inner = span("inner");
                count("widgets", 3);
            }
        });
        let lane = trace.lane("node-0").expect("lane exists");
        assert_eq!(lane.counter("widgets"), 5);
        let inner = lane.events.iter().find(|e| e.name == "inner").unwrap();
        let outer = lane.events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!((inner.depth, outer.depth), (1, 0));
        assert!(inner.dur_ns <= outer.dur_ns);
        assert!(inner.start_ns >= outer.start_ns);
        assert_eq!(lane.busy_ns(), outer.dur_ns);
        assert_eq!(trace.counter_total("widgets"), 5);
    }

    #[test]
    fn threads_get_their_own_lanes() {
        let ((), trace) = capture(|| {
            std::thread::scope(|scope| {
                for m in 0..3 {
                    scope.spawn(move || {
                        set_lane_label(&format!("node-{m}"));
                        let _sp = span("work");
                        count("items", (m + 1) as u64);
                    });
                }
            });
        });
        assert_eq!(trace.per_node_counter("items"), vec![1, 2, 3]);
        assert_eq!(trace.span_count("work"), 3);
        assert!(trace.critical_path_ns() > 0);
    }

    #[test]
    fn lane_sorting_is_numeric_aware() {
        let ((), trace) = capture(|| {
            std::thread::scope(|scope| {
                for m in [10usize, 2, 0] {
                    scope.spawn(move || {
                        set_lane_label(&format!("node-{m}"));
                        count("x", 1);
                    });
                }
            });
        });
        let labels: Vec<&str> = trace.lanes.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(labels, vec!["node-0", "node-2", "node-10"]);
    }

    #[test]
    fn count_on_lane_credits_by_label() {
        let ((), trace) = capture(|| {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    set_lane_label("node-0");
                    count("marker", 1);
                });
            });
            count_on_lane("node-0", "barrier_wait_ns", 123);
            count_on_lane("no-such-lane", "barrier_wait_ns", 999);
        });
        assert_eq!(
            trace.lane("node-0").unwrap().counter("barrier_wait_ns"),
            123
        );
        assert_eq!(trace.counter_total("barrier_wait_ns"), 123);
    }

    #[test]
    fn record_and_timed_span_build_histograms() {
        let ((), trace) = capture(|| {
            set_lane_label("node-0");
            for v in [5u64, 50, 500, 5000] {
                record("msg_bytes", v);
            }
            let _t = timed_span("work_ns");
        });
        let lane = trace.lane("node-0").unwrap();
        let h = lane.histogram("msg_bytes").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 5000);
        let t = trace.histogram_total("work_ns");
        assert_eq!(t.count(), 1);
        assert!(trace.histogram_names().contains(&"msg_bytes"));
    }

    #[test]
    fn histogram_total_merges_across_lanes() {
        let ((), trace) = capture(|| {
            std::thread::scope(|scope| {
                for m in 0..3 {
                    scope.spawn(move || {
                        set_lane_label(&format!("node-{m}"));
                        for i in 0..10u64 {
                            record("wait_ns", i * (m + 1) as u64);
                        }
                    });
                }
            });
            record_on_lane("node-1", "wait_ns", 7777);
            record_on_lane("no-such-lane", "wait_ns", 1);
        });
        let total = trace.histogram_total("wait_ns");
        assert_eq!(total.count(), 31);
        assert_eq!(total.max(), 7777);
        assert_eq!(
            trace
                .lane("node-1")
                .unwrap()
                .histogram("wait_ns")
                .unwrap()
                .count(),
            11
        );
    }

    #[test]
    fn gauges_record_timestamped_samples() {
        let ((), trace) = capture(|| {
            set_lane_label("main");
            gauge("queue_depth", 3);
            gauge("queue_depth", 1);
        });
        let lane = trace.lane("main").unwrap();
        assert_eq!(lane.samples.len(), 2);
        assert_eq!(lane.samples[0].value, 3);
        assert!(lane.samples[1].t_ns >= lane.samples[0].t_ns);
    }

    #[test]
    fn counter_now_reads_live_totals() {
        let ((), ()) = {
            let _guard = session_lock();
            start();
            count("live", 4);
            assert_eq!(counter_now("live"), 4);
            count("live", 2);
            assert_eq!(counter_now("live"), 6);
            let _ = stop();
            assert_eq!(counter_now("live"), 0);
            ((), ())
        };
    }

    #[test]
    fn span_rollup_computes_self_time() {
        let ((), trace) = capture(|| {
            set_lane_label("main");
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        let rollup = trace.span_rollup();
        let outer = rollup.iter().find(|s| s.name == "outer").unwrap();
        let inner = rollup.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns);
        assert_eq!(inner.self_ns, inner.total_ns);
        // Sorted by total descending.
        assert_eq!(rollup[0].name, "outer");
    }

    #[test]
    fn timed_span_straddling_stop_is_discarded() {
        let _guard = session_lock();
        start();
        let t = timed_span("straddler_ns");
        let first = stop();
        start();
        drop(t);
        let second = stop();
        assert!(first.histogram_total("straddler_ns").is_empty());
        assert!(second.histogram_total("straddler_ns").is_empty());
    }

    #[test]
    fn span_straddling_stop_is_discarded() {
        let _guard = session_lock();
        start();
        let sp = span("straddler");
        let first = stop();
        start();
        drop(sp);
        let second = stop();
        assert_eq!(first.span_count("straddler"), 0);
        assert_eq!(second.span_count("straddler"), 0);
    }
}
