//! Serialization of a collected [`Trace`]: a machine-readable
//! `bcag-trace/v1` summary and the Chrome Trace Event format.
//!
//! The summary carries counter totals, per-lane aggregates and the
//! max-over-nodes critical path (the paper reports "the maximum time over
//! the 32 processors"; [`Trace::critical_path_ns`] is the same statistic
//! over node lanes). The Chrome file loads directly into
//! `chrome://tracing` or <https://ui.perfetto.dev>: one row (`tid`) per
//! lane, named via `thread_name` metadata events, all spans as complete
//! (`"ph": "X"`) events with microsecond timestamps.

use bcag_harness::json::Json;

use crate::{Lane, Trace};

/// Builds the `bcag-trace/v1` summary document.
pub fn summary(trace: &Trace) -> Json {
    let mut totals: Vec<(&str, Json)> = Vec::new();
    {
        let mut names: Vec<&'static str> = trace
            .lanes
            .iter()
            .flat_map(|l| l.counters.keys().copied())
            .collect();
        names.sort_unstable();
        names.dedup();
        for name in names {
            totals.push((name, Json::Int(trace.counter_total(name) as i64)));
        }
    }
    let lanes: Vec<Json> = trace.lanes.iter().map(lane_summary).collect();
    Json::obj(vec![
        ("format", Json::Str("bcag-trace/v1".into())),
        ("counters", Json::Obj(own(totals))),
        (
            "critical_path_ns",
            Json::Int(trace.critical_path_ns() as i64),
        ),
        ("lanes", Json::Arr(lanes)),
    ])
}

fn lane_summary(lane: &Lane) -> Json {
    let counters: Vec<(String, Json)> = lane
        .counters
        .iter()
        .map(|(k, v)| (k.to_string(), Json::Int(*v as i64)))
        .collect();
    Json::obj(vec![
        ("label", Json::Str(lane.label.clone())),
        ("spans", Json::Int(lane.events.len() as i64)),
        ("busy_ns", Json::Int(lane.busy_ns() as i64)),
        ("counters", Json::Obj(counters)),
    ])
}

fn own(fields: Vec<(&str, Json)>) -> Vec<(String, Json)> {
    fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Builds a Chrome Trace Event document (`{"traceEvents": [...]}`).
/// Timestamps are rebased so the earliest span starts at 0 and expressed
/// in microseconds (the format's unit), keeping nanosecond resolution via
/// fractional values.
pub fn chrome(trace: &Trace) -> Json {
    let t0 = trace
        .lanes
        .iter()
        .flat_map(|l| &l.events)
        .map(|e| e.start_ns)
        .min()
        .unwrap_or(0);
    let mut events: Vec<Json> = Vec::new();
    for (tid, lane) in trace.lanes.iter().enumerate() {
        events.push(Json::obj(vec![
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Int(0)),
            ("tid", Json::Int(tid as i64)),
            (
                "args",
                Json::obj(vec![("name", Json::Str(lane.label.clone()))]),
            ),
        ]));
        for e in &lane.events {
            events.push(Json::obj(vec![
                ("name", Json::Str(e.name.into())),
                ("ph", Json::Str("X".into())),
                ("pid", Json::Int(0)),
                ("tid", Json::Int(tid as i64)),
                ("ts", Json::Num((e.start_ns - t0) as f64 / 1_000.0)),
                ("dur", Json::Num(e.dur_ns as f64 / 1_000.0)),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{capture, count, set_lane_label, span};

    fn sample_trace() -> Trace {
        let ((), trace) = capture(|| {
            std::thread::scope(|scope| {
                for m in 0..2 {
                    scope.spawn(move || {
                        set_lane_label(&format!("node-{m}"));
                        let _sp = span("work");
                        count("elements_moved", 10 * (m + 1) as u64);
                    });
                }
            });
        });
        trace
    }

    #[test]
    fn summary_has_format_totals_and_lanes() {
        let trace = sample_trace();
        let doc = summary(&trace);
        let text = doc.to_string();
        assert!(text.contains(r#""format":"bcag-trace/v1""#), "{text}");
        assert!(text.contains(r#""elements_moved":30"#), "{text}");
        assert!(text.contains(r#""label":"node-0""#), "{text}");
        assert!(text.contains(r#""critical_path_ns":"#), "{text}");
    }

    #[test]
    fn chrome_names_lanes_and_emits_complete_events() {
        let trace = sample_trace();
        let doc = chrome(&trace);
        let text = doc.to_string();
        assert!(text.contains(r#""traceEvents":"#), "{text}");
        assert!(text.contains(r#""ph":"M""#), "{text}");
        assert!(text.contains(r#""ph":"X""#), "{text}");
        assert!(text.contains(r#""name":"node-1""#), "{text}");
        // Rebased: some event starts at ts 0.
        assert!(text.contains(r#""ts":0"#), "{text}");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let trace = Trace { lanes: vec![] };
        assert!(summary(&trace).to_string().contains("bcag-trace/v1"));
        assert!(chrome(&trace).to_string().contains("traceEvents"));
    }
}
