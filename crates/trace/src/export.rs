//! Serialization of a collected [`Trace`]: a machine-readable
//! `bcag-trace/v1` summary and the Chrome Trace Event format.
//!
//! The summary carries counter totals, per-lane aggregates and the
//! max-over-nodes critical path (the paper reports "the maximum time over
//! the 32 processors"; [`Trace::critical_path_ns`] is the same statistic
//! over node lanes). The Chrome file loads directly into
//! `chrome://tracing` or <https://ui.perfetto.dev>: one row (`tid`) per
//! lane, named via `thread_name` metadata events, all spans as complete
//! (`"ph": "X"`) events with microsecond timestamps.

use bcag_harness::json::Json;

use crate::{Event, Lane, Trace};

/// Builds the `bcag-trace/v1` summary document.
pub fn summary(trace: &Trace) -> Json {
    let mut totals: Vec<(&str, Json)> = Vec::new();
    {
        let mut names: Vec<&'static str> = trace
            .lanes
            .iter()
            .flat_map(|l| l.counters.keys().copied())
            .collect();
        names.sort_unstable();
        names.dedup();
        for name in names {
            totals.push((name, Json::Int(trace.counter_total(name) as i64)));
        }
    }
    let lanes: Vec<Json> = trace.lanes.iter().map(lane_summary).collect();
    let tags: Vec<(String, Json)> = trace
        .tags
        .iter()
        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
        .collect();
    Json::obj(vec![
        ("format", Json::Str("bcag-trace/v1".into())),
        ("tags", Json::Obj(tags)),
        ("counters", Json::Obj(own(totals))),
        (
            "critical_path_ns",
            Json::Int(trace.critical_path_ns() as i64),
        ),
        ("lanes", Json::Arr(lanes)),
    ])
}

fn lane_summary(lane: &Lane) -> Json {
    let counters: Vec<(String, Json)> = lane
        .counters
        .iter()
        .map(|(k, v)| (k.to_string(), Json::Int(*v as i64)))
        .collect();
    Json::obj(vec![
        ("label", Json::Str(lane.label.clone())),
        ("spans", Json::Int(lane.events.len() as i64)),
        ("busy_ns", Json::Int(lane.busy_ns() as i64)),
        ("counters", Json::Obj(counters)),
    ])
}

fn own(fields: Vec<(&str, Json)>) -> Vec<(String, Json)> {
    fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Builds a Chrome Trace Event document (`{"traceEvents": [...]}`).
/// Timestamps are rebased so the earliest span starts at 0 and expressed
/// in microseconds (the format's unit), keeping nanosecond resolution via
/// fractional values.
pub fn chrome(trace: &Trace) -> Json {
    let t0 = trace
        .lanes
        .iter()
        .flat_map(|l| &l.events)
        .map(|e| e.start_ns)
        .min()
        .unwrap_or(0);
    let mut events: Vec<Json> = Vec::new();
    for (tid, lane) in trace.lanes.iter().enumerate() {
        events.push(Json::obj(vec![
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Int(0)),
            ("tid", Json::Int(tid as i64)),
            (
                "args",
                Json::obj(vec![("name", Json::Str(lane.label.clone()))]),
            ),
        ]));
        for e in &lane.events {
            events.push(Json::obj(vec![
                ("name", Json::Str(e.name.into())),
                ("ph", Json::Str("X".into())),
                ("pid", Json::Int(0)),
                ("tid", Json::Int(tid as i64)),
                ("ts", Json::Num((e.start_ns - t0) as f64 / 1_000.0)),
                ("dur", Json::Num(e.dur_ns as f64 / 1_000.0)),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".into())),
    ])
}

/// Serializes a [`Trace`] with full fidelity (every event, counter and
/// tag) so a node process can ship its timeline to the launcher, which
/// reassembles it with [`from_json`] and merges lanes via
/// [`Trace::merged`]. This is the transport format between `bcag
/// spmd-node` children and the parent; `summary` stays the human/CI-facing
/// aggregate.
pub fn to_json(trace: &Trace) -> Json {
    let lanes: Vec<Json> = trace
        .lanes
        .iter()
        .map(|lane| {
            let events: Vec<Json> = lane
                .events
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("name", Json::Str(e.name.into())),
                        ("start_ns", Json::Int(e.start_ns as i64)),
                        ("dur_ns", Json::Int(e.dur_ns as i64)),
                        ("depth", Json::Int(e.depth as i64)),
                    ])
                })
                .collect();
            let counters: Vec<(String, Json)> = lane
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), Json::Int(*v as i64)))
                .collect();
            Json::obj(vec![
                ("label", Json::Str(lane.label.clone())),
                ("events", Json::Arr(events)),
                ("counters", Json::Obj(counters)),
            ])
        })
        .collect();
    let tags: Vec<(String, Json)> = trace
        .tags
        .iter()
        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
        .collect();
    Json::obj(vec![
        ("format", Json::Str("bcag-trace-full/v1".into())),
        ("tags", Json::Obj(tags)),
        ("lanes", Json::Arr(lanes)),
    ])
}

/// Reassembles a [`Trace`] serialized by [`to_json`]. Span and counter
/// names become `&'static str` again through the bounded
/// [`crate::intern`] registry.
pub fn from_json(doc: &Json) -> Result<Trace, String> {
    let fmt = doc.get("format").and_then(Json::as_str).unwrap_or("");
    if fmt != "bcag-trace-full/v1" {
        return Err(format!("not a bcag-trace-full/v1 document: {fmt:?}"));
    }
    let mut tags = Vec::new();
    if let Some(Json::Obj(fields)) = doc.get("tags") {
        for (k, v) in fields {
            let v = v.as_str().ok_or("tag value must be a string")?;
            tags.push((k.clone(), v.to_string()));
        }
    }
    let mut lanes = Vec::new();
    for lane in doc.get("lanes").and_then(Json::as_arr).unwrap_or(&[]) {
        let label = lane
            .get("label")
            .and_then(Json::as_str)
            .ok_or("lane without label")?
            .to_string();
        let mut events = Vec::new();
        for e in lane.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
            let field = |k: &str| {
                e.get(k)
                    .and_then(Json::as_i64)
                    .ok_or_else(|| format!("event field {k} missing"))
            };
            events.push(Event {
                name: crate::intern(
                    e.get("name")
                        .and_then(Json::as_str)
                        .ok_or("unnamed event")?,
                ),
                start_ns: field("start_ns")? as u64,
                dur_ns: field("dur_ns")? as u64,
                depth: field("depth")? as u32,
            });
        }
        let mut counters = std::collections::BTreeMap::new();
        if let Some(Json::Obj(fields)) = lane.get("counters") {
            for (k, v) in fields {
                let v = v.as_i64().ok_or("counter value must be an integer")?;
                counters.insert(crate::intern(k), v as u64);
            }
        }
        lanes.push(Lane {
            label,
            events,
            counters,
        });
    }
    Ok(Trace { lanes, tags })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{capture, count, set_lane_label, set_tag, span};

    fn sample_trace() -> Trace {
        let ((), trace) = capture(|| {
            std::thread::scope(|scope| {
                for m in 0..2 {
                    scope.spawn(move || {
                        set_lane_label(&format!("node-{m}"));
                        let _sp = span("work");
                        count("elements_moved", 10 * (m + 1) as u64);
                    });
                }
            });
        });
        trace
    }

    #[test]
    fn summary_has_format_totals_and_lanes() {
        let trace = sample_trace();
        let doc = summary(&trace);
        let text = doc.to_string();
        assert!(text.contains(r#""format":"bcag-trace/v1""#), "{text}");
        assert!(text.contains(r#""elements_moved":30"#), "{text}");
        assert!(text.contains(r#""label":"node-0""#), "{text}");
        assert!(text.contains(r#""critical_path_ns":"#), "{text}");
    }

    #[test]
    fn chrome_names_lanes_and_emits_complete_events() {
        let trace = sample_trace();
        let doc = chrome(&trace);
        let text = doc.to_string();
        assert!(text.contains(r#""traceEvents":"#), "{text}");
        assert!(text.contains(r#""ph":"M""#), "{text}");
        assert!(text.contains(r#""ph":"X""#), "{text}");
        assert!(text.contains(r#""name":"node-1""#), "{text}");
        // Rebased: some event starts at ts 0.
        assert!(text.contains(r#""ts":0"#), "{text}");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let trace = Trace::empty();
        assert!(summary(&trace).to_string().contains("bcag-trace/v1"));
        assert!(chrome(&trace).to_string().contains("traceEvents"));
    }

    #[test]
    fn tags_land_in_summary() {
        let ((), trace) = capture(|| {
            set_tag("transport", "shm");
            set_tag("transport", "proc"); // replaces
            set_tag("launch", "pooled");
            count("x", 1);
        });
        assert_eq!(trace.tag("transport"), Some("proc"));
        let text = summary(&trace).to_string();
        assert!(text.contains(r#""transport":"proc""#), "{text}");
        assert!(text.contains(r#""launch":"pooled""#), "{text}");
    }

    #[test]
    fn full_json_round_trip_preserves_trace() {
        let mut trace = sample_trace();
        trace.tags.push(("transport".into(), "proc".into()));
        let doc = to_json(&trace);
        let parsed = Json::parse(&doc.to_string()).unwrap();
        let back = from_json(&parsed).unwrap();
        assert_eq!(back, trace);
        // Merging with an empty trace is identity on lanes and tags.
        let merged = Trace::merged(vec![Trace::empty(), back]);
        assert_eq!(merged, trace);
    }

    #[test]
    fn from_json_rejects_wrong_format() {
        let doc = Json::parse(r#"{"format":"bcag-trace/v1"}"#).unwrap();
        assert!(from_json(&doc).is_err());
    }
}
