//! Serialization of a collected [`Trace`]: a machine-readable
//! `bcag-trace/v2` summary, the Chrome Trace Event format, and a
//! Prometheus-style text exposition.
//!
//! The summary carries counter totals, histogram percentiles, per-lane
//! aggregates and the max-over-nodes critical path (the paper reports
//! "the maximum time over the 32 processors"; [`Trace::critical_path_ns`]
//! is the same statistic over node lanes). The Chrome file loads directly
//! into `chrome://tracing` or <https://ui.perfetto.dev>: one row (`tid`)
//! per lane, named via `thread_name` metadata events, all spans as
//! complete (`"ph": "X"`) events and all gauge samples as counter
//! (`"ph": "C"`) events with microsecond timestamps. The Prometheus
//! writer emits `# TYPE` lines with cumulative `_bucket{le=...}` rows —
//! plain text, still serde-free.

use bcag_harness::json::Json;

use crate::{Event, Histogram, Lane, Sample, Trace};

/// Builds the `bcag-trace/v2` summary document.
pub fn summary(trace: &Trace) -> Json {
    let mut totals: Vec<(&str, Json)> = Vec::new();
    {
        let mut names: Vec<&'static str> = trace
            .lanes
            .iter()
            .flat_map(|l| l.counters.keys().copied())
            .collect();
        names.sort_unstable();
        names.dedup();
        for name in names {
            totals.push((name, Json::Int(trace.counter_total(name) as i64)));
        }
    }
    let mut hists: Vec<(&str, Json)> = Vec::new();
    for name in trace.histogram_names() {
        hists.push((name, hist_summary(&trace.histogram_total(name))));
    }
    let lanes: Vec<Json> = trace.lanes.iter().map(lane_summary).collect();
    let tags: Vec<(String, Json)> = trace
        .tags
        .iter()
        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
        .collect();
    Json::obj(vec![
        ("format", Json::Str("bcag-trace/v2".into())),
        ("tags", Json::Obj(tags)),
        ("counters", Json::Obj(own(totals))),
        ("histograms", Json::Obj(own(hists))),
        (
            "critical_path_ns",
            Json::Int(trace.critical_path_ns() as i64),
        ),
        ("lanes", Json::Arr(lanes)),
    ])
}

/// Headline percentiles of one histogram (the upper-bound estimator of
/// [`Histogram::percentile`], exact at `max`).
fn hist_summary(h: &Histogram) -> Json {
    Json::obj(vec![
        ("count", Json::Int(h.count() as i64)),
        ("sum", Json::Int(h.sum() as i64)),
        ("p50", Json::Int(h.percentile(50.0) as i64)),
        ("p90", Json::Int(h.percentile(90.0) as i64)),
        ("p95", Json::Int(h.percentile(95.0) as i64)),
        ("p99", Json::Int(h.percentile(99.0) as i64)),
        ("max", Json::Int(h.max() as i64)),
    ])
}

fn lane_summary(lane: &Lane) -> Json {
    let counters: Vec<(String, Json)> = lane
        .counters
        .iter()
        .map(|(k, v)| (k.to_string(), Json::Int(*v as i64)))
        .collect();
    let hists: Vec<(String, Json)> = lane
        .histograms
        .iter()
        .map(|(k, h)| (k.to_string(), hist_summary(h)))
        .collect();
    Json::obj(vec![
        ("label", Json::Str(lane.label.clone())),
        ("spans", Json::Int(lane.events.len() as i64)),
        ("busy_ns", Json::Int(lane.busy_ns() as i64)),
        ("counters", Json::Obj(counters)),
        ("histograms", Json::Obj(hists)),
    ])
}

fn own(fields: Vec<(&str, Json)>) -> Vec<(String, Json)> {
    fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Builds a Chrome Trace Event document (`{"traceEvents": [...]}`).
/// Timestamps are rebased so the earliest span starts at 0 and expressed
/// in microseconds (the format's unit), keeping nanosecond resolution via
/// fractional values. Gauge samples become `"ph": "C"` counter events, so
/// queue depths and cache hit rates render as tracks over time.
pub fn chrome(trace: &Trace) -> Json {
    let t0 = trace
        .lanes
        .iter()
        .flat_map(|l| {
            l.events
                .iter()
                .map(|e| e.start_ns)
                .chain(l.samples.iter().map(|s| s.t_ns))
        })
        .min()
        .unwrap_or(0);
    let mut events: Vec<Json> = Vec::new();
    for (tid, lane) in trace.lanes.iter().enumerate() {
        events.push(Json::obj(vec![
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::Int(0)),
            ("tid", Json::Int(tid as i64)),
            (
                "args",
                Json::obj(vec![("name", Json::Str(lane.label.clone()))]),
            ),
        ]));
        for e in &lane.events {
            events.push(Json::obj(vec![
                ("name", Json::Str(e.name.into())),
                ("ph", Json::Str("X".into())),
                ("pid", Json::Int(0)),
                ("tid", Json::Int(tid as i64)),
                ("ts", Json::Num((e.start_ns - t0) as f64 / 1_000.0)),
                ("dur", Json::Num(e.dur_ns as f64 / 1_000.0)),
            ]));
        }
        for s in &lane.samples {
            events.push(Json::obj(vec![
                ("name", Json::Str(s.name.into())),
                ("ph", Json::Str("C".into())),
                ("pid", Json::Int(0)),
                ("tid", Json::Int(tid as i64)),
                ("ts", Json::Num((s.t_ns - t0) as f64 / 1_000.0)),
                (
                    "args",
                    Json::obj(vec![("value", Json::Int(s.value as i64))]),
                ),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".into())),
    ])
}

/// Writes the trace's counters and histograms in the Prometheus text
/// exposition format: `# TYPE` lines, cumulative `_bucket{le="..."}` rows
/// per histogram plus `_sum`/`_count`. Names are prefixed `bcag_` and
/// sanitized to the metric charset. Counters and histograms are totals
/// over all lanes.
pub fn prometheus(trace: &Trace) -> String {
    let mut out = String::new();
    let mut counter_names: Vec<&'static str> = trace
        .lanes
        .iter()
        .flat_map(|l| l.counters.keys().copied())
        .collect();
    counter_names.sort_unstable();
    counter_names.dedup();
    for name in counter_names {
        let metric = metric_name(name);
        out.push_str(&format!("# TYPE {metric} counter\n"));
        out.push_str(&format!("{metric} {}\n", trace.counter_total(name)));
    }
    for name in trace.histogram_names() {
        let h = trace.histogram_total(name);
        let metric = metric_name(name);
        out.push_str(&format!("# TYPE {metric} histogram\n"));
        let mut cum = 0u64;
        for (idx, n) in h.nonzero_buckets() {
            cum += n;
            let (_, hi) = crate::hist::bucket_bounds(idx);
            out.push_str(&format!("{metric}_bucket{{le=\"{hi}\"}} {cum}\n"));
        }
        out.push_str(&format!("{metric}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        out.push_str(&format!("{metric}_sum {}\n", h.sum()));
        out.push_str(&format!("{metric}_count {}\n", h.count()));
    }
    out
}

/// Maps a span/counter name onto the Prometheus metric charset.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("bcag_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Serializes a [`Trace`] with full fidelity (every event, counter,
/// histogram, gauge sample and tag) so a node process can ship its
/// timeline to the launcher, which reassembles it with [`from_json`] and
/// merges lanes via [`Trace::merged`]. This is the transport format
/// between `bcag spmd-node` children and the parent; `summary` stays the
/// human/CI-facing aggregate.
pub fn to_json(trace: &Trace) -> Json {
    let lanes: Vec<Json> = trace
        .lanes
        .iter()
        .map(|lane| {
            let events: Vec<Json> = lane
                .events
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("name", Json::Str(e.name.into())),
                        ("start_ns", Json::Int(e.start_ns as i64)),
                        ("dur_ns", Json::Int(e.dur_ns as i64)),
                        ("depth", Json::Int(e.depth as i64)),
                    ])
                })
                .collect();
            let counters: Vec<(String, Json)> = lane
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), Json::Int(*v as i64)))
                .collect();
            let hists: Vec<(String, Json)> = lane
                .histograms
                .iter()
                .map(|(k, h)| {
                    let buckets: Vec<Json> = h
                        .nonzero_buckets()
                        .map(|(i, n)| Json::Arr(vec![Json::Int(i as i64), Json::Int(n as i64)]))
                        .collect();
                    (
                        k.to_string(),
                        Json::obj(vec![
                            ("buckets", Json::Arr(buckets)),
                            ("sum", Json::Int(h.sum() as i64)),
                            ("max", Json::Int(h.max() as i64)),
                        ]),
                    )
                })
                .collect();
            let samples: Vec<Json> = lane
                .samples
                .iter()
                .map(|s| {
                    Json::Arr(vec![
                        Json::Str(s.name.into()),
                        Json::Int(s.t_ns as i64),
                        Json::Int(s.value as i64),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("label", Json::Str(lane.label.clone())),
                ("events", Json::Arr(events)),
                ("counters", Json::Obj(counters)),
                ("histograms", Json::Obj(hists)),
                ("samples", Json::Arr(samples)),
            ])
        })
        .collect();
    let tags: Vec<(String, Json)> = trace
        .tags
        .iter()
        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
        .collect();
    Json::obj(vec![
        ("format", Json::Str("bcag-trace-full/v2".into())),
        ("tags", Json::Obj(tags)),
        ("lanes", Json::Arr(lanes)),
    ])
}

/// Reassembles a [`Trace`] serialized by [`to_json`]. Accepts both the
/// current `bcag-trace-full/v2` format and the pre-histogram
/// `bcag-trace-full/v1` (whose lanes simply carry no histograms or
/// samples). Span and counter names become `&'static str` again through
/// the bounded [`crate::intern`] registry.
pub fn from_json(doc: &Json) -> Result<Trace, String> {
    let fmt = doc.get("format").and_then(Json::as_str).unwrap_or("");
    if fmt != "bcag-trace-full/v2" && fmt != "bcag-trace-full/v1" {
        return Err(format!("not a bcag-trace-full/v1|v2 document: {fmt:?}"));
    }
    let mut tags = Vec::new();
    if let Some(Json::Obj(fields)) = doc.get("tags") {
        for (k, v) in fields {
            let v = v.as_str().ok_or("tag value must be a string")?;
            tags.push((k.clone(), v.to_string()));
        }
    }
    let mut lanes = Vec::new();
    for lane in doc.get("lanes").and_then(Json::as_arr).unwrap_or(&[]) {
        let label = lane
            .get("label")
            .and_then(Json::as_str)
            .ok_or("lane without label")?
            .to_string();
        let mut events = Vec::new();
        for e in lane.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
            let field = |k: &str| {
                e.get(k)
                    .and_then(Json::as_i64)
                    .ok_or_else(|| format!("event field {k} missing"))
            };
            events.push(Event {
                name: crate::intern(
                    e.get("name")
                        .and_then(Json::as_str)
                        .ok_or("unnamed event")?,
                ),
                start_ns: field("start_ns")? as u64,
                dur_ns: field("dur_ns")? as u64,
                depth: field("depth")? as u32,
            });
        }
        let mut counters = std::collections::BTreeMap::new();
        if let Some(Json::Obj(fields)) = lane.get("counters") {
            for (k, v) in fields {
                let v = v.as_i64().ok_or("counter value must be an integer")?;
                counters.insert(crate::intern(k), v as u64);
            }
        }
        let mut histograms = std::collections::BTreeMap::new();
        if let Some(Json::Obj(fields)) = lane.get("histograms") {
            for (k, v) in fields {
                let mut buckets = Vec::new();
                for pair in v.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
                    let pair = pair.as_arr().ok_or("bucket must be [index, count]")?;
                    let idx = pair
                        .first()
                        .and_then(Json::as_i64)
                        .ok_or("bucket index must be an integer")?;
                    let n = pair
                        .get(1)
                        .and_then(Json::as_i64)
                        .ok_or("bucket count must be an integer")?;
                    buckets.push((idx as usize, n as u64));
                }
                let sum = v.get("sum").and_then(Json::as_i64).unwrap_or(0) as u64;
                let max = v.get("max").and_then(Json::as_i64).unwrap_or(0) as u64;
                histograms.insert(crate::intern(k), Histogram::from_parts(&buckets, sum, max));
            }
        }
        let mut samples = Vec::new();
        for s in lane.get("samples").and_then(Json::as_arr).unwrap_or(&[]) {
            let s = s.as_arr().ok_or("sample must be [name, t_ns, value]")?;
            samples.push(Sample {
                name: crate::intern(
                    s.first()
                        .and_then(Json::as_str)
                        .ok_or("sample without name")?,
                ),
                t_ns: s.get(1).and_then(Json::as_i64).ok_or("sample t_ns")? as u64,
                value: s.get(2).and_then(Json::as_i64).ok_or("sample value")? as u64,
            });
        }
        lanes.push(Lane {
            label,
            events,
            counters,
            histograms,
            samples,
        });
    }
    Ok(Trace { lanes, tags })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{capture, count, gauge, record, set_lane_label, set_tag, span};

    fn sample_trace() -> Trace {
        let ((), trace) = capture(|| {
            std::thread::scope(|scope| {
                for m in 0..2 {
                    scope.spawn(move || {
                        set_lane_label(&format!("node-{m}"));
                        let _sp = span("work");
                        count("elements_moved", 10 * (m + 1) as u64);
                        for i in 0..20u64 {
                            record("recv_wait_ns", i * 100 * (m + 1) as u64);
                        }
                        gauge("queue_depth", m as u64);
                    });
                }
            });
        });
        trace
    }

    #[test]
    fn summary_has_format_totals_and_lanes() {
        let trace = sample_trace();
        let doc = summary(&trace);
        let text = doc.to_string();
        assert!(text.contains(r#""format":"bcag-trace/v2""#), "{text}");
        assert!(text.contains(r#""elements_moved":30"#), "{text}");
        assert!(text.contains(r#""label":"node-0""#), "{text}");
        assert!(text.contains(r#""critical_path_ns":"#), "{text}");
        assert!(text.contains(r#""histograms":"#), "{text}");
        assert!(text.contains(r#""recv_wait_ns":"#), "{text}");
        assert!(text.contains(r#""p99":"#), "{text}");
        // Top-level histogram section merges both lanes' 20 samples.
        let h = doc
            .get("histograms")
            .and_then(|h| h.get("recv_wait_ns"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_i64);
        assert_eq!(h, Some(40));
    }

    #[test]
    fn chrome_names_lanes_and_emits_complete_events() {
        let trace = sample_trace();
        let doc = chrome(&trace);
        let text = doc.to_string();
        assert!(text.contains(r#""traceEvents":"#), "{text}");
        assert!(text.contains(r#""ph":"M""#), "{text}");
        assert!(text.contains(r#""ph":"X""#), "{text}");
        assert!(text.contains(r#""ph":"C""#), "{text}");
        assert!(text.contains(r#""name":"node-1""#), "{text}");
        assert!(text.contains(r#""name":"queue_depth""#), "{text}");
        // Rebased: some event starts at ts 0.
        assert!(text.contains(r#""ts":0"#), "{text}");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let trace = Trace::empty();
        assert!(summary(&trace).to_string().contains("bcag-trace/v2"));
        assert!(chrome(&trace).to_string().contains("traceEvents"));
        assert_eq!(prometheus(&trace), "");
    }

    #[test]
    fn tags_land_in_summary() {
        let ((), trace) = capture(|| {
            set_tag("transport", "shm");
            set_tag("transport", "proc"); // replaces
            set_tag("launch", "pooled");
            count("x", 1);
        });
        assert_eq!(trace.tag("transport"), Some("proc"));
        let text = summary(&trace).to_string();
        assert!(text.contains(r#""transport":"proc""#), "{text}");
        assert!(text.contains(r#""launch":"pooled""#), "{text}");
    }

    #[test]
    fn prometheus_emits_counters_and_cumulative_buckets() {
        let trace = sample_trace();
        let text = prometheus(&trace);
        assert!(
            text.contains("# TYPE bcag_elements_moved counter"),
            "{text}"
        );
        assert!(text.contains("bcag_elements_moved 30"), "{text}");
        assert!(
            text.contains("# TYPE bcag_recv_wait_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains(r#"bcag_recv_wait_ns_bucket{le="+Inf"} 40"#),
            "{text}"
        );
        assert!(text.contains("bcag_recv_wait_ns_count 40"), "{text}");
        // Cumulative bucket counts are non-decreasing.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= prev, "{line}");
            prev = n;
        }
    }

    #[test]
    fn full_json_round_trip_preserves_trace() {
        let mut trace = sample_trace();
        trace.tags.push(("transport".into(), "proc".into()));
        let doc = to_json(&trace);
        let parsed = Json::parse(&doc.to_string()).unwrap();
        let back = from_json(&parsed).unwrap();
        assert_eq!(back, trace);
        // Merging with an empty trace is identity on lanes and tags.
        let merged = Trace::merged(vec![Trace::empty(), back]);
        assert_eq!(merged, trace);
        // Histogram totals survive the round trip and the merge.
        assert_eq!(
            merged.histogram_total("recv_wait_ns"),
            trace.histogram_total("recv_wait_ns")
        );
    }

    #[test]
    fn from_json_accepts_v1_documents() {
        let doc = Json::parse(
            r#"{"format":"bcag-trace-full/v1","tags":{"transport":"proc"},
                "lanes":[{"label":"node-0",
                          "events":[{"name":"work","start_ns":10,"dur_ns":5,"depth":0}],
                          "counters":{"elements_moved":42}}]}"#,
        )
        .unwrap();
        let trace = from_json(&doc).unwrap();
        assert_eq!(trace.counter_total("elements_moved"), 42);
        assert_eq!(trace.span_count("work"), 1);
        assert!(trace.histogram_names().is_empty());
        assert_eq!(trace.tag("transport"), Some("proc"));
    }

    #[test]
    fn from_json_rejects_wrong_format() {
        let doc = Json::parse(r#"{"format":"bcag-trace/v1"}"#).unwrap();
        assert!(from_json(&doc).is_err());
    }
}
