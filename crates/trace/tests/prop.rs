//! Property tests for the histogram: bucket-bound containment, merge
//! algebra and percentile monotonicity under randomized inputs.
//!
//! Reproduce a failure with `BCAG_PROPTEST_SEED=<seed from the report>`;
//! `BCAG_PROPTEST_CASES` scales the per-property case count.

use bcag_harness::prop::{check, ints, VecOfInts};
use bcag_trace::hist::{bucket_bounds, bucket_index};
use bcag_trace::Histogram;

fn hist_of(values: &[i64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v as u64);
    }
    h
}

/// Every recorded value must fall inside the bounds of the bucket it
/// lands in, and the bucket width must respect the 1/32 relative-error
/// contract above the exact range.
#[test]
fn value_lies_within_its_bucket_bounds() {
    check("value_within_bucket", &ints(0, i64::MAX), |&v| {
        let v = v as u64;
        let idx = bucket_index(v);
        let (lo, hi) = bucket_bounds(idx);
        assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
        // Above the exact unit-bucket range, width/lo <= 1/32.
        if lo >= 32 {
            let width = hi - lo + 1;
            assert!(
                width <= lo / 32 + 1,
                "bucket [{lo}, {hi}] too wide for 1/32 relative error"
            );
        }
    });
}

/// Merging is associative and commutative, and merging two histograms is
/// indistinguishable from recording the concatenated value stream.
#[test]
fn merge_is_concatenation() {
    let gen = (
        VecOfInts::new(0, 40, 0, 1 << 30),
        VecOfInts::new(0, 40, 0, 1 << 30),
        VecOfInts::new(0, 40, 0, 1 << 30),
    );
    check("merge_concat_assoc", &gen, |(a, b, c)| {
        let (ha, hb, hc) = (hist_of(a), hist_of(b), hist_of(c));
        // merge == record-all over the concatenation
        let mut ab = ha.clone();
        ab.merge(&hb);
        let concat: Vec<i64> = a.iter().chain(b).copied().collect();
        assert_eq!(ab, hist_of(&concat), "merge != concatenated recording");
        // commutativity
        let mut ba = hb.clone();
        ba.merge(&ha);
        assert_eq!(ab, ba, "merge not commutative");
        // associativity
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge not associative");
    });
}

/// percentile(q) is monotone in q, bounded by max(), and exact at the
/// extremes of single-bucket populations.
#[test]
fn percentiles_are_monotone_and_bounded() {
    let gen = VecOfInts::new(1, 60, 0, 1 << 40);
    check("percentile_monotone", &gen, |values| {
        let h = hist_of(values);
        let qs = [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0];
        let mut prev = 0u64;
        for &q in &qs {
            let p = h.percentile(q);
            assert!(
                p >= prev,
                "percentile({q}) = {p} < earlier percentile {prev}"
            );
            assert!(p <= h.max(), "percentile({q}) = {p} above max {}", h.max());
            prev = p;
        }
        assert_eq!(h.percentile(100.0), h.max(), "p100 must be the exact max");
        // The estimate for any q never undershoots the true minimum's
        // bucket lower bound.
        let min = values.iter().copied().min().expect("nonempty") as u64;
        let (min_lo, _) = bucket_bounds(bucket_index(min));
        assert!(h.percentile(0.0) >= min_lo);
    });
}

/// Sum and count survive any merge tree (fold order irrelevant).
#[test]
fn count_and_sum_are_merge_invariants() {
    let gen = VecOfInts::new(0, 50, 0, 1 << 35);
    check("count_sum_invariant", &gen, |values| {
        // Split the stream at every position: count/sum of the merge must
        // equal count/sum of the whole, regardless of the split point.
        let whole = hist_of(values);
        for cut in 0..=values.len() {
            let mut left = hist_of(&values[..cut]);
            left.merge(&hist_of(&values[cut..]));
            assert_eq!(left.count(), whole.count());
            assert_eq!(left.sum(), whole.sum());
            assert_eq!(left.max(), whole.max());
        }
    });
}
