//! FxHash-style hashing: the rustc/Firefox multiply-rotate mixer.
//!
//! The workspace's sharded runtime stores (the schedule cache and the
//! pool registry in `bcag-spmd`) need a fast, deterministic, in-repo
//! hash to pick a shard and a table slot. SipHash (the stdlib default)
//! spends more cycles per key than a cache hit spends on everything
//! else; FxHash is the standard answer for trusted, non-adversarial
//! keys: one wrapping multiply and a rotate per word. Determinism
//! matters doubly here — shard assignment must be stable across runs so
//! bench A/Bs and the committed reports are reproducible.
//!
//! [`FxHasher`] implements [`std::hash::Hasher`], so any `#[derive(Hash)]`
//! key works; [`hash_one`] is the one-shot convenience.

use std::hash::{Hash, Hasher};

/// The 64-bit Fx multiplier (derived from the golden ratio, as in
/// rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-rotate hasher (FxHash). Not cryptographic and
/// not DoS-resistant — for internal, trusted keys only.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A fresh hasher with the zero state.
    pub fn new() -> FxHasher {
        FxHasher::default()
    }

    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // A final avalanche round (SplitMix64's finalizer) so the low
        // *and* high bits are usable for independent masks: sharded
        // stores take the shard index from the high bits and the table
        // slot from the low bits of one hash.
        let mut z = self.hash;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Hashes one value with [`FxHasher`].
pub fn hash_one<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// The smallest power of two `>= n.max(1)` — shard counts and
/// open-addressed table sizes are kept at powers of two so index
/// selection is a mask, not a division.
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let key = (7i64, 13i64, (0i64, 99i64, 3i64));
        assert_eq!(hash_one(&key), hash_one(&key));
        let other = (7i64, 13i64, (0i64, 99i64, 4i64));
        assert_ne!(hash_one(&key), hash_one(&other));
    }

    #[test]
    fn bytes_and_words_mix_tails() {
        // Distinct short byte strings (sub-word tails) must not collide
        // trivially.
        let a = {
            let mut h = FxHasher::new();
            h.write(b"abc");
            h.finish()
        };
        let b = {
            let mut h = FxHasher::new();
            h.write(b"abd");
            h.finish()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn high_and_low_bits_both_spread() {
        // 256 sequential keys through 16 shards (high bits) and a
        // 64-slot table (low bits): every shard and most slots see
        // traffic. Sequential integers are the worst realistic case —
        // (p, k, section) keys differ in a few low words.
        let mut shards = [0u32; 16];
        let mut slots = [0u32; 64];
        for i in 0..256u64 {
            let h = hash_one(&i);
            shards[(h >> 32) as usize & 15] += 1;
            slots[h as usize & 63] += 1;
        }
        assert!(shards.iter().all(|&c| c > 0), "{shards:?}");
        let nonempty = slots.iter().filter(|&&c| c > 0).count();
        assert!(nonempty > 48, "{nonempty} of 64 slots hit");
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(129), 256);
    }
}
