//! # bcag-harness — the hermetic dev/test/bench toolkit
//!
//! Every crate in this workspace builds, tests and benchmarks with **zero
//! registry dependencies** (the build environment has no network access).
//! This crate supplies the three pieces that previously came from
//! `rand`, `proptest` and `criterion`:
//!
//! * [`rng`] — a deterministic, seedable PRNG (SplitMix64 seeding a
//!   xoshiro256++ core) with range / bool / shuffle / choice helpers;
//! * [`prop`] — a minimal property-testing framework: composable
//!   generators, configurable case counts, failure-case shrinking by
//!   halving, and failing-seed reporting (reproduce any failure with
//!   `BCAG_PROPTEST_SEED=<seed>`);
//! * [`bench`] — a measurement engine with warmup, calibrated iteration
//!   counts, median/MAD/min statistics and machine-readable JSON reports
//!   (the `BENCH_*.json` perf-trajectory files), built on [`stats`] and
//!   [`json`];
//! * [`hash`] — an FxHash-style multiply-rotate hasher (the `fxhash` /
//!   `rustc-hash` replacement) for the runtime's sharded stores: fast,
//!   deterministic, and explicitly not DoS-resistant.
//!
//! The modules are dependency-free and intentionally small; they implement
//! the subset of the replaced crates this workspace actually uses, with
//! reproducibility (fixed default seeds, no wall-clock in the JSON) as the
//! design priority.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod hash;
pub mod json;
pub mod prop;
pub mod rng;
pub mod stats;

pub use rng::Rng;
