//! Robust summary statistics for benchmark samples.
//!
//! Deterministic code under a noisy OS produces a right-skewed timing
//! distribution: the true cost plus occasional positive noise. The robust
//! estimators — **median** for location, **MAD** (median absolute
//! deviation) for spread, **min** as the low-noise floor — are therefore
//! the primary statistics; mean/max are kept for context.

/// Median of `xs` (averaging the two middle elements for even lengths).
/// Panics on an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample set");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Median absolute deviation of `xs` about `center` (unscaled — this is a
/// raw spread figure in the samples' own unit, not a σ estimate).
pub fn mad(xs: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = xs.iter().map(|&x| (x - center).abs()).collect();
    median(&devs)
}

/// The full summary the bench engine reports per measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (primary location estimate).
    pub median: f64,
    /// Median absolute deviation about the median (primary spread).
    pub mad: f64,
}

impl Summary {
    /// Summarizes a nonempty set of samples.
    pub fn from_samples(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty sample set");
        let med = median(xs);
        Summary {
            n: xs.len(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: xs.iter().sum::<f64>() / xs.len() as f64,
            median: med,
            mad: mad(xs, med),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        // Order-independent.
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn mad_on_fixed_samples() {
        // Samples 1..=5: median 3, |devs| = [2,1,0,1,2], MAD = 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mad(&xs, median(&xs)), 1.0);
        // An outlier barely moves the MAD (robustness property).
        let with_outlier = [1.0, 2.0, 3.0, 4.0, 1000.0];
        assert_eq!(median(&with_outlier), 3.0);
        assert_eq!(mad(&with_outlier, 3.0), 1.0);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::from_samples(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.mad, 2.0);
    }

    #[test]
    fn constant_samples_have_zero_spread() {
        let s = Summary::from_samples(&[7.0; 9]);
        assert_eq!((s.median, s.mad, s.min, s.max), (7.0, 0.0, 7.0, 7.0));
    }
}
