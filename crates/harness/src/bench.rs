//! Benchmark engine: warmup, calibrated iteration counts, median/MAD/min
//! statistics, and machine-readable JSON reports.
//!
//! The measurement discipline, per benchmark:
//!
//! 1. **Warmup** — run the closure until the warmup budget elapses (warms
//!    caches, branch predictors, and the allocator, and yields a first
//!    per-iteration estimate);
//! 2. **Calibration** — size the per-sample batch so one sample spans the
//!    sample-time budget (timer quantization becomes negligible);
//! 3. **Sampling** — collect N batch timings; each sample is the batch
//!    time divided by the batch size;
//! 4. **Statistics** — report median (location), MAD (spread) and min
//!    (noise floor) via [`crate::stats::Summary`].
//!
//! Every result also lands in a JSON report (`--json <path>`, default
//! `target/bcag-bench/<bench>.json`) — the `BENCH_*.json` files tracking
//! the perf trajectory across PRs are snapshots of these reports.
//!
//! Accepted CLI flags (unknown flags are ignored with a warning, so the
//! arguments `cargo bench` forwards never break a run): `--quick`,
//! `--json <path>`, `--filter <substr>`, `--samples <n>`,
//! `--warmup-ms <n>`, `--sample-ms <n>`.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::stats::Summary;

/// Engine configuration (usually parsed from the command line by
/// [`Bench::from_env`]).
#[derive(Debug, Clone)]
pub struct Options {
    /// Drastically shorter budgets for smoke runs (`--quick`).
    pub quick: bool,
    /// JSON report destination; `None` selects the default path.
    pub json_path: Option<PathBuf>,
    /// Only run benchmarks whose `group/name` contains this substring.
    pub filter: Option<String>,
    /// Samples per measurement.
    pub samples: usize,
    /// Warmup budget per measurement.
    pub warmup: Duration,
    /// Target duration of one sample batch.
    pub sample_time: Duration,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            quick: false,
            json_path: None,
            filter: None,
            samples: 30,
            warmup: Duration::from_millis(60),
            sample_time: Duration::from_millis(5),
        }
    }
}

impl Options {
    /// The `--quick` profile: enough to smoke-test every target in CI,
    /// not enough for publishable numbers.
    pub fn quick() -> Options {
        Options {
            quick: true,
            samples: 9,
            warmup: Duration::from_millis(3),
            sample_time: Duration::from_micros(500),
            ..Options::default()
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark group (e.g. `construction_s7`).
    pub group: String,
    /// Benchmark id within the group (e.g. `lattice/4`).
    pub name: String,
    /// Batch size used per sample.
    pub iters_per_sample: u64,
    /// Per-iteration nanosecond statistics.
    pub summary: Summary,
}

/// A benchmark run: a named collection of groups, printed as a table and
/// written to JSON by [`Bench::finish`].
pub struct Bench {
    name: String,
    opts: Options,
    results: Vec<Record>,
}

impl Bench {
    /// A run with explicit options (tests use this; binaries use
    /// [`Bench::from_env`]).
    pub fn new(name: &str, opts: Options) -> Bench {
        Bench {
            name: name.to_string(),
            opts,
            results: Vec::new(),
        }
    }

    /// A run configured from `std::env::args`.
    pub fn from_env(name: &str) -> Bench {
        let mut args = std::env::args().skip(1);
        let mut opts = Options::default();
        let mut overrides: Vec<Box<dyn FnOnce(&mut Options)>> = Vec::new();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    let o = Options::quick();
                    opts = Options {
                        json_path: opts.json_path,
                        filter: opts.filter,
                        ..o
                    };
                }
                "--json" => {
                    opts.json_path = Some(PathBuf::from(value_for(args.next(), "--json")));
                }
                "--filter" => {
                    opts.filter = Some(value_for(args.next(), "--filter"));
                }
                "--samples" => {
                    let n = parse_num(args.next(), "--samples");
                    overrides.push(Box::new(move |o| o.samples = n.max(1) as usize));
                }
                "--warmup-ms" => {
                    let n = parse_num(args.next(), "--warmup-ms");
                    overrides.push(Box::new(move |o| o.warmup = Duration::from_millis(n)));
                }
                "--sample-ms" => {
                    let n = parse_num(args.next(), "--sample-ms");
                    overrides.push(Box::new(move |o| o.sample_time = Duration::from_millis(n)));
                }
                other => {
                    // `cargo bench` forwards flags like `--bench`; benign.
                    if other != "--bench" {
                        eprintln!("bcag-bench: ignoring unknown argument {other:?}");
                    }
                }
            }
        }
        for f in overrides {
            f(&mut opts);
        }
        eprintln!(
            "bcag-bench '{name}': {} samples x ~{:?} per measurement{}",
            opts.samples,
            opts.sample_time,
            if opts.quick { " (--quick)" } else { "" }
        );
        Bench::new(name, opts)
    }

    /// Opens a named group; benchmarks registered on it share the prefix.
    pub fn group(&mut self, group: &str) -> Group<'_> {
        Group {
            bench: self,
            group: group.to_string(),
        }
    }

    /// Results accumulated so far (tests and custom reporters).
    pub fn results(&self) -> &[Record] {
        &self.results
    }

    fn measure<R>(&mut self, group: &str, id: &str, mut f: impl FnMut() -> R) {
        let full = format!("{group}/{id}");
        if let Some(filter) = &self.opts.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Warmup, counting iterations for the calibration estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.opts.warmup {
                break;
            }
        }
        let per_iter_estimate = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        // Calibrated batch size: one sample spans ~sample_time.
        let iters = ((self.opts.sample_time.as_nanos() as f64 / per_iter_estimate.max(1.0)).ceil()
            as u64)
            .max(1);
        let mut samples = Vec::with_capacity(self.opts.samples);
        for _ in 0..self.opts.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        let summary = Summary::from_samples(&samples);
        println!(
            "{full:<44} median {:>10}  (MAD {}, min {}) x{iters}",
            fmt_ns(summary.median),
            fmt_ns(summary.mad),
            fmt_ns(summary.min),
        );
        self.results.push(Record {
            group: group.to_string(),
            name: id.to_string(),
            iters_per_sample: iters,
            summary,
        });
    }

    /// Prints the closing line and writes the JSON report. Returns the
    /// report path.
    pub fn finish(self) -> PathBuf {
        let path = self
            .opts
            .json_path
            .clone()
            .unwrap_or_else(|| default_report_dir().join(format!("{}.json", self.name)));
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                panic!("cannot create report directory {}: {e}", dir.display());
            }
        }
        let report = self.to_json().to_pretty_string();
        if let Err(e) = std::fs::write(&path, report) {
            panic!("cannot write report {}: {e}", path.display());
        }
        println!(
            "bcag-bench '{}': {} measurements -> {}",
            self.name,
            self.results.len(),
            path.display()
        );
        path
    }

    /// The machine-readable report (schema `bcag-bench/v1`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str("bcag-bench/v1".into())),
            ("bench", Json::Str(self.name.clone())),
            ("quick", Json::Bool(self.opts.quick)),
            (
                "results",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("group", Json::Str(r.group.clone())),
                                ("name", Json::Str(r.name.clone())),
                                ("iters_per_sample", Json::Int(r.iters_per_sample as i64)),
                                ("samples", Json::Int(r.summary.n as i64)),
                                ("min_ns", Json::Num(r.summary.min)),
                                ("median_ns", Json::Num(r.summary.median)),
                                ("mad_ns", Json::Num(r.summary.mad)),
                                ("mean_ns", Json::Num(r.summary.mean)),
                                ("max_ns", Json::Num(r.summary.max)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Default report directory: `<cargo target dir>/bcag-bench`.
///
/// `cargo bench`/`cargo test` set the working directory to the *package*
/// root, not the workspace root, so a cwd-relative `target/` would scatter
/// reports across member crates. Resolve against `CARGO_TARGET_DIR` when
/// set, else locate the shared target directory from the executable path
/// (`<target>/<profile>/deps/<bin>`), else fall back to cwd-relative.
/// Public so benches with custom report shapes (percentile distributions
/// rather than median/MAD summaries) land next to the engine's reports.
pub fn default_report_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("bcag-bench");
    }
    if let Ok(exe) = std::env::current_exe() {
        for dir in exe.ancestors().skip(1) {
            if dir.file_name().is_some_and(|n| n == "target") {
                return dir.join("bcag-bench");
            }
        }
    }
    PathBuf::from("target/bcag-bench")
}

/// A group handle; see [`Bench::group`].
pub struct Group<'a> {
    bench: &'a mut Bench,
    group: String,
}

impl Group<'_> {
    /// Measures `f` under this group as `id`. The closure's return value
    /// is passed through [`black_box`] so the work cannot be optimized
    /// away.
    pub fn bench<R>(&mut self, id: &str, f: impl FnMut() -> R) -> &mut Self {
        let group = self.group.clone();
        self.bench.measure(&group, id, f);
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A flag's value operand. Rejects a following `--…` token instead of
/// consuming it: `cargo bench` appends `--bench` to the argument list, so
/// a trailing valueless `--json` would otherwise silently swallow it and
/// write the report to a file literally named `--bench`.
fn value_for(arg: Option<String>, flag: &str) -> String {
    match arg {
        Some(v) if !v.starts_with("--") => v,
        _ => fail(&format!("{flag} needs a value")),
    }
}

fn parse_num(arg: Option<String>, flag: &str) -> u64 {
    arg.and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail(&format!("{flag} needs a number")))
}

fn fail(msg: &str) -> ! {
    eprintln!("bcag-bench: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Options {
        Options {
            quick: true,
            samples: 5,
            warmup: Duration::from_micros(200),
            sample_time: Duration::from_micros(100),
            ..Options::default()
        }
    }

    #[test]
    fn measures_and_records() {
        let mut b = Bench::new("selftest", tiny_opts());
        b.group("g").bench("sum", || (0..100).sum::<u64>());
        assert_eq!(b.results().len(), 1);
        let r = &b.results()[0];
        assert_eq!((r.group.as_str(), r.name.as_str()), ("g", "sum"));
        assert!(r.iters_per_sample >= 1);
        assert_eq!(r.summary.n, 5);
        assert!(r.summary.min > 0.0);
        assert!(r.summary.min <= r.summary.median && r.summary.median <= r.summary.max);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut opts = tiny_opts();
        opts.filter = Some("wanted".into());
        let mut b = Bench::new("selftest", opts);
        b.group("g")
            .bench("wanted_case", || 1 + 1)
            .bench("other", || 2 + 2);
        assert_eq!(b.results().len(), 1);
        assert_eq!(b.results()[0].name, "wanted_case");
    }

    #[test]
    fn json_report_shape() {
        let mut b = Bench::new("selftest", tiny_opts());
        b.group("g").bench("a", || 0u64);
        let json = b.to_json().to_string();
        for key in [
            "\"schema\":\"bcag-bench/v1\"",
            "\"bench\":\"selftest\"",
            "\"group\":\"g\"",
            "\"median_ns\":",
            "\"mad_ns\":",
            "\"min_ns\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn finish_writes_report_file() {
        let mut b = Bench::new("selftest-finish", tiny_opts());
        let path = std::env::temp_dir()
            .join("bcag-harness-test")
            .join("report.json");
        let _ = std::fs::remove_file(&path);
        b.opts.json_path = Some(path.clone());
        b.group("g").bench("a", || 0u64);
        let written = b.finish();
        assert_eq!(written, path);
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("{\n"));
        assert!(content.contains("\"bench\": \"selftest-finish\""));
    }
}
