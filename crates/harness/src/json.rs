//! Minimal JSON value tree and serializer (the workspace carries no
//! `serde`; the bench engine's machine-readable reports are built here).
//!
//! Only what the reports need: objects preserve insertion order, numbers
//! serialize via Rust's shortest-roundtrip float formatting, and
//! non-finite floats become `null` (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (kept separate so counts serialize without a decimal point).
    Int(i64),
    /// Floating-point number (`null` if non-finite).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes to a compact JSON string.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Serializes with two-space indentation (what the committed
    /// `BENCH_*.json` snapshots use, so diffs stay line-oriented).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's Display prints the shortest roundtrip form but
                    // omits ".0" for integral floats, which is still valid
                    // JSON.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-42).to_string(), "-42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).to_string(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn compound_compact() {
        let v = Json::obj(vec![
            ("name", Json::Str("x/1".into())),
            ("vals", Json::Arr(vec![Json::Int(1), Json::Num(0.5)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(v.to_string(), r#"{"name":"x/1","vals":[1,0.5],"empty":[]}"#);
    }

    #[test]
    fn pretty_is_reparseable_shape() {
        let v = Json::obj(vec![
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::Null])),
        ]);
        let pretty = v.to_pretty_string();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    null\n  ]\n}\n");
    }
}
