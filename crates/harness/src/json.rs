//! Minimal JSON value tree, serializer and reader (the workspace carries
//! no `serde`; the bench engine's machine-readable reports and the
//! `bcag-trace` artifacts are built and validated here).
//!
//! Only what the reports need: objects preserve insertion order, numbers
//! serialize via Rust's shortest-roundtrip float formatting, and
//! non-finite floats become `null` (JSON has no NaN/Infinity). The reader
//! ([`Json::parse`]) accepts standard JSON and keeps the writer's
//! int/float distinction: a number without `.`, `e` or `E` parses as
//! [`Json::Int`] when it fits an `i64`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (kept separate so counts serialize without a decimal point).
    Int(i64),
    /// Floating-point number (`null` if non-finite).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes to a compact JSON string.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    /// Serializes with two-space indentation (what the committed
    /// `BENCH_*.json` snapshots use, so diffs stay line-oriented).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Parses a JSON document. Errors carry the byte offset and a short
    /// description — enough for tests validating emitted artifacts.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value of an `Int` node.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value of an `Int` or `Num` node.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value of a `Str` node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items of an `Arr` node.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's Display prints the shortest roundtrip form but
                    // omits ".0" for integral floats, which is still valid
                    // JSON.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent JSON reader over the raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates only arise for astral-plane text,
                            // which the writer never escapes; reject them
                            // rather than guessing a pairing.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unchanged; advance
                    // one whole character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-42).to_string(), "-42");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).to_string(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn compound_compact() {
        let v = Json::obj(vec![
            ("name", Json::Str("x/1".into())),
            ("vals", Json::Arr(vec![Json::Int(1), Json::Num(0.5)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(v.to_string(), r#"{"name":"x/1","vals":[1,0.5],"empty":[]}"#);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(
            Json::parse("9223372036854775807").unwrap(),
            Json::Int(i64::MAX)
        );
        // Too big for i64: falls back to float.
        assert_eq!(
            Json::parse("18446744073709551616").unwrap(),
            Json::Num(18446744073709551616.0)
        );
    }

    #[test]
    fn parse_strings_with_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndAé""#).unwrap(),
            Json::Str("a\"b\\c\ndAé".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"x",
            "{a:1}",
            "[1],",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn writer_reader_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::Str("trace/1 \"quoted\"\n".into())),
            (
                "vals",
                Json::Arr(vec![
                    Json::Int(1),
                    Json::Num(0.5),
                    Json::Null,
                    Json::Bool(false),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "nested",
                Json::obj(vec![(
                    "k",
                    Json::Arr(vec![Json::obj(vec![("deep", Json::Int(-7))])]),
                )]),
            ),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty_string()).unwrap(), v);
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let v = Json::parse(r#"{"a": 1, "b": [2.5, "x"], "c": {"d": "y"}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        let arr = v.get("b").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(2.5));
        assert_eq!(arr[1].as_str(), Some("x"));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_str),
            Some("y")
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
        assert_eq!(Json::Str("s".into()).as_i64(), None);
    }

    /// v1-era trace artifacts (no `histograms` / `samples` sections) must
    /// stay readable: older committed `TRACE_example.json` snapshots and
    /// node traces from mixed-version spmd launches still navigate with
    /// the same accessors the v2 reader uses.
    #[test]
    fn reads_bcag_trace_v1_documents() {
        let v1 = r#"{
          "format": "bcag-trace-full/v1",
          "lanes": [
            {
              "label": "node-0",
              "events": [["core.build", 10, 250, 0]],
              "counters": {"table_entries": 8}
            }
          ]
        }"#;
        let doc = Json::parse(v1).unwrap();
        assert_eq!(
            doc.get("format").and_then(Json::as_str),
            Some("bcag-trace-full/v1")
        );
        let lanes = doc.get("lanes").and_then(Json::as_arr).unwrap();
        assert_eq!(lanes[0].get("label").and_then(Json::as_str), Some("node-0"));
        // Sections introduced by v2 are simply absent, not an error.
        assert_eq!(lanes[0].get("histograms"), None);
        assert_eq!(lanes[0].get("samples"), None);
        assert_eq!(
            lanes[0]
                .get("counters")
                .and_then(|c| c.get("table_entries"))
                .and_then(Json::as_i64),
            Some(8)
        );
    }

    #[test]
    fn pretty_is_reparseable_shape() {
        let v = Json::obj(vec![
            ("a", Json::Int(1)),
            ("b", Json::Arr(vec![Json::Null])),
        ]);
        let pretty = v.to_pretty_string();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    null\n  ]\n}\n");
    }
}
