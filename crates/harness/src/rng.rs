//! Deterministic seedable PRNG: SplitMix64 seeding a xoshiro256++ core.
//!
//! Both algorithms are the public-domain references of Blackman & Vigna
//! (<https://prng.di.unimi.it/>). SplitMix64 expands a 64-bit seed into the
//! 256-bit xoshiro state (and is exposed on its own — it is the right tool
//! for deriving per-case seeds in [`crate::prop`]); xoshiro256++ is the
//! general-purpose generator behind every helper on [`Rng`].
//!
//! Determinism contract: for a given seed, the exact output sequence of
//! every method on [`Rng`] is stable across platforms and releases —
//! test inputs derived from a seed are reproducible forever. The golden
//! vectors in this module's tests pin that contract down.

/// The SplitMix64 generator: a tiny, fast, 64-bit-state PRNG whose main
/// role here is seed expansion and seed-sequence derivation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    x: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { x: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One-shot SplitMix64 mix: the first output for `seed`. Used to derive
/// statistically independent child seeds from a parent seed.
pub fn mix_seed(seed: u64) -> u64 {
    SplitMix64::new(seed).next_u64()
}

/// The workspace's general-purpose PRNG: xoshiro256++ seeded via
/// SplitMix64, with the uniform-range / bool / float / shuffle / choice
/// helpers the tests need.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is the first four SplitMix64
    /// outputs for `seed` (the seeding procedure recommended by the
    /// xoshiro authors; it guarantees a nonzero state for every seed).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output of the xoshiro256++ core.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `i64` in `range` (any `Range`/`RangeInclusive`-style bounds;
    /// panics on an empty range). Unbiased via rejection sampling.
    pub fn random_range<R: std::ops::RangeBounds<i64>>(&mut self, range: R) -> i64 {
        use std::ops::Bound::*;
        let lo = match range.start_bound() {
            Included(&v) => v,
            Excluded(&v) => v.checked_add(1).expect("range start overflow"),
            Unbounded => i64::MIN,
        };
        let hi = match range.end_bound() {
            Included(&v) => v,
            Excluded(&v) => v.checked_sub(1).expect("range end underflow"),
            Unbounded => i64::MAX,
        };
        assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
        // Span fits in u64 except for the full i64 domain.
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span == 1u128 << 64 {
            return self.next_u64() as i64;
        }
        let span = span as u64;
        // Rejection threshold: 2^64 mod span, so accepted draws cover a
        // whole number of span-sized buckets.
        let threshold = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return lo.wrapping_add((r % span) as i64);
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=(i as i64)) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen reference into `slice` (panics if empty).
    pub fn choice<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choice on an empty slice");
        &slice[self.random_range(0..slice.len() as i64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden vectors computed from the Blackman–Vigna reference C code.
    #[test]
    fn splitmix64_reference_vectors() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next_u64(), 0x06c4_5d18_8009_454f);
        assert_eq!(sm.next_u64(), 0xf88b_b8a8_724c_81ec);
        assert_eq!(sm.next_u64(), 0x1b39_896a_51a8_749b);

        let mut sm = SplitMix64::new(0x0123_4567_89ab_cdef);
        assert_eq!(sm.next_u64(), 0x157a_3807_a48f_aa9d);
        assert_eq!(sm.next_u64(), 0xd573_529b_34a1_d093);
        assert_eq!(sm.next_u64(), 0x2f90_b72e_996d_ccbe);
    }

    /// Golden vectors for the composed generator (SplitMix64-expanded seed
    /// into the xoshiro256++ core), reference-checked externally.
    #[test]
    fn xoshiro256pp_reference_vectors() {
        let mut rng = Rng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0x5317_5d61_490b_23df);
        assert_eq!(rng.next_u64(), 0x61da_6f3d_c380_d507);
        assert_eq!(rng.next_u64(), 0x5c0f_df91_ec9a_7bfc);
        assert_eq!(rng.next_u64(), 0x02ee_bf8c_3bbe_5e1a);
        assert_eq!(rng.next_u64(), 0x7eca_04eb_af4a_5eea);

        let mut rng = Rng::seed_from_u64(42);
        assert_eq!(rng.next_u64(), 0xd076_4d4f_4476_689f);
        assert_eq!(rng.next_u64(), 0x519e_4174_576f_3791);
        assert_eq!(rng.next_u64(), 0xfbe0_7cfb_0c24_ed8c);
        assert_eq!(rng.next_u64(), 0xb37d_9f60_0cd8_35b8);
        assert_eq!(rng.next_u64(), 0xcb23_1c38_7484_6a73);
    }

    #[test]
    fn range_stays_in_bounds_and_hits_endpoints() {
        let mut rng = Rng::seed_from_u64(7);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2_000 {
            let v = rng.random_range(-3..=5);
            assert!((-3..=5).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
        // Exclusive upper bound.
        for _ in 0..100 {
            let v = rng.random_range(0..4);
            assert!((0..4).contains(&v));
        }
        // Degenerate single-value range.
        assert_eq!(rng.random_range(9..=9), 9);
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(99);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} outside 10% of uniform"
            );
        }
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = Rng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!(
            (28_000..32_000).contains(&hits),
            "p=0.3 produced {hits}/100000"
        );
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.1)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(1234);
        let mut v: Vec<i64> = (0..50).collect();
        rng.shuffle(&mut v);
        assert_ne!(
            v,
            (0..50).collect::<Vec<i64>>(),
            "shuffle left input untouched"
        );
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<i64>>());
    }

    #[test]
    fn choice_covers_all_elements() {
        let mut rng = Rng::seed_from_u64(5);
        let items = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &v = rng.choice(&items);
            seen[(v / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(0xDEAD_BEEF);
        let mut b = Rng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
