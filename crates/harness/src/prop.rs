//! Minimal property-based testing: composable generators, configurable
//! case counts, failure shrinking by halving, and seed reporting.
//!
//! ## Model
//!
//! A property is a plain closure over a generated value that **panics on
//! violation** (ordinary `assert!`/`assert_eq!`/`unwrap` work unchanged);
//! [`assume`] discards a case that does not satisfy a precondition. A
//! [`Gen`] couples generation with an optional *shrinker*: given a failing
//! value, `shrink` proposes simpler candidates (integers halve toward
//! their lower bound), and the runner greedily re-tests candidates until
//! none fail, reporting the minimal failure it reached.
//!
//! ## Reproducibility
//!
//! Every case runs from its own 64-bit seed, derived by a SplitMix64 chain
//! from the run seed. On failure the report names the failing case's seed;
//! re-running with `BCAG_PROPTEST_SEED=<that seed>` makes it case 0 of the
//! new run, so the identical input is regenerated immediately.
//! `BCAG_PROPTEST_CASES` overrides the per-property case count.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

use crate::rng::{mix_seed, Rng};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A value generator with an optional shrinker.
pub trait Gen {
    /// The generated type.
    type Value: Clone + std::fmt::Debug;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes strictly simpler candidates for a failing `value`, most
    /// aggressive first. Candidates must themselves be valid generator
    /// outputs (the runner re-tests them blindly). Default: no shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Halving shrink schedule for an integer: the full ladder from `target`
/// back toward `v` (`target`, halfway, three-quarters, ..., one step away).
/// The runner accepts the first candidate that still fails, so the ladder
/// makes the descent a binary search on the boundary — O(log) accepted
/// steps — and the final one-step candidate guarantees local minimality.
pub fn shrink_toward(v: i64, target: i64) -> Vec<i64> {
    if v == target {
        return Vec::new();
    }
    let mut out = vec![target];
    let mut delta = (v - target) / 2;
    while delta != 0 {
        let cand = v - delta;
        if cand != *out.last().expect("nonempty") {
            out.push(cand);
        }
        delta /= 2;
    }
    out
}

/// Uniform integer in `[lo, hi]`, shrinking toward `lo`.
#[derive(Debug, Clone, Copy)]
pub struct IntRange {
    lo: i64,
    hi: i64,
}

impl IntRange {
    /// Inclusive range `[lo, hi]`.
    pub fn new(lo: i64, hi: i64) -> IntRange {
        assert!(lo <= hi, "IntRange: empty range {lo}..={hi}");
        IntRange { lo, hi }
    }
}

/// Shorthand for [`IntRange::new`]: `ints(0, 63)`.
pub fn ints(lo: i64, hi: i64) -> IntRange {
    IntRange::new(lo, hi)
}

impl Gen for IntRange {
    type Value = i64;

    fn generate(&self, rng: &mut Rng) -> i64 {
        rng.random_range(self.lo..=self.hi)
    }

    fn shrink(&self, &value: &i64) -> Vec<i64> {
        shrink_toward(value, self.lo)
            .into_iter()
            .filter(|&c| c >= self.lo && c <= self.hi)
            .collect()
    }
}

/// Generator from a closure (no shrinking; implement [`Gen`] directly when
/// a dependent-range generator needs a custom shrinker).
pub fn from_fn<T, F>(f: F) -> FromFn<F>
where
    T: Clone + std::fmt::Debug,
    F: Fn(&mut Rng) -> T,
{
    FromFn(f)
}

/// See [`from_fn`].
pub struct FromFn<F>(F);

impl<T, F> Gen for FromFn<F>
where
    T: Clone + std::fmt::Debug,
    F: Fn(&mut Rng) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.0)(rng)
    }
}

macro_rules! tuple_gen {
    ($($G:ident / $idx:tt),+) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            // One component at a time, the others held fixed.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A / 0);
tuple_gen!(A / 0, B / 1);
tuple_gen!(A / 0, B / 1, C / 2);
tuple_gen!(A / 0, B / 1, C / 2, D / 3);
tuple_gen!(A / 0, B / 1, C / 2, D / 3, E / 4);

/// `Vec<i64>` with a drawn length; shrinks by halving the length (prefix
/// truncation), then element-wise.
#[derive(Debug, Clone, Copy)]
pub struct VecOfInts {
    len: IntRange,
    elem: IntRange,
}

impl VecOfInts {
    /// Length in `[min_len, max_len]`, elements in `[lo, hi]`.
    pub fn new(min_len: i64, max_len: i64, lo: i64, hi: i64) -> VecOfInts {
        VecOfInts {
            len: IntRange::new(min_len, max_len),
            elem: IntRange::new(lo, hi),
        }
    }
}

impl Gen for VecOfInts {
    type Value = Vec<i64>;

    fn generate(&self, rng: &mut Rng) -> Vec<i64> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<i64>) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        // Aggressive first: halve the length (prefix truncation), then drop
        // single elements (reaches counterexamples not at the front), then
        // shrink individual values.
        for cand_len in self.len.shrink(&(value.len() as i64)) {
            out.push(value[..cand_len as usize].to_vec());
        }
        if value.len() as i64 > self.len.lo {
            for i in 0..value.len() {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        for (i, &x) in value.iter().enumerate() {
            for cand in self.elem.shrink(&x) {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration. [`Config::default`] reads `BCAG_PROPTEST_CASES`
/// and `BCAG_PROPTEST_SEED` (decimal or `0x`-hex) from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Passing cases required for the property to succeed.
    pub cases: u32,
    /// Run seed: the first case's seed; later case seeds are chained from
    /// it with SplitMix64.
    pub seed: u64,
    /// Upper bound on accepted shrink steps.
    pub max_shrink_steps: u32,
    /// Give up when discards exceed `cases * max_discard_ratio`.
    pub max_discard_ratio: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: env_u64("BCAG_PROPTEST_CASES")
                .map(|v| v as u32)
                .unwrap_or(128),
            seed: env_u64("BCAG_PROPTEST_SEED").unwrap_or(0xbca6_0000_0000_0001),
            max_shrink_steps: 4096,
            max_discard_ratio: 20,
        }
    }
}

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var}={raw:?} is not a u64 (decimal or 0x-hex)"),
    }
}

/// A minimized property failure (what [`check`] formats and panics with).
#[derive(Debug, Clone)]
pub struct Failure<V> {
    /// Property name.
    pub name: String,
    /// Zero-based index of the failing case within the run.
    pub case: u32,
    /// The failing case's seed — `BCAG_PROPTEST_SEED=<seed>` reproduces it.
    pub seed: u64,
    /// The originally generated failing input.
    pub original: V,
    /// The input after shrinking (equals `original` if nothing shrank).
    pub shrunk: V,
    /// Number of accepted shrink steps.
    pub shrink_steps: u32,
    /// Panic message of the (shrunk) failing input.
    pub message: String,
}

impl<V: std::fmt::Debug> Failure<V> {
    /// The human-readable report [`check`] panics with.
    pub fn report(&self) -> String {
        format!(
            "property '{}' failed at case {}\n  \
             reproduce: BCAG_PROPTEST_SEED={:#x} (the failing case becomes case 0)\n  \
             original input: {:?}\n  \
             shrunk input ({} steps): {:?}\n  \
             failure: {}",
            self.name,
            self.case,
            self.seed,
            self.original,
            self.shrink_steps,
            self.shrunk,
            self.message
        )
    }
}

struct DiscardCase;

/// Discards the current case unless `cond` holds (a precondition filter,
/// usable from properties and from generators alike).
pub fn assume(cond: bool) {
    if !cond {
        panic::panic_any(DiscardCase);
    }
}

enum Outcome {
    Pass,
    Discard,
    Fail(String),
}

fn eval<V>(prop: &impl Fn(&V), value: &V) -> Outcome {
    match panic::catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => Outcome::Pass,
        Err(payload) => {
            if payload.is::<DiscardCase>() {
                Outcome::Discard
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Outcome::Fail(s.clone())
            } else if let Some(s) = payload.downcast_ref::<&'static str>() {
                Outcome::Fail((*s).to_string())
            } else {
                Outcome::Fail("panic with non-string payload".to_string())
            }
        }
    }
}

// While a check runs, expected panics (failing candidates under shrinking,
// discards) would spam stderr through the panic hook; silence it for the
// duration, refcounted so concurrently running checks on other test threads
// nest correctly, and restore the pre-existing hook (libtest installs its
// own) when the last check finishes.
type Hook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Send + Sync>;
static HOOK_STATE: Mutex<(usize, Option<Hook>)> = Mutex::new((0, None));

struct QuietPanics;

impl QuietPanics {
    fn engage() -> QuietPanics {
        let mut state = HOOK_STATE.lock().unwrap();
        if state.0 == 0 {
            state.1 = Some(panic::take_hook());
            panic::set_hook(Box::new(|_| {}));
        }
        state.0 += 1;
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let Ok(mut state) = HOOK_STATE.lock() else {
            return;
        };
        state.0 -= 1;
        if state.0 == 0 {
            if let Some(saved) = state.1.take() {
                // `set_hook` aborts the process if invoked mid-panic; if an
                // unexpected panic is unwinding through the guard, leaving
                // the quiet hook installed is the lesser evil.
                if !std::thread::panicking() {
                    panic::set_hook(saved);
                }
            }
        }
    }
}

enum RunOutcome<V> {
    Done(Result<(), Failure<V>>),
    GaveUp(String),
    GenPanic(Box<dyn std::any::Any + Send>),
}

/// Runs `prop` against `cfg.cases` generated inputs; returns the minimized
/// failure instead of panicking (the programmatic core behind [`check`]).
pub fn run_check<G: Gen>(
    cfg: &Config,
    name: &str,
    gen: &G,
    prop: impl Fn(&G::Value),
) -> Result<(), Failure<G::Value>> {
    // All panics raised while the quiet guard is live are caught; the
    // guard is dropped before any panic leaves this function (unwinding
    // through the guard would try to reinstall the panic hook mid-panic).
    let quiet = QuietPanics::engage();
    let outcome = run_check_inner(cfg, name, gen, prop);
    drop(quiet);
    match outcome {
        RunOutcome::Done(result) => result,
        RunOutcome::GaveUp(msg) => panic!("{msg}"),
        RunOutcome::GenPanic(payload) => panic::resume_unwind(payload),
    }
}

fn run_check_inner<G: Gen>(
    cfg: &Config,
    name: &str,
    gen: &G,
    prop: impl Fn(&G::Value),
) -> RunOutcome<G::Value> {
    let mut case_seed = cfg.seed;
    let mut discards: u64 = 0;
    let mut case = 0u32;
    while case < cfg.cases {
        let value = {
            // Generators may themselves call `assume`.
            let mut rng = Rng::seed_from_u64(case_seed);
            match panic::catch_unwind(AssertUnwindSafe(|| gen.generate(&mut rng))) {
                Ok(v) => Some(v),
                Err(payload) if payload.is::<DiscardCase>() => None,
                Err(payload) => return RunOutcome::GenPanic(payload),
            }
        };
        if let Some(value) = value {
            match eval(&prop, &value) {
                Outcome::Pass => {
                    case += 1;
                    case_seed = mix_seed(case_seed);
                    continue;
                }
                Outcome::Discard => {}
                Outcome::Fail(first_message) => {
                    let (shrunk, shrink_steps, message) =
                        shrink_failure(cfg, gen, &prop, value.clone(), first_message);
                    return RunOutcome::Done(Err(Failure {
                        name: name.to_string(),
                        case,
                        seed: case_seed,
                        original: value,
                        shrunk,
                        shrink_steps,
                        message,
                    }));
                }
            }
        }
        discards += 1;
        case_seed = mix_seed(case_seed);
        if discards > cfg.cases as u64 * cfg.max_discard_ratio as u64 {
            return RunOutcome::GaveUp(format!(
                "property '{name}' gave up: {discards} discards before reaching \
                 {} cases (weaken the assumptions or the generator)",
                cfg.cases
            ));
        }
    }
    RunOutcome::Done(Ok(()))
}

fn shrink_failure<G: Gen>(
    cfg: &Config,
    gen: &G,
    prop: &impl Fn(&G::Value),
    mut current: G::Value,
    mut message: String,
) -> (G::Value, u32, String) {
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in gen.shrink(&current) {
            if let Outcome::Fail(msg) = eval(prop, &cand) {
                current = cand;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break; // local minimum: every candidate passes or discards
    }
    (current, steps, message)
}

/// Checks a property under [`Config::default`], panicking with a full
/// report (failing seed, original and shrunk inputs) on failure.
pub fn check<G: Gen>(name: &str, gen: &G, prop: impl Fn(&G::Value)) {
    check_with(&Config::default(), name, gen, prop);
}

/// [`check`] with an explicit configuration.
pub fn check_with<G: Gen>(cfg: &Config, name: &str, gen: &G, prop: impl Fn(&G::Value)) {
    if let Err(failure) = run_check(cfg, name, gen, prop) {
        panic!("{}", failure.report());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cases: u32, seed: u64) -> Config {
        Config {
            cases,
            seed,
            max_shrink_steps: 4096,
            max_discard_ratio: 20,
        }
    }

    #[test]
    fn passing_property_passes() {
        run_check(
            &cfg(200, 1),
            "sum_commutes",
            &(ints(0, 1000), ints(0, 1000)),
            |&(a, b)| {
                assert_eq!(a + b, b + a);
            },
        )
        .unwrap();
    }

    /// Shrinker convergence on a synthetic failing property: `x < 100`
    /// fails for x in [100, 10000]; halving must land exactly on the
    /// boundary value 100.
    #[test]
    fn shrinker_converges_to_boundary() {
        let failure = run_check(&cfg(500, 7), "x_lt_100", &ints(0, 10_000), |&x| {
            assert!(x < 100)
        })
        .expect_err("property must fail");
        assert_eq!(
            failure.shrunk, 100,
            "halving shrink must reach the minimal failing value"
        );
        assert!(failure.original >= 100);
        assert!(failure.shrink_steps > 0 || failure.original == 100);
    }

    /// Tuple shrinking minimizes every component independently.
    #[test]
    fn tuple_shrink_minimizes_components() {
        let gen = (ints(0, 1000), ints(0, 1000), ints(0, 1000));
        let failure = run_check(&cfg(500, 3), "sum_le_900", &gen, |&(a, b, c)| {
            assert!(a + b + c <= 900, "sum {}", a + b + c);
        })
        .expect_err("property must fail");
        let (a, b, c) = failure.shrunk;
        // Minimal failing sums are exactly 901 — any smaller candidate
        // passes, so the greedy shrinker must stop on the boundary.
        assert_eq!(a + b + c, 901, "shrunk to {:?}", failure.shrunk);
    }

    #[test]
    fn vec_shrink_reduces_length_and_values() {
        let gen = VecOfInts::new(0, 50, 0, 1_000_000);
        let failure = run_check(&cfg(500, 11), "no_big_elems", &gen, |v| {
            assert!(v.iter().all(|&x| x < 500_000));
        })
        .expect_err("property must fail");
        // Minimal counterexample: a single element equal to the boundary.
        assert_eq!(failure.shrunk, vec![500_000]);
    }

    /// The reported seed reproduces the failing input as case 0.
    #[test]
    fn reported_seed_reproduces_failure() {
        let gen = (ints(0, 100_000), ints(0, 63));
        let prop = |&(x, _m): &(i64, i64)| assert!(x < 90_000);
        let failure =
            run_check(&cfg(300, 0xABCD), "seed_repro", &gen, prop).expect_err("must fail");
        let rerun = run_check(&cfg(300, failure.seed), "seed_repro", &gen, prop)
            .expect_err("re-run with the reported seed must fail");
        assert_eq!(rerun.case, 0, "failure must reproduce as case 0");
        assert_eq!(
            rerun.original, failure.original,
            "identical regenerated input"
        );
    }

    #[test]
    fn assume_discards_without_failing() {
        run_check(&cfg(100, 5), "only_even", &ints(0, 1000), |&x| {
            assume(x % 2 == 0);
            assert_eq!(x % 2, 0);
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn impossible_assumption_gives_up() {
        let _ = run_check(&cfg(50, 5), "impossible", &ints(0, 10), |_| assume(false));
    }

    #[test]
    fn determinism_same_seed_same_failure() {
        let gen = ints(0, 1_000_000);
        let f1 = run_check(&cfg(100, 42), "d", &gen, |&x| assert!(x < 10)).unwrap_err();
        let f2 = run_check(&cfg(100, 42), "d", &gen, |&x| assert!(x < 10)).unwrap_err();
        assert_eq!(f1.original, f2.original);
        assert_eq!(f1.seed, f2.seed);
        assert_eq!(f1.shrunk, f2.shrunk);
    }

    #[test]
    fn report_contains_seed_and_inputs() {
        let failure =
            run_check(&cfg(100, 9), "fmt", &ints(0, 1000), |&x| assert!(x < 5)).unwrap_err();
        let report = failure.report();
        assert!(report.contains("property 'fmt' failed"));
        assert!(report.contains(&format!("{:#x}", failure.seed)));
        assert!(report.contains("shrunk input"));
    }

    #[test]
    fn shrink_toward_schedule() {
        assert_eq!(shrink_toward(100, 0), vec![0, 50, 75, 88, 94, 97, 99]);
        assert_eq!(shrink_toward(1, 0), vec![0]);
        assert_eq!(shrink_toward(2, 0), vec![0, 1]);
        assert!(shrink_toward(5, 5).is_empty());
        // Upward direction (negative values toward 0): same ladder mirrored.
        assert_eq!(
            shrink_toward(-100, 0),
            vec![0, -50, -75, -88, -94, -97, -99]
        );
        // Every ladder ends one step from the failing value.
        assert_eq!(*shrink_toward(1_000_000, 17).last().unwrap(), 999_999);
    }
}
