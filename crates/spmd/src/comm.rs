//! Communication sets for two-sided array assignments
//! `A(lₐ : uₐ : sₐ) = B(l_b : u_b : s_b)`.
//!
//! When the right-hand side lives on different processors than the
//! left-hand side, node programs must exchange elements. Computing *which*
//! elements (the communication sets) is the companion problem Chatterjee
//! et al. and Stichnoth et al. study; here it is a substrate for the
//! examples, built directly on the access-sequence machinery: each source
//! processor enumerates the RHS elements it owns with the core algorithm,
//! maps each element's section rank to its LHS home, and the exchange is
//! executed with one message channel per destination node
//! (`std::sync::mpsc` channels standing in for the iPSC/860's message
//! passing).

use std::sync::mpsc;

use bcag_core::error::{BcagError, Result};
use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;
use bcag_core::Layout;

use crate::darray::DistArray;

/// One element transfer: local address on the source, local address on the
/// destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Local address in the source processor's memory (RHS array).
    pub src_local: i64,
    /// Local address in the destination processor's memory (LHS array).
    pub dst_local: i64,
}

/// The full communication schedule for one array assignment: for each
/// (source, destination) pair, the ordered element transfers.
#[derive(Debug, Clone)]
pub struct CommSchedule {
    p: i64,
    /// `sets[src][dst]` lists transfers from node `src` to node `dst`
    /// in increasing section-rank order.
    sets: Vec<Vec<Vec<Transfer>>>,
}

impl CommSchedule {
    /// Builds the schedule for `A(sec_a) = B(sec_b)` where `A` is laid out
    /// `(p, k_a)` and `B` is `(p, k_b)`. Both sections must have the same
    /// element count and ascending strides.
    pub fn build(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
        method: Method,
    ) -> Result<CommSchedule> {
        let _sp = bcag_trace::span("comm.build");
        if sec_a.count() != sec_b.count() {
            return Err(BcagError::Precondition(
                "assignment requires conforming sections (equal element counts)",
            ));
        }
        if sec_a.s <= 0 || sec_b.s <= 0 {
            return Err(BcagError::Precondition(
                "communication schedule requires ascending sections; normalize first",
            ));
        }
        let mut sets = vec![vec![Vec::new(); p as usize]; p as usize];
        if sec_b.count() == 0 {
            return Ok(CommSchedule { p, sets });
        }
        let lay_a = Layout::from_raw(p, k_a);
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        for src in 0..p {
            // Enumerate the RHS elements owned by `src` with the core
            // algorithm, bounded by the section's upper bound.
            let pat = build(&problem_b, src, method)?;
            for acc in pat.iter_to(sec_b.u) {
                let t = (acc.global - sec_b.l) / sec_b.s; // section rank
                let a_elem = sec_a.l + t * sec_a.s;
                let dst = lay_a.owner(a_elem);
                sets[src as usize][dst as usize].push(Transfer {
                    src_local: acc.local,
                    dst_local: lay_a.local_addr(a_elem),
                });
            }
        }
        Ok(CommSchedule { p, sets })
    }

    /// Builds the same schedule in closed form, without enumerating the
    /// section: the ranks `t` whose B-element lives on `src` form one
    /// arithmetic progression per owned offset class (step `pk_b / d_b`),
    /// and likewise for the A-element on `dst`; each (class, class) pair
    /// intersects by the Chinese Remainder construction
    /// ([`bcag_core::intersect`]). Cost is `O(p² · k_a·k_b)` pair setup plus
    /// the output size, independent of how many *cycles* the section spans —
    /// the regime where rank-by-rank enumeration loses.
    pub fn build_lattice(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
    ) -> Result<CommSchedule> {
        use bcag_core::intersect::{intersect, Ap};
        use bcag_core::start::first_cycle_locs;

        let _sp = bcag_trace::span("comm.build_lattice");
        if sec_a.count() != sec_b.count() {
            return Err(BcagError::Precondition(
                "assignment requires conforming sections (equal element counts)",
            ));
        }
        if sec_a.s <= 0 || sec_b.s <= 0 {
            return Err(BcagError::Precondition(
                "communication schedule requires ascending sections; normalize first",
            ));
        }
        let mut sets = vec![vec![Vec::new(); p as usize]; p as usize];
        let t_max = sec_b.count() - 1;
        if t_max < 0 {
            return Ok(CommSchedule { p, sets });
        }
        let lay_a = Layout::from_raw(p, k_a);
        let lay_b = Layout::from_raw(p, k_b);
        let problem_a = Problem::new(p, k_a, sec_a.l, sec_a.s)?;
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let step_a = problem_a.period_elements(); // rank-space step, A side
        let step_b = problem_b.period_elements(); // rank-space step, B side

        // Rank-space progressions per processor: one AP per owned class.
        let rank_aps = |problem: &Problem, sec: &RegularSection, m: i64| -> Result<Vec<i64>> {
            Ok(first_cycle_locs(problem, m)?
                .into_iter()
                .map(|loc| (loc - sec.l) / sec.s)
                .collect())
        };

        for src in 0..p {
            let b_classes = rank_aps(&problem_b, sec_b, src)?;
            for dst in 0..p {
                let a_classes = rank_aps(&problem_a, sec_a, dst)?;
                let mut ts: Vec<i64> = Vec::new();
                for &tb in &b_classes {
                    let ap_b = Ap::new(tb, step_b);
                    for &ta in &a_classes {
                        let ap_a = Ap::new(ta, step_a);
                        if let Some(common) = intersect(&ap_b, &ap_a) {
                            ts.extend(common.iter_to(t_max));
                        }
                    }
                }
                ts.sort_unstable();
                sets[src as usize][dst as usize] = ts
                    .into_iter()
                    .map(|t| {
                        let b_elem = sec_b.l + t * sec_b.s;
                        let a_elem = sec_a.l + t * sec_a.s;
                        debug_assert_eq!(lay_b.owner(b_elem), src);
                        debug_assert_eq!(lay_a.owner(a_elem), dst);
                        Transfer {
                            src_local: lay_b.local_addr(b_elem),
                            dst_local: lay_a.local_addr(a_elem),
                        }
                    })
                    .collect();
            }
        }
        Ok(CommSchedule { p, sets })
    }

    /// Computes only the **message matrix** — `counts[src][dst]` = number
    /// of elements moving from `src` to `dst` — entirely in closed form:
    /// each (B-class, A-class) pair contributes `|AP ∩ AP ∩ [0, count)|`,
    /// one CRT plus one division per pair. `O(p² · k_a·k_b)` total,
    /// independent of the section length — the planning query a compiler
    /// asks when choosing between communication strategies, without
    /// materializing a single transfer.
    pub fn message_matrix(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
    ) -> Result<Vec<Vec<i64>>> {
        use bcag_core::intersect::{intersect, Ap};
        use bcag_core::start::first_cycle_locs;

        let _sp = bcag_trace::span("comm.message_matrix");
        if sec_a.count() != sec_b.count() {
            return Err(BcagError::Precondition(
                "assignment requires conforming sections (equal element counts)",
            ));
        }
        if sec_a.s <= 0 || sec_b.s <= 0 {
            return Err(BcagError::Precondition(
                "communication schedule requires ascending sections; normalize first",
            ));
        }
        let mut counts = vec![vec![0i64; p as usize]; p as usize];
        let t_max = sec_b.count() - 1;
        if t_max < 0 {
            return Ok(counts);
        }
        let problem_a = Problem::new(p, k_a, sec_a.l, sec_a.s)?;
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let step_a = problem_a.period_elements();
        let step_b = problem_b.period_elements();
        // Per-processor first ranks per class, on each side.
        let ranks = |problem: &Problem, sec: &RegularSection| -> Result<Vec<Vec<i64>>> {
            (0..p)
                .map(|m| {
                    Ok(first_cycle_locs(problem, m)?
                        .into_iter()
                        .map(|loc| (loc - sec.l) / sec.s)
                        .collect())
                })
                .collect()
        };
        let b_side = ranks(&problem_b, sec_b)?;
        let a_side = ranks(&problem_a, sec_a)?;
        for src in 0..p as usize {
            for dst in 0..p as usize {
                let mut total = 0i64;
                for &tb in &b_side[src] {
                    for &ta in &a_side[dst] {
                        if let Some(common) = intersect(&Ap::new(tb, step_b), &Ap::new(ta, step_a))
                        {
                            total += common.count_to(t_max);
                        }
                    }
                }
                counts[src][dst] = total;
            }
        }
        Ok(counts)
    }

    /// Transfers from `src` to `dst`.
    pub fn transfers(&self, src: i64, dst: i64) -> &[Transfer] {
        &self.sets[src as usize][dst as usize]
    }

    /// Total number of elements moved (equals the section size).
    pub fn total_elements(&self) -> usize {
        self.sets.iter().flatten().map(|v| v.len()).sum()
    }

    /// Number of nonlocal element transfers (src != dst): the communication
    /// volume a real machine would put on the network.
    pub fn nonlocal_elements(&self) -> usize {
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(s, row)| {
                row.iter()
                    .enumerate()
                    .filter_map(move |(d, v)| (s != d).then_some(v.len()))
            })
            .sum()
    }

    /// Executes `A(sec_a) = B(sec_b)` by message passing: every node
    /// packs its outgoing transfers into per-destination messages, sends
    /// them over channels, then drains its inbox and applies the writes.
    ///
    /// When tracing is enabled, each node lane (`node-<src>`) records a
    /// `comm.execute.node` span and the communication counters:
    /// `elements_moved` (all outgoing transfers), `elements_nonlocal` and
    /// `messages_sent` (src ≠ dst only), `bytes_packed` (payload bytes
    /// packed out of B's local memory) and `recv_wait_ns` (time blocked on
    /// the inbox during the receive phase).
    pub fn execute<T>(&self, a: &mut DistArray<T>, b: &DistArray<T>) -> Result<()>
    where
        T: Clone + Send + Sync,
    {
        assert_eq!(a.p(), self.p, "LHS machine size mismatch");
        assert_eq!(b.p(), self.p, "RHS machine size mismatch");
        let _sp = bcag_trace::span("comm.execute");
        let p = self.p as usize;
        // One inbox per node; each node thread gets its own clones of every
        // outgoing endpoint (mpsc senders are Clone, receivers move in).
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..p).map(|_| mpsc::channel::<(i64, T)>()).unzip();
        let sets = &self.sets;
        let locals_a = a.locals_mut();
        std::thread::scope(|scope| {
            for ((src, local_a), inbox) in locals_a.iter_mut().enumerate().zip(receivers) {
                let senders: Vec<mpsc::Sender<(i64, T)>> = senders.clone();
                scope.spawn(move || {
                    if bcag_trace::enabled() {
                        bcag_trace::set_lane_label(&format!("node-{src}"));
                    }
                    let _sp = bcag_trace::span("comm.execute.node");
                    // Send phase: pack from B's local memory.
                    let local_b = b.local(src as i64);
                    for (dst, transfers) in sets[src].iter().enumerate() {
                        bcag_trace::count("elements_moved", transfers.len() as u64);
                        bcag_trace::count(
                            "bytes_packed",
                            (transfers.len() * std::mem::size_of::<T>()) as u64,
                        );
                        if dst != src && !transfers.is_empty() {
                            bcag_trace::count("messages_sent", 1);
                            bcag_trace::count("elements_nonlocal", transfers.len() as u64);
                        }
                        for tr in transfers {
                            let v = local_b[tr.src_local as usize].clone();
                            senders[dst]
                                .send((tr.dst_local, v))
                                .expect("receiver alive during send phase");
                        }
                    }
                    // Receive phase: apply writes to A's local memory. Each
                    // node knows exactly how many elements it will receive
                    // (the schedule is global knowledge, as on a real SPMD
                    // machine), so a counted loop avoids a termination
                    // protocol.
                    let expected: usize = sets.iter().map(|row| row[src].len()).sum();
                    let mut wait_ns = 0u64;
                    for _ in 0..expected {
                        let t0 = bcag_trace::enabled().then(std::time::Instant::now);
                        let (addr, v) = inbox.recv().expect("message for expected count");
                        if let Some(t0) = t0 {
                            wait_ns += t0.elapsed().as_nanos() as u64;
                        }
                        local_a[addr as usize] = v;
                    }
                    bcag_trace::count("recv_wait_ns", wait_ns);
                });
            }
        });
        drop(senders);
        Ok(())
    }
}

/// Convenience wrapper: build the schedule and execute it.
pub fn assign_array<T>(
    a: &mut DistArray<T>,
    sec_a: &RegularSection,
    b: &DistArray<T>,
    sec_b: &RegularSection,
    method: Method,
) -> Result<()>
where
    T: Clone + Send + Sync,
{
    assert_eq!(a.p(), b.p(), "arrays must live on the same machine");
    let schedule = CommSchedule::build(a.p(), a.k(), sec_a, b.k(), sec_b, method)?;
    schedule.execute(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_assign(a: &mut [i64], sec_a: &RegularSection, b: &[i64], sec_b: &RegularSection) {
        let ea: Vec<i64> = sec_a.iter().collect();
        let eb: Vec<i64> = sec_b.iter().collect();
        assert_eq!(ea.len(), eb.len());
        for (ia, ib) in ea.iter().zip(&eb) {
            a[*ia as usize] = b[*ib as usize];
        }
    }

    #[test]
    fn same_layout_strided_copy() {
        let n = 300i64;
        let bg: Vec<i64> = (0..n).map(|i| 1000 + i).collect();
        let b = DistArray::from_global(4, 8, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, 0i64).unwrap();
        let sec_a = RegularSection::new(0, 290, 10).unwrap();
        let sec_b = RegularSection::new(5, 295, 10).unwrap();
        assign_array(&mut a, &sec_a, &b, &sec_b, Method::Lattice).unwrap();

        let mut expect = vec![0i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn different_block_sizes_redistribution() {
        // A is cyclic(8), B is cyclic(3): a genuine redistribution.
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| i * i).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, -1i64).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        assign_array(&mut a, &sec_a, &b, &sec_b, Method::Lattice).unwrap();

        let mut expect = vec![-1i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn schedule_accounting() {
        let sec_a = RegularSection::new(0, 99, 1).unwrap();
        let sec_b = RegularSection::new(0, 99, 1).unwrap();
        let sched = CommSchedule::build(4, 8, &sec_a, 8, &sec_b, Method::Lattice).unwrap();
        assert_eq!(sched.total_elements(), 100);
        // Identical layouts and sections: everything is local.
        assert_eq!(sched.nonlocal_elements(), 0);

        // Shifted section: most transfers cross processors.
        let sec_b2 = RegularSection::new(8, 107, 1).unwrap();
        let sched2 = CommSchedule::build(4, 8, &sec_a, 8, &sec_b2, Method::Lattice).unwrap();
        assert_eq!(sched2.total_elements(), 100);
        assert!(sched2.nonlocal_elements() > 0);
    }

    #[test]
    fn nonconforming_sections_rejected() {
        let sec_a = RegularSection::new(0, 99, 1).unwrap();
        let sec_b = RegularSection::new(0, 99, 2).unwrap();
        assert!(CommSchedule::build(4, 8, &sec_a, 8, &sec_b, Method::Lattice).is_err());
    }

    #[test]
    fn lattice_schedule_equals_enumerated_schedule() {
        for (p, k_a, k_b, la, lb, s_a, s_b, count) in [
            (4i64, 8i64, 3i64, 2i64, 1i64, 4i64, 4i64, 58i64),
            (3, 5, 5, 0, 0, 1, 1, 100),
            (2, 4, 8, 7, 3, 9, 5, 40),
            (5, 2, 3, 0, 11, 13, 2, 77),
            (1, 4, 4, 0, 0, 3, 3, 10),
        ] {
            let sec_a = RegularSection::new(la, la + (count - 1) * s_a, s_a).unwrap();
            let sec_b = RegularSection::new(lb, lb + (count - 1) * s_b, s_b).unwrap();
            let enumerated =
                CommSchedule::build(p, k_a, &sec_a, k_b, &sec_b, Method::Lattice).unwrap();
            let lattice = CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap();
            for src in 0..p {
                for dst in 0..p {
                    assert_eq!(
                        lattice.transfers(src, dst),
                        enumerated.transfers(src, dst),
                        "p={p} kA={k_a} kB={k_b} src={src} dst={dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn message_matrix_matches_materialized_schedule() {
        for (p, k_a, k_b, la, lb, s_a, s_b, count) in [
            (4i64, 8i64, 3i64, 2i64, 1i64, 4i64, 4i64, 58i64),
            (3, 5, 5, 0, 0, 1, 1, 100),
            (2, 4, 8, 7, 3, 9, 5, 40),
            (5, 2, 3, 0, 11, 13, 2, 77),
        ] {
            let sec_a = RegularSection::new(la, la + (count - 1) * s_a, s_a).unwrap();
            let sec_b = RegularSection::new(lb, lb + (count - 1) * s_b, s_b).unwrap();
            let sched = CommSchedule::build(p, k_a, &sec_a, k_b, &sec_b, Method::Lattice).unwrap();
            let matrix = CommSchedule::message_matrix(p, k_a, &sec_a, k_b, &sec_b).unwrap();
            for src in 0..p {
                for dst in 0..p {
                    assert_eq!(
                        matrix[src as usize][dst as usize],
                        sched.transfers(src, dst).len() as i64,
                        "p={p} kA={k_a} kB={k_b} src={src} dst={dst}"
                    );
                }
            }
            // Conservation: the matrix sums to the section size.
            let total: i64 = matrix.iter().flatten().sum();
            assert_eq!(total, count);
        }
    }

    #[test]
    fn message_matrix_scales_without_materialization() {
        // A section far too large to enumerate cheaply: counts still come
        // out exactly (checked by conservation and symmetry properties).
        let n = 50_000_000i64;
        let sec = RegularSection::new(0, n - 1, 1).unwrap();
        let shifted = RegularSection::new(1, n, 1).unwrap();
        let m = CommSchedule::message_matrix(8, 16, &sec, 16, &shifted).unwrap();
        let total: i64 = m.iter().flatten().sum();
        assert_eq!(total, n);
        // Shift by 1 within blocks of 16: 15/16 of elements stay local.
        let local: i64 = (0..8).map(|i| m[i][i]).sum();
        assert!(
            local * 16 > total * 14,
            "local fraction ~15/16, got {local}/{total}"
        );
    }

    #[test]
    fn lattice_schedule_executes_correctly() {
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| 7 * i).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, -1i64).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        let sched = CommSchedule::build_lattice(4, 8, &sec_a, 3, &sec_b).unwrap();
        sched.execute(&mut a, &b).unwrap();
        let mut expect = vec![-1i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn empty_sections_are_noop() {
        let sec = RegularSection::new(10, 5, 1).unwrap();
        let sched = CommSchedule::build(2, 4, &sec, 4, &sec, Method::Lattice).unwrap();
        assert_eq!(sched.total_elements(), 0);
        let b = DistArray::new(2, 4, 20, 3i64).unwrap();
        let mut a = DistArray::new(2, 4, 20, 7i64).unwrap();
        sched.execute(&mut a, &b).unwrap();
        assert!(a.to_global().iter().all(|&x| x == 7));
    }
}
