//! Communication sets for two-sided array assignments
//! `A(lₐ : uₐ : sₐ) = B(l_b : u_b : s_b)`.
//!
//! When the right-hand side lives on different processors than the
//! left-hand side, node programs must exchange elements. Computing *which*
//! elements (the communication sets) is the companion problem Chatterjee
//! et al. and Stichnoth et al. study; here it is a substrate for the
//! examples, built directly on the access-sequence machinery: each source
//! processor enumerates the RHS elements it owns with the core algorithm,
//! maps each element's section rank to its LHS home, and the exchange is
//! executed by message passing (`std::sync::mpsc` channels standing in for
//! the iPSC/860's message passing). Node bodies launch through
//! [`crate::pool`]: pooled mode reuses the resident fabric and recycles
//! message buffers through each node's arena; scoped mode reproduces the
//! historical per-call spawn. Both modes run the identical body, so all
//! deterministic counter totals are bit-identical across modes.
//!
//! The schedule itself is stored flat: one CSR buffer of [`Transfer`]s with
//! a `p² + 1` offset table ([`crate::csr::Csr`]), so building allocates
//! O(1) vectors instead of the O(p²) of a `Vec<Vec<Vec<_>>>` encoding and
//! a per-pair transfer list is a free slice. Execution batches: each node
//! packs its outgoing transfers for one destination into a single message
//! (see [`PackValue`]) and `src == dst` transfers never touch a channel.
//! The historical one-message-per-element path survives behind
//! [`ExecMode::PerElement`] for ablation.

use std::sync::mpsc;

use bcag_core::error::{BcagError, Result};
use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;
use bcag_core::Layout;

use crate::csr::Csr;
use crate::darray::DistArray;
use crate::pool::{self, lock_clean, LaunchMode, NodeCtx};

/// One element transfer: local address on the source, local address on the
/// destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Local address in the source processor's memory (RHS array).
    pub src_local: i64,
    /// Local address in the destination processor's memory (LHS array).
    pub dst_local: i64,
}

/// Payload types the communication engine can move.
///
/// The two hooks cover the engine's inner loops: packing outgoing
/// transfers into a message buffer and applying same-node transfers in
/// place. The default bodies clone element by element — correct for any
/// `Clone` payload. The macro below overrides both for the primitive
/// numeric types with straight copies, so `i64`/`f64` payloads (the common
/// case) never run a `clone()` call per element. (Rust's coherence rules
/// forbid a blanket `impl<T: Copy>` next to the `String`/`Vec` impls, so
/// the fast path is spelled out per primitive.)
///
/// The `'static` bound lets packed messages travel the type-erased pool
/// fabric (`Box<dyn Any + Send>`) and rest in buffer arenas between
/// statements.
pub trait PackValue: Clone + Send + Sync + 'static {
    /// Appends `(dst_local, value)` records for `transfers` onto `out`,
    /// reading payloads from the source node's local memory `src`.
    fn pack_into(src: &[Self], transfers: &[Transfer], out: &mut Vec<(i64, Self)>) {
        out.reserve(transfers.len());
        for tr in transfers {
            out.push((tr.dst_local, src[tr.src_local as usize].clone()));
        }
    }

    /// Applies same-node transfers straight from `src` into `dst`, without
    /// staging through a message.
    fn apply_local(dst: &mut [Self], src: &[Self], transfers: &[Transfer]) {
        for tr in transfers {
            dst[tr.dst_local as usize] = src[tr.src_local as usize].clone();
        }
    }
}

macro_rules! pack_value_by_copy {
    ($($t:ty),* $(,)?) => {$(
        impl PackValue for $t {
            fn pack_into(src: &[Self], transfers: &[Transfer], out: &mut Vec<(i64, Self)>) {
                out.reserve(transfers.len());
                for tr in transfers {
                    out.push((tr.dst_local, src[tr.src_local as usize]));
                }
            }

            fn apply_local(dst: &mut [Self], src: &[Self], transfers: &[Transfer]) {
                for tr in transfers {
                    dst[tr.dst_local as usize] = src[tr.src_local as usize];
                }
            }
        }
    )*};
}

pack_value_by_copy!(
    i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64, bool, char
);

impl<U: Copy + Send + Sync + 'static, const N: usize> PackValue for [U; N] {
    fn pack_into(src: &[Self], transfers: &[Transfer], out: &mut Vec<(i64, Self)>) {
        out.reserve(transfers.len());
        for tr in transfers {
            out.push((tr.dst_local, src[tr.src_local as usize]));
        }
    }

    fn apply_local(dst: &mut [Self], src: &[Self], transfers: &[Transfer]) {
        for tr in transfers {
            dst[tr.dst_local as usize] = src[tr.src_local as usize];
        }
    }
}

impl PackValue for String {}
impl<U: Clone + Send + Sync + 'static> PackValue for Vec<U> {}
impl<U: Clone + Send + Sync + 'static> PackValue for Option<U> {}

/// Selects the data-movement strategy of [`CommSchedule::execute_with`] —
/// an ablation switch in the spirit of [`Method`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// One message per non-empty (src, dst ≠ src) pair; same-node transfers
    /// apply directly into the LHS local memory. The default.
    Batched,
    /// One message per element, self-transfers included — the historical
    /// baseline, kept for ablation benchmarks.
    PerElement,
}

impl ExecMode {
    /// Short human-readable name (used by benches).
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::Batched => "batched",
            ExecMode::PerElement => "per-element",
        }
    }
}

/// The full communication schedule for one array assignment: for each
/// (source, destination) pair, the ordered element transfers, stored as
/// one flat CSR buffer with rows indexed `src * p + dst`.
#[derive(Debug, Clone)]
pub struct CommSchedule {
    p: i64,
    /// Row `src * p + dst` lists transfers from node `src` to node `dst`
    /// in increasing section-rank order.
    pairs: Csr<Transfer>,
}

/// Closed-form `p × p` message matrix: `get(src, dst)` is the number of
/// elements moving from `src` to `dst`, stored flat (row-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageMatrix {
    p: i64,
    counts: Vec<i64>,
}

impl MessageMatrix {
    /// Machine size.
    pub fn p(&self) -> i64 {
        self.p
    }

    /// Elements moving from `src` to `dst`.
    pub fn get(&self, src: i64, dst: i64) -> i64 {
        self.counts[(src * self.p + dst) as usize]
    }

    /// Row `src`: per-destination counts as a slice.
    pub fn row(&self, src: i64) -> &[i64] {
        let base = (src * self.p) as usize;
        &self.counts[base..base + self.p as usize]
    }

    /// All `(src, dst, count)` entries in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (i64, i64, i64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as i64 / self.p, i as i64 % self.p, n))
    }

    /// Total element count (equals the section size).
    pub fn total(&self) -> i64 {
        self.counts.iter().sum()
    }
}

impl CommSchedule {
    /// Builds the schedule for `A(sec_a) = B(sec_b)` where `A` is laid out
    /// `(p, k_a)` and `B` is `(p, k_b)`. Both sections must have the same
    /// element count and ascending strides.
    pub fn build(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
        method: Method,
    ) -> Result<CommSchedule> {
        let _sp = bcag_trace::span("comm.build");
        check_sections(sec_a, sec_b)?;
        if sec_b.count() == 0 {
            return Ok(CommSchedule {
                p,
                pairs: Csr::empty((p * p) as usize),
            });
        }
        let pn = p as usize;
        let lay_a = Layout::from_raw(p, k_a);
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let mut pairs = Csr::builder();
        // Scratch reused across sources: transfers tagged with their
        // destination, then scattered into destination order by a stable
        // counting sort — no per-pair vectors anywhere.
        let mut tagged: Vec<(usize, Transfer)> = Vec::new();
        let mut slots: Vec<Transfer> = Vec::new();
        let mut cursor: Vec<usize> = vec![0; pn];
        for src in 0..p {
            // Enumerate the RHS elements owned by `src` with the core
            // algorithm, bounded by the section's upper bound.
            let pat = build(&problem_b, src, method)?;
            tagged.clear();
            cursor.fill(0);
            for acc in pat.iter_to(sec_b.u) {
                let t = (acc.global - sec_b.l) / sec_b.s; // section rank
                let a_elem = sec_a.l + t * sec_a.s;
                let dst = lay_a.owner(a_elem) as usize;
                tagged.push((
                    dst,
                    Transfer {
                        src_local: acc.local,
                        dst_local: lay_a.local_addr(a_elem),
                    },
                ));
                cursor[dst] += 1;
            }
            // Exclusive prefix sum: cursor[d] becomes row d's write position.
            let mut next = 0usize;
            for c in cursor.iter_mut() {
                let n = *c;
                *c = next;
                next += n;
            }
            slots.clear();
            slots.resize(
                tagged.len(),
                Transfer {
                    src_local: 0,
                    dst_local: 0,
                },
            );
            for &(dst, tr) in &tagged {
                slots[cursor[dst]] = tr;
                cursor[dst] += 1;
            }
            // cursor[d] now holds row d's end offset.
            let mut begin = 0usize;
            for &end in cursor.iter() {
                pairs.extend_row(&slots[begin..end]);
                pairs.finish_row();
                begin = end;
            }
        }
        Ok(CommSchedule {
            p,
            pairs: pairs.finish(pn * pn),
        })
    }

    /// Builds the same schedule in closed form, without enumerating the
    /// section: the ranks `t` whose B-element lives on `src` form one
    /// arithmetic progression per owned offset class (step `pk_b / d_b`),
    /// and likewise for the A-element on `dst`; each (class, class) pair
    /// intersects by the Chinese Remainder construction
    /// ([`bcag_core::intersect`]). Cost is `O(p² · k_a·k_b)` pair setup plus
    /// the output size, independent of how many *cycles* the section spans —
    /// the regime where rank-by-rank enumeration loses.
    pub fn build_lattice(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
    ) -> Result<CommSchedule> {
        use bcag_core::intersect::{intersect, Ap};
        use bcag_core::start::first_cycle_locs;

        let _sp = bcag_trace::span("comm.build_lattice");
        check_sections(sec_a, sec_b)?;
        let t_max = sec_b.count() - 1;
        if t_max < 0 {
            return Ok(CommSchedule {
                p,
                pairs: Csr::empty((p * p) as usize),
            });
        }
        let lay_a = Layout::from_raw(p, k_a);
        let lay_b = Layout::from_raw(p, k_b);
        let problem_a = Problem::new(p, k_a, sec_a.l, sec_a.s)?;
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let step_a = problem_a.period_elements(); // rank-space step, A side
        let step_b = problem_b.period_elements(); // rank-space step, B side

        // Rank-space progressions per processor: one AP per owned class.
        let rank_aps = |problem: &Problem, sec: &RegularSection, m: i64| -> Result<Vec<i64>> {
            Ok(first_cycle_locs(problem, m)?
                .into_iter()
                .map(|loc| (loc - sec.l) / sec.s)
                .collect())
        };

        // The A-side classes depend only on the destination — compute them
        // once instead of once per (src, dst) pair.
        let a_classes_by_dst: Vec<Vec<i64>> = (0..p)
            .map(|dst| rank_aps(&problem_a, sec_a, dst))
            .collect::<Result<_>>()?;

        let mut pairs = Csr::builder();
        let mut ts: Vec<i64> = Vec::new(); // scratch reused across pairs
        for src in 0..p {
            let b_classes = rank_aps(&problem_b, sec_b, src)?;
            for (dst, a_classes) in a_classes_by_dst.iter().enumerate() {
                ts.clear();
                for &tb in &b_classes {
                    let ap_b = Ap::new(tb, step_b);
                    for &ta in a_classes {
                        let ap_a = Ap::new(ta, step_a);
                        if let Some(common) = intersect(&ap_b, &ap_a) {
                            ts.reserve(common.count_to(t_max) as usize);
                            ts.extend(common.iter_to(t_max));
                        }
                    }
                }
                ts.sort_unstable();
                for &t in &ts {
                    let b_elem = sec_b.l + t * sec_b.s;
                    let a_elem = sec_a.l + t * sec_a.s;
                    debug_assert_eq!(lay_b.owner(b_elem), src);
                    debug_assert_eq!(lay_a.owner(a_elem), dst as i64);
                    pairs.push(Transfer {
                        src_local: lay_b.local_addr(b_elem),
                        dst_local: lay_a.local_addr(a_elem),
                    });
                }
                pairs.finish_row();
            }
        }
        Ok(CommSchedule {
            p,
            pairs: pairs.finish((p * p) as usize),
        })
    }

    /// Computes only the **message matrix** — `get(src, dst)` = number of
    /// elements moving from `src` to `dst` — entirely in closed form: each
    /// (B-class, A-class) pair contributes `|AP ∩ AP ∩ [0, count)|`, one
    /// CRT plus one division per pair. `O(p² · k_a·k_b)` total, independent
    /// of the section length — the planning query a compiler asks when
    /// choosing between communication strategies, without materializing a
    /// single transfer.
    pub fn message_matrix(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
    ) -> Result<MessageMatrix> {
        use bcag_core::intersect::{intersect, Ap};
        use bcag_core::start::first_cycle_locs;

        let _sp = bcag_trace::span("comm.message_matrix");
        check_sections(sec_a, sec_b)?;
        let mut counts = vec![0i64; (p * p) as usize];
        let t_max = sec_b.count() - 1;
        if t_max < 0 {
            return Ok(MessageMatrix { p, counts });
        }
        let problem_a = Problem::new(p, k_a, sec_a.l, sec_a.s)?;
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let step_a = problem_a.period_elements();
        let step_b = problem_b.period_elements();
        // Per-processor first ranks per class, on each side.
        let ranks = |problem: &Problem, sec: &RegularSection| -> Result<Vec<Vec<i64>>> {
            (0..p)
                .map(|m| {
                    Ok(first_cycle_locs(problem, m)?
                        .into_iter()
                        .map(|loc| (loc - sec.l) / sec.s)
                        .collect())
                })
                .collect()
        };
        let b_side = ranks(&problem_b, sec_b)?;
        let a_side = ranks(&problem_a, sec_a)?;
        for src in 0..p as usize {
            for dst in 0..p as usize {
                let mut total = 0i64;
                for &tb in &b_side[src] {
                    for &ta in &a_side[dst] {
                        if let Some(common) = intersect(&Ap::new(tb, step_b), &Ap::new(ta, step_a))
                        {
                            total += common.count_to(t_max);
                        }
                    }
                }
                counts[src * p as usize + dst] = total;
            }
        }
        Ok(MessageMatrix { p, counts })
    }

    /// Transfers from `src` to `dst` — a free slice into the CSR buffer.
    pub fn transfers(&self, src: i64, dst: i64) -> &[Transfer] {
        self.pair(src as usize, dst as usize)
    }

    fn pair(&self, src: usize, dst: usize) -> &[Transfer] {
        self.pairs.row(src * self.p as usize + dst)
    }

    /// Total number of elements moved (equals the section size).
    pub fn total_elements(&self) -> usize {
        self.pairs.len()
    }

    /// Number of nonlocal element transfers (src != dst): the communication
    /// volume a real machine would put on the network.
    pub fn nonlocal_elements(&self) -> usize {
        let p = self.p as usize;
        (0..p)
            .flat_map(|s| (0..p).filter_map(move |d| (s != d).then_some((s, d))))
            .map(|(s, d)| self.pair(s, d).len())
            .sum()
    }

    /// Number of non-empty (src, dst ≠ src) pairs — exactly the number of
    /// messages the batched executor sends, and the schedule-side twin of
    /// the traced `messages_sent` counter.
    pub fn nonempty_nonlocal_pairs(&self) -> usize {
        let p = self.p as usize;
        (0..p)
            .flat_map(|s| (0..p).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d && !self.pair(s, d).is_empty())
            .count()
    }

    /// Executes `A(sec_a) = B(sec_b)` by message passing with the default
    /// [`ExecMode::Batched`] strategy: every node packs its outgoing
    /// transfers for one destination into a single message, sends one
    /// message per non-empty (src, dst ≠ src) pair, applies same-node
    /// transfers directly into its own memory, then drains its inbox.
    ///
    /// When tracing is enabled, each node lane (`node-<src>`) records a
    /// `comm.execute.node` span and the communication counters:
    /// `elements_moved` (all outgoing transfers), `elements_nonlocal` and
    /// `messages_sent` (src ≠ dst only), `bytes_packed` (payload bytes
    /// packed out of B's local memory) and `recv_wait_ns` (time blocked on
    /// the inbox during the receive phase). Counter totals are identical
    /// across both execution modes.
    pub fn execute<T: PackValue>(&self, a: &mut DistArray<T>, b: &DistArray<T>) -> Result<()> {
        self.execute_with(a, b, ExecMode::Batched)
    }

    /// [`CommSchedule::execute`] with an explicit strategy — the ablation
    /// entry point for comparing batched against per-element movement.
    /// Launches with the process-default [`LaunchMode`].
    pub fn execute_with<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        mode: ExecMode,
    ) -> Result<()> {
        self.execute_launched(a, b, mode, pool::default_launch())
    }

    /// [`CommSchedule::execute_with`] with an explicit [`LaunchMode`] —
    /// the A/B entry point the pooled-vs-scoped benchmarks and oracle
    /// tests use. Both modes run the identical node body, so every
    /// deterministic counter total is mode-independent by construction.
    pub fn execute_launched<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        mode: ExecMode,
        launch: LaunchMode,
    ) -> Result<()> {
        assert_eq!(a.p(), self.p, "LHS machine size mismatch");
        assert_eq!(b.p(), self.p, "RHS machine size mismatch");
        let _sp = bcag_trace::span("comm.execute");
        match mode {
            ExecMode::Batched => self.execute_batched(a, b, launch),
            ExecMode::PerElement => self.execute_per_element(a, b, launch),
        }
        Ok(())
    }

    fn execute_batched<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        launch: LaunchMode,
    ) {
        let p = self.p as usize;
        // Packed messages travel the pool fabric as type-erased
        // envelopes; their `Vec` buffers come from (and return to) each
        // node's arena, so steady-state statements allocate nothing.
        let slots: Vec<std::sync::Mutex<&mut Vec<T>>> = a
            .locals_mut()
            .iter_mut()
            .map(std::sync::Mutex::new)
            .collect();
        pool::launch(self.p, launch, |me, ctx| {
            let _sp = bcag_trace::span("comm.execute.node");
            let mut slot = lock_clean(&slots[me]);
            let local_a: &mut Vec<T> = &mut slot;
            // Send phase: pack from B's local memory, one message per
            // non-empty destination; the self-row goes straight into A's
            // local memory.
            let local_b = b.local(me as i64);
            for dst in 0..p {
                let transfers = self.pair(me, dst);
                bcag_trace::count("elements_moved", transfers.len() as u64);
                bcag_trace::count(
                    "bytes_packed",
                    (transfers.len() * std::mem::size_of::<T>()) as u64,
                );
                if dst == me {
                    T::apply_local(local_a, local_b, transfers);
                    continue;
                }
                if transfers.is_empty() {
                    continue;
                }
                bcag_trace::count("messages_sent", 1);
                bcag_trace::count("elements_nonlocal", transfers.len() as u64);
                let mut msg: Vec<(i64, T)> = ctx.take_buf();
                T::pack_into(local_b, transfers, &mut msg);
                ctx.send(dst, Box::new(msg));
            }
            // Receive phase: the schedule is global knowledge (as on a
            // real SPMD machine), so each node knows exactly how many
            // messages are inbound and a counted loop avoids a
            // termination protocol.
            let expected = (0..p)
                .filter(|&s| s != me && !self.pair(s, me).is_empty())
                .count();
            let mut wait_ns = 0u64;
            for _ in 0..expected {
                let t0 = bcag_trace::enabled().then(std::time::Instant::now);
                let env = ctx.recv();
                if let Some(t0) = t0 {
                    wait_ns += t0.elapsed().as_nanos() as u64;
                }
                let mut msg = *env
                    .downcast::<Vec<(i64, T)>>()
                    .expect("batched message payload type");
                for (addr, v) in msg.drain(..) {
                    local_a[addr as usize] = v;
                }
                ctx.put_buf(msg);
            }
            bcag_trace::count("recv_wait_ns", wait_ns);
        });
    }

    fn execute_per_element<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        launch: LaunchMode,
    ) {
        let p = self.p as usize;
        // One typed inbox per node, one message per element
        // (self-transfers included) — the pre-batching behavior,
        // preserved for ablation. The channels are per-call: this path
        // measures exactly the historical protocol; only the launch
        // (pooled vs scoped) varies.
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..p).map(|_| mpsc::channel::<(i64, T)>()).unzip();
        let senders = &senders;
        let inboxes: Vec<std::sync::Mutex<Option<mpsc::Receiver<(i64, T)>>>> = receivers
            .into_iter()
            .map(|r| std::sync::Mutex::new(Some(r)))
            .collect();
        let slots: Vec<std::sync::Mutex<&mut Vec<T>>> = a
            .locals_mut()
            .iter_mut()
            .map(std::sync::Mutex::new)
            .collect();
        pool::launch(self.p, launch, |me, ctx| {
            let _sp = bcag_trace::span("comm.execute.node");
            let inbox = lock_clean(&inboxes[me]).take().expect("one job per node");
            let mut slot = lock_clean(&slots[me]);
            let local_a: &mut Vec<T> = &mut slot;
            let local_b = b.local(me as i64);
            for dst in 0..p {
                let transfers = self.pair(me, dst);
                bcag_trace::count("elements_moved", transfers.len() as u64);
                bcag_trace::count(
                    "bytes_packed",
                    (transfers.len() * std::mem::size_of::<T>()) as u64,
                );
                if dst != me && !transfers.is_empty() {
                    bcag_trace::count("messages_sent", 1);
                    bcag_trace::count("elements_nonlocal", transfers.len() as u64);
                }
                for tr in transfers {
                    let v = local_b[tr.src_local as usize].clone();
                    senders[dst]
                        .send((tr.dst_local, v))
                        .expect("receiver alive during send phase");
                }
            }
            let expected: usize = (0..p).map(|s| self.pair(s, me).len()).sum();
            let mut wait_ns = 0u64;
            for _ in 0..expected {
                let t0 = bcag_trace::enabled().then(std::time::Instant::now);
                let (addr, v) = recv_typed(&inbox, ctx);
                if let Some(t0) = t0 {
                    wait_ns += t0.elapsed().as_nanos() as u64;
                }
                local_a[addr as usize] = v;
            }
            bcag_trace::count("recv_wait_ns", wait_ns);
        });
    }
}

/// Blocks for one typed message while watching the pool fabric for a
/// peer's poison, so a panicking node job cannot strand the counted
/// receive loop of [`ExecMode::PerElement`].
///
/// The `try_recv` fast path keeps the steady flow at plain-`recv` cost
/// (no deadline computation per message); the timeout machinery only
/// engages when the queue is momentarily empty.
fn recv_typed<M>(inbox: &mpsc::Receiver<M>, ctx: &NodeCtx) -> M {
    // Brief spin bridges the gap when the receiver momentarily outruns
    // its senders, avoiding a park/unpark round-trip per message.
    for _ in 0..128 {
        if let Ok(msg) = inbox.try_recv() {
            return msg;
        }
        std::hint::spin_loop();
    }
    loop {
        match inbox.recv_timeout(std::time::Duration::from_millis(25)) {
            Ok(msg) => return msg,
            Err(mpsc::RecvTimeoutError::Timeout) => ctx.check_poison(),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("typed channel closed before the counted receive finished")
            }
        }
    }
}

fn check_sections(sec_a: &RegularSection, sec_b: &RegularSection) -> Result<()> {
    if sec_a.count() != sec_b.count() {
        return Err(BcagError::Precondition(
            "assignment requires conforming sections (equal element counts)",
        ));
    }
    if sec_a.s <= 0 || sec_b.s <= 0 {
        return Err(BcagError::Precondition(
            "communication schedule requires ascending sections; normalize first",
        ));
    }
    Ok(())
}

/// Convenience wrapper: build the schedule and execute it.
pub fn assign_array<T: PackValue>(
    a: &mut DistArray<T>,
    sec_a: &RegularSection,
    b: &DistArray<T>,
    sec_b: &RegularSection,
    method: Method,
) -> Result<()> {
    assert_eq!(a.p(), b.p(), "arrays must live on the same machine");
    let schedule = CommSchedule::build(a.p(), a.k(), sec_a, b.k(), sec_b, method)?;
    schedule.execute(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_assign(a: &mut [i64], sec_a: &RegularSection, b: &[i64], sec_b: &RegularSection) {
        let ea: Vec<i64> = sec_a.iter().collect();
        let eb: Vec<i64> = sec_b.iter().collect();
        assert_eq!(ea.len(), eb.len());
        for (ia, ib) in ea.iter().zip(&eb) {
            a[*ia as usize] = b[*ib as usize];
        }
    }

    #[test]
    fn same_layout_strided_copy() {
        let n = 300i64;
        let bg: Vec<i64> = (0..n).map(|i| 1000 + i).collect();
        let b = DistArray::from_global(4, 8, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, 0i64).unwrap();
        let sec_a = RegularSection::new(0, 290, 10).unwrap();
        let sec_b = RegularSection::new(5, 295, 10).unwrap();
        assign_array(&mut a, &sec_a, &b, &sec_b, Method::Lattice).unwrap();

        let mut expect = vec![0i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn different_block_sizes_redistribution() {
        // A is cyclic(8), B is cyclic(3): a genuine redistribution.
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| i * i).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, -1i64).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        assign_array(&mut a, &sec_a, &b, &sec_b, Method::Lattice).unwrap();

        let mut expect = vec![-1i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn per_element_mode_matches_batched() {
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| 3 * i + 1).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        let sched = CommSchedule::build_lattice(4, 8, &sec_a, 3, &sec_b).unwrap();
        let mut batched = DistArray::new(4, 8, n, -1i64).unwrap();
        sched
            .execute_with(&mut batched, &b, ExecMode::Batched)
            .unwrap();
        let mut per_elem = DistArray::new(4, 8, n, -1i64).unwrap();
        sched
            .execute_with(&mut per_elem, &b, ExecMode::PerElement)
            .unwrap();
        assert_eq!(batched.to_global(), per_elem.to_global());
    }

    #[test]
    fn schedule_accounting() {
        let sec_a = RegularSection::new(0, 99, 1).unwrap();
        let sec_b = RegularSection::new(0, 99, 1).unwrap();
        let sched = CommSchedule::build(4, 8, &sec_a, 8, &sec_b, Method::Lattice).unwrap();
        assert_eq!(sched.total_elements(), 100);
        // Identical layouts and sections: everything is local.
        assert_eq!(sched.nonlocal_elements(), 0);
        assert_eq!(sched.nonempty_nonlocal_pairs(), 0);

        // Shifted section: most transfers cross processors.
        let sec_b2 = RegularSection::new(8, 107, 1).unwrap();
        let sched2 = CommSchedule::build(4, 8, &sec_a, 8, &sec_b2, Method::Lattice).unwrap();
        assert_eq!(sched2.total_elements(), 100);
        assert!(sched2.nonlocal_elements() > 0);
        assert!(sched2.nonempty_nonlocal_pairs() > 0);
    }

    #[test]
    fn nonconforming_sections_rejected() {
        let sec_a = RegularSection::new(0, 99, 1).unwrap();
        let sec_b = RegularSection::new(0, 99, 2).unwrap();
        assert!(CommSchedule::build(4, 8, &sec_a, 8, &sec_b, Method::Lattice).is_err());
    }

    #[test]
    fn lattice_schedule_equals_enumerated_schedule() {
        for (p, k_a, k_b, la, lb, s_a, s_b, count) in [
            (4i64, 8i64, 3i64, 2i64, 1i64, 4i64, 4i64, 58i64),
            (3, 5, 5, 0, 0, 1, 1, 100),
            (2, 4, 8, 7, 3, 9, 5, 40),
            (5, 2, 3, 0, 11, 13, 2, 77),
            (1, 4, 4, 0, 0, 3, 3, 10),
        ] {
            let sec_a = RegularSection::new(la, la + (count - 1) * s_a, s_a).unwrap();
            let sec_b = RegularSection::new(lb, lb + (count - 1) * s_b, s_b).unwrap();
            let enumerated =
                CommSchedule::build(p, k_a, &sec_a, k_b, &sec_b, Method::Lattice).unwrap();
            let lattice = CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap();
            for src in 0..p {
                for dst in 0..p {
                    assert_eq!(
                        lattice.transfers(src, dst),
                        enumerated.transfers(src, dst),
                        "p={p} kA={k_a} kB={k_b} src={src} dst={dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn message_matrix_matches_materialized_schedule() {
        for (p, k_a, k_b, la, lb, s_a, s_b, count) in [
            (4i64, 8i64, 3i64, 2i64, 1i64, 4i64, 4i64, 58i64),
            (3, 5, 5, 0, 0, 1, 1, 100),
            (2, 4, 8, 7, 3, 9, 5, 40),
            (5, 2, 3, 0, 11, 13, 2, 77),
        ] {
            let sec_a = RegularSection::new(la, la + (count - 1) * s_a, s_a).unwrap();
            let sec_b = RegularSection::new(lb, lb + (count - 1) * s_b, s_b).unwrap();
            let sched = CommSchedule::build(p, k_a, &sec_a, k_b, &sec_b, Method::Lattice).unwrap();
            let matrix = CommSchedule::message_matrix(p, k_a, &sec_a, k_b, &sec_b).unwrap();
            for src in 0..p {
                for dst in 0..p {
                    assert_eq!(
                        matrix.get(src, dst),
                        sched.transfers(src, dst).len() as i64,
                        "p={p} kA={k_a} kB={k_b} src={src} dst={dst}"
                    );
                }
            }
            // Conservation: the matrix sums to the section size.
            assert_eq!(matrix.total(), count);
        }
    }

    #[test]
    fn message_matrix_scales_without_materialization() {
        // A section far too large to enumerate cheaply: counts still come
        // out exactly (checked by conservation and symmetry properties).
        let n = 50_000_000i64;
        let sec = RegularSection::new(0, n - 1, 1).unwrap();
        let shifted = RegularSection::new(1, n, 1).unwrap();
        let m = CommSchedule::message_matrix(8, 16, &sec, 16, &shifted).unwrap();
        assert_eq!(m.total(), n);
        // Shift by 1 within blocks of 16: 15/16 of elements stay local.
        let local: i64 = (0..8).map(|i| m.get(i, i)).sum();
        assert!(
            local * 16 > m.total() * 14,
            "local fraction ~15/16, got {local}/{}",
            m.total()
        );
    }

    #[test]
    fn lattice_schedule_executes_correctly() {
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| 7 * i).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, -1i64).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        let sched = CommSchedule::build_lattice(4, 8, &sec_a, 3, &sec_b).unwrap();
        sched.execute(&mut a, &b).unwrap();
        let mut expect = vec![-1i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn empty_sections_are_noop() {
        let sec = RegularSection::new(10, 5, 1).unwrap();
        let sched = CommSchedule::build(2, 4, &sec, 4, &sec, Method::Lattice).unwrap();
        assert_eq!(sched.total_elements(), 0);
        let b = DistArray::new(2, 4, 20, 3i64).unwrap();
        let mut a = DistArray::new(2, 4, 20, 7i64).unwrap();
        sched.execute(&mut a, &b).unwrap();
        assert!(a.to_global().iter().all(|&x| x == 7));
    }

    #[test]
    fn clone_payloads_move_correctly() {
        // Strings take the clone-based default PackValue path.
        let n = 60i64;
        let bg: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let b = DistArray::from_global(3, 4, &bg).unwrap();
        let mut a = DistArray::new(3, 7, n, String::new()).unwrap();
        let sec = RegularSection::new(0, n - 1, 1).unwrap();
        assign_array(&mut a, &sec, &b, &sec, Method::Lattice).unwrap();
        assert_eq!(a.to_global(), bg);
    }
}
