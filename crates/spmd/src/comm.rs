//! Communication sets for two-sided array assignments
//! `A(lₐ : uₐ : sₐ) = B(l_b : u_b : s_b)`.
//!
//! When the right-hand side lives on different processors than the
//! left-hand side, node programs must exchange elements. Computing *which*
//! elements (the communication sets) is the companion problem Chatterjee
//! et al. and Stichnoth et al. study; here it is a substrate for the
//! examples, built directly on the access-sequence machinery: each source
//! processor enumerates the RHS elements it owns with the core algorithm,
//! maps each element's section rank to its LHS home, and the exchange is
//! executed by message passing (`std::sync::mpsc` channels standing in for
//! the iPSC/860's message passing). Node bodies launch through
//! [`crate::pool`]: pooled mode reuses the resident fabric and recycles
//! message buffers through each node's arena; scoped mode reproduces the
//! historical per-call spawn. Both modes run the identical body, so all
//! deterministic counter totals are bit-identical across modes.
//!
//! The schedule itself is stored flat: one CSR buffer of [`Transfer`]s with
//! a `p² + 1` offset table ([`crate::csr::Csr`]), so building allocates
//! O(1) vectors instead of the O(p²) of a `Vec<Vec<Vec<_>>>` encoding and
//! a per-pair transfer list is a free slice. Execution batches: each node
//! packs its outgoing transfers for one destination into a single message
//! (see [`PackValue`]) and `src == dst` transfers never touch a channel.
//! The historical one-message-per-element path survives behind
//! [`ExecMode::PerElement`] for ablation.

use std::sync::mpsc;

use bcag_core::error::{BcagError, Result};
use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;
use bcag_core::Layout;

use crate::csr::Csr;
use crate::darray::DistArray;
use crate::pool::{self, lock_clean, LaunchMode, NodeCtx};

/// One element transfer: local address on the source, local address on the
/// destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Local address in the source processor's memory (RHS array).
    pub src_local: i64,
    /// Local address in the destination processor's memory (LHS array).
    pub dst_local: i64,
}

/// A maximal group of consecutive transfers whose source and destination
/// addresses both advance by constant gaps — the communication-set twin of
/// [`bcag_core::runs::Run`]. Transfer `j` of the run moves
/// `src_local + j·sgap` → `dst_local + j·dgap`; `(1, 1)` runs are straight
/// `memcpy`s on both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRun {
    /// First source local address.
    pub src_local: i64,
    /// First destination local address.
    pub dst_local: i64,
    /// Number of transfers in the run (`>= 1`).
    pub len: i64,
    /// Source-side address step (`1` = contiguous read).
    pub sgap: i64,
    /// Destination-side address step (`1` = contiguous write).
    pub dgap: i64,
}

/// On-the-wire run header of the batched executor's run-encoded messages:
/// the next `len` payload values land at `dst_local, dst_local + gap, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpan {
    /// First destination local address.
    pub dst_local: i64,
    /// Destination address step.
    pub gap: i64,
    /// Number of payload values belonging to this span.
    pub len: i64,
}

/// Payload types the communication engine can move.
///
/// The hooks cover the engine's inner loops: packing outgoing transfers
/// into a message buffer, applying same-node transfers in place, and the
/// run-coalesced variants (`extend_run`/`write_run`/`apply_runs`) the
/// batched executor and [`crate::pack`] are built on. The default bodies
/// clone element by element — correct for any `Clone` payload. The macro
/// below overrides them for the primitive numeric types with straight
/// copies — `extend_from_slice`/`copy_from_slice` for unit-gap runs — so
/// `i64`/`f64` payloads (the common case) never run a `clone()` call per
/// element. (Rust's coherence rules forbid a blanket `impl<T: Copy>` next
/// to the `String`/`Vec` impls, so the fast path is spelled out per
/// primitive.)
///
/// The `'static` bound lets packed messages travel the type-erased pool
/// fabric (`Box<dyn Any + Send>`) and rest in buffer arenas between
/// statements.
pub trait PackValue: Clone + Send + Sync + 'static {
    /// Appends `(dst_local, value)` records for `transfers` onto `out`,
    /// reading payloads from the source node's local memory `src`.
    fn pack_into(src: &[Self], transfers: &[Transfer], out: &mut Vec<(i64, Self)>) {
        out.reserve(transfers.len());
        for tr in transfers {
            out.push((tr.dst_local, src[tr.src_local as usize].clone()));
        }
    }

    /// Applies same-node transfers straight from `src` into `dst`, without
    /// staging through a message.
    fn apply_local(dst: &mut [Self], src: &[Self], transfers: &[Transfer]) {
        for tr in transfers {
            dst[tr.dst_local as usize] = src[tr.src_local as usize].clone();
        }
    }

    /// Appends the `len` elements `src[addr], src[addr + gap], …` onto
    /// `out` — one traversal segment of a pack.
    fn extend_run(out: &mut Vec<Self>, src: &[Self], addr: usize, gap: usize, len: usize) {
        if gap == 1 {
            out.extend(src[addr..addr + len].iter().cloned());
        } else {
            let span = (len - 1) * gap + 1;
            out.extend(src[addr..addr + span].iter().step_by(gap).cloned());
        }
    }

    /// Writes `vals` into `dst[addr], dst[addr + gap], …` — one traversal
    /// segment of an unpack.
    fn write_run(dst: &mut [Self], addr: usize, gap: usize, vals: &[Self]) {
        if vals.is_empty() {
            return;
        }
        if gap == 1 {
            dst[addr..addr + vals.len()].clone_from_slice(vals);
        } else {
            let span = (vals.len() - 1) * gap + 1;
            for (d, v) in dst[addr..addr + span].iter_mut().step_by(gap).zip(vals) {
                *d = v.clone();
            }
        }
    }

    /// Applies same-node transfer runs straight from `src` into `dst` —
    /// the run-coalesced form of [`PackValue::apply_local`].
    fn apply_runs(dst: &mut [Self], src: &[Self], runs: &[TransferRun]) {
        for r in runs {
            for j in 0..r.len {
                dst[(r.dst_local + j * r.dgap) as usize] =
                    src[(r.src_local + j * r.sgap) as usize].clone();
            }
        }
    }
}

/// Shared `Copy` fast paths: the macro'd primitive impls and the `[U; N]`
/// impl all delegate here, so the memcpy bodies exist once.
mod copy_fast {
    use super::{Transfer, TransferRun};

    pub fn pack_into<T: Copy>(src: &[T], transfers: &[Transfer], out: &mut Vec<(i64, T)>) {
        out.reserve(transfers.len());
        for tr in transfers {
            out.push((tr.dst_local, src[tr.src_local as usize]));
        }
    }

    pub fn apply_local<T: Copy>(dst: &mut [T], src: &[T], transfers: &[Transfer]) {
        for tr in transfers {
            dst[tr.dst_local as usize] = src[tr.src_local as usize];
        }
    }

    pub fn extend_run<T: Copy>(out: &mut Vec<T>, src: &[T], addr: usize, gap: usize, len: usize) {
        if gap == 1 {
            out.extend_from_slice(&src[addr..addr + len]);
            return;
        }
        // Wide-gap gather. Driving the source through `chunks_exact` (one
        // chunk per stride period, keep the head) gives the optimizer a
        // shufflable strided-load shape with an exact length; the plain
        // `step_by` extend does not vectorize. Small gaps are dispatched
        // to compile-time-constant chunk widths so the loop unrolls into
        // shuffles instead of scalar strided loads. The last element has
        // no full trailing chunk, so it is pushed separately.
        let span = (len - 1) * gap + 1;
        let src = &src[addr..addr + span];
        out.reserve(len);
        match gap {
            2 => gather_const::<T, 2>(out, src),
            3 => gather_const::<T, 3>(out, src),
            4 => gather_const::<T, 4>(out, src),
            _ => out.extend(src.chunks_exact(gap).map(|c| c[0])),
        }
        out.push(src[span - 1]);
    }

    fn gather_const<T: Copy, const G: usize>(out: &mut Vec<T>, src: &[T]) {
        out.extend(src.chunks_exact(G).map(|c| c[0]));
    }

    pub fn write_run<T: Copy>(dst: &mut [T], addr: usize, gap: usize, vals: &[T]) {
        if vals.is_empty() {
            return;
        }
        if gap == 1 {
            dst[addr..addr + vals.len()].copy_from_slice(vals);
            return;
        }
        // Scatter mirror of `extend_run`: one chunk per stride period,
        // write the head, leave the gap bytes untouched; small gaps get
        // compile-time-constant chunk widths.
        let span = (vals.len() - 1) * gap + 1;
        let dst = &mut dst[addr..addr + span];
        dst[span - 1] = vals[vals.len() - 1];
        match gap {
            2 => scatter_const::<T, 2>(dst, vals),
            3 => scatter_const::<T, 3>(dst, vals),
            4 => scatter_const::<T, 4>(dst, vals),
            _ => {
                for (c, v) in dst.chunks_exact_mut(gap).zip(vals) {
                    c[0] = *v;
                }
            }
        }
    }

    fn scatter_const<T: Copy, const G: usize>(dst: &mut [T], vals: &[T]) {
        for (c, v) in dst.chunks_exact_mut(G).zip(vals) {
            c[0] = *v;
        }
    }

    pub fn apply_runs<T: Copy>(dst: &mut [T], src: &[T], runs: &[TransferRun]) {
        for r in runs {
            if r.sgap == 1 && r.dgap == 1 {
                let (s, d, n) = (r.src_local as usize, r.dst_local as usize, r.len as usize);
                dst[d..d + n].copy_from_slice(&src[s..s + n]);
            } else {
                for j in 0..r.len {
                    dst[(r.dst_local + j * r.dgap) as usize] =
                        src[(r.src_local + j * r.sgap) as usize];
                }
            }
        }
    }
}

macro_rules! pack_value_by_copy {
    ($($t:ty),* $(,)?) => {$(
        impl PackValue for $t {
            fn pack_into(src: &[Self], transfers: &[Transfer], out: &mut Vec<(i64, Self)>) {
                copy_fast::pack_into(src, transfers, out)
            }

            fn apply_local(dst: &mut [Self], src: &[Self], transfers: &[Transfer]) {
                copy_fast::apply_local(dst, src, transfers)
            }

            fn extend_run(out: &mut Vec<Self>, src: &[Self], addr: usize, gap: usize, len: usize) {
                copy_fast::extend_run(out, src, addr, gap, len)
            }

            fn write_run(dst: &mut [Self], addr: usize, gap: usize, vals: &[Self]) {
                copy_fast::write_run(dst, addr, gap, vals)
            }

            fn apply_runs(dst: &mut [Self], src: &[Self], runs: &[TransferRun]) {
                copy_fast::apply_runs(dst, src, runs)
            }
        }
    )*};
}

pack_value_by_copy!(
    i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64, bool, char
);

impl<U: Copy + Send + Sync + 'static, const N: usize> PackValue for [U; N] {
    fn pack_into(src: &[Self], transfers: &[Transfer], out: &mut Vec<(i64, Self)>) {
        copy_fast::pack_into(src, transfers, out)
    }

    fn apply_local(dst: &mut [Self], src: &[Self], transfers: &[Transfer]) {
        copy_fast::apply_local(dst, src, transfers)
    }

    fn extend_run(out: &mut Vec<Self>, src: &[Self], addr: usize, gap: usize, len: usize) {
        copy_fast::extend_run(out, src, addr, gap, len)
    }

    fn write_run(dst: &mut [Self], addr: usize, gap: usize, vals: &[Self]) {
        copy_fast::write_run(dst, addr, gap, vals)
    }

    fn apply_runs(dst: &mut [Self], src: &[Self], runs: &[TransferRun]) {
        copy_fast::apply_runs(dst, src, runs)
    }
}

impl PackValue for String {}
impl<U: Clone + Send + Sync + 'static> PackValue for Vec<U> {}
impl<U: Clone + Send + Sync + 'static> PackValue for Option<U> {}

/// Selects the data-movement strategy of [`CommSchedule::execute_with`] —
/// an ablation switch in the spirit of [`Method`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// One message per non-empty (src, dst ≠ src) pair; same-node transfers
    /// apply directly into the LHS local memory. The default.
    Batched,
    /// One message per element, self-transfers included — the historical
    /// baseline, kept for ablation benchmarks.
    PerElement,
}

impl ExecMode {
    /// Short human-readable name (used by benches).
    pub fn name(&self) -> &'static str {
        match self {
            ExecMode::Batched => "batched",
            ExecMode::PerElement => "per-element",
        }
    }
}

/// The full communication schedule for one array assignment: for each
/// (source, destination) pair, the ordered element transfers, stored as
/// one flat CSR buffer with rows indexed `src * p + dst`, plus the
/// run-coalesced form of every row (computed once at build time, cached
/// with the schedule by [`crate::cache`]).
#[derive(Debug, Clone)]
pub struct CommSchedule {
    p: i64,
    /// Row `src * p + dst` lists transfers from node `src` to node `dst`
    /// in increasing section-rank order.
    pairs: Csr<Transfer>,
    /// Run-coalesced rows: same indexing, each row the constant-gap run
    /// decomposition of the corresponding `pairs` row.
    runs: Csr<TransferRun>,
}

/// Greedy maximal constant-gap grouping of one transfer row (the
/// communication-set analogue of `bcag_core::runs`). A run absorbs the
/// next transfer while both address gaps stay constant; a non-unit run
/// never steals the head of a following `(1, 1)` run, so the memcpy runs
/// stay maximal.
fn compile_transfer_runs(trs: &[Transfer], out: &mut crate::csr::CsrBuilder<TransferRun>) {
    let gaps = |a: &Transfer, b: &Transfer| (b.src_local - a.src_local, b.dst_local - a.dst_local);
    let n = trs.len();
    let mut i = 0usize;
    while i < n {
        let mut len = 1i64;
        let mut sgap = 1i64;
        let mut dgap = 1i64;
        if i + 1 < n {
            let g = gaps(&trs[i], &trs[i + 1]);
            // Start a multi-transfer run only if the gaps are positive and
            // either unit-unit (always worth a memcpy) or confirmed by a
            // second matching pair (don't steal a lone element).
            let viable = g.0 > 0
                && g.1 > 0
                && (g == (1, 1) || (i + 2 < n && gaps(&trs[i + 1], &trs[i + 2]) == g));
            if viable {
                (sgap, dgap) = g;
                let mut j = i + 1;
                while j + 1 < n
                    && gaps(&trs[j], &trs[j + 1]) == g
                    && (g == (1, 1) || j + 2 >= n || gaps(&trs[j + 1], &trs[j + 2]) != (1, 1))
                {
                    j += 1;
                }
                len = (j - i + 1) as i64;
            }
        }
        out.push(TransferRun {
            src_local: trs[i].src_local,
            dst_local: trs[i].dst_local,
            len,
            sgap,
            dgap,
        });
        i += len as usize;
    }
}

/// Closed-form `p × p` message matrix: `get(src, dst)` is the number of
/// elements moving from `src` to `dst`, stored flat (row-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageMatrix {
    p: i64,
    counts: Vec<i64>,
}

impl MessageMatrix {
    /// Machine size.
    pub fn p(&self) -> i64 {
        self.p
    }

    /// Elements moving from `src` to `dst`.
    pub fn get(&self, src: i64, dst: i64) -> i64 {
        self.counts[(src * self.p + dst) as usize]
    }

    /// Row `src`: per-destination counts as a slice.
    pub fn row(&self, src: i64) -> &[i64] {
        let base = (src * self.p) as usize;
        &self.counts[base..base + self.p as usize]
    }

    /// All `(src, dst, count)` entries in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (i64, i64, i64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as i64 / self.p, i as i64 % self.p, n))
    }

    /// Total element count (equals the section size).
    pub fn total(&self) -> i64 {
        self.counts.iter().sum()
    }
}

impl CommSchedule {
    /// Wraps a completed transfer CSR into a schedule, compiling the
    /// run-coalesced form of every row up front. All construction funnels
    /// through here, so any cached schedule carries its runs for free.
    fn from_pairs(p: i64, pairs: Csr<Transfer>) -> CommSchedule {
        let rows = pairs.rows();
        let mut runs = Csr::builder();
        for r in 0..rows {
            compile_transfer_runs(pairs.row(r), &mut runs);
            runs.finish_row();
        }
        CommSchedule {
            p,
            pairs,
            runs: runs.finish(rows),
        }
    }

    /// Builds the schedule for `A(sec_a) = B(sec_b)` where `A` is laid out
    /// `(p, k_a)` and `B` is `(p, k_b)`. Both sections must have the same
    /// element count and ascending strides.
    pub fn build(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
        method: Method,
    ) -> Result<CommSchedule> {
        let _sp = bcag_trace::span("comm.build");
        check_sections(sec_a, sec_b)?;
        if sec_b.count() == 0 {
            return Ok(CommSchedule::from_pairs(p, Csr::empty((p * p) as usize)));
        }
        let pn = p as usize;
        let lay_a = Layout::from_raw(p, k_a);
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let mut pairs = Csr::builder();
        // Scratch reused across sources: transfers tagged with their
        // destination, then scattered into destination order by a stable
        // counting sort — no per-pair vectors anywhere.
        let mut tagged: Vec<(usize, Transfer)> = Vec::new();
        let mut slots: Vec<Transfer> = Vec::new();
        let mut cursor: Vec<usize> = vec![0; pn];
        for src in 0..p {
            // Enumerate the RHS elements owned by `src` with the core
            // algorithm, bounded by the section's upper bound.
            let pat = build(&problem_b, src, method)?;
            tagged.clear();
            cursor.fill(0);
            for acc in pat.iter_to(sec_b.u) {
                let t = (acc.global - sec_b.l) / sec_b.s; // section rank
                let a_elem = sec_a.l + t * sec_a.s;
                let dst = lay_a.owner(a_elem) as usize;
                tagged.push((
                    dst,
                    Transfer {
                        src_local: acc.local,
                        dst_local: lay_a.local_addr(a_elem),
                    },
                ));
                cursor[dst] += 1;
            }
            // Exclusive prefix sum: cursor[d] becomes row d's write position.
            let mut next = 0usize;
            for c in cursor.iter_mut() {
                let n = *c;
                *c = next;
                next += n;
            }
            slots.clear();
            slots.resize(
                tagged.len(),
                Transfer {
                    src_local: 0,
                    dst_local: 0,
                },
            );
            for &(dst, tr) in &tagged {
                slots[cursor[dst]] = tr;
                cursor[dst] += 1;
            }
            // cursor[d] now holds row d's end offset.
            let mut begin = 0usize;
            for &end in cursor.iter() {
                pairs.extend_row(&slots[begin..end]);
                pairs.finish_row();
                begin = end;
            }
        }
        Ok(CommSchedule::from_pairs(p, pairs.finish(pn * pn)))
    }

    /// Builds the same schedule in closed form, without enumerating the
    /// section: the ranks `t` whose B-element lives on `src` form one
    /// arithmetic progression per owned offset class (step `pk_b / d_b`),
    /// and likewise for the A-element on `dst`; each (class, class) pair
    /// intersects by the Chinese Remainder construction
    /// ([`bcag_core::intersect`]). Cost is `O(p² · k_a·k_b)` pair setup plus
    /// the output size, independent of how many *cycles* the section spans —
    /// the regime where rank-by-rank enumeration loses.
    pub fn build_lattice(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
    ) -> Result<CommSchedule> {
        use bcag_core::intersect::{intersect, Ap};
        use bcag_core::start::first_cycle_locs;

        let _sp = bcag_trace::span("comm.build_lattice");
        check_sections(sec_a, sec_b)?;
        let t_max = sec_b.count() - 1;
        if t_max < 0 {
            return Ok(CommSchedule::from_pairs(p, Csr::empty((p * p) as usize)));
        }
        let lay_a = Layout::from_raw(p, k_a);
        let lay_b = Layout::from_raw(p, k_b);
        let problem_a = Problem::new(p, k_a, sec_a.l, sec_a.s)?;
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let step_a = problem_a.period_elements(); // rank-space step, A side
        let step_b = problem_b.period_elements(); // rank-space step, B side

        // Rank-space progressions per processor: one AP per owned class.
        let rank_aps = |problem: &Problem, sec: &RegularSection, m: i64| -> Result<Vec<i64>> {
            Ok(first_cycle_locs(problem, m)?
                .into_iter()
                .map(|loc| (loc - sec.l) / sec.s)
                .collect())
        };

        // The A-side classes depend only on the destination — compute them
        // once instead of once per (src, dst) pair.
        let a_classes_by_dst: Vec<Vec<i64>> = (0..p)
            .map(|dst| rank_aps(&problem_a, sec_a, dst))
            .collect::<Result<_>>()?;

        let mut pairs = Csr::builder();
        let mut ts: Vec<i64> = Vec::new(); // scratch reused across pairs
        for src in 0..p {
            let b_classes = rank_aps(&problem_b, sec_b, src)?;
            for (dst, a_classes) in a_classes_by_dst.iter().enumerate() {
                ts.clear();
                for &tb in &b_classes {
                    let ap_b = Ap::new(tb, step_b);
                    for &ta in a_classes {
                        let ap_a = Ap::new(ta, step_a);
                        if let Some(common) = intersect(&ap_b, &ap_a) {
                            ts.reserve(common.count_to(t_max) as usize);
                            ts.extend(common.iter_to(t_max));
                        }
                    }
                }
                ts.sort_unstable();
                for &t in &ts {
                    let b_elem = sec_b.l + t * sec_b.s;
                    let a_elem = sec_a.l + t * sec_a.s;
                    debug_assert_eq!(lay_b.owner(b_elem), src);
                    debug_assert_eq!(lay_a.owner(a_elem), dst as i64);
                    pairs.push(Transfer {
                        src_local: lay_b.local_addr(b_elem),
                        dst_local: lay_a.local_addr(a_elem),
                    });
                }
                pairs.finish_row();
            }
        }
        Ok(CommSchedule::from_pairs(p, pairs.finish((p * p) as usize)))
    }

    /// Computes only the **message matrix** — `get(src, dst)` = number of
    /// elements moving from `src` to `dst` — entirely in closed form: each
    /// (B-class, A-class) pair contributes `|AP ∩ AP ∩ [0, count)|`, one
    /// CRT plus one division per pair. `O(p² · k_a·k_b)` total, independent
    /// of the section length — the planning query a compiler asks when
    /// choosing between communication strategies, without materializing a
    /// single transfer.
    pub fn message_matrix(
        p: i64,
        k_a: i64,
        sec_a: &RegularSection,
        k_b: i64,
        sec_b: &RegularSection,
    ) -> Result<MessageMatrix> {
        use bcag_core::intersect::{intersect, Ap};
        use bcag_core::start::first_cycle_locs;

        let _sp = bcag_trace::span("comm.message_matrix");
        check_sections(sec_a, sec_b)?;
        let mut counts = vec![0i64; (p * p) as usize];
        let t_max = sec_b.count() - 1;
        if t_max < 0 {
            return Ok(MessageMatrix { p, counts });
        }
        let problem_a = Problem::new(p, k_a, sec_a.l, sec_a.s)?;
        let problem_b = Problem::new(p, k_b, sec_b.l, sec_b.s)?;
        let step_a = problem_a.period_elements();
        let step_b = problem_b.period_elements();
        // Per-processor first ranks per class, on each side.
        let ranks = |problem: &Problem, sec: &RegularSection| -> Result<Vec<Vec<i64>>> {
            (0..p)
                .map(|m| {
                    Ok(first_cycle_locs(problem, m)?
                        .into_iter()
                        .map(|loc| (loc - sec.l) / sec.s)
                        .collect())
                })
                .collect()
        };
        let b_side = ranks(&problem_b, sec_b)?;
        let a_side = ranks(&problem_a, sec_a)?;
        for src in 0..p as usize {
            for dst in 0..p as usize {
                let mut total = 0i64;
                for &tb in &b_side[src] {
                    for &ta in &a_side[dst] {
                        if let Some(common) = intersect(&Ap::new(tb, step_b), &Ap::new(ta, step_a))
                        {
                            total += common.count_to(t_max);
                        }
                    }
                }
                counts[src * p as usize + dst] = total;
            }
        }
        Ok(MessageMatrix { p, counts })
    }

    /// Transfers from `src` to `dst` — a free slice into the CSR buffer.
    pub fn transfers(&self, src: i64, dst: i64) -> &[Transfer] {
        self.pair(src as usize, dst as usize)
    }

    /// Run-coalesced form of the same row [`CommSchedule::transfers`]
    /// returns: the greedy maximal constant-gap run decomposition computed
    /// once at build time.
    pub fn transfer_runs(&self, src: i64, dst: i64) -> &[TransferRun] {
        self.pair_runs(src as usize, dst as usize)
    }

    fn pair(&self, src: usize, dst: usize) -> &[Transfer] {
        self.pairs.row(src * self.p as usize + dst)
    }

    fn pair_runs(&self, src: usize, dst: usize) -> &[TransferRun] {
        self.runs.row(src * self.p as usize + dst)
    }

    /// Total number of elements moved (equals the section size).
    pub fn total_elements(&self) -> usize {
        self.pairs.len()
    }

    /// Number of nonlocal element transfers (src != dst): the communication
    /// volume a real machine would put on the network.
    pub fn nonlocal_elements(&self) -> usize {
        let p = self.p as usize;
        (0..p)
            .flat_map(|s| (0..p).filter_map(move |d| (s != d).then_some((s, d))))
            .map(|(s, d)| self.pair(s, d).len())
            .sum()
    }

    /// Number of non-empty (src, dst ≠ src) pairs — exactly the number of
    /// messages the batched executor sends, and the schedule-side twin of
    /// the traced `messages_sent` counter.
    pub fn nonempty_nonlocal_pairs(&self) -> usize {
        let p = self.p as usize;
        (0..p)
            .flat_map(|s| (0..p).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d && !self.pair(s, d).is_empty())
            .count()
    }

    /// Executes `A(sec_a) = B(sec_b)` by message passing with the default
    /// [`ExecMode::Batched`] strategy: every node packs its outgoing
    /// transfers for one destination into a single run-encoded message
    /// (`(Vec<RunSpan>, Vec<T>)` — contiguous and constant-gap stretches
    /// pack and apply as slice copies), sends one message per non-empty
    /// (src, dst ≠ src) pair, applies same-node transfers directly into
    /// its own memory run-by-run, then drains its inbox.
    ///
    /// When tracing is enabled, each node lane (`node-<src>`) records a
    /// `comm.execute.node` span and the communication counters:
    /// `elements_moved` (all outgoing transfers), `elements_nonlocal` and
    /// `messages_sent` (src ≠ dst only), `bytes_packed` (payload bytes
    /// packed out of B's local memory) and `recv_wait_ns` (time blocked on
    /// the inbox during the receive phase). Counter totals are identical
    /// across both execution modes.
    pub fn execute<T: PackValue>(&self, a: &mut DistArray<T>, b: &DistArray<T>) -> Result<()> {
        self.execute_with(a, b, ExecMode::Batched)
    }

    /// [`CommSchedule::execute`] with an explicit strategy — the ablation
    /// entry point for comparing batched against per-element movement.
    /// Launches with the process-default [`LaunchMode`].
    pub fn execute_with<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        mode: ExecMode,
    ) -> Result<()> {
        self.execute_launched(a, b, mode, pool::default_launch())
    }

    /// [`CommSchedule::execute_with`] with an explicit [`LaunchMode`] —
    /// the A/B entry point the pooled-vs-scoped benchmarks and oracle
    /// tests use. Both modes run the identical node body, so every
    /// deterministic counter total is mode-independent by construction.
    pub fn execute_launched<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        mode: ExecMode,
        launch: LaunchMode,
    ) -> Result<()> {
        assert_eq!(a.p(), self.p, "LHS machine size mismatch");
        assert_eq!(b.p(), self.p, "RHS machine size mismatch");
        let _sp = bcag_trace::span("comm.execute");
        match mode {
            ExecMode::Batched => self.execute_batched(a, b, launch),
            ExecMode::PerElement => self.execute_per_element(a, b, launch),
        }
        Ok(())
    }

    fn execute_batched<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        launch: LaunchMode,
    ) {
        let p = self.p as usize;
        // Packed messages travel the pool fabric as type-erased
        // envelopes; their `Vec` buffers come from (and return to) each
        // node's arena, so steady-state statements allocate nothing.
        let slots: Vec<std::sync::Mutex<&mut Vec<T>>> = a
            .locals_mut()
            .iter_mut()
            .map(std::sync::Mutex::new)
            .collect();
        pool::launch(self.p, launch, |me, ctx| {
            let _sp = bcag_trace::span("comm.execute.node");
            let mut slot = lock_clean(&slots[me]);
            let local_a: &mut Vec<T> = &mut slot;
            // Send phase: pack from B's local memory run-by-run, one
            // message per non-empty destination; the self-row is applied
            // straight into A's local memory, run-by-run. A message is the
            // pair (run spans, packed values): destination addresses cost
            // one span per run instead of one `i64` per element.
            let local_b = b.local(me as i64);
            let mut seg_count = 0u64;
            let mut seg_elems = 0u64;
            for dst in 0..p {
                let transfers = self.pair(me, dst);
                bcag_trace::count("elements_moved", transfers.len() as u64);
                bcag_trace::count(
                    "bytes_packed",
                    (transfers.len() * std::mem::size_of::<T>()) as u64,
                );
                let runs = self.pair_runs(me, dst);
                for r in runs {
                    if r.len >= 2 {
                        seg_count += 1;
                        seg_elems += r.len as u64;
                    }
                }
                if dst == me {
                    T::apply_runs(local_a, local_b, runs);
                    continue;
                }
                if transfers.is_empty() {
                    continue;
                }
                bcag_trace::count("messages_sent", 1);
                bcag_trace::count("elements_nonlocal", transfers.len() as u64);
                let mut spans: Vec<RunSpan> = ctx.take_buf();
                let mut vals: Vec<T> = ctx.take_buf();
                spans.reserve(runs.len());
                vals.reserve(transfers.len());
                for r in runs {
                    spans.push(RunSpan {
                        dst_local: r.dst_local,
                        gap: r.dgap,
                        len: r.len,
                    });
                    T::extend_run(
                        &mut vals,
                        local_b,
                        r.src_local as usize,
                        r.sgap as usize,
                        r.len as usize,
                    );
                }
                ctx.send(dst, Box::new((spans, vals)));
            }
            bcag_core::runs::count_coalesced(seg_count, seg_elems);
            // Receive phase: the schedule is global knowledge (as on a
            // real SPMD machine), so each node knows exactly how many
            // messages are inbound and a counted loop avoids a
            // termination protocol.
            let expected = (0..p)
                .filter(|&s| s != me && !self.pair(s, me).is_empty())
                .count();
            let mut wait_ns = 0u64;
            for _ in 0..expected {
                let t0 = bcag_trace::enabled().then(std::time::Instant::now);
                let env = ctx.recv();
                if let Some(t0) = t0 {
                    wait_ns += t0.elapsed().as_nanos() as u64;
                }
                let (spans, vals) = *env
                    .downcast::<(Vec<RunSpan>, Vec<T>)>()
                    .expect("batched message payload type");
                let mut off = 0usize;
                for sp in &spans {
                    let len = sp.len as usize;
                    T::write_run(
                        local_a,
                        sp.dst_local as usize,
                        sp.gap as usize,
                        &vals[off..off + len],
                    );
                    off += len;
                }
                ctx.put_buf(spans);
                ctx.put_buf(vals);
            }
            bcag_trace::count("recv_wait_ns", wait_ns);
        });
    }

    fn execute_per_element<T: PackValue>(
        &self,
        a: &mut DistArray<T>,
        b: &DistArray<T>,
        launch: LaunchMode,
    ) {
        let p = self.p as usize;
        // One typed inbox per node, one message per element
        // (self-transfers included) — the pre-batching behavior,
        // preserved for ablation. The channels are per-call: this path
        // measures exactly the historical protocol; only the launch
        // (pooled vs scoped) varies.
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..p).map(|_| mpsc::channel::<(i64, T)>()).unzip();
        let senders = &senders;
        let inboxes: Vec<std::sync::Mutex<Option<mpsc::Receiver<(i64, T)>>>> = receivers
            .into_iter()
            .map(|r| std::sync::Mutex::new(Some(r)))
            .collect();
        let slots: Vec<std::sync::Mutex<&mut Vec<T>>> = a
            .locals_mut()
            .iter_mut()
            .map(std::sync::Mutex::new)
            .collect();
        pool::launch(self.p, launch, |me, ctx| {
            let _sp = bcag_trace::span("comm.execute.node");
            let inbox = lock_clean(&inboxes[me]).take().expect("one job per node");
            let mut slot = lock_clean(&slots[me]);
            let local_a: &mut Vec<T> = &mut slot;
            let local_b = b.local(me as i64);
            for dst in 0..p {
                let transfers = self.pair(me, dst);
                bcag_trace::count("elements_moved", transfers.len() as u64);
                bcag_trace::count(
                    "bytes_packed",
                    (transfers.len() * std::mem::size_of::<T>()) as u64,
                );
                if dst != me && !transfers.is_empty() {
                    bcag_trace::count("messages_sent", 1);
                    bcag_trace::count("elements_nonlocal", transfers.len() as u64);
                }
                for tr in transfers {
                    let v = local_b[tr.src_local as usize].clone();
                    senders[dst]
                        .send((tr.dst_local, v))
                        .expect("receiver alive during send phase");
                }
            }
            let expected: usize = (0..p).map(|s| self.pair(s, me).len()).sum();
            let mut wait_ns = 0u64;
            for _ in 0..expected {
                let t0 = bcag_trace::enabled().then(std::time::Instant::now);
                let (addr, v) = recv_typed(&inbox, ctx);
                if let Some(t0) = t0 {
                    wait_ns += t0.elapsed().as_nanos() as u64;
                }
                local_a[addr as usize] = v;
            }
            bcag_trace::count("recv_wait_ns", wait_ns);
        });
    }
}

/// Blocks for one typed message while watching the pool fabric for a
/// peer's poison, so a panicking node job cannot strand the counted
/// receive loop of [`ExecMode::PerElement`].
///
/// The `try_recv` fast path keeps the steady flow at plain-`recv` cost
/// (no deadline computation per message); the timeout machinery only
/// engages when the queue is momentarily empty.
fn recv_typed<M>(inbox: &mpsc::Receiver<M>, ctx: &NodeCtx) -> M {
    // Brief spin bridges the gap when the receiver momentarily outruns
    // its senders, avoiding a park/unpark round-trip per message.
    for _ in 0..128 {
        if let Ok(msg) = inbox.try_recv() {
            return msg;
        }
        std::hint::spin_loop();
    }
    loop {
        match inbox.recv_timeout(std::time::Duration::from_millis(25)) {
            Ok(msg) => return msg,
            Err(mpsc::RecvTimeoutError::Timeout) => ctx.check_poison(),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("typed channel closed before the counted receive finished")
            }
        }
    }
}

fn check_sections(sec_a: &RegularSection, sec_b: &RegularSection) -> Result<()> {
    if sec_a.count() != sec_b.count() {
        return Err(BcagError::Precondition(
            "assignment requires conforming sections (equal element counts)",
        ));
    }
    if sec_a.s <= 0 || sec_b.s <= 0 {
        return Err(BcagError::Precondition(
            "communication schedule requires ascending sections; normalize first",
        ));
    }
    Ok(())
}

/// Convenience wrapper: build the schedule and execute it.
pub fn assign_array<T: PackValue>(
    a: &mut DistArray<T>,
    sec_a: &RegularSection,
    b: &DistArray<T>,
    sec_b: &RegularSection,
    method: Method,
) -> Result<()> {
    assert_eq!(a.p(), b.p(), "arrays must live on the same machine");
    let schedule = CommSchedule::build(a.p(), a.k(), sec_a, b.k(), sec_b, method)?;
    schedule.execute(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_assign(a: &mut [i64], sec_a: &RegularSection, b: &[i64], sec_b: &RegularSection) {
        let ea: Vec<i64> = sec_a.iter().collect();
        let eb: Vec<i64> = sec_b.iter().collect();
        assert_eq!(ea.len(), eb.len());
        for (ia, ib) in ea.iter().zip(&eb) {
            a[*ia as usize] = b[*ib as usize];
        }
    }

    #[test]
    fn same_layout_strided_copy() {
        let n = 300i64;
        let bg: Vec<i64> = (0..n).map(|i| 1000 + i).collect();
        let b = DistArray::from_global(4, 8, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, 0i64).unwrap();
        let sec_a = RegularSection::new(0, 290, 10).unwrap();
        let sec_b = RegularSection::new(5, 295, 10).unwrap();
        assign_array(&mut a, &sec_a, &b, &sec_b, Method::Lattice).unwrap();

        let mut expect = vec![0i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn different_block_sizes_redistribution() {
        // A is cyclic(8), B is cyclic(3): a genuine redistribution.
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| i * i).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, -1i64).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        assign_array(&mut a, &sec_a, &b, &sec_b, Method::Lattice).unwrap();

        let mut expect = vec![-1i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn per_element_mode_matches_batched() {
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| 3 * i + 1).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        let sched = CommSchedule::build_lattice(4, 8, &sec_a, 3, &sec_b).unwrap();
        let mut batched = DistArray::new(4, 8, n, -1i64).unwrap();
        sched
            .execute_with(&mut batched, &b, ExecMode::Batched)
            .unwrap();
        let mut per_elem = DistArray::new(4, 8, n, -1i64).unwrap();
        sched
            .execute_with(&mut per_elem, &b, ExecMode::PerElement)
            .unwrap();
        assert_eq!(batched.to_global(), per_elem.to_global());
    }

    #[test]
    fn schedule_accounting() {
        let sec_a = RegularSection::new(0, 99, 1).unwrap();
        let sec_b = RegularSection::new(0, 99, 1).unwrap();
        let sched = CommSchedule::build(4, 8, &sec_a, 8, &sec_b, Method::Lattice).unwrap();
        assert_eq!(sched.total_elements(), 100);
        // Identical layouts and sections: everything is local.
        assert_eq!(sched.nonlocal_elements(), 0);
        assert_eq!(sched.nonempty_nonlocal_pairs(), 0);

        // Shifted section: most transfers cross processors.
        let sec_b2 = RegularSection::new(8, 107, 1).unwrap();
        let sched2 = CommSchedule::build(4, 8, &sec_a, 8, &sec_b2, Method::Lattice).unwrap();
        assert_eq!(sched2.total_elements(), 100);
        assert!(sched2.nonlocal_elements() > 0);
        assert!(sched2.nonempty_nonlocal_pairs() > 0);
    }

    #[test]
    fn nonconforming_sections_rejected() {
        let sec_a = RegularSection::new(0, 99, 1).unwrap();
        let sec_b = RegularSection::new(0, 99, 2).unwrap();
        assert!(CommSchedule::build(4, 8, &sec_a, 8, &sec_b, Method::Lattice).is_err());
    }

    #[test]
    fn lattice_schedule_equals_enumerated_schedule() {
        for (p, k_a, k_b, la, lb, s_a, s_b, count) in [
            (4i64, 8i64, 3i64, 2i64, 1i64, 4i64, 4i64, 58i64),
            (3, 5, 5, 0, 0, 1, 1, 100),
            (2, 4, 8, 7, 3, 9, 5, 40),
            (5, 2, 3, 0, 11, 13, 2, 77),
            (1, 4, 4, 0, 0, 3, 3, 10),
        ] {
            let sec_a = RegularSection::new(la, la + (count - 1) * s_a, s_a).unwrap();
            let sec_b = RegularSection::new(lb, lb + (count - 1) * s_b, s_b).unwrap();
            let enumerated =
                CommSchedule::build(p, k_a, &sec_a, k_b, &sec_b, Method::Lattice).unwrap();
            let lattice = CommSchedule::build_lattice(p, k_a, &sec_a, k_b, &sec_b).unwrap();
            for src in 0..p {
                for dst in 0..p {
                    assert_eq!(
                        lattice.transfers(src, dst),
                        enumerated.transfers(src, dst),
                        "p={p} kA={k_a} kB={k_b} src={src} dst={dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn message_matrix_matches_materialized_schedule() {
        for (p, k_a, k_b, la, lb, s_a, s_b, count) in [
            (4i64, 8i64, 3i64, 2i64, 1i64, 4i64, 4i64, 58i64),
            (3, 5, 5, 0, 0, 1, 1, 100),
            (2, 4, 8, 7, 3, 9, 5, 40),
            (5, 2, 3, 0, 11, 13, 2, 77),
        ] {
            let sec_a = RegularSection::new(la, la + (count - 1) * s_a, s_a).unwrap();
            let sec_b = RegularSection::new(lb, lb + (count - 1) * s_b, s_b).unwrap();
            let sched = CommSchedule::build(p, k_a, &sec_a, k_b, &sec_b, Method::Lattice).unwrap();
            let matrix = CommSchedule::message_matrix(p, k_a, &sec_a, k_b, &sec_b).unwrap();
            for src in 0..p {
                for dst in 0..p {
                    assert_eq!(
                        matrix.get(src, dst),
                        sched.transfers(src, dst).len() as i64,
                        "p={p} kA={k_a} kB={k_b} src={src} dst={dst}"
                    );
                }
            }
            // Conservation: the matrix sums to the section size.
            assert_eq!(matrix.total(), count);
        }
    }

    #[test]
    fn message_matrix_scales_without_materialization() {
        // A section far too large to enumerate cheaply: counts still come
        // out exactly (checked by conservation and symmetry properties).
        let n = 50_000_000i64;
        let sec = RegularSection::new(0, n - 1, 1).unwrap();
        let shifted = RegularSection::new(1, n, 1).unwrap();
        let m = CommSchedule::message_matrix(8, 16, &sec, 16, &shifted).unwrap();
        assert_eq!(m.total(), n);
        // Shift by 1 within blocks of 16: 15/16 of elements stay local.
        let local: i64 = (0..8).map(|i| m.get(i, i)).sum();
        assert!(
            local * 16 > m.total() * 14,
            "local fraction ~15/16, got {local}/{}",
            m.total()
        );
    }

    #[test]
    fn lattice_schedule_executes_correctly() {
        let n = 240i64;
        let bg: Vec<i64> = (0..n).map(|i| 7 * i).collect();
        let b = DistArray::from_global(4, 3, &bg).unwrap();
        let mut a = DistArray::new(4, 8, n, -1i64).unwrap();
        let sec_a = RegularSection::new(2, 230, 4).unwrap();
        let sec_b = RegularSection::new(1, 229, 4).unwrap();
        let sched = CommSchedule::build_lattice(4, 8, &sec_a, 3, &sec_b).unwrap();
        sched.execute(&mut a, &b).unwrap();
        let mut expect = vec![-1i64; n as usize];
        seq_assign(&mut expect, &sec_a, &bg, &sec_b);
        assert_eq!(a.to_global(), expect);
    }

    #[test]
    fn empty_sections_are_noop() {
        let sec = RegularSection::new(10, 5, 1).unwrap();
        let sched = CommSchedule::build(2, 4, &sec, 4, &sec, Method::Lattice).unwrap();
        assert_eq!(sched.total_elements(), 0);
        let b = DistArray::new(2, 4, 20, 3i64).unwrap();
        let mut a = DistArray::new(2, 4, 20, 7i64).unwrap();
        sched.execute(&mut a, &b).unwrap();
        assert!(a.to_global().iter().all(|&x| x == 7));
    }

    #[test]
    fn clone_payloads_move_correctly() {
        // Strings take the clone-based default PackValue path.
        let n = 60i64;
        let bg: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let b = DistArray::from_global(3, 4, &bg).unwrap();
        let mut a = DistArray::new(3, 7, n, String::new()).unwrap();
        let sec = RegularSection::new(0, n - 1, 1).unwrap();
        assign_array(&mut a, &sec, &b, &sec, Method::Lattice).unwrap();
        assert_eq!(a.to_global(), bg);
    }
}
