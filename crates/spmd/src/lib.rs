//! # bcag-spmd — simulated SPMD distributed-memory machine
//!
//! The paper's experiments ran on a 32-node Intel iPSC/860 hypercube. This
//! crate simulates that execution model so the end-to-end path — table
//! construction, node-code traversal, communication — can run and be
//! measured on a shared-memory host:
//!
//! * [`machine`] — SPMD launch: one thread per simulated node, each with
//!   exclusive local memory, plus the per-node timing discipline
//!   ("maximum over all processors") the paper reports;
//! * [`pool`] — the resident worker pool behind every launch: `p`
//!   persistent node threads, a reusable fabric, and per-node buffer
//!   arenas, with the historical per-call `thread::scope` path
//!   selectable as [`pool::LaunchMode::Scoped`];
//! * [`transport`] — the pluggable fabric those node threads exchange
//!   envelopes over: the reference `mpsc` backend, a lock-free
//!   shared-memory SPSC ring-buffer backend, and the serialized-wire
//!   backend behind the `bcag spmd` multi-process launcher, selected by
//!   [`Machine::with_transport`] or `BCAG_TRANSPORT={mpsc,shm,proc}`;
//! * [`darray`] — distributed arrays in the `cyclic(k)` layout of Figure 1;
//! * [`codeshapes`] — the four node-code shapes of Figure 8 that Table 2
//!   compares;
//! * [`assign`] — owner-computes section statements
//!   (`A(l:u:s) = expr`) compiled to plans + traversal loops;
//! * [`comm`] — communication sets and batched message-passing execution
//!   for two-sided assignments `A(secA) = B(secB)` (one message per
//!   non-empty (src, dst) pair), including redistribution between
//!   different block sizes;
//! * [`csr`] — the flat compressed-sparse-row storage the schedules and
//!   2-D rank decompositions are built on;
//! * [`cache`] — a process-wide, capacity-bounded cache of communication
//!   schedules and section plans keyed by their build parameters, sharded
//!   over `next_pow2(4 × cores)` read-mostly lock domains with
//!   single-flight builds so concurrent drivers don't serialize on it;
//! * [`reduce`] — reductions over sections (`SUM`, `DOT_PRODUCT`, custom
//!   folds) with the same traversal machinery;
//! * [`dmatrix`] — 2-D distributed matrices over an HPF mapping, with SPMD
//!   updates of rectangular, diagonal and trapezoidal regions;
//! * [`statement`] — whole array statements `A(secA) = f(B(secB), ...)`
//!   (gather + owner-computes) and block-size redistribution;
//! * [`fuse`] — the plan compiler behind those statements: compiles a
//!   whole statement shape into one fused per-node epoch (pack→send→
//!   recv→unpack→apply, gap-specialized kernels, a single pool
//!   dispatch), cached next to the schedules and A/B-selectable with
//!   `BCAG_FUSE=on|off`;
//! * [`pack`] — message vectorization: pack/unpack a node's share of a
//!   section into contiguous buffers, run-coalesced into slice copies by
//!   the [`bcag_core::runs`] contiguity analysis of the gap table.
//!
//! ```
//! use bcag_spmd::{darray::DistArray, assign::assign_scalar, codeshapes::CodeShape};
//! use bcag_core::{section::RegularSection, method::Method};
//!
//! // A(0:99:7) = 100.0 on a 4-processor cyclic(8) layout.
//! let mut a = DistArray::new(4, 8, 100, 0.0f64).unwrap();
//! let sec = RegularSection::new(0, 99, 7).unwrap();
//! assign_scalar(&mut a, &sec, 100.0, Method::Lattice, CodeShape::TwoTableLoop).unwrap();
//! assert_eq!(a.to_global()[14], 100.0);
//! assert_eq!(a.to_global()[15], 0.0);
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the worker pool's job channel needs two
// audited `#[allow(unsafe_code)]` sites in [`pool`] (lifetime erasure of
// the dispatched body, guarded by the epoch barrier), and the
// shared-memory fabric's SPSC ring slots in [`transport::ring`] need raw
// shared mutability under the single-producer/single-consumer contract.
// Everything else in the crate remains safe code.
#![deny(unsafe_code)]

pub mod assign;
pub mod blas1;
pub mod cache;
pub mod codeshapes;
pub mod comm;
pub mod comm2d;
pub mod csr;
pub mod darray;
pub mod dmatrix;
pub mod fuse;
pub mod machine;
pub mod pack;
pub mod pool;
pub mod reduce;
pub mod shift;
pub mod statement;
pub mod stats;
pub mod transport;

pub use assign::{apply_section, assign_scalar, plan_section, NodePlan};
pub use blas1::{asum, axpy, iamax, nrm2, scal};
pub use codeshapes::CodeShape;
pub use comm::{
    assign_array, CommSchedule, ExecMode, MessageMatrix, PackValue, RunSpan, Transfer, TransferRun,
};
pub use comm2d::assign_matrix;
pub use csr::Csr;
pub use darray::DistArray;
pub use dmatrix::DistMatrix;
pub use fuse::{
    assign_fused, default_fused, epoch_block_elems, last_blocked, set_default_fused, FuseCensus,
    FusedMode,
};
pub use machine::Machine;
pub use pack::{default_pack_mode, gather_section, last_pack_mode, PackMode};
pub use pool::{LaunchMode, NodeCtx};
pub use reduce::{dot_sections, reduce_section, sum_section};
pub use shift::{cshift, eoshift};
pub use statement::{assign_expr, redistribute};
pub use stats::{
    block_size_tradeoff, comm_stats, fuse_census, load_stats, per_node_packed_from_trace,
    CommStats, LoadStats,
};
pub use transport::{default_transport, set_default_transport, TransportKind};
