//! SPMD regular-section assignment: the statement `A(l : u : s) = expr`
//! executed as compiler-generated node code.
//!
//! This is the end-to-end path the paper's Table 2 measures: every node
//! builds (or receives) its gap table, computes its start and last local
//! addresses, and runs one of the Figure 8 traversal loops over its own
//! local memory. No communication is needed — the owner computes.

use bcag_core::error::Result;
use bcag_core::method::{build, Method};
use bcag_core::params::Problem;
use bcag_core::runs::RunPlan;
use bcag_core::section::RegularSection;
use bcag_core::start::last_location;
use bcag_core::two_table::TwoTable;
use bcag_core::Layout;

use crate::codeshapes::{traverse, CodeShape};
use crate::darray::DistArray;
use crate::machine::Machine;

/// Per-node plan for one section statement: everything the node program
/// needs, precomputed (the paper's "table construction" phase).
#[derive(Debug, Clone)]
pub struct NodePlan {
    /// Start local address, or `None` when this node does nothing.
    pub start: Option<i64>,
    /// Last local address (inclusive bound of the traversal).
    pub last: i64,
    /// Access-ordered `AM` gap table.
    pub delta_m: Vec<i64>,
    /// Offset-indexed tables for shape 8(d).
    pub tables: Option<TwoTable>,
    /// Run-coalesced form of `(start, last, delta_m)` — the contiguity
    /// analysis every slice-copy fast path is built on.
    pub runs: RunPlan,
}

/// Builds the plans of all nodes for `A(l : u : s)` on a `(p, k)` layout.
pub fn plan_section(
    p: i64,
    k: i64,
    section: &RegularSection,
    method: Method,
) -> Result<Vec<NodePlan>> {
    let norm = section.normalized();
    if norm.count == 0 {
        return Ok((0..p)
            .map(|_| NodePlan {
                start: None,
                last: -1,
                delta_m: vec![],
                tables: None,
                runs: RunPlan::empty(),
            })
            .collect());
    }
    let problem = Problem::new(p, k, norm.lo, norm.step)?;
    let lay = Layout::from_raw(p, k);
    (0..p)
        .map(|m| {
            let pat = build(&problem, m, method)?;
            let last_g = last_location(&problem, m, norm.hi)?;
            let start = match (pat.start_local(), last_g) {
                (Some(s), Some(lg)) if s <= lay.local_addr(lg) => Some(s),
                _ => None,
            };
            let last = last_g.map_or(-1, |g| lay.local_addr(g));
            let runs = RunPlan::compile(start, last, pat.gaps());
            // Locality analytics ride the compile (the cache memoizes the
            // result, so a steady-state loop records each plan once):
            // reuse-distance histogram + working-set counters for the
            // canonical 8-byte element the runtime moves.
            bcag_core::locality::record(&runs, 8);
            Ok(NodePlan {
                start,
                last,
                runs,
                delta_m: pat.gaps().to_vec(),
                tables: TwoTable::from_pattern(&pat),
            })
        })
        .collect()
}

/// Executes `A(section) = value` on the machine with the chosen table
/// method and node-code shape, in parallel across simulated nodes.
pub fn assign_scalar<T>(
    arr: &mut DistArray<T>,
    section: &RegularSection,
    value: T,
    method: Method,
    shape: CodeShape,
) -> Result<()>
where
    T: Clone + Send + Sync,
{
    apply_section(arr, section, method, shape, move |x| *x = value.clone())
}

/// Executes `A(section) = f(A(section))` elementwise (in place) with the
/// chosen method and shape.
pub fn apply_section<T, F>(
    arr: &mut DistArray<T>,
    section: &RegularSection,
    method: Method,
    shape: CodeShape,
    f: F,
) -> Result<()>
where
    T: Clone + Send,
    F: Fn(&mut T) + Sync,
{
    let plans = crate::cache::plans(arr.p(), arr.k(), section, method)?;
    let machine = Machine::new(arr.p());
    machine.run(arr.locals_mut(), |m, local| {
        let plan = &plans[m];
        let Some(start) = plan.start else { return };
        let tables = plan.tables.as_ref().expect("non-empty plan has tables");
        traverse(
            shape,
            local,
            start,
            plan.last,
            &plan.delta_m,
            tables,
            &plan.runs,
            &f,
        );
    });
    Ok(())
}

/// Sequential reference semantics of `A(section) = f(...)`, used to verify
/// the SPMD execution.
pub fn apply_section_seq<T, F>(global: &mut [T], section: &RegularSection, f: F)
where
    F: Fn(&mut T),
{
    for i in section.iter() {
        f(&mut global[i as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_assignment_matches_sequential_all_shapes() {
        let n = 400i64;
        let section = RegularSection::new(4, 301, 9).unwrap();
        for shape in CodeShape::ALL {
            let mut arr = DistArray::new(4, 8, n, 0.0f64).unwrap();
            assign_scalar(&mut arr, &section, 100.0, Method::Lattice, shape).unwrap();
            let mut expect = vec![0.0f64; n as usize];
            apply_section_seq(&mut expect, &section, |x| *x = 100.0);
            assert_eq!(arr.to_global(), expect, "shape {}", shape.label());
        }
    }

    #[test]
    fn negative_stride_sections_normalize() {
        let n = 200i64;
        let section = RegularSection::new(180, 5, -7).unwrap();
        let mut arr = DistArray::new(4, 8, n, 0i64).unwrap();
        assign_scalar(
            &mut arr,
            &section,
            1,
            Method::Lattice,
            CodeShape::BranchLoop,
        )
        .unwrap();
        let mut expect = vec![0i64; n as usize];
        apply_section_seq(&mut expect, &section, |x| *x = 1);
        assert_eq!(arr.to_global(), expect);
    }

    #[test]
    fn all_methods_agree() {
        let n = 500i64;
        let section = RegularSection::new(3, 488, 11).unwrap();
        let mut reference: Option<Vec<i64>> = None;
        for method in Method::GENERAL {
            let mut arr = DistArray::new(8, 4, n, 0i64).unwrap();
            apply_section(&mut arr, &section, method, CodeShape::SplitLoop, |x| {
                *x += 7
            })
            .unwrap();
            let g = arr.to_global();
            match &reference {
                None => reference = Some(g),
                Some(r) => assert_eq!(&g, r, "{}", method.name()),
            }
        }
    }

    #[test]
    fn empty_section_is_noop() {
        let mut arr = DistArray::new(2, 4, 50, 9i64).unwrap();
        let section = RegularSection::new(30, 10, 3).unwrap(); // empty
        assign_scalar(&mut arr, &section, 0, Method::Lattice, CodeShape::ModLoop).unwrap();
        assert!(arr.to_global().iter().all(|&x| x == 9));
    }

    #[test]
    fn single_element_section() {
        let mut arr = DistArray::new(4, 8, 100, 0i64).unwrap();
        let section = RegularSection::new(55, 55, 3).unwrap();
        assign_scalar(
            &mut arr,
            &section,
            5,
            Method::Lattice,
            CodeShape::TwoTableLoop,
        )
        .unwrap();
        let g = arr.to_global();
        assert_eq!(g[55], 5);
        assert_eq!(g.iter().filter(|&&x| x == 5).count(), 1);
    }

    #[test]
    fn apply_section_increments_only_section() {
        let n = 300i64;
        let section = RegularSection::new(0, 299, 13).unwrap();
        let mut arr = DistArray::new(4, 8, n, 1i64).unwrap();
        apply_section(
            &mut arr,
            &section,
            Method::Lattice,
            CodeShape::BranchLoop,
            |x| *x *= 2,
        )
        .unwrap();
        let g = arr.to_global();
        for i in 0..n {
            let expected = if section.contains(i) { 2 } else { 1 };
            assert_eq!(g[i as usize], expected, "i={i}");
        }
    }
}
