//! Two-dimensional distributed matrices over an HPF mapping.
//!
//! [`DistMatrix`] pairs a [`bcag_hpf::ArrayMap`] (any combination of
//! block / cyclic / cyclic(k) per dimension over a processor grid) with
//! per-processor local storage, and executes data-parallel region updates
//! SPMD-style: section assignments (rectangular), and the paper's
//! future-work regions — diagonals and trapezoids — via the closed-form
//! enumeration in `bcag_hpf`.

use bcag_core::error::{BcagError, Result};
use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_hpf::diagonal::diagonal_accesses;
use bcag_hpf::triangular::{trapezoid_accesses, Trapezoid};
use bcag_hpf::ArrayMap;

use crate::machine::Machine;

/// A dense matrix distributed over a processor grid.
#[derive(Debug, Clone)]
pub struct DistMatrix<T> {
    map: ArrayMap,
    locals: Vec<Vec<T>>,
}

impl<T: Clone + Send + Sync> DistMatrix<T> {
    /// Allocates with every element set to `init`. The map must be 2-D.
    pub fn new(map: ArrayMap, init: T) -> Result<Self> {
        if map.rank() != 2 {
            return Err(BcagError::Precondition("DistMatrix requires a rank-2 map"));
        }
        let locals = map
            .grid()
            .iter_coords()
            .map(|coords| {
                map.local_size(&coords)
                    .map(|n| vec![init.clone(); n as usize])
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DistMatrix { map, locals })
    }

    /// Builds from a generator over global indices.
    pub fn from_fn(map: ArrayMap, f: impl Fn(i64, i64) -> T) -> Result<Self>
    where
        T: Default,
    {
        let mut m = DistMatrix::new(map, T::default())?;
        let extents = m.map.extents();
        for i in 0..extents[0] {
            for j in 0..extents[1] {
                let v = f(i, j);
                m.set(i, j, v)?;
            }
        }
        Ok(m)
    }

    /// The mapping descriptor.
    pub fn map(&self) -> &ArrayMap {
        &self.map
    }

    /// Matrix extents `(rows, cols)`.
    pub fn extents(&self) -> (i64, i64) {
        let e = self.map.extents();
        (e[0], e[1])
    }

    /// Reads element `(i, j)`.
    pub fn get(&self, i: i64, j: i64) -> Result<&T> {
        let idx = [i, j];
        let rank = self.map.owner_rank(&idx)? as usize;
        let addr = self.map.local_linear(&idx)? as usize;
        Ok(&self.locals[rank][addr])
    }

    /// Writes element `(i, j)`.
    pub fn set(&mut self, i: i64, j: i64, v: T) -> Result<()> {
        let idx = [i, j];
        let rank = self.map.owner_rank(&idx)? as usize;
        let addr = self.map.local_linear(&idx)? as usize;
        self.locals[rank][addr] = v;
        Ok(())
    }

    /// Gathers into a dense row-major `Vec<Vec<T>>`.
    pub fn to_dense(&self) -> Result<Vec<Vec<T>>> {
        let (rows, cols) = self.extents();
        (0..rows)
            .map(|i| (0..cols).map(|j| self.get(i, j).cloned()).collect())
            .collect()
    }

    /// Immutable view of one processor's local storage.
    pub fn local(&self, rank: i64) -> &[T] {
        &self.locals[rank as usize]
    }

    /// Mutable view of one processor's local storage.
    pub fn local_mut(&mut self, rank: i64) -> &mut [T] {
        &mut self.locals[rank as usize]
    }

    /// Applies `f(i, j, &mut elem)` to every owned element of the
    /// rectangular section, SPMD across the grid.
    pub fn apply_section(
        &mut self,
        section: &[RegularSection; 2],
        f: impl Fn(i64, i64, &mut T) + Sync,
    ) -> Result<()> {
        let map = &self.map;
        let work: Vec<Vec<(Vec<i64>, i64)>> = map
            .grid()
            .iter_coords()
            .map(|coords| map.section_accesses(&coords, section, Method::Lattice))
            .collect::<Result<Vec<_>>>()?;
        let machine = Machine::new(map.grid().size());
        machine.run(&mut self.locals, |rank, local| {
            for (idx, addr) in &work[rank] {
                f(idx[0], idx[1], &mut local[*addr as usize]);
            }
        });
        Ok(())
    }

    /// Applies `f(i, j, &mut elem)` over a trapezoidal region.
    pub fn apply_trapezoid(
        &mut self,
        region: &Trapezoid,
        f: impl Fn(i64, i64, &mut T) + Sync,
    ) -> Result<()> {
        let map = &self.map;
        let work: Vec<Vec<((i64, i64), i64)>> = map
            .grid()
            .iter_coords()
            .map(|coords| trapezoid_accesses(map, &coords, region))
            .collect::<Result<Vec<_>>>()?;
        let machine = Machine::new(map.grid().size());
        machine.run(&mut self.locals, |rank, local| {
            for ((i, j), addr) in &work[rank] {
                f(*i, *j, &mut local[*addr as usize]);
            }
        });
        Ok(())
    }

    /// Applies `f(t, i, j, &mut elem)` along the diagonal
    /// `(starts.0 + t·strides.0, starts.1 + t·strides.1)`.
    pub fn apply_diagonal(
        &mut self,
        starts: (i64, i64),
        strides: (i64, i64),
        count: i64,
        f: impl Fn(i64, i64, i64, &mut T) + Sync,
    ) -> Result<()> {
        let map = &self.map;
        let work: Vec<_> = map
            .grid()
            .iter_coords()
            .map(|coords| {
                diagonal_accesses(
                    map,
                    &coords,
                    &[starts.0, starts.1],
                    &[strides.0, strides.1],
                    count,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        let machine = Machine::new(map.grid().size());
        machine.run(&mut self.locals, |rank, local| {
            for acc in &work[rank] {
                f(
                    acc.t,
                    acc.index[0],
                    acc.index[1],
                    &mut local[acc.local as usize],
                );
            }
        });
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // (i, j) indexing mirrors the matrix math
mod tests {
    use super::*;
    use bcag_hpf::{DimMap, Dist};

    fn map_2d(n: i64) -> ArrayMap {
        ArrayMap::new(vec![
            DimMap::simple(n, 2, Dist::CyclicK(3)).unwrap(),
            DimMap::simple(n, 2, Dist::CyclicK(4)).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn rectangular_section_update() {
        let n = 24;
        let mut m = DistMatrix::from_fn(map_2d(n), |i, j| (i * 100 + j) as f64).unwrap();
        let sec = [
            RegularSection::new(1, n - 1, 3).unwrap(),
            RegularSection::new(0, n - 1, 2).unwrap(),
        ];
        m.apply_section(&sec, |_, _, x| *x = -*x).unwrap();
        let dense = m.to_dense().unwrap();
        for i in 0..n {
            for j in 0..n {
                let expect = (i * 100 + j) as f64;
                let in_sec = i >= 1 && (i - 1) % 3 == 0 && j % 2 == 0;
                let got = dense[i as usize][j as usize];
                assert_eq!(got, if in_sec { -expect } else { expect }, "({i},{j})");
            }
        }
    }

    #[test]
    fn lower_triangle_update() {
        let n = 20;
        let mut m = DistMatrix::from_fn(map_2d(n), |_, _| 0i64).unwrap();
        m.apply_trapezoid(&Trapezoid::lower_triangle(n), |_, _, x| *x = 1)
            .unwrap();
        let dense = m.to_dense().unwrap();
        for i in 0..n as usize {
            for j in 0..n as usize {
                assert_eq!(dense[i][j], if j <= i { 1 } else { 0 }, "({i},{j})");
            }
        }
    }

    #[test]
    fn diagonal_update() {
        let n = 16;
        let mut m = DistMatrix::from_fn(map_2d(n), |_, _| 0i64).unwrap();
        m.apply_diagonal((0, 0), (1, 1), n, |t, i, j, x| {
            assert_eq!(i, t);
            assert_eq!(j, t);
            *x = 7;
        })
        .unwrap();
        let dense = m.to_dense().unwrap();
        for i in 0..n as usize {
            for j in 0..n as usize {
                assert_eq!(dense[i][j], if i == j { 7 } else { 0 });
            }
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DistMatrix::new(map_2d(10), 0i64).unwrap();
        m.set(3, 7, 42).unwrap();
        assert_eq!(*m.get(3, 7).unwrap(), 42);
        assert!(m.get(10, 0).is_err());
    }

    #[test]
    fn rank_validation() {
        let map1d = ArrayMap::new(vec![DimMap::simple(10, 2, Dist::Cyclic).unwrap()]).unwrap();
        assert!(DistMatrix::new(map1d, 0u8).is_err());
    }
}
