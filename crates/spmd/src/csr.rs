//! Flat CSR (compressed sparse row) storage for per-row item lists.
//!
//! The communication layer needs "a list of things per (src, dst) pair"
//! and "a list of ranks per grid coordinate" — shapes that the obvious
//! `Vec<Vec<_>>` encodings pay for with O(rows) allocator calls and
//! pointer-chasing reads. [`Csr`] stores every item in one flat vector
//! plus a `rows + 1` offset table, so building touches the allocator
//! O(1) amortized times and a per-row slice is two index reads.

/// A read-only jagged array: `rows` variable-length rows stored
/// back-to-back in one flat buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr<T> {
    items: Vec<T>,
    /// `offsets.len() == rows + 1`; row `r` is `items[offsets[r]..offsets[r+1]]`.
    offsets: Vec<usize>,
}

impl<T> Csr<T> {
    /// A CSR with `rows` empty rows.
    pub fn empty(rows: usize) -> Csr<T> {
        Csr {
            items: Vec::new(),
            offsets: vec![0; rows + 1],
        }
    }

    /// Starts an incremental row-by-row build.
    pub fn builder() -> CsrBuilder<T> {
        CsrBuilder {
            items: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The items of row `r` as a contiguous slice.
    pub fn row(&self, r: usize) -> &[T] {
        &self.items[self.offsets[r]..self.offsets[r + 1]]
    }

    /// All items, row-major.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total number of items across all rows.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no row holds any item.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Incremental builder for [`Csr`]: push items, then seal the current row.
#[derive(Debug)]
pub struct CsrBuilder<T> {
    items: Vec<T>,
    offsets: Vec<usize>,
}

impl<T> CsrBuilder<T> {
    /// Reserves space for `additional` more items.
    pub fn reserve(&mut self, additional: usize) {
        self.items.reserve(additional);
    }

    /// Appends one item to the row currently being built.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// Seals the current row; subsequent pushes start the next row.
    pub fn finish_row(&mut self) {
        self.offsets.push(self.items.len());
    }

    /// Number of rows sealed so far.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Finalizes the build. Panics unless exactly `expected_rows` rows were
    /// sealed — a guard against a caller forgetting a `finish_row`.
    pub fn finish(self, expected_rows: usize) -> Csr<T> {
        assert_eq!(
            self.offsets.len() - 1,
            expected_rows,
            "CSR build sealed a different number of rows than expected"
        );
        Csr {
            items: self.items,
            offsets: self.offsets,
        }
    }
}

impl<T: Copy> CsrBuilder<T> {
    /// Appends a slice of items to the row currently being built.
    pub fn extend_row(&mut self, items: &[T]) {
        self.items.extend_from_slice(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_jagged_rows() {
        let mut b = Csr::builder();
        b.push(1);
        b.push(2);
        b.finish_row();
        b.finish_row(); // empty row
        b.extend_row(&[3, 4, 5]);
        b.finish_row();
        let csr = b.finish(3);
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.row(0), &[1, 2]);
        assert_eq!(csr.row(1), &[] as &[i32]);
        assert_eq!(csr.row(2), &[3, 4, 5]);
        assert_eq!(csr.len(), 5);
        assert_eq!(csr.items(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_has_all_empty_rows() {
        let csr: Csr<i64> = Csr::empty(4);
        assert_eq!(csr.rows(), 4);
        assert!(csr.is_empty());
        for r in 0..4 {
            assert!(csr.row(r).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "different number of rows")]
    fn finish_checks_row_count() {
        let mut b: CsrBuilder<i32> = Csr::builder();
        b.finish_row();
        let _ = b.finish(2);
    }
}
