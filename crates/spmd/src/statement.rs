//! Whole array statements: `A(secₐ) = f(B(sec_b), C(sec_c), ...)`.
//!
//! The paper's machinery generates the *local address streams*; a compiler
//! wraps them into complete statement execution: gather each right-hand
//! side operand's section to the processors that own the corresponding
//! left-hand side elements (communication sets), then run an owner-computes
//! elementwise loop over the LHS access sequence. This module is that
//! wrapper, plus block-size redistribution as the special case
//! `A(0:n-1) = B(0:n-1)`.
//!
//! On the steady-state path — a loop re-executing one statement shape —
//! every launch here dispatches to the resident worker pool
//! ([`crate::pool`]), the schedule cache answers the planning queries,
//! and message buffers come from the per-node arenas: after the first
//! iteration a statement spawns no threads and allocates no fresh
//! message buffers. Both shared services are built for many concurrent
//! drivers: the cache is sharded with lock-free hit bookkeeping and the
//! pool registry is a sharded read-mostly map, so N interpreted scripts
//! running this path simultaneously contend only when they miss on the
//! same key at the same time (and then the single-flight arbitration
//! builds once and shares the result).

use bcag_core::error::{BcagError, Result};
use bcag_core::method::Method;
use bcag_core::section::RegularSection;
use bcag_core::tune::{default_tune, CodeShapeChoice, TuneMode};

use crate::cache;
use crate::comm::{ExecMode, PackValue};
use crate::darray::DistArray;
use crate::fuse;
use crate::machine::Machine;
use crate::pool;
use crate::transport;

/// Executes `A(sec_a) = f(operand values...)` where each operand is a
/// `(array, section)` pair conforming to `sec_a` (equal element counts).
/// Operands may live on any layout with the same processor count; their
/// values are gathered to the LHS owners first.
///
/// `f` receives the operands' values for one section rank, in operand
/// order.
pub fn assign_expr<T, F>(
    a: &mut DistArray<T>,
    sec_a: &RegularSection,
    operands: &[(&DistArray<T>, RegularSection)],
    f: F,
) -> Result<()>
where
    T: PackValue,
    F: Fn(&[T]) -> T + Sync,
{
    if sec_a.s <= 0 {
        return Err(BcagError::Precondition(
            "assign_expr requires an ascending LHS section; normalize first",
        ));
    }
    for (b, sec_b) in operands {
        if b.p() != a.p() {
            return Err(BcagError::Precondition("operands must share the machine"));
        }
        if sec_b.count() != sec_a.count() {
            return Err(BcagError::Precondition("operand sections must conform"));
        }
    }

    // Fused path (default): the whole statement — gather, exchange, and
    // owner-computes loop — runs as one compiled per-node epoch with a
    // single pool dispatch and no staging array clones. Bit-exact with
    // the interpreted path below; `BCAG_FUSE=off` selects the
    // interpreted path for A/B runs. Multi-process sessions keep the
    // interpreted path, whose executor has the shadow-application
    // protocol replicated images need.
    if fuse::default_fused() == fuse::FusedMode::On && transport::proc::active().is_none() {
        return fuse::assign_fused(a, sec_a, operands, f);
    }

    // Gather phase: each operand's section values land in an A-shaped
    // temporary at the local addresses of the corresponding LHS elements.
    // Schedules and plans come from the process-wide cache, so a loop
    // executing the same statement shape rebuilds nothing after its first
    // iteration.
    // The cache key carries the execution context the schedule will run
    // under, so an A/B run switching transports or executors mid-process
    // never reuses a plan warmed for the other configuration.
    let mode = ExecMode::Batched;
    let kind = transport::active_transport();
    let mut staged: Vec<DistArray<T>> = Vec::with_capacity(operands.len());
    for (b, sec_b) in operands {
        let mut tmp = a.clone();
        let schedule = cache::schedule(
            a.p(),
            a.k(),
            sec_a,
            b.k(),
            sec_b,
            Method::Lattice,
            mode,
            kind,
        )?;
        schedule.execute_transport(&mut tmp, b, mode, pool::default_launch(), kind)?;
        staged.push(tmp);
    }

    // The interpreted path is never L2-blocked; keep the flight
    // recorder's blocked flag honest across fused/interpreted A/B runs.
    fuse::note_blocked(false);

    // Compute phase: owner-computes over the LHS access sequence. Under
    // the self-tuning default, each node's traversal shape comes from
    // its memoized dispatch decision: fragmented plans walk the
    // offset-indexed two-table form (Figure 8(d)) instead of the
    // run-coalesced segment loop, whose per-segment setup dominates when
    // runs are short.
    let plans = cache::plans(a.p(), a.k(), sec_a, Method::Lattice)?;
    let decisions = match default_tune() {
        TuneMode::Auto => Some(cache::decisions(
            a.p(),
            a.k(),
            sec_a,
            Method::Lattice,
            std::mem::size_of::<T>(),
        )?),
        TuneMode::Fixed => None,
    };
    let machine = Machine::new(a.p());
    let staged_refs: Vec<&DistArray<T>> = staged.iter().collect();
    machine.run(a.locals_mut(), |m, local| {
        let plan = &plans[m];
        let Some(start) = plan.start else {
            return;
        };
        let locs: Vec<&[T]> = staged_refs.iter().map(|t| t.local(m as i64)).collect();
        let mut args: Vec<T> = Vec::with_capacity(locs.len());
        let two_table = decisions
            .as_ref()
            .is_some_and(|ds| ds[m].code_shape == CodeShapeChoice::TwoTableLoop);
        if let (true, Some(tables)) = (two_table, plan.tables.as_ref()) {
            // Figure 8(d) walk: two loads per access, no wrap test — the
            // winning shape when the plan decomposes into short runs.
            let mut base = start;
            let mut i = tables.start_offset;
            while base <= plan.last {
                let addr = base as usize;
                args.clear();
                for lv in &locs {
                    args.push(lv[addr].clone());
                }
                local[addr] = f(&args);
                base += tables.delta_m[i as usize];
                i = tables.next_offset[i as usize];
            }
            return;
        }
        // Run-coalesced traversal: direct indexing per segment instead of
        // a gap-table load per element.
        plan.runs.for_each_segment(|seg| {
            for j in 0..seg.len {
                let addr = (seg.addr + j * seg.gap) as usize;
                args.clear();
                for lv in &locs {
                    args.push(lv[addr].clone());
                }
                local[addr] = f(&args);
            }
        });
    });
    Ok(())
}

/// Redistributes an array to a new block size: returns a `cyclic(new_k)`
/// copy with identical contents (`A' = A` elementwise). The workhorse of
/// `REDISTRIBUTE` directives and of interfacing libraries that demand a
/// specific blocking.
pub fn redistribute<T: PackValue>(arr: &DistArray<T>, new_k: i64) -> Result<DistArray<T>> {
    let n = arr.len();
    if n == 0 {
        return DistArray::empty(arr.p(), new_k);
    }
    let proto = arr.get(0)?.clone();
    let mut out = DistArray::new(arr.p(), new_k, n, proto)?;
    let sec = RegularSection::new(0, n - 1, 1)?;
    let mode = ExecMode::Batched;
    let kind = transport::active_transport();
    let schedule = cache::schedule_lattice(arr.p(), new_k, &sec, arr.k(), &sec, mode, kind)?;
    schedule.execute_transport(&mut out, arr, mode, pool::default_launch(), kind)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_with_mixed_layouts() {
        // A(0:359:3) = B(2:240:2) * alpha + C(10:129:1), layouts all
        // different.
        let n = 400i64;
        let alpha = 3.0f64;
        let bg: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let cg: Vec<f64> = (0..n).map(|i| (i * i % 97) as f64).collect();
        let b = DistArray::from_global(4, 5, &bg).unwrap();
        let c = DistArray::from_global(4, 16, &cg).unwrap();
        let mut a = DistArray::new(4, 8, n, 0.0f64).unwrap();

        let sec_a = RegularSection::new(0, 357, 3).unwrap();
        let sec_b = RegularSection::new(2, 240, 2).unwrap();
        let sec_c = RegularSection::new(10, 129, 1).unwrap();
        assert_eq!(sec_a.count(), 120);
        assert_eq!(sec_b.count(), 120);
        assert_eq!(sec_c.count(), 120);

        assign_expr(&mut a, &sec_a, &[(&b, sec_b), (&c, sec_c)], |args| {
            args[0] * alpha + args[1]
        })
        .unwrap();

        let got = a.to_global();
        for t in 0..120i64 {
            let ia = (3 * t) as usize;
            let ib = (2 + 2 * t) as usize;
            let ic = (10 + t) as usize;
            assert_eq!(got[ia], bg[ib] * alpha + cg[ic], "t={t}");
        }
        // Untouched elements remain zero.
        assert_eq!(got[1], 0.0);
        assert_eq!(got[2], 0.0);
    }

    #[test]
    fn zero_operand_statement_is_fill() {
        let mut a = DistArray::new(2, 4, 50, 0i64).unwrap();
        let sec = RegularSection::new(1, 49, 4).unwrap();
        assign_expr(&mut a, &sec, &[], |_| 9).unwrap();
        let g = a.to_global();
        for i in 0..50i64 {
            assert_eq!(g[i as usize], if sec.contains(i) { 9 } else { 0 });
        }
    }

    #[test]
    fn self_assignment_shift() {
        // A(0:89:1) = A(10:99:1): a shifted self-copy through a staging
        // temporary (the gather snapshots the RHS before any write).
        let n = 100i64;
        let data: Vec<i64> = (0..n).collect();
        let mut a = DistArray::from_global(4, 4, &data).unwrap();
        let src = a.clone();
        let sec_dst = RegularSection::new(0, 89, 1).unwrap();
        let sec_src = RegularSection::new(10, 99, 1).unwrap();
        assign_expr(&mut a, &sec_dst, &[(&src, sec_src)], |args| args[0]).unwrap();
        let g = a.to_global();
        for i in 0..90i64 {
            assert_eq!(g[i as usize], i + 10);
        }
        for i in 90..100i64 {
            assert_eq!(g[i as usize], i);
        }
    }

    #[test]
    fn conformance_checked() {
        let b = DistArray::new(2, 4, 50, 0.0f64).unwrap();
        let mut a = DistArray::new(2, 4, 50, 0.0f64).unwrap();
        let sec_a = RegularSection::new(0, 9, 1).unwrap();
        let sec_b = RegularSection::new(0, 10, 1).unwrap();
        assert!(assign_expr(&mut a, &sec_a, &[(&b, sec_b)], |v| v[0]).is_err());
    }

    #[test]
    fn redistribute_preserves_contents() {
        let data: Vec<i64> = (0..240).map(|i| 7 * i + 1).collect();
        let a = DistArray::from_global(4, 3, &data).unwrap();
        for new_k in [1i64, 2, 5, 8, 60, 240] {
            let b = redistribute(&a, new_k).unwrap();
            assert_eq!(b.k(), new_k);
            assert_eq!(b.to_global(), data, "new_k={new_k}");
        }
    }
}
