//! Resident SPMD worker pool: persistent node threads, a reusable
//! channel fabric, and per-node buffer arenas.
//!
//! The simulated machine historically paid a full `thread::scope`
//! spawn/join of `p` OS threads on every [`crate::Machine::run`] and
//! [`crate::CommSchedule::execute`] call. For the small-`k`,
//! many-statement workloads whose *planning* cost the schedule cache
//! already removed, that per-statement *launch* cost dominates. The pool
//! makes the runtime behave like the paper's iPSC/860: nodes boot once,
//! statements stream through them.
//!
//! Architecture:
//!
//! - **Workers** — `p` detached threads named `node-<m>`, created once per
//!   (machine size, transport) by [`global`] (or eagerly by [`warm`]) and
//!   resident for the process lifetime. The thread name doubles as the
//!   trace-lane label, so counters recorded on a worker aggregate on one
//!   persistent `node-<m>` lane exactly as scoped threads' per-launch
//!   lanes would sum.
//! - **Fabric** — each node owns a [`crate::transport::Endpoint`] on the
//!   pool's fabric ([`TransportKind::Mpsc`] inboxes or the lock-free
//!   SPSC rings of [`TransportKind::Shm`]/[`TransportKind::Proc`]); node
//!   jobs exchange [`Envelope`]s (type-erased boxed payloads) without
//!   creating channels per call.
//! - **Arena** — each node owns a [`BufferArena`] recycling pack/unpack
//!   `Vec` allocations across statements; steady-state batched execution
//!   allocates nothing once buffers reach their high-water mark.
//! - **Dispatch / epoch barrier** — [`Pool::dispatch`] ships a borrowed
//!   `&dyn Fn(usize, &mut NodeCtx)` to every worker as a raw-pointer job
//!   and blocks on an ack channel until all `p` jobs complete (one
//!   *epoch*). The barrier is also an unwind guard: the borrow cannot
//!   escape the dispatching frame while any job might still use it.
//! - **Poison protocol** — a panicking node job broadcasts a [`Poison`]
//!   envelope to its peers before acknowledging, so nodes blocked in
//!   [`NodeCtx::recv`] fail fast with a clear message instead of hanging
//!   a counted receive loop. After the epoch completes the dispatcher
//!   drains every inbox and re-raises the original panic; the pool
//!   itself stays usable.
//!
//! [`launch`] is the single entry point: `LaunchMode::Pooled` routes
//! through the resident pool, `LaunchMode::Scoped` reproduces the
//! historical per-call `thread::scope` path (kept for A/B benchmarking).
//! Both modes run the *same* node body, so deterministic counter totals
//! (`messages_sent`, `bytes_packed`, …) are bit-identical by
//! construction.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

use bcag_core::error::Result;
use bcag_core::method::Method;
use bcag_core::params::Problem;
use bcag_core::pattern::AccessPattern;

use crate::transport::{self, BarrierArrive, BarrierRelease, Endpoint, Poison, TransportKind};

pub use crate::transport::Envelope;

/// How SPMD node bodies are launched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaunchMode {
    /// Dispatch to the resident worker pool (default): zero thread
    /// spawns and recycled buffers on the steady-state path.
    Pooled,
    /// Spawn a fresh `thread::scope` per call — the historical launch
    /// path, kept selectable for A/B benchmarking.
    Scoped,
}

impl LaunchMode {
    /// Stable lowercase name, used in bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            LaunchMode::Pooled => "pooled",
            LaunchMode::Scoped => "scoped",
        }
    }
}

/// Process-default launch mode: 0 = unset, 1 = pooled, 2 = scoped.
static DEFAULT_LAUNCH: AtomicU8 = AtomicU8::new(0);

/// The process-wide default [`LaunchMode`], used by `Machine::new` and
/// `CommSchedule::execute_with`. Initialized lazily from the
/// `BCAG_LAUNCH` env var (`scoped` selects the per-call thread path;
/// anything else, or unset, selects the pool).
pub fn default_launch() -> LaunchMode {
    match DEFAULT_LAUNCH.load(Ordering::Relaxed) {
        1 => LaunchMode::Pooled,
        2 => LaunchMode::Scoped,
        _ => {
            let mode = match std::env::var("BCAG_LAUNCH").as_deref() {
                Ok("scoped") => LaunchMode::Scoped,
                _ => LaunchMode::Pooled,
            };
            set_default_launch(mode);
            mode
        }
    }
}

/// Overrides the process-wide default [`LaunchMode`] (benchmarks use
/// this to A/B the two paths within one process).
pub fn set_default_launch(mode: LaunchMode) {
    let v = match mode {
        LaunchMode::Pooled => 1,
        LaunchMode::Scoped => 2,
    };
    DEFAULT_LAUNCH.store(v, Ordering::Relaxed);
}

/// Arena shelves hold at most this many idle buffers per payload type;
/// beyond the high-water working set, extra buffers are dropped rather
/// than hoarded.
const ARENA_SHELF_CAP: usize = 64;

/// Per-node recycling store for pack/unpack buffers, keyed by payload
/// type. `take` pops an idle buffer (counting a `pool_buffer_reuses`
/// trace event) or allocates a fresh one; `put` returns a buffer to its
/// shelf. Buffers keep their capacity across statements, so steady-state
/// loops stop allocating once every shelf reaches its high-water mark.
#[derive(Default)]
pub struct BufferArena {
    shelves: HashMap<std::any::TypeId, Vec<Envelope>>,
}

impl BufferArena {
    /// Takes a cleared `Vec<T>` from the shelf, or allocates one.
    pub fn take<T: Send + 'static>(&mut self) -> Vec<T> {
        let shelf = self.shelves.entry(std::any::TypeId::of::<Vec<T>>());
        if let std::collections::hash_map::Entry::Occupied(mut e) = shelf {
            if let Some(env) = e.get_mut().pop() {
                let mut buf = *env.downcast::<Vec<T>>().expect("shelf keyed by TypeId");
                buf.clear();
                bcag_trace::count("pool_buffer_reuses", 1);
                return buf;
            }
        }
        Vec::new()
    }

    /// Shelves a buffer for reuse. Zero-capacity buffers and overflow
    /// beyond [`ARENA_SHELF_CAP`] are dropped.
    pub fn put<T: Send + 'static>(&mut self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        let shelf = self
            .shelves
            .entry(std::any::TypeId::of::<Vec<T>>())
            .or_default();
        if shelf.len() < ARENA_SHELF_CAP {
            shelf.push(Box::new(buf));
        }
    }
}

/// Per-node execution context handed to every launched body: the node's
/// fabric endpoint and its buffer arena.
pub struct NodeCtx {
    m: usize,
    kind: TransportKind,
    link: Box<dyn Endpoint>,
    arena: BufferArena,
}

impl NodeCtx {
    fn new(m: usize, kind: TransportKind, link: Box<dyn Endpoint>) -> NodeCtx {
        NodeCtx {
            m,
            kind,
            link,
            arena: BufferArena::default(),
        }
    }

    /// This node's index in `0..p`.
    pub fn node(&self) -> usize {
        self.m
    }

    /// The machine size.
    pub fn p(&self) -> usize {
        self.link.p()
    }

    /// Which fabric this context's envelopes travel over.
    pub fn transport(&self) -> TransportKind {
        self.kind
    }

    /// Whether executors should ship the serialized wire format instead
    /// of boxed in-memory buffers on this fabric.
    pub fn serializes(&self) -> bool {
        self.kind.serializes()
    }

    /// Sends an envelope to node `dst`.
    pub fn send(&mut self, dst: usize, env: Envelope) {
        self.link.send(dst, env);
    }

    /// Blocks for the next envelope. Panics with a clear message if a
    /// peer's poison arrives instead — a node job panicked mid-exchange
    /// and this node's expected data will never come.
    pub fn recv(&mut self) -> Envelope {
        let env = self.link.recv();
        if env.is::<Poison>() {
            panic!(
                "spmd node {}: a peer node job panicked mid-exchange",
                self.m
            );
        }
        env
    }

    /// Full barrier over all nodes of the machine, built on the fabric's
    /// envelope exchange (every backend inherits it): each node reports
    /// to node 0, node 0 releases everyone. Only valid at quiescent
    /// points — no data envelopes may be in flight.
    pub fn barrier(&mut self) {
        let p = self.p();
        if self.m == 0 {
            for _ in 1..p {
                let env = self.recv();
                assert!(env.is::<BarrierArrive>(), "barrier crossed in-flight data");
            }
            for dst in 1..p {
                self.send(dst, Box::new(BarrierRelease));
            }
        } else {
            self.send(0, Box::new(BarrierArrive));
            let env = self.recv();
            assert!(env.is::<BarrierRelease>(), "barrier crossed in-flight data");
        }
    }

    /// Takes a recycled buffer from this node's arena.
    pub fn take_buf<T: Send + 'static>(&mut self) -> Vec<T> {
        self.arena.take()
    }

    /// Returns a buffer to this node's arena for reuse.
    pub fn put_buf<T: Send + 'static>(&mut self, buf: Vec<T>) {
        self.arena.put(buf)
    }

    /// Non-blocking poison check for bodies that receive on their own
    /// typed channels (the per-element executor): panics if a peer's
    /// poison is queued on the fabric.
    pub(crate) fn check_poison(&mut self) {
        if let Some(env) = self.link.try_recv() {
            if env.is::<Poison>() {
                panic!(
                    "spmd node {}: a peer node job panicked mid-exchange",
                    self.m
                );
            }
            panic!(
                "spmd node {}: unexpected fabric message during typed exchange",
                self.m
            );
        }
    }

    /// Whether anything is queued on the fabric (post-panic hygiene
    /// checks in tests).
    #[cfg(test)]
    pub(crate) fn fabric_is_clean(&mut self) -> bool {
        match self.link.try_recv() {
            None => true,
            Some(_) => false,
        }
    }

    /// Discards everything queued on the inbox (post-panic cleanup).
    fn drain_inbox(&mut self) {
        while self.link.try_recv().is_some() {}
    }

    /// Broadcasts poison to every other node. Best-effort with a bounded
    /// retry: a peer blocked in `recv` keeps draining its rings, so a
    /// full ring clears quickly, but a departed peer (scoped-mode
    /// teardown) must not block the panicking node's acknowledgement
    /// forever.
    fn poison_peers(&mut self) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(100);
        for dst in 0..self.p() {
            if dst == self.m {
                continue;
            }
            let mut env: Envelope = Box::new(Poison);
            loop {
                if self.link.offer(dst, env) {
                    break;
                }
                if std::time::Instant::now() >= deadline {
                    break;
                }
                std::thread::yield_now();
                env = Box::new(Poison);
            }
        }
    }
}

/// A unit of work shipped to one worker.
type Job = Box<dyn FnOnce(&mut NodeCtx) + Send>;

/// A resident pool of `p` node workers. Obtain one via [`global`]; all
/// launches for a given (machine size, transport) share it.
pub struct Pool {
    p: usize,
    kind: TransportKind,
    workers: Vec<Sender<Job>>,
    /// Serializes dispatches: interleaving jobs from two epochs on
    /// shared workers could deadlock nodes that exchange data.
    gate: Mutex<()>,
    /// [`POOL_TICK`] stamp of the last registry hit or dispatch — the
    /// recency signal admission control's LRU eviction scans.
    last_used: AtomicU64,
}

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True on pool worker threads. Nested launches from inside a node body
/// fall back to the scoped path — dispatching to the (busy) pool from
/// one of its own workers would deadlock on the gate.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Borrowed node body, erased to a raw pointer so the `'static` [`Job`]
/// channel can carry it. Soundness: the dispatching frame blocks in
/// [`EpochBarrier`] until every job holding a copy has acknowledged, so
/// the pointee strictly outlives every dereference.
#[derive(Clone, Copy)]
struct BodyPtr(*const (dyn Fn(usize, &mut NodeCtx) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and the epoch barrier keeps it alive for the job's lifetime.
#[allow(unsafe_code)]
unsafe impl Send for BodyPtr {}

/// Completion barrier for one dispatch epoch; doubles as an unwind
/// guard — its `Drop` blocks until every shipped job has acknowledged,
/// so a borrowed body can never dangle while a worker might call it.
struct EpochBarrier {
    ack_rx: Receiver<Option<Box<dyn Any + Send>>>,
    outstanding: usize,
}

impl EpochBarrier {
    /// Blocks until every outstanding job acknowledges; returns the
    /// first panic payload observed, if any.
    fn wait(&mut self) -> Option<Box<dyn Any + Send>> {
        let mut first = None;
        while self.outstanding > 0 {
            match self.ack_rx.recv() {
                Ok(payload) => {
                    self.outstanding -= 1;
                    if first.is_none() {
                        first = payload;
                    }
                }
                // All ack senders dropped: no job can still reference
                // the dispatched body.
                Err(_) => self.outstanding = 0,
            }
        }
        first
    }
}

impl Drop for EpochBarrier {
    fn drop(&mut self) {
        let _ = self.wait();
    }
}

impl Pool {
    /// Boots `p` resident workers with a fresh fabric of the given kind.
    fn new(p: usize, kind: TransportKind) -> Pool {
        assert!(p >= 1, "machine needs at least one node");
        let endpoints = transport::connect(kind, p);
        let mut workers = Vec::with_capacity(p);
        for (m, link) in endpoints.into_iter().enumerate() {
            let (jtx, jrx) = channel::<Job>();
            workers.push(jtx);
            let mut ctx = NodeCtx::new(m, kind, link);
            std::thread::Builder::new()
                // The thread name is the default trace-lane label, so
                // pooled counters land on `node-<m>` lanes exactly like
                // scoped ones.
                .name(format!("node-{m}"))
                .spawn(move || {
                    IN_WORKER.with(|f| f.set(true));
                    while let Ok(job) = jrx.recv() {
                        job(&mut ctx);
                    }
                })
                .expect("spawn pool worker");
        }
        Pool {
            p,
            kind,
            workers,
            gate: Mutex::new(()),
            last_used: AtomicU64::new(0),
        }
    }

    /// Stamps this pool as the most recently used resident pool.
    fn touch(&self) {
        let tick = POOL_TICK.fetch_add(1, Ordering::Relaxed) + 1;
        self.last_used.store(tick, Ordering::Relaxed);
    }

    /// Whether no dispatch currently holds the epoch gate. Admission
    /// control only evicts idle pools; a busy pool stays resident no
    /// matter how stale its stamp is.
    fn is_idle(&self) -> bool {
        // `Ok` (briefly acquired, dropped immediately) and `Poisoned`
        // both mean nobody is dispatching right now.
        !matches!(
            self.gate.try_lock(),
            Err(std::sync::TryLockError::WouldBlock)
        )
    }

    /// The machine size this pool serves.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The fabric this pool's node contexts exchange envelopes over.
    pub fn transport(&self) -> TransportKind {
        self.kind
    }

    /// Runs `body(m, ctx)` once on every node and blocks until all have
    /// finished (one epoch). If any node job panicked, drains the fabric
    /// and re-raises the first panic; the pool remains usable.
    pub fn dispatch(&self, body: &(dyn Fn(usize, &mut NodeCtx) + Sync)) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static INFLIGHT: AtomicU64 = AtomicU64::new(0);
        /// Decrements the in-flight depth and samples the gauge on the way
        /// out, so the track returns to its resting level.
        struct DepthGuard;
        impl Drop for DepthGuard {
            fn drop(&mut self) {
                let depth = INFLIGHT.fetch_sub(1, Ordering::Relaxed) - 1;
                bcag_trace::gauge("pool_dispatch_inflight", depth);
            }
        }
        let _sp = bcag_trace::span("pool.dispatch");
        let _t = bcag_trace::timed_span("pool_dispatch_ns");
        // Sampled before the gate: concurrent drivers queued on the same
        // pool show up as depth > 1 in the timeline.
        let _depth = bcag_trace::enabled().then(|| {
            let depth = INFLIGHT.fetch_add(1, Ordering::Relaxed) + 1;
            bcag_trace::gauge("pool_dispatch_inflight", depth);
            DepthGuard
        });
        self.touch();
        let _gate = lock_clean(&self.gate);
        if let Some(payload) = self.run_epoch(body) {
            // Jobs stopped mid-protocol: stray data and poison envelopes
            // may still sit in inboxes. Scrub before releasing the gate
            // so the next dispatch starts clean.
            let _ = self.run_epoch(&|_, ctx| ctx.drain_inbox());
            resume_unwind(payload);
        }
    }

    /// Ships one job per worker and waits out the epoch, returning the
    /// first panic payload if any job panicked.
    fn run_epoch(
        &self,
        body: &(dyn Fn(usize, &mut NodeCtx) + Sync),
    ) -> Option<Box<dyn Any + Send>> {
        // SAFETY (lifetime erasure): a plain `as` cast cannot widen the
        // trait-object lifetime to the pointer's `'static` default, so
        // the fat pointer is transmuted instead. The pointer is only
        // dereferenced inside a job, strictly before that job's ack.
        #[allow(unsafe_code)]
        let ptr = BodyPtr(unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, &mut NodeCtx) + Sync),
                *const (dyn Fn(usize, &mut NodeCtx) + Sync),
            >(body)
        });
        let (ack_tx, ack_rx) = channel();
        let mut barrier = EpochBarrier {
            ack_rx,
            outstanding: 0,
        };
        for (m, worker) in self.workers.iter().enumerate() {
            let ack = ack_tx.clone();
            let job: Job = Box::new(move |ctx| {
                // Capture the whole `BodyPtr` (which is `Send`), not the
                // disjoint raw-pointer field (which is not).
                let ptr = ptr;
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: the dispatching frame is blocked in the
                    // epoch barrier until this job's ack below, so the
                    // pointee outlives this call.
                    #[allow(unsafe_code)]
                    let body = unsafe { &*ptr.0 };
                    body(m, ctx)
                }));
                let payload = match outcome {
                    Ok(()) => None,
                    Err(payload) => {
                        ctx.poison_peers();
                        Some(payload)
                    }
                };
                let _ = ack.send(payload);
            });
            worker.send(job).expect("pool worker thread alive");
            barrier.outstanding += 1;
        }
        drop(ack_tx);
        barrier.wait()
    }
}

/// Global recency clock for pool admission control: every registry hit
/// and dispatch takes a tick and stamps it on the pool it used.
static POOL_TICK: AtomicU64 = AtomicU64::new(0);

/// Resolves the resident-pool cap from `BCAG_MAX_POOLS`. An explicit
/// positive integer is respected verbatim; unset or unparseable falls
/// back to the host's core count (floor 2, so single-core CI machines
/// can still keep a pool per transport under A/B tests without churn).
fn parse_max_pools(var: Option<&str>) -> usize {
    match var.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2),
    }
}

/// The process-wide resident-pool cap (see [`parse_max_pools`]), read
/// once from the environment.
fn max_pools() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| parse_max_pools(std::env::var("BCAG_MAX_POOLS").ok().as_deref()))
}

/// Counts pools currently registered across all shards.
fn resident_pools() -> usize {
    registry().iter().map(|shard| read_clean(shard).len()).sum()
}

/// Admission control for pool boot: while at least `cap` pools are
/// resident, evicts the least-recently-used *idle* pool so the caller's
/// boot doesn't grow the fleet past the cap. Pools matching the caller's
/// own `(keep_p, keep_kind)` key are never victims — a racing booter of
/// the same key must find the freshly booted pool, not evict it.
///
/// Best-effort by design: if every resident pool is mid-dispatch the new
/// pool is admitted over the cap rather than blocking the caller. The
/// registry drops only its own `Arc`; in-flight holders keep an evicted
/// pool (and its worker threads) alive until their dispatches finish,
/// after which the workers exit when the last `Arc` drops.
fn enforce_pool_cap(cap: usize, keep_p: usize, keep_kind: TransportKind) {
    while resident_pools() >= cap {
        // Scan for the stalest idle pool. Read locks only, one shard at
        // a time, nothing held across the eviction below — no ordering
        // hazard against concurrent lookups or boots.
        let mut victim: Option<(usize, u64, Arc<Pool>)> = None;
        for (i, shard) in registry().iter().enumerate() {
            for pool in read_clean(shard).iter() {
                if pool.p == keep_p && pool.kind == keep_kind {
                    continue;
                }
                if !pool.is_idle() {
                    continue;
                }
                let stamp = pool.last_used.load(Ordering::Relaxed);
                if victim.as_ref().map_or(true, |(_, s, _)| stamp < *s) {
                    victim = Some((i, stamp, Arc::clone(pool)));
                }
            }
        }
        let Some((i, _, victim)) = victim else {
            // Every pool is busy (or matches the caller's key): admit
            // over the cap rather than stall the boot.
            return;
        };
        write_clean(&registry()[i]).retain(|q| !Arc::ptr_eq(q, &victim));
        bcag_trace::count("pool_evictions", 1);
    }
}

/// Lock domains of the pool registry. Every `Machine::new` and
/// `CommSchedule` execution resolves its pool through the registry, so
/// like the schedule cache it must not funnel concurrent drivers through
/// one exclusive lock; 16 shards is far past the handful of
/// (machine size, transport) pairs a process ever runs.
const REGISTRY_SHARDS: usize = 16;

/// Registry of resident pools, one per (machine size, transport) ever
/// requested: a sharded read-mostly map. The steady-state path (pool
/// already booted) takes one shared lock on the key's shard; the
/// write lock doubles as single-flight arbitration for the one-time
/// worker boot.
fn registry() -> &'static [RwLock<Vec<Arc<Pool>>>; REGISTRY_SHARDS] {
    static REGISTRY: OnceLock<[RwLock<Vec<Arc<Pool>>>; REGISTRY_SHARDS]> = OnceLock::new();
    REGISTRY.get_or_init(|| std::array::from_fn(|_| RwLock::new(Vec::new())))
}

/// The registry shard for a (machine size, transport) key: high FxHash
/// bits, like the schedule cache's shard selection.
fn registry_shard(p: usize, kind: TransportKind) -> &'static RwLock<Vec<Arc<Pool>>> {
    let hash = bcag_harness::hash::hash_one(&(p, kind));
    &registry()[(hash >> 32) as usize & (REGISTRY_SHARDS - 1)]
}

/// The resident pool for machine size `p` on the process-default
/// transport, booting it on first use.
pub fn global(p: i64) -> Arc<Pool> {
    global_with(p, transport::default_transport())
}

/// The resident pool for machine size `p` on an explicit transport.
///
/// Boots are admission-controlled: at most `BCAG_MAX_POOLS` pools
/// (default: host core count) stay registered, with idle
/// least-recently-used pools evicted to make room — a long-lived driver
/// cycling through many machine sizes doesn't accumulate `Σpᵢ` parked
/// worker threads.
pub fn global_with(p: i64, kind: TransportKind) -> Arc<Pool> {
    assert!(p >= 1, "machine needs at least one node");
    let p = p as usize;
    let shard = registry_shard(p, kind);
    {
        let pools = read_clean(shard);
        if let Some(pool) = pools.iter().find(|pool| pool.p == p && pool.kind == kind) {
            pool.touch();
            return Arc::clone(pool);
        }
    }
    // Make room before booting: evict idle LRU pools (never this key's)
    // while the fleet is at the cap. No locks held here, so the scan's
    // shard reads and the eviction's shard write cannot deadlock against
    // the write lock below.
    enforce_pool_cap(max_pools(), p, kind);
    let mut pools = write_clean(shard);
    // Double-check under the write lock: a racing driver may have booted
    // this pool between our read probe and here. The write lock makes
    // the boot single-flight — `p` worker threads spawn exactly once.
    if let Some(pool) = pools.iter().find(|pool| pool.p == p && pool.kind == kind) {
        pool.touch();
        return Arc::clone(pool);
    }
    let pool = Arc::new(Pool::new(p, kind));
    pool.touch();
    pools.push(Arc::clone(&pool));
    drop(pools);
    if bcag_trace::enabled() {
        bcag_trace::gauge("resident_pools", resident_pools() as u64);
    }
    pool
}

/// Eagerly boots the pool for machine size `p`, so the first statement
/// of a script doesn't pay the one-time worker spawn. No-op inside an
/// `spmd` node process, where node bodies run inline (each process *is*
/// one node).
pub fn warm(p: i64) {
    if transport::proc::active().is_some() {
        return;
    }
    let _ = global(p);
}

/// Runs `body(m, ctx)` on every node of a `p`-node machine on the
/// process-default transport and blocks until all finish.
pub fn launch<F>(p: i64, mode: LaunchMode, body: F)
where
    F: Fn(usize, &mut NodeCtx) + Sync,
{
    launch_with(p, mode, transport::default_transport(), body)
}

/// Runs `body(m, ctx)` on every node of a `p`-node machine and blocks
/// until all finish. `Pooled` dispatches to the resident pool for
/// `(p, kind)`; `Scoped` (or any launch from inside a pool worker)
/// spawns a per-call `thread::scope` with a fresh fabric and arenas.
///
/// Inside an `spmd` node process (multi-process session installed), the
/// process *is* one node: bodies run inline on the calling thread for
/// every node index, against a loopback fabric. Node-to-node data of
/// comm executors never reaches this path there — `CommSchedule`
/// execution detects the session first and uses the serialized wire —
/// so inline bodies are compute-only and the replicated execution keeps
/// every node's local-memory image consistent within each process.
pub fn launch_with<F>(p: i64, mode: LaunchMode, kind: TransportKind, body: F)
where
    F: Fn(usize, &mut NodeCtx) + Sync,
{
    assert!(p >= 1, "machine needs at least one node");
    if transport::proc::active().is_some() {
        return launch_inline(p as usize, &body);
    }
    match mode {
        LaunchMode::Pooled if !in_worker() => global_with(p, kind).dispatch(&body),
        _ => launch_scoped(p as usize, kind, &body),
    }
}

/// The historical launch path: fresh threads, fresh fabric, fresh
/// arenas, one `thread::scope` per call.
fn launch_scoped(p: usize, kind: TransportKind, body: &(dyn Fn(usize, &mut NodeCtx) + Sync)) {
    let mut ctxs: Vec<NodeCtx> = transport::connect(kind, p)
        .into_iter()
        .enumerate()
        .map(|(m, link)| NodeCtx::new(m, kind, link))
        .collect();
    // Same poison protocol as the pooled epoch: a panicking body must
    // release peers blocked in `recv` instead of deadlocking the scope
    // join, and the first panic is re-raised after everyone returns.
    let first_panic: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for ctx in ctxs.iter_mut() {
            let first_panic = &first_panic;
            scope.spawn(move || {
                let _lane = bcag_trace::enabled()
                    .then(|| bcag_trace::set_lane_label(&format!("node-{}", ctx.m)));
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(ctx.m, ctx))) {
                    ctx.poison_peers();
                    let mut slot = lock_clean(first_panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            });
        }
    });
    if let Some(payload) = into_clean(first_panic) {
        resume_unwind(payload);
    }
}

/// The multi-process session path: runs every node body sequentially on
/// the calling thread (this process's trace lane is its node's lane).
/// Each body gets a fresh single-node loopback context; fabric traffic
/// would deadlock by construction, which is exactly right — compute
/// bodies must not communicate here.
fn launch_inline(p: usize, body: &(dyn Fn(usize, &mut NodeCtx) + Sync)) {
    for m in 0..p {
        let link = transport::connect(TransportKind::Mpsc, 1)
            .pop()
            .expect("one endpoint");
        let mut ctx = NodeCtx::new(m, TransportKind::Mpsc, link);
        body(m, &mut ctx);
    }
}

/// Builds the access patterns of all `p` processors with per-processor
/// construction fanned out over the SPMD workers (pool-parallel
/// counterpart of `bcag_core::method::build` in a loop).
pub fn build_all(problem: &Problem, method: Method) -> Result<Vec<AccessPattern>> {
    let _sp = bcag_trace::span("pool.build_all");
    let slots: Vec<Mutex<Option<Result<AccessPattern>>>> =
        (0..problem.p()).map(|_| Mutex::new(None)).collect();
    launch(problem.p(), default_launch(), |m, _ctx| {
        let result = bcag_core::method::build(problem, m as i64, method);
        *lock_clean(&slots[m]) = Some(result);
    });
    slots
        .into_iter()
        .map(|slot| into_clean(slot).expect("node completed"))
        .collect()
}

/// Locks a mutex, ignoring poisoning: node bodies are panic-isolated by
/// the epoch barrier, so a poisoned flag carries no extra information.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Unwraps a mutex into its value, ignoring poisoning (see
/// [`lock_clean`]).
pub(crate) fn into_clean<T>(m: Mutex<T>) -> T {
    m.into_inner().unwrap_or_else(|e| e.into_inner())
}

/// Shared-locks an `RwLock`, ignoring poisoning (see [`lock_clean`]).
pub(crate) fn read_clean<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-locks an `RwLock`, ignoring poisoning (see [`lock_clean`]).
pub(crate) fn write_clean<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_runs_every_node_once() {
        let pool = global(6);
        let hits: Vec<Mutex<u32>> = (0..6).map(|_| Mutex::new(0)).collect();
        pool.dispatch(&|m, _ctx| {
            *lock_clean(&hits[m]) += 1;
        });
        pool.dispatch(&|m, _ctx| {
            *lock_clean(&hits[m]) += 10;
        });
        for h in &hits {
            assert_eq!(*lock_clean(h), 11);
        }
    }

    #[test]
    fn fabric_ring_pass() {
        for kind in TransportKind::ALL {
            for mode in [LaunchMode::Pooled, LaunchMode::Scoped] {
                let p = 5usize;
                let got: Vec<Mutex<i64>> = (0..p).map(|_| Mutex::new(-1)).collect();
                launch_with(p as i64, mode, kind, |m, ctx| {
                    ctx.send((m + 1) % p, Box::new(m as i64));
                    let env = ctx.recv();
                    *lock_clean(&got[m]) = *env.downcast::<i64>().expect("ring payload");
                });
                for (m, slot) in got.iter().enumerate() {
                    let want = ((m + p - 1) % p) as i64;
                    assert_eq!(*lock_clean(slot), want, "{} {mode:?} node {m}", kind.name());
                }
            }
        }
    }

    #[test]
    fn barrier_synchronizes_all_backends() {
        for kind in TransportKind::ALL {
            let p = 4usize;
            let after: Vec<Mutex<u32>> = (0..p).map(|_| Mutex::new(0)).collect();
            launch_with(p as i64, LaunchMode::Scoped, kind, |m, ctx| {
                ctx.barrier();
                *lock_clean(&after[m]) += 1;
                ctx.barrier();
                // After the second barrier every node observed every
                // other node's first increment.
                let sum: u32 = after.iter().map(|s| *lock_clean(s)).sum();
                assert_eq!(sum, p as u32, "{} node {m}", kind.name());
            });
        }
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut arena = BufferArena::default();
        let mut buf: Vec<i64> = arena.take();
        assert_eq!(buf.capacity(), 0);
        buf.extend(0..100);
        let cap = buf.capacity();
        arena.put(buf);
        let again: Vec<i64> = arena.take();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap, "capacity survives recycling");
        // Different payload types use different shelves.
        let other: Vec<u8> = arena.take();
        assert_eq!(other.capacity(), 0);
    }

    #[test]
    fn nested_launch_falls_back_to_scoped() {
        let outer: Vec<Mutex<usize>> = (0..3).map(|_| Mutex::new(0)).collect();
        launch(3, LaunchMode::Pooled, |m, _ctx| {
            // A body that itself launches a machine must not dead-lock
            // on the pool gate.
            let inner: Vec<Mutex<usize>> = (0..2).map(|_| Mutex::new(0)).collect();
            launch(2, LaunchMode::Pooled, |j, _ctx| {
                *lock_clean(&inner[j]) += 1;
            });
            let total: usize = inner.iter().map(|s| *lock_clean(s)).sum();
            *lock_clean(&outer[m]) = total;
        });
        for slot in &outer {
            assert_eq!(*lock_clean(slot), 2);
        }
    }

    #[test]
    fn panic_poisons_and_pool_survives() {
        let pool = global(4);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(&|m, ctx| {
                if m == 1 {
                    panic!("node job exploded");
                }
                if m == 2 {
                    // Blocked on data that will never come: must be
                    // released by node 1's poison, not hang.
                    let _ = ctx.recv();
                }
            });
        }));
        assert!(err.is_err(), "dispatch re-raises the node panic");
        // The pool stays usable and the fabric is clean.
        let clean: Vec<Mutex<bool>> = (0..4).map(|_| Mutex::new(false)).collect();
        pool.dispatch(&|m, ctx| {
            *lock_clean(&clean[m]) = ctx.fabric_is_clean();
        });
        for (m, slot) in clean.iter().enumerate() {
            assert!(*lock_clean(slot), "node {m} inbox drained after panic");
        }
    }

    #[test]
    fn registry_shares_one_pool_per_key() {
        let _serial = lock_clean(&REGISTRY_TEST_LOCK);
        let a = global_with(3, TransportKind::Mpsc);
        let b = global_with(3, TransportKind::Mpsc);
        assert!(Arc::ptr_eq(&a, &b));
        let other_kind = global_with(3, TransportKind::Shm);
        assert!(!Arc::ptr_eq(&a, &other_kind));
        let other_p = global_with(2, TransportKind::Mpsc);
        assert!(!Arc::ptr_eq(&a, &other_p));
    }

    #[test]
    fn concurrent_lookups_boot_one_pool() {
        let _serial = lock_clean(&REGISTRY_TEST_LOCK);
        // The shard write lock is the boot arbiter: 8 racing drivers
        // must share a single pool (worker threads spawn exactly once).
        let gate = std::sync::Barrier::new(8);
        let pools: Vec<Arc<Pool>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        gate.wait();
                        global_with(9, TransportKind::Shm)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pool in &pools[1..] {
            assert!(Arc::ptr_eq(&pools[0], pool));
        }
    }

    /// Serializes the tests that assert on registry identity against
    /// the admission test's evictions (parallel test threads otherwise
    /// race on the shared process-wide registry).
    static REGISTRY_TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Whether a pool for `(p, kind)` is currently registered.
    fn registered(p: usize, kind: TransportKind) -> bool {
        read_clean(registry_shard(p, kind))
            .iter()
            .any(|pool| pool.p == p && pool.kind == kind)
    }

    #[test]
    fn max_pools_parses_env_with_core_count_fallback() {
        let fallback = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2);
        assert_eq!(parse_max_pools(Some("3")), 3);
        assert_eq!(parse_max_pools(Some(" 12 ")), 12);
        assert_eq!(parse_max_pools(Some("1")), 1);
        assert_eq!(parse_max_pools(Some("0")), fallback);
        assert_eq!(parse_max_pools(Some("lots")), fallback);
        assert_eq!(parse_max_pools(None), fallback);
        assert!(max_pools() >= 1);
    }

    #[test]
    fn admission_evicts_idle_lru_pools() {
        let _serial = lock_clean(&REGISTRY_TEST_LOCK);
        // Machine sizes unique to this test, so concurrent tests' pools
        // are unrelated and cross-test Arc identities stay unaffected
        // (evicted pools survive through held Arcs anyway). Registered
        // directly rather than via `global_with`, whose own boot-time
        // admission would evict the earlier keys before the scenario is
        // even set up; the stamp order is 31 < 32 < 33 < 34.
        let held: Vec<Arc<Pool>> = [31usize, 32, 33, 34]
            .iter()
            .map(|&p| {
                let pool = Arc::new(Pool::new(p, TransportKind::Shm));
                pool.touch();
                write_clean(registry_shard(p, TransportKind::Shm)).push(Arc::clone(&pool));
                pool
            })
            .collect();
        for &p in &[31usize, 32, 33, 34] {
            assert!(registered(p, TransportKind::Shm));
        }
        // Cap of 2 with a keep-key matching none of them: the three
        // stalest idle pools must be evicted, leaving the fleet under
        // the cap with only the most recently used survivor.
        enforce_pool_cap(2, 0, TransportKind::Mpsc);
        assert!(!registered(31, TransportKind::Shm), "LRU pool evicted");
        assert!(!registered(32, TransportKind::Shm));
        assert!(!registered(33, TransportKind::Shm));
        // Eviction drops only the registry's Arc: held pools still
        // dispatch fine, and a fresh lookup re-boots a new pool.
        held[0].dispatch(&|_m, _ctx| {});
        let reborn = global_with(31, TransportKind::Shm);
        assert!(!Arc::ptr_eq(&held[0], &reborn), "evicted key re-boots");
    }

    #[test]
    fn build_all_matches_sequential() {
        let problem = Problem::new(7, 5, 3, 4).unwrap();
        let pooled = build_all(&problem, Method::Lattice).unwrap();
        let seq: Vec<AccessPattern> = (0..7)
            .map(|m| bcag_core::method::build(&problem, m, Method::Lattice).unwrap())
            .collect();
        assert_eq!(pooled, seq);
    }
}
