//! Distributed arrays over a simulated `cyclic(k)` memory layout.
//!
//! A [`DistArray`] materializes the paper's Figure 1: `p` per-processor
//! local memories, each holding that processor's blocks contiguously.
//! Global element `i` lives on processor `owner(i)` at local address
//! `local_addr(i)` — exactly the layout the access-sequence algorithms
//! enumerate.

use bcag_core::error::{BcagError, Result};
use bcag_core::layout::Layout;
use bcag_core::params::Problem;

/// A one-dimensional array of `n` elements distributed `cyclic(k)` over `p`
/// simulated processors.
#[derive(Debug, Clone, PartialEq)]
pub struct DistArray<T> {
    p: i64,
    k: i64,
    n: i64,
    layout: Layout,
    locals: Vec<Vec<T>>,
}

impl<T: Clone> DistArray<T> {
    /// Creates the array with every element set to `init`.
    pub fn new(p: i64, k: i64, n: i64, init: T) -> Result<Self> {
        // Validate (p, k) through the core constructor.
        let _ = Problem::new(p, k, 0, 1)?;
        if n < 0 {
            return Err(BcagError::NegativeLowerBound { l: n });
        }
        let layout = Layout::from_raw(p, k);
        let locals = (0..p)
            .map(|m| vec![init.clone(); layout.local_len(n, m) as usize])
            .collect();
        Ok(DistArray {
            p,
            k,
            n,
            layout,
            locals,
        })
    }

    /// Creates a zero-length array (no elements on any processor).
    pub fn empty(p: i64, k: i64) -> Result<Self> {
        let _ = Problem::new(p, k, 0, 1)?;
        Ok(DistArray {
            p,
            k,
            n: 0,
            layout: Layout::from_raw(p, k),
            locals: (0..p).map(|_| Vec::new()).collect(),
        })
    }

    /// Scatters a global vector into the distributed layout.
    pub fn from_global(p: i64, k: i64, data: &[T]) -> Result<Self> {
        let mut arr = Self::new(p, k, data.len() as i64, data[0].clone())?;
        for (i, v) in data.iter().enumerate() {
            arr.set(i as i64, v.clone())?;
        }
        Ok(arr)
    }

    /// Gathers the distributed contents back into a global vector.
    pub fn to_global(&self) -> Vec<T> {
        (0..self.n)
            .map(|i| self.get(i).expect("index in range").clone())
            .collect()
    }

    /// Number of processors.
    pub fn p(&self) -> i64 {
        self.p
    }

    /// Block size.
    pub fn k(&self) -> i64 {
        self.k
    }

    /// Global extent.
    pub fn len(&self) -> i64 {
        self.n
    }

    /// True when the global extent is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The layout calculator for this array.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Immutable view of processor `m`'s local memory.
    pub fn local(&self, m: i64) -> &[T] {
        &self.locals[m as usize]
    }

    /// Mutable view of processor `m`'s local memory.
    pub fn local_mut(&mut self, m: i64) -> &mut Vec<T> {
        &mut self.locals[m as usize]
    }

    /// Splits into per-processor mutable views, for handing one view to each
    /// simulated node thread.
    pub fn locals_mut(&mut self) -> &mut [Vec<T>] {
        &mut self.locals
    }

    /// Reads global element `i`.
    pub fn get(&self, i: i64) -> Result<&T> {
        self.check(i)?;
        let m = self.layout.owner(i);
        Ok(&self.locals[m as usize][self.layout.local_addr(i) as usize])
    }

    /// Writes global element `i`.
    pub fn set(&mut self, i: i64, value: T) -> Result<()> {
        self.check(i)?;
        let m = self.layout.owner(i);
        let a = self.layout.local_addr(i) as usize;
        self.locals[m as usize][a] = value;
        Ok(())
    }

    fn check(&self, i: i64) -> Result<()> {
        if (0..self.n).contains(&i) {
            Ok(())
        } else {
            Err(BcagError::Precondition("global index out of bounds"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_gather_roundtrip() {
        let data: Vec<i64> = (0..100).map(|i| i * 10).collect();
        let arr = DistArray::from_global(4, 8, &data).unwrap();
        assert_eq!(arr.to_global(), data);
    }

    #[test]
    fn local_sizes_match_layout() {
        let arr = DistArray::new(4, 8, 100, 0.0f64).unwrap();
        let lay = Layout::from_raw(4, 8);
        for m in 0..4 {
            assert_eq!(arr.local(m).len() as i64, lay.local_len(100, m));
        }
        // Total elements preserved.
        let total: usize = (0..4).map(|m| arr.local(m).len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn element_placement_matches_figure1() {
        let mut arr = DistArray::new(4, 8, 320, 0i64).unwrap();
        arr.set(108, 42).unwrap();
        // Element 108: offset 4 in block 3 of processor 1 -> local 28.
        assert_eq!(arr.local(1)[28], 42);
        assert_eq!(*arr.get(108).unwrap(), 42);
    }

    #[test]
    fn bounds_checked() {
        let arr = DistArray::new(2, 4, 10, 0u8).unwrap();
        assert!(arr.get(10).is_err());
        assert!(arr.get(-1).is_err());
    }

    #[test]
    fn empty_array() {
        let arr = DistArray::new(3, 2, 0, 0u8).unwrap();
        assert!(arr.is_empty());
        assert!(arr.to_global().is_empty());
    }
}
