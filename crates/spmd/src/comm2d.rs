//! Two-dimensional array assignment with redistribution:
//! `A(sec₀ₐ, sec₁ₐ) = B(sec₀_b, sec₁_b)` between matrices with different
//! mappings.
//!
//! Because HPF mappings are per-dimension products, the communication
//! structure of a 2-D assignment is the product of two 1-D structures: the
//! element at section rank `(t₀, t₁)` moves from
//! `(owner⁰_B(t₀), owner¹_B(t₁))` to `(owner⁰_A(t₀), owner¹_A(t₁))`.
//! The schedule is built from the per-dimension owned-rank lists (each a
//! product of the 1-D access machinery) rather than per-element ownership
//! tests.

use bcag_core::error::{BcagError, Result};
use bcag_core::method::Method;
use bcag_core::params::Problem;
use bcag_core::section::RegularSection;

use crate::csr::Csr;
use crate::dmatrix::DistMatrix;

/// Per-dimension rank decomposition: row `m` lists, in increasing rank
/// order, the section ranks `t` whose element grid coordinate `m` owns,
/// together with the per-rank local index — one flat CSR buffer instead of
/// a vector per coordinate.
fn dim_rank_owners(
    p: i64,
    k: i64,
    sec: &RegularSection,
    method: Method,
) -> Result<Csr<(i64, i64)>> {
    if sec.s <= 0 {
        return Err(BcagError::Precondition(
            "2-D assignment requires ascending triplets",
        ));
    }
    let problem = Problem::new(p, k, sec.l, sec.s)?;
    let lay = bcag_core::Layout::from_raw(p, k);
    let mut out = Csr::builder();
    for m in 0..p {
        let pat = bcag_core::method::build(&problem, m, method)?;
        for acc in pat.iter_to(sec.u) {
            out.push(((acc.global - sec.l) / sec.s, lay.local_addr(acc.global)));
        }
        out.finish_row();
    }
    Ok(out.finish(p as usize))
}

/// Executes `A(sec_a[0], sec_a[1]) = B(sec_b[0], sec_b[1])`.
///
/// Both matrices must be rank-2 with identity alignment; sections must
/// conform per dimension. The two matrices may use entirely different
/// grids and blockings — each side is decomposed with its own per-dimension
/// rank lists. Data moves through a rank-space staging buffer (dense over
/// the section), standing in for the message-passing exchange; the
/// message-level simulation lives in [`crate::comm`] for the 1-D case.
pub fn assign_matrix<T>(
    a: &mut DistMatrix<T>,
    sec_a: &[RegularSection; 2],
    b: &DistMatrix<T>,
    sec_b: &[RegularSection; 2],
) -> Result<()>
where
    T: Clone + Send + Sync + Default,
{
    for d in 0..2 {
        if sec_a[d].count() != sec_b[d].count() {
            return Err(BcagError::Precondition(
                "2-D sections must conform per dimension",
            ));
        }
    }
    let method = Method::Lattice;

    // --- Pack phase on B: rank-space staging buffer (t0-major = column
    // --- major in rank space to match local storage order).
    let n0 = sec_b[0].count();
    let n1 = sec_b[1].count();
    let mut staged: Vec<T> = vec![T::default(); (n0 * n1) as usize];
    {
        let bmap = b.map();
        let dims = bmap.dims();
        let d0 = dim_rank_owners(dims[0].procs(), dims[0].block_size(), &sec_b[0], method)?;
        let d1 = dim_rank_owners(dims[1].procs(), dims[1].block_size(), &sec_b[1], method)?;
        for coords in bmap.grid().iter_coords() {
            let rank = bmap.grid().linearize(&coords)? as usize;
            let local = b.local(rank as i64);
            let extents = bmap.local_extents(&coords)?;
            for &(t1, li1) in d1.row(coords[1] as usize) {
                for &(t0, li0) in d0.row(coords[0] as usize) {
                    let addr = li0 + li1 * extents[0];
                    staged[(t0 + t1 * n0) as usize] = local[addr as usize].clone();
                }
            }
        }
    }

    // --- Unpack phase on A.
    let amap = a.map().clone();
    let dims = amap.dims();
    let d0 = dim_rank_owners(dims[0].procs(), dims[0].block_size(), &sec_a[0], method)?;
    let d1 = dim_rank_owners(dims[1].procs(), dims[1].block_size(), &sec_a[1], method)?;
    for coords in amap.grid().iter_coords() {
        let rank = amap.grid().linearize(&coords)?;
        let extents = amap.local_extents(&coords)?;
        let local = a.local_mut(rank);
        for &(t1, li1) in d1.row(coords[1] as usize) {
            for &(t0, li0) in d0.row(coords[0] as usize) {
                let addr = li0 + li1 * extents[0];
                local[addr as usize] = staged[(t0 + t1 * n0) as usize].clone();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcag_hpf::{ArrayMap, DimMap, Dist};

    fn mk(n: i64, k0: i64, k1: i64) -> DistMatrix<i64> {
        let map = ArrayMap::new(vec![
            DimMap::simple(n, 2, Dist::CyclicK(k0)).unwrap(),
            DimMap::simple(n, 2, Dist::CyclicK(k1)).unwrap(),
        ])
        .unwrap();
        DistMatrix::new(map, 0i64).unwrap()
    }

    #[test]
    fn remapped_submatrix_copy() {
        let n = 24;
        let mut b = mk(n, 3, 5);
        for i in 0..n {
            for j in 0..n {
                b.set(i, j, 100 * i + j).unwrap();
            }
        }
        let mut a = mk(n, 4, 2);
        let sec_a = [
            RegularSection::new(0, 21, 3).unwrap(),
            RegularSection::new(1, 23, 2).unwrap(),
        ];
        let sec_b = [
            RegularSection::new(2, 23, 3).unwrap(),
            RegularSection::new(0, 22, 2).unwrap(),
        ];
        assign_matrix(&mut a, &sec_a, &b, &sec_b).unwrap();
        let dense = a.to_dense().unwrap();
        for t0 in 0..8 {
            for t1 in 0..12 {
                let (ia, ja) = (3 * t0, 1 + 2 * t1);
                let (ib, jb) = (2 + 3 * t0, 2 * t1);
                assert_eq!(
                    dense[ia as usize][ja as usize],
                    100 * ib + jb,
                    "t=({t0},{t1})"
                );
            }
        }
        // Untouched elements stay zero.
        assert_eq!(dense[1][1], 0);
    }

    #[test]
    fn transpose_like_exchange() {
        // Same element set, different blockings: full-matrix copy.
        let n = 20;
        let mut b = mk(n, 7, 1);
        for i in 0..n {
            for j in 0..n {
                b.set(i, j, i * 31 + j * 7).unwrap();
            }
        }
        let mut a = mk(n, 2, 6);
        let full = [
            RegularSection::new(0, n - 1, 1).unwrap(),
            RegularSection::new(0, n - 1, 1).unwrap(),
        ];
        assign_matrix(&mut a, &full, &b, &full).unwrap();
        assert_eq!(a.to_dense().unwrap(), b.to_dense().unwrap());
    }

    #[test]
    fn conformance_enforced() {
        let b = mk(10, 2, 2);
        let mut a = mk(10, 2, 2);
        let sec_a = [
            RegularSection::new(0, 9, 1).unwrap(),
            RegularSection::new(0, 9, 1).unwrap(),
        ];
        let sec_b = [
            RegularSection::new(0, 9, 2).unwrap(),
            RegularSection::new(0, 9, 1).unwrap(),
        ];
        assert!(assign_matrix(&mut a, &sec_a, &b, &sec_b).is_err());
    }
}
