//! The four node-code shapes of the paper's Figure 8.
//!
//! After a processor has its memory-gap table, the generated node code
//! walks local memory applying the statement body. The paper evaluates four
//! C code shapes for `A(l:u:s) = 100.0` (Table 2); transcribed to Rust:
//!
//! * **8(a) `ModLoop`** — wrap the table index with `%` every iteration
//!   (the conceptual version from Chatterjee et al.; by far the slowest
//!   because of the division);
//! * **8(b) `BranchLoop`** — replace `%` with an equality test and reset;
//! * **8(c) `SplitLoop`** — an outer infinite loop over an inner
//!   `for i in 0..length` with an early exit, which schedules better;
//! * **8(d) `TwoTableLoop`** — offset-indexed `deltaM`/`NextOffset` tables
//!   (built by [`bcag_core::two_table`]); two loads per access and no
//!   wrap-around test — the fastest measured shape, at the cost of storing
//!   two tables.
//!
//! Every function applies `f` to exactly the local elements
//! `start, start+gaps…` while the address is `<= last` — the contract the
//! traversal equivalence tests pin down.
//!
//! Beyond the paper's four, [`CodeShape::RunLoop`] traverses the
//! run-coalesced form of the same plan ([`bcag_core::runs::RunPlan`]):
//! instead of a table load per element, one tight slice (or strided) loop
//! per constant-gap run — the shape the pack/comm fast paths share.

use bcag_core::lower::ShapeClass;
use bcag_core::runs::RunPlan;
use bcag_core::two_table::TwoTable;

/// Selector for the node-code shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeShape {
    /// Figure 8(a): modulo-wrapped table index.
    ModLoop,
    /// Figure 8(b): branch-reset table index.
    BranchLoop,
    /// Figure 8(c): split inner counted loop.
    SplitLoop,
    /// Figure 8(d): two-table, offset-indexed.
    TwoTableLoop,
    /// Run-coalesced traversal over the compiled [`RunPlan`] — not one of
    /// the paper's Figure 8 shapes, but the same contract.
    RunLoop,
}

impl CodeShape {
    /// The paper's four shapes, in Figure 8 order (Table 2 reproduces
    /// exactly these).
    pub const ALL: [CodeShape; 4] = [
        CodeShape::ModLoop,
        CodeShape::BranchLoop,
        CodeShape::SplitLoop,
        CodeShape::TwoTableLoop,
    ];

    /// The paper's four shapes plus the run-coalesced traversal — the set
    /// the equivalence tests and shape benchmarks sweep.
    pub const WITH_RUNS: [CodeShape; 5] = [
        CodeShape::ModLoop,
        CodeShape::BranchLoop,
        CodeShape::SplitLoop,
        CodeShape::TwoTableLoop,
        CodeShape::RunLoop,
    ];

    /// Figure label used in tables and bench names.
    pub fn label(&self) -> &'static str {
        match self {
            CodeShape::ModLoop => "8(a)",
            CodeShape::BranchLoop => "8(b)",
            CodeShape::SplitLoop => "8(c)",
            CodeShape::TwoTableLoop => "8(d)",
            CodeShape::RunLoop => "runs",
        }
    }
}

/// Figure 8(a): `base += deltaM[i]; i = (i + 1) % length;`.
pub fn traverse_mod<T>(
    local: &mut [T],
    start: i64,
    last: i64,
    delta_m: &[i64],
    mut f: impl FnMut(&mut T),
) {
    let length = delta_m.len();
    debug_assert!(length > 0);
    let mut base = start;
    let mut i = 0usize;
    while base <= last {
        f(&mut local[base as usize]);
        base += delta_m[i];
        i = (i + 1) % length;
    }
}

/// Figure 8(b): `base += deltaM[i++]; if (i == length) i = 0;`.
pub fn traverse_branch<T>(
    local: &mut [T],
    start: i64,
    last: i64,
    delta_m: &[i64],
    mut f: impl FnMut(&mut T),
) {
    let length = delta_m.len();
    debug_assert!(length > 0);
    let mut base = start;
    let mut i = 0usize;
    while base <= last {
        f(&mut local[base as usize]);
        base += delta_m[i];
        i += 1;
        if i == length {
            i = 0;
        }
    }
}

/// Figure 8(c): outer infinite loop over an inner counted loop with an
/// early exit (the `goto done` of the C original becomes a labelled break).
pub fn traverse_split<T>(
    local: &mut [T],
    start: i64,
    last: i64,
    delta_m: &[i64],
    mut f: impl FnMut(&mut T),
) {
    debug_assert!(!delta_m.is_empty());
    let mut base = start;
    if base > last {
        return;
    }
    'outer: loop {
        for &dm in delta_m {
            f(&mut local[base as usize]);
            base += dm;
            if base > last {
                break 'outer;
            }
        }
    }
}

/// Figure 8(d): `base += deltaM[i]; i = nextoffset[i];` with tables indexed
/// by local block offset.
pub fn traverse_two_table<T>(
    local: &mut [T],
    start: i64,
    last: i64,
    tables: &TwoTable,
    mut f: impl FnMut(&mut T),
) {
    let mut base = start;
    let mut i = tables.start_offset;
    while base <= last {
        f(&mut local[base as usize]);
        base += tables.delta_m[i as usize];
        i = tables.next_offset[i as usize];
    }
}

/// Fixed-gap strided visit: the constant `GAP` lets `step_by` constant-
/// fold, so each of the common small gaps gets its own tight loop
/// (mirroring the fused path's kernel table in [`crate::fuse`]).
fn traverse_strided<T, const GAP: usize>(
    local: &mut [T],
    addr: usize,
    len: usize,
    f: &mut impl FnMut(&mut T),
) {
    let span = (len - 1) * GAP + 1;
    for x in local[addr..addr + span].iter_mut().step_by(GAP) {
        f(x);
    }
}

/// Run-coalesced traversal: one slice loop per unit-gap segment, one
/// strided loop per wide-gap segment — no table load per element.
/// Segments dispatch through [`bcag_core::lower::ShapeClass`], the same
/// gap classification the fused statement compiler keys its kernel
/// table on, so the common small gaps run constant-stride loops. The
/// classification is element-size aware ([`ShapeClass::of_gap_for`]):
/// once a segment's element pitch spans a full cache line, the
/// const-generic unrolling cannot win and the runtime-gap loop serves.
/// Emits the `runs_coalesced`/`run_len_total` counters for
/// multi-element segments (their ratio is the average coalesced run
/// length).
pub fn traverse_runs<T>(local: &mut [T], runs: &RunPlan, mut f: impl FnMut(&mut T)) {
    let mut segments = 0u64;
    let mut elements = 0u64;
    runs.for_each_segment(|seg| {
        let a = seg.addr as usize;
        let len = seg.len as usize;
        match ShapeClass::of_gap_for(seg.gap, std::mem::size_of::<T>()) {
            ShapeClass::Memcpy => {
                for x in &mut local[a..a + len] {
                    f(x);
                }
            }
            ShapeClass::Stride2 => traverse_strided::<T, 2>(local, a, len, &mut f),
            ShapeClass::Stride3 => traverse_strided::<T, 3>(local, a, len, &mut f),
            ShapeClass::Stride4 => traverse_strided::<T, 4>(local, a, len, &mut f),
            ShapeClass::Wide => {
                let gap = seg.gap as usize;
                let span = (len - 1) * gap + 1;
                for x in local[a..a + span].iter_mut().step_by(gap) {
                    f(x);
                }
            }
        }
        if len >= 2 {
            segments += 1;
            elements += len as u64;
        }
    });
    bcag_core::runs::count_coalesced(segments, elements);
}

/// Dispatches on the shape. `delta_m` must be the access-ordered `AM` table,
/// `tables` the offset-indexed pair and `runs` the compiled run plan;
/// callers obtain all three from the same access pattern (a [`NodePlan`]
/// carries them together).
///
/// [`NodePlan`]: crate::assign::NodePlan
#[allow(clippy::too_many_arguments)]
pub fn traverse<T>(
    shape: CodeShape,
    local: &mut [T],
    start: i64,
    last: i64,
    delta_m: &[i64],
    tables: &TwoTable,
    runs: &RunPlan,
    f: impl FnMut(&mut T),
) {
    match shape {
        CodeShape::ModLoop => traverse_mod(local, start, last, delta_m, f),
        CodeShape::BranchLoop => traverse_branch(local, start, last, delta_m, f),
        CodeShape::SplitLoop => traverse_split(local, start, last, delta_m, f),
        CodeShape::TwoTableLoop => traverse_two_table(local, start, last, tables, f),
        CodeShape::RunLoop => traverse_runs(local, runs, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcag_core::lattice_alg;
    use bcag_core::params::Problem;
    use bcag_core::start::last_location;
    use bcag_core::Layout;

    /// All shapes (the paper's four plus the run-coalesced loop) must
    /// touch exactly the same elements, in the same order, as the pattern
    /// iterator.
    #[test]
    fn shapes_agree_with_pattern_iteration() {
        for (p, k, l, s, u) in [
            (4i64, 8i64, 4i64, 9i64, 301i64),
            (4, 8, 0, 7, 500),
            (2, 16, 3, 35, 900),
            (3, 4, 0, 1, 60),
            (4, 8, 0, 32, 700),
        ] {
            let pr = Problem::new(p, k, l, s).unwrap();
            let lay = Layout::new(&pr);
            for m in 0..p {
                let pat = lattice_alg::build(&pr, m).unwrap();
                if pat.is_empty() {
                    continue;
                }
                let Some(last_g) = last_location(&pr, m, u).unwrap() else {
                    continue;
                };
                let start = pat.start_local().unwrap();
                let last = lay.local_addr(last_g);
                let expect = pat.locals_to(u);
                let tables = bcag_core::two_table::TwoTable::from_pattern(&pat).unwrap();
                let runs = RunPlan::compile(Some(start), last, pat.gaps());
                let local_size = (last + 1).max(start + 1) as usize;
                for shape in CodeShape::WITH_RUNS {
                    let mut order: Vec<i64> = Vec::new();
                    let mut mem = vec![0u32; local_size];
                    // Record visit order via an address-capturing trick: we
                    // cannot see the index inside f, so mark and collect.
                    traverse(
                        shape,
                        &mut mem,
                        start,
                        last,
                        pat.gaps(),
                        &tables,
                        &runs,
                        |x| {
                            *x += 1;
                        },
                    );
                    // Recompute visited addresses from marks.
                    for (addr, &v) in mem.iter().enumerate() {
                        if v > 0 {
                            assert_eq!(v, 1, "address visited more than once");
                            order.push(addr as i64);
                        }
                    }
                    assert_eq!(
                        order,
                        expect,
                        "shape {} p={p} k={k} l={l} s={s} u={u} m={m}",
                        shape.label()
                    );
                }
            }
        }
    }

    #[test]
    fn empty_range_touches_nothing() {
        let pr = Problem::new(4, 8, 4, 9).unwrap();
        let pat = lattice_alg::build(&pr, 1).unwrap();
        let tables = bcag_core::two_table::TwoTable::from_pattern(&pat).unwrap();
        let runs = RunPlan::compile(Some(5), 4, pat.gaps());
        let mut mem = vec![0u32; 16];
        for shape in CodeShape::WITH_RUNS {
            // last < start: the loop body must not run.
            traverse(shape, &mut mem, 5, 4, pat.gaps(), &tables, &runs, |x| {
                *x += 1
            });
        }
        assert!(mem.iter().all(|&v| v == 0));
    }

    #[test]
    fn labels() {
        assert_eq!(CodeShape::ModLoop.label(), "8(a)");
        assert_eq!(CodeShape::TwoTableLoop.label(), "8(d)");
        assert_eq!(CodeShape::RunLoop.label(), "runs");
    }
}
